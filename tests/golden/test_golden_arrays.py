"""Golden regression fixtures for large-array virtual gate extraction.

The scenario goldens pin the pairwise probe path; these pin the *array*
layer on top of it — 6+ dot devices, including a 2-D lattice whose bond
graph exercises the explicit-adjacency walk — by snapshotting each pair's
extracted coefficients, the probe totals, and the simulated time into
``array_extractions.json`` and asserting them bit-identical.

Regenerate deliberately (after a change that is *supposed* to alter the
numbers) with::

    PYTHONPATH=src python tests/golden/test_golden_arrays.py --regenerate
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import ArrayVirtualGateExtractor
from repro.physics import DotArrayDevice, WhiteNoise

FIXTURE_PATH = Path(__file__).with_name("array_extractions.json")

#: (label, device factory kwargs, seed, resolution) pinned by the fixtures.
GOLDEN_ARRAYS: tuple[tuple[str, dict, int, int], ...] = (
    ("linear6", {"factory": "linear_array", "n_dots": 6}, 29, 32),
    ("grid2x3", {"factory": "grid_array", "rows": 2, "cols": 3}, 29, 32),
)


def _build_device(spec: dict) -> DotArrayDevice:
    kwargs = dict(spec)
    factory = kwargs.pop("factory")
    return getattr(DotArrayDevice, factory)(**kwargs)


def run_golden(label: str, spec: dict, seed: int, resolution: int) -> dict:
    """One seeded array extraction, condensed to the snapshotted keys."""
    device = _build_device(spec)
    extractor = ArrayVirtualGateExtractor(
        resolution=resolution, noise=WhiteNoise(sigma_na=0.01), seed=seed
    )
    result = extractor.extract(device)
    return {
        "label": label,
        "device": device.name,
        "seed": seed,
        "resolution": resolution,
        "n_pairs": result.n_pairs,
        "all_succeeded": result.all_pairs_succeeded,
        "max_alpha_error": result.max_alpha_error(),
        "total_probes": result.total_probes,
        "total_elapsed_s": result.total_elapsed_s,
        "pairs": [
            {
                "dots": [record.dot_a, record.dot_b],
                "gates": [record.gate_x, record.gate_y],
                "alpha_12": record.result.matrix.alpha_12
                if record.result.matrix is not None
                else None,
                "alpha_21": record.result.matrix.alpha_21
                if record.result.matrix is not None
                else None,
            }
            for record in result.pair_records
        ],
    }


def _fixture_key(run: tuple[str, dict, int, int]) -> str:
    label, _, seed, resolution = run
    return f"{label}@seed{seed}r{resolution}"


def load_fixtures() -> dict:
    with FIXTURE_PATH.open() as handle:
        return json.load(handle)


@pytest.mark.parametrize("run", GOLDEN_ARRAYS, ids=_fixture_key)
def test_golden_array_extraction_is_bit_identical(run):
    fixtures = load_fixtures()
    key = _fixture_key(run)
    assert key in fixtures, (
        f"missing golden fixture {key!r}; regenerate with "
        "PYTHONPATH=src python tests/golden/test_golden_arrays.py --regenerate"
    )
    expected = fixtures[key]
    actual = run_golden(*run)
    # Exact equality on purpose: JSON round-trips doubles by shortest repr,
    # so == catches single-ulp drift in the array layer's seed spawning,
    # pair ordering, or the probe path beneath it.
    assert actual == expected


def test_grid_fixture_covers_every_lattice_bond():
    fixtures = load_fixtures()
    pairs = fixtures["grid2x3@seed29r32"]["pairs"]
    bonds = [tuple(entry["dots"]) for entry in pairs]
    assert bonds == [(0, 1), (0, 3), (1, 2), (1, 4), (2, 5), (3, 4), (4, 5)]


def test_fixture_file_has_no_stale_entries():
    known = {_fixture_key(run) for run in GOLDEN_ARRAYS}
    assert set(load_fixtures()) == known


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--regenerate", action="store_true", help="rewrite the fixture JSON"
    )
    args = parser.parse_args()
    if not args.regenerate:
        parser.error("nothing to do; pass --regenerate")
    fixtures = {_fixture_key(run): run_golden(*run) for run in GOLDEN_ARRAYS}
    FIXTURE_PATH.write_text(json.dumps(fixtures, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(fixtures)} fixtures to {FIXTURE_PATH}")


if __name__ == "__main__":
    main()
