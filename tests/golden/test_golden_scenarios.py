"""Golden regression fixtures: seeded end-to-end extraction on scenarios.

Each fixture is one seeded extraction run on a named scenario whose key
outputs — virtualization-matrix entries, probe counts, and simulated time —
are snapshotted into ``scenario_extractions.json`` and asserted
*bit-identical* here.  The probe path, the noise samplers, the drift state,
and the clock are all deterministic given the seed, so any refactor that
silently changes a single bit anywhere in that stack fails these tests
instead of drifting the evaluation.

Regenerate deliberately (after a change that is *supposed* to alter the
numbers) with::

    PYTHONPATH=src python tests/golden/test_golden_scenarios.py --regenerate
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import FastVirtualGateExtractor
from repro.scenarios import get_scenario

FIXTURE_PATH = Path(__file__).with_name("scenario_extractions.json")

#: (scenario, seed, resolution) triples pinned by the fixtures.  quiet_lab is
#: the deterministic reference; the other two exercise time-dependent noise
#: and device drift through the whole probe path.
GOLDEN_RUNS: tuple[tuple[str, int, int], ...] = (
    ("quiet_lab", 17, 48),
    ("drifting_sensor", 17, 48),
    ("telegraph_storm", 23, 48),
)


def run_golden(scenario_name: str, seed: int, resolution: int) -> dict:
    """One seeded end-to-end extraction, condensed to the snapshotted keys."""
    session = get_scenario(scenario_name).open_session(
        resolution=resolution, seed=seed
    )
    result = FastVirtualGateExtractor().extract(session)
    meter = session.meter
    return {
        "scenario": scenario_name,
        "seed": seed,
        "resolution": resolution,
        "success": result.success,
        "alpha_12": result.alpha_12,
        "alpha_21": result.alpha_21,
        "n_probes": meter.n_probes,
        "n_requests": meter.n_requests,
        "n_unique_pixels": meter.log.n_unique_pixels,
        "elapsed_s": meter.elapsed_s,
    }


def _fixture_key(run: tuple[str, int, int]) -> str:
    name, seed, resolution = run
    return f"{name}@seed{seed}r{resolution}"


def load_fixtures() -> dict:
    with FIXTURE_PATH.open() as handle:
        return json.load(handle)


@pytest.mark.parametrize("run", GOLDEN_RUNS, ids=_fixture_key)
def test_golden_extraction_is_bit_identical(run):
    fixtures = load_fixtures()
    key = _fixture_key(run)
    assert key in fixtures, (
        f"missing golden fixture {key!r}; regenerate with "
        "PYTHONPATH=src python tests/golden/test_golden_scenarios.py --regenerate"
    )
    expected = fixtures[key]
    actual = run_golden(*run)
    # Exact equality on purpose: JSON round-trips doubles exactly (repr), so
    # == catches single-ulp drift that approx comparisons would wave through.
    assert actual == expected


def test_fixture_file_has_no_stale_entries():
    known = {_fixture_key(run) for run in GOLDEN_RUNS}
    assert set(load_fixtures()) == known


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--regenerate", action="store_true", help="rewrite the fixture JSON"
    )
    args = parser.parse_args()
    if not args.regenerate:
        parser.error("nothing to do; pass --regenerate")
    fixtures = {_fixture_key(run): run_golden(*run) for run in GOLDEN_RUNS}
    FIXTURE_PATH.write_text(json.dumps(fixtures, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(fixtures)} fixtures to {FIXTURE_PATH}")


if __name__ == "__main__":
    main()
