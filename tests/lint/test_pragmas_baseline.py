"""Pragma hygiene and baseline adopt/burn-down semantics."""

from pathlib import Path

import pytest

from repro.exceptions import ConfigurationError
from repro.lint.baseline import BASELINE_VERSION, Baseline
from repro.lint.engine import PRAGMA_RULE, run_lint
from repro.lint.pragmas import PragmaIndex
from repro.lint.violations import Violation

FIXTURES = Path(__file__).parent / "fixtures"


class TestPragmaParsing:
    def test_bare_and_justified_pragmas(self):
        index = PragmaIndex.from_source(
            "x = 1  # repro: allow[wall-clock]\n"
            "y = 2  # repro: allow[wall-clock,strict-json] -- telemetry timer\n"
        )
        assert index.allows("wall-clock", 1)
        assert index.pragma_for("wall-clock", 1).is_bare
        assert index.allows("strict-json", 2)
        assert index.pragma_for("wall-clock", 2).justification == "telemetry timer"
        assert not index.allows("strict-json", 1)
        assert not index.allows("wall-clock", 3)

    def test_pragma_text_inside_strings_is_inert(self):
        index = PragmaIndex.from_source(
            '"""docs show # repro: allow[wall-clock] syntax"""\n'
            'msg = "# repro: allow[strict-json]"\n'
        )
        assert index.all_pragmas() == ()


class TestPragmaHygiene:
    def test_unknown_rule_name_is_reported_in_every_mode(self):
        report = run_lint(
            FIXTURES / "pragma_unknown.py", contracts=False, strict=False
        )
        assert [v.rule for v in report.violations] == [PRAGMA_RULE]
        assert "wall-clcok" in report.violations[0].message

    def test_bare_pragma_suppresses_in_default_mode(self):
        report = run_lint(FIXTURES / "pragma_bare.py", contracts=False)
        assert report.violations == ()
        assert [v.rule for v in report.suppressed] == ["strict-json"]

    def test_bare_pragma_fails_strict_mode(self):
        report = run_lint(FIXTURES / "pragma_bare.py", contracts=False, strict=True)
        assert [v.rule for v in report.violations] == [PRAGMA_RULE]
        assert "justification" in report.violations[0].message


class TestBaseline:
    def make_violation(self, rule="strict-json", path="a.py", snippet="x = 1", line=3):
        return Violation(path=path, line=line, rule=rule, message="m", snippet=snippet)

    def test_round_trip_through_disk(self, tmp_path):
        baseline = Baseline.from_violations([self.make_violation()])
        path = baseline.save(tmp_path / "baseline.json")
        assert Baseline.load(path).entries == baseline.entries

    def test_load_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text('{"version": 999}')
        with pytest.raises(ConfigurationError):
            Baseline.load(path)
        assert BASELINE_VERSION == 1

    def test_matching_ignores_line_drift(self):
        baseline = Baseline.from_violations([self.make_violation(line=3)])
        fresh, adopted, unused = baseline.partition([self.make_violation(line=90)])
        assert fresh == []
        assert len(adopted) == 1
        assert unused == []

    def test_each_entry_absolves_one_violation(self):
        baseline = Baseline.from_violations([self.make_violation()])
        fresh, adopted, unused = baseline.partition(
            [self.make_violation(), self.make_violation()]
        )
        assert len(adopted) == 1
        assert len(fresh) == 1

    def test_unused_entries_surface(self):
        baseline = Baseline.from_violations(
            [self.make_violation(), self.make_violation(snippet="gone = 2")]
        )
        fresh, adopted, unused = baseline.partition([self.make_violation()])
        assert fresh == []
        assert len(adopted) == 1
        assert [entry.snippet for entry in unused] == ["gone = 2"]


class TestBaselineInEngine:
    def test_baseline_adopts_the_whole_corpus(self):
        first = run_lint(FIXTURES, contracts=False)
        assert first.violations
        baseline = Baseline.from_violations(list(first.violations))
        second = run_lint(FIXTURES, contracts=False, baseline=baseline)
        assert second.violations == ()
        assert len(second.adopted) == len(first.violations)
        assert second.exit_code == 0

    def test_stale_entry_passes_default_but_fails_strict(self):
        stale = Violation(
            path="strict_json_clean.py",
            line=1,
            rule="strict-json",
            message="m",
            snippet="json.dumps(payload)  # long gone",
        )
        baseline = Baseline.from_violations([stale])
        target = FIXTURES / "strict_json_clean.py"
        default = run_lint(target, contracts=False, baseline=baseline)
        assert default.violations == ()
        assert len(default.unused_baseline) == 1
        strict = run_lint(target, contracts=False, baseline=baseline, strict=True)
        assert [v.rule for v in strict.violations] == [PRAGMA_RULE]
        assert "stale baseline entry" in strict.violations[0].message
