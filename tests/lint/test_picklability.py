"""Registry-wide picklability smoke test under spawn start semantics.

The in-process pickle round-trip in the contract audit approximates what a
``ProcessPoolBackend`` worker does under spawn semantics; this test does
the real thing: every scenario, pipeline, backend, and record sample is
shipped to a fresh spawn-started interpreter, rebuilt purely from its
pickle, and its repr is compared against the parent's.
"""

from repro.execution.base import backend_from_spec, backend_names
from repro.lint.contracts import (
    _SAMPLE_FACTORIES,
    _register_builtin_samples,
    spawn_roundtrip,
)
from repro.pipeline.registry import get_pipeline, pipeline_names
from repro.reprs import ADDRESS_REPR
from repro.scenarios.catalog import all_scenarios


def registry_objects():
    objects = list(all_scenarios())
    objects += [get_pipeline(name) for name in pipeline_names()]
    objects += [
        backend_from_spec(name, n_workers=2, chunk_size=None)
        for name in backend_names()
    ]
    _register_builtin_samples()
    objects += [factory() for factory in _SAMPLE_FACTORIES.values()]
    return objects


def test_every_registry_object_rebuilds_in_a_spawn_worker():
    objects = registry_objects()
    assert len(objects) >= 10  # scenarios + pipelines + backends + samples
    child_reprs = spawn_roundtrip(objects)
    for obj, child_repr in zip(objects, child_reprs):
        # The child rebuilt the object from nothing but its pickle; a
        # content-equal repr means no state was lost, and an address-free
        # repr means fingerprints built from it survive the process hop.
        assert child_repr == repr(obj)
        assert not ADDRESS_REPR.search(child_repr)
