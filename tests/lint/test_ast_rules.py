"""Every AST rule against its trigger/no-trigger fixture corpus.

The fixtures under ``fixtures/`` are a regression corpus: one file per
rule seeded with every form the rule must catch, one file per rule with
the nearest legitimate idioms it must leave alone.  The directory layout
matters — ``fixtures/core/`` puts files in the ``wall-clock`` rule's
scope, ``fixtures/analysis/`` outside it.
"""

from pathlib import Path

import pytest

from repro.lint.engine import run_lint
from repro.lint.rules import (
    EXIT_NAN_RECORD,
    EXIT_PRAGMA,
    EXIT_RNG,
    EXIT_SILENT_FALLBACK,
    EXIT_STRICT_JSON,
    EXIT_WALL_CLOCK,
    rule_names,
)

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="module")
def report():
    return run_lint(FIXTURES, contracts=False)


def rules_hit(report, filename):
    return {v.rule for v in report.violations if Path(v.path).name == filename}


def count(report, filename, rule):
    return sum(
        1
        for v in report.violations
        if Path(v.path).name == filename and v.rule == rule
    )


class TestTriggerCorpus:
    def test_rng_global_state(self, report):
        assert rules_hit(report, "rng_trigger.py") == {"rng-global-state"}
        # np.random.normal, np.random.rand, random.random, random.randint,
        # and the `from random import gauss` line.
        assert count(report, "rng_trigger.py", "rng-global-state") == 5

    def test_rng_unseeded(self, report):
        assert rules_hit(report, "rng_unseeded_trigger.py") == {"rng-unseeded"}
        assert count(report, "rng_unseeded_trigger.py", "rng-unseeded") == 2

    def test_wall_clock(self, report):
        assert rules_hit(report, "wall_clock_trigger.py") == {"wall-clock"}
        # time.time, time.perf_counter, time.sleep, datetime.now,
        # date.today, and the `from time import ...` line.
        assert count(report, "wall_clock_trigger.py", "wall-clock") == 6

    def test_silent_fallback(self, report):
        assert rules_hit(report, "silent_fallback_trigger.py") == {"silent-fallback"}
        # bare except, except Exception: pass, tuple-default .get,
        # risky-key .get, risky-key getattr, tuple-default getattr.
        assert count(report, "silent_fallback_trigger.py", "silent-fallback") == 6

    def test_strict_json(self, report):
        assert rules_hit(report, "strict_json_trigger.py") == {"strict-json"}
        assert count(report, "strict_json_trigger.py", "strict-json") == 2

    def test_nan_record_field(self, report):
        assert rules_hit(report, "nan_record_trigger.py") == {"nan-record-field"}
        assert count(report, "nan_record_trigger.py", "nan-record-field") == 2

    def test_nan_flagged_at_assignment_line(self, report):
        lines = {
            v.line: v.snippet
            for v in report.violations
            if Path(v.path).name == "nan_record_trigger.py"
        }
        assert any("worst_error" in snippet for snippet in lines.values())

    def test_exit_code_is_the_or_of_regressed_bits(self, report):
        assert report.exit_code == (
            EXIT_RNG
            | EXIT_WALL_CLOCK
            | EXIT_SILENT_FALLBACK
            | EXIT_STRICT_JSON
            | EXIT_NAN_RECORD
            | EXIT_PRAGMA  # fixtures/pragma_unknown.py
        )


class TestNoTriggerCorpus:
    @pytest.mark.parametrize(
        "filename",
        [
            "rng_clean.py",
            "silent_fallback_clean.py",
            "strict_json_clean.py",
            "nan_record_clean.py",
            "wall_clock_out_of_scope.py",
        ],
    )
    def test_clean_fixture_reports_nothing(self, report, filename):
        assert rules_hit(report, filename) == set()

    def test_justified_pragma_suppresses(self, report):
        assert rules_hit(report, "wall_clock_pragma.py") == set()
        suppressed = [
            v
            for v in report.suppressed
            if Path(v.path).name == "wall_clock_pragma.py"
        ]
        assert len(suppressed) == 2
        assert {v.rule for v in suppressed} == {"wall-clock"}


class TestRuleSelection:
    def test_rules_filter_runs_only_named_rules(self):
        report = run_lint(FIXTURES, rules=["strict-json"], contracts=False)
        # Pragma hygiene is not optional — the typo'd pragma in the corpus
        # is still reported; every other AST rule is switched off.
        assert {v.rule for v in report.violations} == {"strict-json", "pragma-hygiene"}

    def test_all_builtin_rules_are_registered(self):
        assert set(rule_names()) >= {
            "rng-global-state",
            "rng-unseeded",
            "wall-clock",
            "silent-fallback",
            "strict-json",
            "nan-record-field",
        }
