"""The import-time contract audit: clean library, seeded regressions."""

from dataclasses import dataclass

import repro.lint.contracts as contracts
from repro.lint.contracts import (
    audit_record_contracts,
    audit_registry_contracts,
    register_contract_sample,
    run_contract_audit,
)
from repro.pipeline.registry import METHOD_ALIASES
from repro.scenarios import catalog


class _AddressReprScenario:
    """A registry object with CPython's default (address-bearing) repr."""

    name = "lint-test-bad-repr"


@dataclass(frozen=True)
class _GoodRecord:
    """A well-behaved record: strict JSON round-trip closes."""

    value: float
    label: str

    def as_dict(self):
        return {"value": self.value, "label": self.label}

    @classmethod
    def from_dict(cls, data):
        return cls(value=data["value"], label=data["label"])


@dataclass(frozen=True)
class _DriftingRecord:
    """A record whose from_dict silently drops a field (serialisation drift)."""

    value: float
    label: str

    def as_dict(self):
        return {"value": self.value}  # label falls out of checkpoints

    @classmethod
    def from_dict(cls, data):
        return cls(value=data["value"], label="")


def _inject_record(cls, name):
    """Make ``cls`` discoverable by the record walk, as ``repro.lint.contracts.<name>``."""
    cls.__module__ = "repro.lint.contracts"
    cls.__qualname__ = name
    setattr(contracts, name, cls)


def _eject_record(cls, name):
    delattr(contracts, name)
    contracts._SAMPLE_FACTORIES.pop(f"repro.lint.contracts.{name}", None)


class TestLibraryIsClean:
    def test_registry_audit_passes_on_the_real_registries(self):
        assert audit_registry_contracts() == []

    def test_record_audit_passes_on_the_real_records(self):
        assert audit_record_contracts() == []

    def test_full_audit_is_clean(self):
        assert run_contract_audit() == []


class TestSeededRegressions:
    def test_address_repr_scenario_is_flagged(self):
        catalog._REGISTRY["lint-test-bad-repr"] = _AddressReprScenario()
        try:
            violations = audit_registry_contracts()
        finally:
            del catalog._REGISTRY["lint-test-bad-repr"]
        flagged = [v for v in violations if "lint-test-bad-repr" in v.path]
        assert any(v.rule == "contract-repr" for v in flagged)
        assert any("memory address" in v.message for v in flagged)

    def test_unpicklable_scenario_is_flagged(self):
        class LocalScenario:  # not importable by module.qualname
            name = "lint-test-unpicklable"

            def __repr__(self):
                return "LocalScenario()"

        catalog._REGISTRY["lint-test-unpicklable"] = LocalScenario()
        try:
            violations = audit_registry_contracts()
        finally:
            del catalog._REGISTRY["lint-test-unpicklable"]
        flagged = [v for v in violations if "lint-test-unpicklable" in v.path]
        assert [v.rule for v in flagged] == ["contract-pickle"]

    def test_dangling_pipeline_alias_is_flagged(self):
        METHOD_ALIASES["lint-test-alias"] = "no-such-pipeline"
        try:
            violations = audit_registry_contracts()
        finally:
            del METHOD_ALIASES["lint-test-alias"]
        flagged = [v for v in violations if v.rule == "contract-registry"]
        assert any("no-such-pipeline" in v.message for v in flagged)

    def test_record_without_sample_is_flagged(self):
        _inject_record(_GoodRecord, "LintTestOrphanRecord")
        try:
            violations = audit_record_contracts()
        finally:
            _eject_record(_GoodRecord, "LintTestOrphanRecord")
        flagged = [v for v in violations if "LintTestOrphanRecord" in v.path]
        assert [v.rule for v in flagged] == ["contract-roundtrip"]
        assert "no contract sample" in flagged[0].message

    def test_registered_sample_closes_the_audit(self):
        _inject_record(_GoodRecord, "LintTestGoodRecord")
        register_contract_sample(_GoodRecord, lambda: _GoodRecord(0.5, "ok"))
        try:
            violations = audit_record_contracts()
        finally:
            _eject_record(_GoodRecord, "LintTestGoodRecord")
        assert [v for v in violations if "LintTestGoodRecord" in v.path] == []

    def test_serialisation_drift_is_flagged(self):
        _inject_record(_DriftingRecord, "LintTestDriftRecord")
        register_contract_sample(
            _DriftingRecord, lambda: _DriftingRecord(0.5, "label-that-drifts")
        )
        try:
            violations = audit_record_contracts()
        finally:
            _eject_record(_DriftingRecord, "LintTestDriftRecord")
        flagged = [v for v in violations if "LintTestDriftRecord" in v.path]
        assert {v.rule for v in flagged} == {"contract-roundtrip"}
        messages = " ".join(v.message for v in flagged)
        assert "does not reconstruct an equal object" in messages
        assert "omits field(s) label" in messages


class TestFaultRegistryAudit:
    """The fault registry is walked like the other three."""

    def test_empty_fault_condition_is_flagged(self):
        from repro.faults import registry as fault_registry

        fault_registry._REGISTRY["lint-test-empty-fault"] = ()
        try:
            violations = audit_registry_contracts()
        finally:
            del fault_registry._REGISTRY["lint-test-empty-fault"]
        flagged = [v for v in violations if "lint-test-empty-fault" in v.path]
        assert [v.rule for v in flagged] == ["contract-registry"]
        assert "no models" in flagged[0].message

    def test_address_repr_fault_model_is_flagged(self):
        from repro.faults import registry as fault_registry

        class _AddressReprFault:
            scope = "probe"

        fault_registry._REGISTRY["lint-test-bad-fault"] = (_AddressReprFault(),)
        try:
            violations = audit_registry_contracts()
        finally:
            del fault_registry._REGISTRY["lint-test-bad-fault"]
        flagged = [v for v in violations if "lint-test-bad-fault" in v.path]
        assert any(v.rule == "contract-repr" for v in flagged)
        # Defined locally, so the pickle contract trips too.
        assert any(v.rule == "contract-pickle" for v in flagged)
