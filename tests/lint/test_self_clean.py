"""The acceptance criterion as a test: the library lints clean, strictly.

Runs the full lint (AST rules + contract audit) over ``src/repro`` in
strict mode with no baseline — exactly the CI gate.  Every violation in
the tree has been fixed or carries a justified inline pragma; a change
that regresses any invariant fails here before it fails in CI.
"""

from pathlib import Path

import repro
from repro.lint.engine import run_lint


def test_library_is_strict_lint_clean_with_empty_baseline():
    report = run_lint(Path(repro.__file__).parent, strict=True)
    assert report.violations == (), "\n" + "\n".join(
        violation.format() for violation in report.violations
    )
    assert report.exit_code == 0
    # The suppression budget is explicit: every pragma carries a
    # justification (strict mode enforces it), and the count only moves
    # when someone deliberately sanctions a new wall-clock/NaN site.
    # 12th site: the resource-tracker bootstrap in execution/shm.py, whose
    # only failure mode is "platform has no tracker" and whose fallback is
    # the still-correct pickle path.  Sites 13-15: the cluster affinity
    # proxy in cluster/backend.py, where a missing duck-typed job field
    # degrades scheduler placement but can never mislabel a result.
    assert len(report.suppressed) == 15
