"""``python -m repro.lint`` CLI: exit codes, JSON report, baselines."""

import json
from pathlib import Path

from repro.lint.cli import USAGE_ERROR, main
from repro.lint.rules import (
    EXIT_NAN_RECORD,
    EXIT_PRAGMA,
    EXIT_RNG,
    EXIT_SILENT_FALLBACK,
    EXIT_STRICT_JSON,
    EXIT_WALL_CLOCK,
)

FIXTURES = Path(__file__).parent / "fixtures"

CORPUS_EXIT = (
    EXIT_RNG
    | EXIT_WALL_CLOCK
    | EXIT_SILENT_FALLBACK
    | EXIT_STRICT_JSON
    | EXIT_NAN_RECORD
    | EXIT_PRAGMA
)


class TestExitCodes:
    def test_corpus_ors_one_bit_per_rule_class(self):
        assert main([str(FIXTURES), "--no-contracts"]) == CORPUS_EXIT

    def test_single_file_reports_only_its_class(self):
        code = main([str(FIXTURES / "strict_json_trigger.py"), "--no-contracts"])
        assert code == EXIT_STRICT_JSON

    def test_clean_file_exits_zero(self, capsys):
        code = main([str(FIXTURES / "rng_clean.py"), "--no-contracts"])
        assert code == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_unknown_rule_is_a_usage_error(self, capsys):
        code = main([str(FIXTURES), "--rules", "no-such-rule", "--no-contracts"])
        assert code == USAGE_ERROR
        assert "unknown lint rule" in capsys.readouterr().err

    def test_missing_root_is_a_usage_error(self, tmp_path):
        assert main([str(tmp_path / "nowhere"), "--no-contracts"]) == USAGE_ERROR

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "wall-clock" in out
        assert "strict-json" in out


class TestJsonReport:
    def test_shape_and_strictness(self, capsys):
        code = main([str(FIXTURES), "--no-contracts", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == code == CORPUS_EXIT
        assert payload["n_files"] > 0
        assert set(payload["counts"]) >= {"rng-global-state", "strict-json"}
        first = payload["violations"][0]
        assert set(first) == {"path", "line", "rule", "message", "snippet"}


class TestBaselineFlow:
    def test_write_then_adopt_then_burn_down(self, tmp_path, capsys):
        baseline = tmp_path / "lint-baseline.json"
        assert (
            main([str(FIXTURES), "--no-contracts", "--write-baseline", str(baseline)])
            == 0
        )
        capsys.readouterr()
        # Adopting today's debt makes the same tree pass...
        assert (
            main([str(FIXTURES), "--no-contracts", "--baseline", str(baseline)]) == 0
        )
        # ...but a clean tree against the stale baseline fails strict mode.
        code = main(
            [
                str(FIXTURES / "rng_clean.py"),
                "--no-contracts",
                "--baseline",
                str(baseline),
                "--strict",
            ]
        )
        assert code == EXIT_PRAGMA
        assert "stale baseline" in capsys.readouterr().out

    def test_unreadable_baseline_is_a_usage_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code = main([str(FIXTURES), "--no-contracts", "--baseline", str(bad)])
        assert code == USAGE_ERROR
