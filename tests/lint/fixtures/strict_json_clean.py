"""No-trigger corpus: strict JSON serialisation."""

import json


def sample(payload, handle):
    text = json.dumps(payload, allow_nan=False)
    json.dump(payload, handle, indent=2, allow_nan=False)
    return json.loads(text)
