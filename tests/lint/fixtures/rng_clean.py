"""No-trigger corpus: seed-explicit randomness through the sanctioned APIs."""

import numpy as np


def sample(seed):
    rng = np.random.default_rng(seed)
    seq = np.random.SeedSequence(1234)
    child = np.random.default_rng(seq.spawn(1)[0])
    gen = np.random.Generator(np.random.PCG64(7))
    return rng.normal(), child.random(), gen.integers(0, 4)
