"""Trigger corpus: every form of hidden-global-state randomness."""

import random

import numpy as np
from random import gauss


def sample():
    a = np.random.normal(0.0, 1.0, size=8)
    b = np.random.rand(3)
    c = random.random()
    d = random.randint(0, 7)
    return a, b, c, d, gauss(0.0, 1.0)
