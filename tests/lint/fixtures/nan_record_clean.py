"""No-trigger corpus: non-finite floats in non-record positions.

A bare ``float("nan")`` return (an aggregate statistic) and a lowercase
callee (not a record constructor) are both fine without pragmas.
"""


def undefined_statistic():
    return float("nan")


def helper(error=0.0):
    return error


def sample():
    return helper(error=float("nan"))
