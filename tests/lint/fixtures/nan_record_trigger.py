"""Trigger corpus: non-finite literals flowing into record constructors."""

from dataclasses import dataclass


@dataclass
class SampleRecord:
    error: float
    label: str = ""


def direct():
    return SampleRecord(error=float("nan"))


def via_name():
    worst_error = float("inf")
    return SampleRecord(error=worst_error)
