"""Trigger corpus: wall-clock reads inside a clocked package (``core/``)."""

import datetime
import time
from time import monotonic, perf_counter


def sample():
    a = time.time()
    b = time.perf_counter()
    time.sleep(0.0)
    c = datetime.datetime.now()
    d = datetime.date.today()
    return a, b, c, d, monotonic(), perf_counter()
