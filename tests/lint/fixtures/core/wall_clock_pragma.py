"""No-trigger corpus: a telemetry timer with a justified pragma."""

import time


def sample():
    started = time.perf_counter()  # repro: allow[wall-clock] -- telemetry-only duration; results never read it
    return time.perf_counter() - started  # repro: allow[wall-clock] -- telemetry-only duration; results never read it
