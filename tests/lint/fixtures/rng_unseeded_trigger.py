"""Trigger corpus: ``default_rng()`` drawing hidden OS entropy."""

import numpy as np
from numpy.random import default_rng


def sample():
    a = np.random.default_rng()
    b = default_rng()
    return a, b
