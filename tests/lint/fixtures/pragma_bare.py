"""Corpus: a real violation suppressed by a justification-less pragma.

Default mode: suppressed, clean.  Strict mode: the bare pragma itself is
reported as ``pragma-hygiene``.
"""

import json


def sample(payload):
    return json.dumps(payload)  # repro: allow[strict-json]
