"""No-trigger corpus: loud lookups and legitimate empty-default idioms."""


def sample(metadata, config):
    entries = metadata.get("entries", ())
    label = metadata.get("label", None)
    try:
        method = config["method"]
    except KeyError:
        raise ValueError("config must name its extraction method") from None
    return entries, label, method
