"""Trigger corpus: JSON serialisation that can emit NaN/Infinity tokens."""

import json


def sample(payload, handle):
    text = json.dumps(payload)
    json.dump(payload, handle, indent=2)
    return text
