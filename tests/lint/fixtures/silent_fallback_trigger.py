"""Trigger corpus: quietly substituted defaults and swallowed failures."""


def sample(metadata, config):
    try:
        gates = metadata.get("gate_names", ("P1", "P2"))
    except:  # noqa: E722
        gates = ("P1", "P2")
    try:
        method = config.get("method", "fast-extraction")
    except Exception:
        pass
    backend = getattr(config, "backend_name", "serial")
    corners = getattr(config, "corners", (0.0, 1.0))
    return gates, method, backend, corners
