"""Corpus: a pragma naming a rule that does not exist.

Reported as ``pragma-hygiene`` in every mode — a typo'd pragma silently
disables nothing, so it must fail loudly.
"""


def sample():
    return 1  # repro: allow[wall-clcok] -- typo'd rule name
