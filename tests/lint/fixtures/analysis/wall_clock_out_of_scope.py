"""No-trigger corpus: wall-clock reads outside the clocked packages.

The ``wall-clock`` rule is scoped to physics/instrument/pipeline/core;
reporting and campaign layers may time themselves freely.
"""

import time


def sample():
    return time.perf_counter()
