"""Tests for the synthetic benchmark configuration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import NoiseRecipe, SyntheticCSDConfig
from repro.exceptions import DatasetError
from repro.physics.noise import CompositeNoise


class TestNoiseRecipe:
    def test_build_composes_components(self):
        recipe = NoiseRecipe(
            white_sigma_na=0.01,
            pink_sigma_na=0.02,
            telegraph_amplitude_na=0.05,
            drift_na=0.01,
        )
        model = recipe.build()
        assert isinstance(model, CompositeNoise)
        assert len(model.components) == 4

    def test_zero_recipe_still_builds(self):
        model = NoiseRecipe(
            white_sigma_na=0.0, pink_sigma_na=0.0, telegraph_amplitude_na=0.0, drift_na=0.0
        ).build()
        field = model.sample_grid((8, 8), np.random.default_rng(0))
        assert np.all(field == 0)


class TestSyntheticCSDConfig:
    def test_build_device_uses_parameters(self, small_benchmark_config):
        device = small_benchmark_config.build_device()
        assert device.name == "test-benchmark"
        alpha_12, alpha_21 = device.ground_truth_alphas(0, 1, "P1", "P2")
        assert alpha_12 > 0 and alpha_21 > 0

    def test_build_csd_shape_and_metadata(self, small_benchmark_config):
        csd = small_benchmark_config.build_csd()
        assert csd.shape == (48, 48)
        assert csd.metadata["name"] == "test-benchmark"
        assert csd.metadata["seed"] == 11
        assert csd.geometry is not None

    def test_build_is_deterministic(self, small_benchmark_config):
        a = small_benchmark_config.build_csd()
        b = small_benchmark_config.build_csd()
        assert np.array_equal(a.data, b.data)

    def test_different_seeds_differ(self):
        base = dict(name="x", resolution=32, cross_coupling=(0.2, 0.2))
        a = SyntheticCSDConfig(seed=1, **base).build_csd()
        b = SyntheticCSDConfig(seed=2, **base).build_csd()
        assert not np.array_equal(a.data, b.data)

    def test_invalid_resolution(self):
        with pytest.raises(DatasetError):
            SyntheticCSDConfig(name="x", resolution=4)

    def test_invalid_window_span(self):
        with pytest.raises(DatasetError):
            SyntheticCSDConfig(name="x", resolution=32, window_span_fraction=2.0)
