"""Tests for CSD serialisation round trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_csd, load_suite_from, save_csd, save_suite
from repro.exceptions import DatasetError


class TestSingleFileRoundTrip:
    def test_round_trip_preserves_everything(self, clean_csd, tmp_path):
        path = save_csd(clean_csd, tmp_path / "csd.npz")
        loaded = load_csd(path)
        assert np.array_equal(loaded.data, clean_csd.data)
        assert np.array_equal(loaded.x_voltages, clean_csd.x_voltages)
        assert np.array_equal(loaded.y_voltages, clean_csd.y_voltages)
        assert loaded.gate_x == clean_csd.gate_x
        assert loaded.gate_y == clean_csd.gate_y
        assert loaded.geometry is not None
        assert loaded.geometry.alpha_12 == pytest.approx(clean_csd.geometry.alpha_12)
        assert np.array_equal(loaded.occupations, clean_csd.occupations)
        assert loaded.metadata["device"] == clean_csd.metadata["device"]

    def test_creates_parent_directories(self, clean_csd, tmp_path):
        path = save_csd(clean_csd, tmp_path / "nested" / "dir" / "csd.npz")
        assert path.exists()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            load_csd(tmp_path / "does-not-exist.npz")


class TestSuiteRoundTrip:
    def test_save_and_load_suite(self, clean_csd, noisy_csd, tmp_path):
        paths = save_suite([clean_csd, noisy_csd], tmp_path / "suite")
        assert len(paths) == 2
        assert paths[0].name == "benchmark_01.npz"
        loaded = load_suite_from(tmp_path / "suite")
        assert len(loaded) == 2
        assert np.array_equal(loaded[0].data, clean_csd.data)
        assert np.array_equal(loaded[1].data, noisy_csd.data)

    def test_empty_directory_raises(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(DatasetError):
            load_suite_from(tmp_path / "empty")

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            load_suite_from(tmp_path / "nope")
