"""Tests for the qflow-like twelve-benchmark suite."""

from __future__ import annotations

import pytest

from repro.datasets import (
    EXPECTED_BASELINE_ONLY_FAILURE,
    EXPECTED_HARD_FAILURES,
    QFLOW_BENCHMARKS,
    TABLE1_RESOLUTIONS,
    benchmark_config,
    load_benchmark,
    n_benchmarks,
)
from repro.exceptions import DatasetError


class TestSuiteStructure:
    def test_twelve_benchmarks(self):
        assert n_benchmarks() == 12
        assert len(QFLOW_BENCHMARKS) == 12
        assert len(TABLE1_RESOLUTIONS) == 12

    def test_resolutions_match_table1(self):
        for config, resolution in zip(QFLOW_BENCHMARKS, TABLE1_RESOLUTIONS):
            assert config.resolution == resolution

    def test_table1_size_multiset(self):
        # Table 1: two failing 200s, three 63s, six 100s, one more 200.
        assert sorted(TABLE1_RESOLUTIONS) == sorted([200, 200, 63, 63, 63, 100, 100, 100, 100, 100, 100, 200])

    def test_unique_names_and_seeds(self):
        names = [config.name for config in QFLOW_BENCHMARKS]
        seeds = [config.seed for config in QFLOW_BENCHMARKS]
        assert len(set(names)) == 12
        assert len(set(seeds)) == 12

    def test_expected_failures_are_annotated(self):
        assert EXPECTED_HARD_FAILURES == (1, 2)
        assert EXPECTED_BASELINE_ONLY_FAILURE == 7
        for index in EXPECTED_HARD_FAILURES:
            config = benchmark_config(index)
            # The pathological benchmarks carry much more noise than the rest.
            assert config.noise.white_sigma_na > 5 * benchmark_config(3).noise.white_sigma_na

    def test_benchmark_config_bounds(self):
        with pytest.raises(DatasetError):
            benchmark_config(0)
        with pytest.raises(DatasetError):
            benchmark_config(13)


class TestBenchmarkGeneration:
    def test_small_benchmark_loads_with_table1_size(self):
        csd = load_benchmark(3)
        assert csd.shape == (63, 63)
        assert csd.geometry is not None
        assert csd.metadata["name"] == "qflow-like-03"

    def test_cache_returns_same_object(self):
        assert load_benchmark(3) is load_benchmark(3)

    def test_benchmark_contains_all_four_regions(self):
        csd = load_benchmark(4)
        occupations = csd.occupations
        states = {
            tuple(occupations[r, c])
            for r in range(0, csd.shape[0], 3)
            for c in range(0, csd.shape[1], 3)
        }
        assert {(0, 0), (0, 1), (1, 0), (1, 1)}.issubset(states)

    def test_ground_truth_alphas_in_physical_range(self):
        for index in (3, 4, 5):
            geometry = load_benchmark(index).geometry
            assert geometry is not None
            assert 0.0 < geometry.alpha_12 < 1.0
            assert 0.0 < geometry.alpha_21 < 1.0
