"""Tests for the from-scratch Hough line transform."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baseline import HoughConfig, HoughLine, HoughTransform
from repro.exceptions import BaselineError


def edge_map_from_line(slope: float, intercept_row: float, size: int = 60) -> np.ndarray:
    """Boolean edge map containing the line row = intercept + slope * col."""
    edges = np.zeros((size, size), dtype=bool)
    for col in range(size):
        row = int(round(intercept_row + slope * col))
        if 0 <= row < size:
            edges[row, col] = True
    return edges


class TestHoughLine:
    def test_slope_from_theta(self):
        # Normal at 45 degrees -> line slope -1.
        line = HoughLine(rho=10.0, theta_rad=np.deg2rad(45.0), votes=100)
        assert line.slope_pixels == pytest.approx(-1.0)

    def test_vertical_line(self):
        line = HoughLine(rho=10.0, theta_rad=0.0, votes=100)
        assert np.isinf(line.slope_pixels)

    def test_voltage_slope_rescaling(self):
        line = HoughLine(rho=0.0, theta_rad=np.deg2rad(45.0), votes=1)
        assert line.slope_voltage(x_step=0.001, y_step=0.002) == pytest.approx(-2.0)

    def test_theta_deg(self):
        line = HoughLine(rho=0.0, theta_rad=np.deg2rad(30.0), votes=1)
        assert line.theta_deg == pytest.approx(30.0)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"theta_resolution_deg": 0.0},
            {"rho_resolution_pixels": -1.0},
            {"n_peaks": 0},
            {"min_votes_fraction": 0.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(BaselineError):
            HoughConfig(**kwargs)


class TestTransform:
    def test_recovers_single_line_slope(self):
        edges = edge_map_from_line(slope=-0.5, intercept_row=40)
        lines = HoughTransform().find_lines(edges)
        assert lines
        best = lines[0]
        assert best.slope_pixels == pytest.approx(-0.5, abs=0.06)

    def test_recovers_steep_line(self):
        # Steep negative slope: build by iterating rows for coverage.
        size = 60
        edges = np.zeros((size, size), dtype=bool)
        for row in range(size):
            col = int(round(45 - row / 2.5))
            if 0 <= col < size:
                edges[row, col] = True
        lines = HoughTransform().find_lines(edges)
        assert lines
        assert lines[0].slope_pixels == pytest.approx(-2.5, rel=0.1)

    def test_two_lines_recovered(self):
        edges = edge_map_from_line(-0.4, 50) | edge_map_from_line(-3.0, 170)
        lines = HoughTransform(HoughConfig(n_peaks=4, min_votes_fraction=0.2)).find_lines(edges)
        slopes = sorted(line.slope_pixels for line in lines[:2])
        assert slopes[0] == pytest.approx(-3.0, rel=0.2)
        assert slopes[1] == pytest.approx(-0.4, abs=0.1)

    def test_empty_edge_map(self):
        assert HoughTransform().find_lines(np.zeros((30, 30), dtype=bool)) == []

    def test_accumulator_shape(self):
        transform = HoughTransform(HoughConfig(theta_resolution_deg=1.0))
        accumulator, thetas, rhos = transform.accumulate(np.zeros((20, 20), dtype=bool))
        assert thetas.size == 180
        assert accumulator.shape == (rhos.size, thetas.size)

    def test_votes_equal_pixel_count_for_perfect_line(self):
        edges = edge_map_from_line(0.0, 25)  # horizontal line, 60 pixels
        lines = HoughTransform().find_lines(edges)
        assert lines[0].votes >= 55

    def test_rejects_non_2d(self):
        with pytest.raises(BaselineError):
            HoughTransform().accumulate(np.zeros(10, dtype=bool))
