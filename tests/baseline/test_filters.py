"""Tests for the numpy image-filter primitives of the baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baseline import (
    SOBEL_X,
    SOBEL_Y,
    convolve2d,
    correlate2d,
    gaussian_blur,
    gaussian_kernel_1d,
    normalize_image,
    sobel_gradients,
)
from repro.exceptions import BaselineError


class TestGaussianKernel:
    def test_normalised(self):
        kernel = gaussian_kernel_1d(1.5)
        assert kernel.sum() == pytest.approx(1.0)
        assert kernel.size % 2 == 1

    def test_symmetric(self):
        kernel = gaussian_kernel_1d(2.0)
        assert np.allclose(kernel, kernel[::-1])

    def test_invalid_sigma(self):
        with pytest.raises(BaselineError):
            gaussian_kernel_1d(0.0)


class TestGaussianBlur:
    def test_preserves_constant_image(self):
        image = np.full((20, 30), 3.7)
        assert np.allclose(gaussian_blur(image, 2.0), image)

    def test_preserves_mean(self):
        rng = np.random.default_rng(0)
        image = rng.uniform(size=(40, 40))
        blurred = gaussian_blur(image, 1.5)
        assert blurred.mean() == pytest.approx(image.mean(), rel=0.02)

    def test_reduces_variance(self):
        rng = np.random.default_rng(0)
        image = rng.uniform(size=(40, 40))
        assert gaussian_blur(image, 2.0).var() < image.var()

    def test_zero_sigma_is_identity(self):
        image = np.random.default_rng(1).uniform(size=(10, 10))
        assert np.array_equal(gaussian_blur(image, 0.0), image)

    def test_rejects_non_2d(self):
        with pytest.raises(BaselineError):
            gaussian_blur(np.zeros(5), 1.0)


class TestConvolve2d:
    def test_identity_kernel(self):
        image = np.random.default_rng(2).uniform(size=(15, 15))
        kernel = np.zeros((3, 3))
        kernel[1, 1] = 1.0
        assert np.allclose(convolve2d(image, kernel), image)

    def test_convolution_and_correlation_shift_opposite_ways(self):
        # A kernel with its weight at the top-left corner shifts a delta one
        # way under correlation and the opposite way under convolution.
        image = np.zeros((5, 5))
        image[2, 2] = 1.0
        kernel = np.zeros((3, 3))
        kernel[0, 0] = 1.0
        assert convolve2d(image, kernel)[1, 1] == pytest.approx(1.0)
        assert correlate2d(image, kernel)[3, 3] == pytest.approx(1.0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(BaselineError):
            convolve2d(np.zeros(4), np.zeros((3, 3)))
        with pytest.raises(BaselineError):
            correlate2d(np.zeros((4, 4)), np.zeros(3))


class TestSobel:
    def test_vertical_edge_detected_by_gx(self):
        image = np.zeros((20, 20))
        image[:, 10:] = 1.0
        gx, gy, magnitude, _ = sobel_gradients(image)
        assert np.abs(gx).max() > 1.0
        # Away from the edge column, gy stays zero.
        assert np.abs(gy[:, :8]).max() == pytest.approx(0.0)
        assert magnitude[5, 10] > magnitude[5, 2]

    def test_horizontal_edge_detected_by_gy(self):
        image = np.zeros((20, 20))
        image[10:, :] = 1.0
        gx, gy, _, direction = sobel_gradients(image)
        assert np.abs(gy).max() > 1.0
        # Gradient direction at the edge is along +y.
        row, col = 9, 10
        assert abs(direction[row, col] - np.pi / 2) < 0.3

    def test_kernels_are_classic_sobel(self):
        assert SOBEL_X.shape == (3, 3)
        assert SOBEL_Y.shape == (3, 3)
        assert np.array_equal(SOBEL_X, SOBEL_Y.T)


class TestNormalize:
    def test_full_range(self):
        image = np.array([[1.0, 3.0], [2.0, 5.0]])
        normalized = normalize_image(image)
        assert normalized.min() == 0.0
        assert normalized.max() == 1.0

    def test_constant_image(self):
        assert np.all(normalize_image(np.full((4, 4), 2.0)) == 0.0)
