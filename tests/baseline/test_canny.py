"""Tests for the from-scratch Canny edge detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baseline import CannyConfig, CannyEdgeDetector
from repro.exceptions import BaselineError


def step_image(size: int = 40, col: int = 20) -> np.ndarray:
    image = np.zeros((size, size))
    image[:, col:] = 1.0
    return image


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sigma": 0.0},
            {"low_threshold_fraction": 0.0},
            {"high_threshold_fraction": 1.5},
            {"low_threshold_fraction": 0.5, "high_threshold_fraction": 0.3},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(BaselineError):
            CannyConfig(**kwargs)


class TestDetection:
    def test_vertical_edge_found_as_thin_line(self):
        edges = CannyEdgeDetector().detect(step_image())
        edge_cols = np.nonzero(edges.any(axis=0))[0]
        # The edge is localised around the step column...
        assert edge_cols.size > 0
        assert abs(edge_cols.mean() - 20) < 2.5
        # ...and is thin thanks to non-maximum suppression.
        assert edges.sum(axis=1).max() <= 3

    def test_diagonal_edge_found(self):
        size = 50
        image = np.fromfunction(lambda r, c: (c + r < size).astype(float), (size, size))
        edges = CannyEdgeDetector().detect(image)
        rows, cols = np.nonzero(edges)
        assert rows.size > 20
        # Edge pixels lie near the anti-diagonal.
        assert np.abs(rows + cols - size).mean() < 3.0

    def test_flat_image_has_no_edges(self):
        edges = CannyEdgeDetector().detect(np.full((30, 30), 0.5))
        assert edges.sum() == 0

    def test_noise_below_threshold_ignored(self):
        rng = np.random.default_rng(0)
        image = step_image() + rng.normal(0, 0.02, size=(40, 40))
        edges = CannyEdgeDetector().detect(image)
        edge_cols = np.nonzero(edges.any(axis=0))[0]
        assert abs(edge_cols.mean() - 20) < 3.0

    def test_detects_transition_lines_of_csd(self, clean_csd):
        edges = CannyEdgeDetector().detect(clean_csd.data)
        assert edges.sum() > 30
        # The charge transitions are the only sharp features, so edge pixels
        # should be a small fraction of the diagram.
        assert edges.mean() < 0.15


class TestStages:
    def test_double_threshold_partition(self):
        detector = CannyEdgeDetector(CannyConfig(low_threshold_fraction=0.2, high_threshold_fraction=0.6))
        suppressed = np.array([[0.0, 0.1, 0.5, 1.0]])
        strong, weak = detector.double_threshold(suppressed)
        assert strong.tolist() == [[False, False, False, True]]
        assert weak.tolist() == [[False, False, True, False]]

    def test_hysteresis_promotes_connected_weak_pixels(self):
        strong = np.zeros((5, 5), dtype=bool)
        weak = np.zeros((5, 5), dtype=bool)
        strong[2, 1] = True
        weak[2, 2] = True  # adjacent to strong -> promoted
        weak[0, 4] = True  # isolated -> dropped
        edges = CannyEdgeDetector.hysteresis(strong, weak)
        assert edges[2, 1] and edges[2, 2]
        assert not edges[0, 4]

    def test_non_maximum_suppression_thins_ramp(self):
        magnitude = np.tile(np.array([0.0, 1.0, 2.0, 1.0, 0.0]), (5, 1))
        direction = np.zeros((5, 5))  # gradient along x
        suppressed = CannyEdgeDetector.non_maximum_suppression(magnitude, direction)
        assert np.all(suppressed[:, 2] == 2.0)
        assert np.all(suppressed[:, 1] == 0.0)
        assert np.all(suppressed[:, 3] == 0.0)
