"""End-to-end tests of the Canny + Hough baseline extractor."""

from __future__ import annotations

import pytest

from repro.baseline import BaselineConfig, HoughBaselineExtractor
from repro.exceptions import BaselineError
from repro.instrument import ExperimentSession
from repro.physics import CSDSimulator, WhiteNoise


class TestOnCleanData:
    def test_recovers_ground_truth_alphas(self, clean_csd, clean_session):
        result = HoughBaselineExtractor().extract(clean_session)
        assert result.success
        geometry = clean_csd.geometry
        assert result.matrix.alpha_12 == pytest.approx(geometry.alpha_12, abs=0.08)
        assert result.matrix.alpha_21 == pytest.approx(geometry.alpha_21, abs=0.08)

    def test_probes_every_pixel(self, clean_csd, clean_session):
        result = HoughBaselineExtractor().extract(clean_session)
        assert result.probe_stats.n_probes == clean_csd.n_pixels
        assert result.probe_stats.probe_fraction == pytest.approx(1.0)
        assert result.probe_stats.elapsed_s == pytest.approx(0.05 * clean_csd.n_pixels)

    def test_method_name_and_metadata(self, clean_session):
        result = HoughBaselineExtractor().extract(clean_session)
        assert result.method == "hough-baseline"
        assert result.metadata["n_edge_pixels"] > 0
        assert result.metadata["n_hough_lines"] >= 2

    def test_gate_names_propagate(self, clean_session):
        result = HoughBaselineExtractor().extract(clean_session)
        assert result.matrix.gate_x == "P1"
        assert result.matrix.gate_y == "P2"


class TestOnNoisyData:
    def test_succeeds_with_lab_noise(self, noisy_csd, noisy_session):
        result = HoughBaselineExtractor().extract(noisy_session)
        assert result.success
        geometry = noisy_csd.geometry
        assert result.matrix.alpha_12 == pytest.approx(geometry.alpha_12, abs=0.10)

    def test_fails_gracefully_on_extreme_noise(self, double_dot_device):
        csd = CSDSimulator(double_dot_device).simulate(48, noise=WhiteNoise(2.0), seed=4)
        session = ExperimentSession.from_csd(csd)
        result = HoughBaselineExtractor().extract(session)
        assert result.probe_stats.n_probes == csd.n_pixels
        if not result.success:
            assert result.failure_reason != ""

    def test_flat_image_reports_failure(self, double_dot_device):
        # A window far inside one charge region has no transition lines at all.
        simulator = CSDSimulator(double_dot_device)
        csd = simulator.simulate(
            48, window=((0.0, 0.004), (0.0, 0.004)), seed=1
        )
        session = ExperimentSession.from_csd(csd)
        result = HoughBaselineExtractor().extract(session)
        assert not result.success
        assert result.failure_reason != ""


class TestConfig:
    def test_invalid_theta_split(self):
        with pytest.raises(BaselineError):
            BaselineConfig(steep_theta_max_deg=95.0)

    def test_invalid_min_edge_pixels(self):
        with pytest.raises(BaselineError):
            BaselineConfig(min_edge_pixels=0)

    def test_stricter_alpha_bound_can_reject(self, clean_session):
        config = BaselineConfig(max_alpha=1e-6)
        result = HoughBaselineExtractor(config).extract(clean_session)
        assert not result.success
