"""Tests for the campaign engine, worker, and aggregated results."""

from __future__ import annotations

import pytest

from repro.analysis import SuccessCriterion
from repro.campaign import (
    CampaignGrid,
    DeviceSpec,
    TuningCampaign,
    classify_failure,
    run_campaign_job,
)
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def small_grid() -> CampaignGrid:
    return CampaignGrid(
        devices=(
            DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)),
            DeviceSpec.of("linear_array", n_dots=3),
        ),
        resolutions=(63,),
        noise_scales=(0.0, 1.0),
        methods=("fast",),
        n_repeats=1,
        seed=11,
    )


@pytest.fixture(scope="module")
def sequential_result(small_grid):
    return TuningCampaign(small_grid, n_workers=1).run()


class TestTuningCampaign:
    def test_runs_every_job_in_order(self, small_grid, sequential_result):
        assert sequential_result.n_jobs == small_grid.n_jobs
        assert [r.job_id for r in sequential_result.records] == list(
            range(small_grid.n_jobs)
        )

    def test_clean_jobs_succeed(self, sequential_result):
        noise_free = sequential_result.records_for(noise_scale=0.0)
        assert noise_free and all(r.success for r in noise_free)
        assert sequential_result.success_rate > 0.5

    def test_parallel_matches_sequential_bit_for_bit(self, small_grid, sequential_result):
        parallel = TuningCampaign(small_grid, n_workers=2).run()
        for seq, par in zip(sequential_result.records, parallel.records):
            assert seq.job_id == par.job_id
            assert seq.success == par.success
            assert seq.alpha_12 == par.alpha_12
            assert seq.alpha_21 == par.alpha_21
            assert seq.n_probes == par.n_probes
            assert seq.sim_elapsed_s == par.sim_elapsed_s

    def test_accepts_pre_expanded_jobs(self, small_grid, sequential_result):
        jobs = small_grid.expand()
        rerun = TuningCampaign(jobs[:2], n_workers=1).run()
        assert rerun.n_jobs == 2
        assert rerun.records[0].alpha_12 == sequential_result.records[0].alpha_12

    def test_duplicate_job_ids_rejected(self, small_grid):
        job = small_grid.expand()[0]
        with pytest.raises(ConfigurationError):
            TuningCampaign([job, job])

    def test_invalid_worker_count_rejected(self, small_grid):
        with pytest.raises(ConfigurationError):
            TuningCampaign(small_grid, n_workers=0)

    def test_empty_campaign(self):
        result = TuningCampaign([]).run()
        assert result.n_jobs == 0
        assert result.success_rate != result.success_rate  # nan
        assert result.failure_taxonomy() == {}


class TestCampaignResult:
    def test_aggregates_match_records(self, sequential_result):
        assert sequential_result.total_probes == sum(
            r.n_probes for r in sequential_result.records
        )
        assert sequential_result.n_succeeded == sum(
            1 for r in sequential_result.records if r.success
        )
        taxonomy = sequential_result.failure_taxonomy()
        assert sum(taxonomy.values()) == len(sequential_result.failed_records())

    def test_filtering(self, sequential_result):
        fast = sequential_result.records_for(method="fast")
        assert len(fast) == sequential_result.n_jobs
        assert sequential_result.records_for(method="baseline") == ()

    def test_report_renders(self, sequential_result):
        report = sequential_result.format_report(max_rows=2)
        assert "Batch-tuning campaign" in report
        assert "Campaign summary" in report
        assert "more jobs" in report  # truncation marker
        summary = sequential_result.summary()
        assert summary["n_jobs"] == sequential_result.n_jobs
        assert summary["n_workers"] == 1


class TestWorker:
    def test_crashing_job_becomes_failed_record(self, small_grid):
        import dataclasses

        # A 1-pixel grid cannot even open a session; the worker converts the
        # raised MeasurementError into a failed record instead of propagating.
        job = dataclasses.replace(small_grid.expand()[0], resolution=1)
        record = run_campaign_job(job)
        assert not record.success
        assert record.failure_category == "crash"
        assert "MeasurementError" in record.failure_reason

    def test_criterion_is_honoured(self, small_grid):
        job = small_grid.expand()[0]
        strict = run_campaign_job(
            job, criterion=SuccessCriterion(max_alpha_abs_error=1e-12,
                                            max_alpha_rel_error=1e-12)
        )
        lax = run_campaign_job(job)
        assert lax.success
        assert not strict.success
        assert strict.failure_category == "truth-mismatch"

    def test_baseline_method_runs(self, small_grid):
        import dataclasses

        job = dataclasses.replace(small_grid.expand()[0], method="baseline")
        record = run_campaign_job(job)
        # The Hough baseline scans the full grid.
        assert record.n_probes == 63 * 63
        assert record.method == "baseline"


class TestClassifyFailure:
    def test_success(self):
        assert classify_failure("", True, True) == "ok"

    def test_truth_mismatch(self):
        assert classify_failure("", True, False) == "truth-mismatch"

    @pytest.mark.parametrize(
        "reason, category",
        [
            ("slope fit did not converge", "fit-divergence"),
            ("pipeline did not produce a fit", "no-fit"),
            ("fitted slopes must both be negative (device physics); got", "slope-sign"),
            ("fitted slopes are not finite", "non-finite-slopes"),
            ("steep slope magnitude 0.2 below the physical minimum", "slope-bounds"),
            ("alpha_12 = 1.9 outside [0, 1.5]", "alpha-range"),
            ("need at least 4 transition points to fit, got 2", "too-few-points"),
            ("no anchor found on the diagonal", "anchor-search"),
            ("probe budget of 100 points exhausted", "probe-budget"),
            ("something unheard of", "other"),
        ],
    )
    def test_taxonomy_rules(self, reason, category):
        assert classify_failure(reason, False, False) == category
