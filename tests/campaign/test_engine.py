"""Tests for the campaign engine, worker, and aggregated results."""

from __future__ import annotations

import pytest

from repro.analysis import SuccessCriterion
from repro.campaign import (
    CampaignGrid,
    DeviceSpec,
    TuningCampaign,
    classify_failure,
    run_campaign_job,
)
from repro.exceptions import ConfigurationError
from repro.execution import AsyncioBackend, SerialBackend

POISONED_JOB_ID = 1


def poisoned_job_runner(job, criterion=None, scenarios=None):
    """Module-level (picklable) runner that raises for one job id.

    Raising *outside* :func:`run_campaign_job` models infrastructure-level
    faults — the exception escapes the worker function itself, which with
    the old blocking ``pool.map`` aborted the campaign and discarded every
    completed record.
    """
    if job.job_id == POISONED_JOB_ID:
        raise RuntimeError("poisoned payload")
    return run_campaign_job(job, criterion=criterion, scenarios=scenarios)


@pytest.fixture(scope="module")
def small_grid() -> CampaignGrid:
    return CampaignGrid(
        devices=(
            DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)),
            DeviceSpec.of("linear_array", n_dots=3),
        ),
        resolutions=(63,),
        noise_scales=(0.0, 1.0),
        methods=("fast",),
        n_repeats=1,
        seed=11,
    )


@pytest.fixture(scope="module")
def sequential_result(small_grid):
    return TuningCampaign(small_grid, n_workers=1).run()


class TestTuningCampaign:
    def test_runs_every_job_in_order(self, small_grid, sequential_result):
        assert sequential_result.n_jobs == small_grid.n_jobs
        assert [r.job_id for r in sequential_result.records] == list(
            range(small_grid.n_jobs)
        )

    def test_clean_jobs_succeed(self, sequential_result):
        noise_free = sequential_result.records_for(noise_scale=0.0)
        assert noise_free and all(r.success for r in noise_free)
        assert sequential_result.success_rate > 0.5

    @pytest.mark.parametrize(
        "backend, n_workers",
        [
            ("serial", 1),
            ("process", 2),
            ("process", 3),
            ("asyncio", 2),
            ("asyncio", 4),
        ],
    )
    def test_backend_matrix_bit_identical(
        self, small_grid, sequential_result, backend, n_workers
    ):
        # The tentpole contract: every backend at every worker count
        # produces bit-identical records (everything but wall-clock time).
        result = TuningCampaign(small_grid, n_workers=n_workers, backend=backend).run()
        assert (
            result.normalized().records == sequential_result.normalized().records
        )

    def test_backend_instance_accepted(self, small_grid, sequential_result):
        result = TuningCampaign(
            small_grid, backend=AsyncioBackend(max_workers=3)
        ).run()
        assert result.normalized().records == sequential_result.normalized().records
        assert result.metadata["backend"] == "asyncio"
        # The result reports the workers the backend actually used, not the
        # constructor's n_workers default.
        assert result.n_workers == 3

    def test_unknown_backend_rejected(self, small_grid):
        with pytest.raises(ConfigurationError):
            TuningCampaign(small_grid, backend="teleport")

    def test_chunk_size_with_chunkless_backend_rejected(self, small_grid):
        # Silent no-ops hide tuning mistakes; only the process backend
        # chunks (the auto spec keeps the historical ignore-when-serial).
        with pytest.raises(ConfigurationError, match="chunk_size"):
            TuningCampaign(small_grid, backend="asyncio", chunk_size=4)
        with pytest.raises(ConfigurationError, match="chunk_size"):
            TuningCampaign(
                small_grid, backend=AsyncioBackend(max_workers=2), chunk_size=4
            )
        TuningCampaign(small_grid, backend="process", n_workers=2, chunk_size=4)
        TuningCampaign(small_grid, chunk_size=4)  # auto spec: historical

    def test_rerun_failures_without_checkpoint_rejected(self, small_grid):
        with pytest.raises(ConfigurationError, match="rerun_failures"):
            TuningCampaign(small_grid.expand()[:1]).run(rerun_failures=True)

    def test_accepts_pre_expanded_jobs(self, small_grid, sequential_result):
        jobs = small_grid.expand()
        rerun = TuningCampaign(jobs[:2], n_workers=1).run()
        assert rerun.n_jobs == 2
        assert rerun.records[0].alpha_12 == sequential_result.records[0].alpha_12

    def test_duplicate_job_ids_rejected(self, small_grid):
        job = small_grid.expand()[0]
        with pytest.raises(ConfigurationError):
            TuningCampaign([job, job])

    def test_invalid_worker_count_rejected(self, small_grid):
        with pytest.raises(ConfigurationError):
            TuningCampaign(small_grid, n_workers=0)

    def test_empty_campaign(self):
        result = TuningCampaign([]).run()
        assert result.n_jobs == 0
        assert result.success_rate != result.success_rate  # nan
        assert result.failure_taxonomy() == {}


class TestFaultIsolation:
    """A raising job yields a ``worker_error`` record, not a dead campaign."""

    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_poisoned_job_survives_as_worker_error_record(
        self, small_grid, sequential_result, n_workers
    ):
        # Regression: with the old blocking pool.map, the poisoned job's
        # exception aborted the whole campaign and discarded every
        # completed record.
        result = TuningCampaign(
            small_grid, n_workers=n_workers, job_runner=poisoned_job_runner
        ).run()
        assert result.n_jobs == small_grid.n_jobs
        poisoned = result.records[POISONED_JOB_ID]
        assert not poisoned.success
        assert poisoned.failure_category == "worker_error"
        assert "RuntimeError: poisoned payload" in poisoned.failure_reason
        assert "worker_error" in result.failure_taxonomy()
        # Every other record is untouched by the poison.
        for record, reference in zip(result.records, sequential_result.records):
            if record.job_id != POISONED_JOB_ID:
                assert record == dataclasses_replace_wall(record, reference)

    def test_retry_budget_reruns_before_conceding(self, small_grid):
        attempts = []

        def counting_runner(job, criterion=None, scenarios=None):
            attempts.append(job.job_id)
            raise RuntimeError("always down")

        result = TuningCampaign(
            small_grid.expand()[:2],
            retry=3,
            job_runner=counting_runner,
            backend=SerialBackend(),
        ).run()
        assert attempts == [0, 0, 0, 1, 1, 1]
        assert all(r.failure_category == "worker_error" for r in result.records)


def dataclasses_replace_wall(record, reference):
    """``reference`` with ``record``'s wall times, for whole-record equality.

    Wall clocks are the only nondeterministic record content: the job-level
    ``wall_elapsed_s`` and each stage-telemetry row's ``wall_s``.
    """
    import dataclasses

    return dataclasses.replace(
        reference,
        wall_elapsed_s=record.wall_elapsed_s,
        stage_telemetry=tuple(
            dataclasses.replace(telemetry, wall_s=mine.wall_s)
            for telemetry, mine in zip(
                reference.stage_telemetry, record.stage_telemetry
            )
        ),
    )


class TestProgressCallbacks:
    def test_progress_streams_once_per_job(self, small_grid):
        calls = []
        TuningCampaign(
            small_grid,
            progress=lambda done, total, record: calls.append((done, total, record.job_id)),
        ).run()
        assert [done for done, _, _ in calls] == list(range(1, small_grid.n_jobs + 1))
        assert all(total == small_grid.n_jobs for _, total, _ in calls)


class _InterruptAfter:
    """Progress hook that kills the campaign after ``n`` completed jobs."""

    def __init__(self, n: int) -> None:
        self.n = n

    def __call__(self, done, total, record) -> None:
        if done >= self.n:
            raise KeyboardInterrupt(f"simulated kill after {done} jobs")


class TestCheckpointResume:
    def test_interrupted_campaign_resumes_bit_identically(
        self, small_grid, sequential_result, tmp_path
    ):
        journal_path = tmp_path / "campaign.jsonl"
        interrupted = TuningCampaign(small_grid, progress=_InterruptAfter(3))
        with pytest.raises(KeyboardInterrupt):
            interrupted.run(checkpoint=journal_path)
        # The dead run journaled the fingerprint header plus a strict
        # prefix of the records...
        lines = journal_path.read_text().splitlines()
        assert len(lines) == 1 + 3
        # ... and a kill can also truncate the line being written; the
        # loader must survive that too.
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"job_id": 3, "record": {"job_id"')
        resumed = TuningCampaign(small_grid).resume(journal_path)
        # Bit-identical to the uninterrupted serial run: whole records,
        # the summary, and the rendered report (modulo wall-clock time).
        assert resumed.normalized() == sequential_result.normalized()
        assert resumed.normalized().summary() == sequential_result.normalized().summary()
        assert (
            resumed.normalized().format_report()
            == sequential_result.normalized().format_report()
        )

    def test_resume_skips_journaled_jobs(self, small_grid, tmp_path):
        journal_path = tmp_path / "campaign.jsonl"
        with pytest.raises(KeyboardInterrupt):
            TuningCampaign(small_grid, progress=_InterruptAfter(2)).run(
                checkpoint=journal_path
            )
        ran = []

        def spying_runner(job, criterion=None, scenarios=None):
            ran.append(job.job_id)
            return run_campaign_job(job, criterion=criterion, scenarios=scenarios)

        TuningCampaign(small_grid, job_runner=spying_runner).resume(journal_path)
        assert sorted(ran) == list(range(2, small_grid.n_jobs))

    def test_resume_on_missing_journal_runs_fresh(self, small_grid, tmp_path):
        journal_path = tmp_path / "fresh.jsonl"
        result = TuningCampaign(small_grid).resume(journal_path)
        assert result.n_jobs == small_grid.n_jobs
        # One fingerprint header plus one line per record.
        assert (
            len(journal_path.read_text().splitlines()) == 1 + small_grid.n_jobs
        )

    def test_resume_against_foreign_journal_rejected(self, small_grid, tmp_path):
        journal_path = tmp_path / "campaign.jsonl"
        TuningCampaign(small_grid.expand()[:2]).run(checkpoint=journal_path)
        other_grid = CampaignGrid(
            devices=(DeviceSpec.of("double_dot", cross_coupling=(0.30, 0.28)),),
            resolutions=(63,),
            noise_scales=(0.0,),
            seed=123,
        )
        # Same path, different campaign: the job ids overlap, so adopting
        # the journal would silently merge the wrong records.
        with pytest.raises(ConfigurationError, match="different run"):
            TuningCampaign(other_grid).resume(journal_path)

    def test_fingerprint_stable_across_processes(self):
        # The fingerprint must be content-based: any memory-address repr
        # leaking in (e.g. a non-dataclass noise model) would make every
        # cross-process resume of a scenario campaign fail as "a different
        # run" — the exact crash-recovery case checkpoints exist for.
        import subprocess
        import sys

        snippet = (
            "from repro.campaign import CampaignGrid, DeviceSpec, "
            "campaign_fingerprint\n"
            "from repro.analysis import SuccessCriterion\n"
            "from repro.scenarios import get_scenario\n"
            "jobs = CampaignGrid(devices=(DeviceSpec.of('double_dot', "
            "cross_coupling=(0.25, 0.22)),), resolutions=(63,), "
            "scenarios=(None, 'standard_lab'), seed=17).expand()\n"
            "scenarios = {'standard_lab': get_scenario('standard_lab')}\n"
            "print(campaign_fingerprint(jobs, SuccessCriterion(), scenarios))\n"
        )
        run = lambda: subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": "src"},
            cwd=str(__import__("pathlib").Path(__file__).parents[2]),
        ).stdout.strip()
        first, second = run(), run()
        assert first == second
        assert "0x" not in first

    def test_fingerprint_distinguishes_dot_pairs(self, small_grid):
        import dataclasses

        from repro.analysis import SuccessCriterion
        from repro.campaign import campaign_fingerprint

        jobs = small_grid.expand()[:2]
        # Same gates, seeds, and labels — different target dot pair.
        shifted = tuple(
            dataclasses.replace(job, dot_b=job.dot_b + 1) for job in jobs
        )
        criterion = SuccessCriterion()
        assert campaign_fingerprint(jobs, criterion) != campaign_fingerprint(
            shifted, criterion
        )

    def test_fingerprint_rejects_address_bearing_scenario_reprs(self, small_grid):
        from repro.analysis import SuccessCriterion
        from repro.campaign import campaign_fingerprint

        class OpaqueModel:  # default object repr embeds a memory address
            pass

        with pytest.raises(ConfigurationError, match="memory address"):
            campaign_fingerprint(
                small_grid.expand()[:1],
                SuccessCriterion(),
                scenarios={"homemade": OpaqueModel()},
            )
        with pytest.raises(ConfigurationError, match="criterion"):
            campaign_fingerprint(small_grid.expand()[:1], OpaqueModel())

    def test_single_job_grid_auto_selects_serial(self, small_grid):
        # A pool buys nothing for one job; the auto spec keeps the
        # historical in-process fallback (and its no-pickling guarantee).
        campaign = TuningCampaign(small_grid.expand()[:1], n_workers=8)
        assert isinstance(campaign.backend, SerialBackend)
        explicit = TuningCampaign(small_grid.expand()[:1], backend="asyncio")
        assert explicit.backend.name == "asyncio"  # explicit spec still wins

    def test_resume_after_scenario_redefinition_rejected(self, tmp_path):
        from repro.scenarios import get_scenario, register_scenario
        import dataclasses as dc

        base = get_scenario("quiet_lab")
        scenario = dc.replace(base, name="retune_test_lab")
        register_scenario(scenario, overwrite=True)
        try:
            jobs = CampaignGrid(
                devices=(DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)),),
                resolutions=(63,),
                scenarios=("retune_test_lab",),
                seed=17,
            ).expand()
            journal_path = tmp_path / "campaign.jsonl"
            TuningCampaign(jobs).run(checkpoint=journal_path)
            # Re-register the same name with different physics: journaled
            # records were computed under the old definition, so resuming
            # must refuse rather than merge stale records.
            register_scenario(
                dc.replace(scenario, story="redefined physics"), overwrite=True
            )
            with pytest.raises(ConfigurationError, match="different run"):
                TuningCampaign(jobs).resume(journal_path)
        finally:
            from repro.scenarios.catalog import _REGISTRY

            _REGISTRY.pop("retune_test_lab", None)

    def test_resume_can_rerun_journaled_worker_errors(self, small_grid, tmp_path):
        journal_path = tmp_path / "campaign.jsonl"
        jobs = small_grid.expand()[:3]
        poisoned = TuningCampaign(jobs, job_runner=poisoned_job_runner).run(
            checkpoint=journal_path
        )
        assert poisoned.records[POISONED_JOB_ID].failure_category == "worker_error"
        # Plain resume adopts the journaled failure verbatim...
        adopted = TuningCampaign(jobs).resume(journal_path)
        assert adopted.records[POISONED_JOB_ID].failure_category == "worker_error"
        # ... rerun_failures re-runs it with the (now healthy) runner, and
        # the fresh record supersedes the old journal line.
        healed = TuningCampaign(jobs).resume(journal_path, rerun_failures=True)
        assert healed.records[POISONED_JOB_ID].success
        again = TuningCampaign(jobs).resume(journal_path)
        assert again.records[POISONED_JOB_ID].success

    def test_reported_workers_clamp_to_job_count(self, small_grid):
        result = TuningCampaign(small_grid.expand()[:2], n_workers=8).run()
        assert result.n_workers == 2

    def test_completed_journal_short_circuits(self, small_grid, tmp_path):
        journal_path = tmp_path / "campaign.jsonl"
        first = TuningCampaign(small_grid).run(checkpoint=journal_path)
        ran = []

        def spying_runner(job, criterion=None, scenarios=None):
            ran.append(job.job_id)
            return run_campaign_job(job, criterion=criterion, scenarios=scenarios)

        rerun = TuningCampaign(small_grid, job_runner=spying_runner).resume(
            journal_path
        )
        assert ran == []
        assert rerun.normalized() == first.normalized()


class TestCampaignResult:
    def test_aggregates_match_records(self, sequential_result):
        assert sequential_result.total_probes == sum(
            r.n_probes for r in sequential_result.records
        )
        assert sequential_result.n_succeeded == sum(
            1 for r in sequential_result.records if r.success
        )
        taxonomy = sequential_result.failure_taxonomy()
        assert sum(taxonomy.values()) == len(sequential_result.failed_records())

    def test_filtering(self, sequential_result):
        fast = sequential_result.records_for(method="fast")
        assert len(fast) == sequential_result.n_jobs
        assert sequential_result.records_for(method="baseline") == ()

    def test_report_renders(self, sequential_result):
        report = sequential_result.format_report(max_rows=2)
        assert "Batch-tuning campaign" in report
        assert "Campaign summary" in report
        assert "more jobs" in report  # truncation marker
        summary = sequential_result.summary()
        assert summary["n_jobs"] == sequential_result.n_jobs
        assert summary["n_workers"] == 1


class TestWorker:
    def test_crashing_job_becomes_failed_record(self, small_grid):
        import dataclasses

        # A 1-pixel grid cannot even open a session; the worker converts the
        # raised MeasurementError into a failed record instead of propagating.
        job = dataclasses.replace(small_grid.expand()[0], resolution=1)
        record = run_campaign_job(job)
        assert not record.success
        assert record.failure_category == "crash"
        assert "MeasurementError" in record.failure_reason

    def test_criterion_is_honoured(self, small_grid):
        job = small_grid.expand()[0]
        strict = run_campaign_job(
            job, criterion=SuccessCriterion(max_alpha_abs_error=1e-12,
                                            max_alpha_rel_error=1e-12)
        )
        lax = run_campaign_job(job)
        assert lax.success
        assert not strict.success
        assert strict.failure_category == "truth-mismatch"

    def test_baseline_method_runs(self, small_grid):
        import dataclasses

        job = dataclasses.replace(small_grid.expand()[0], method="baseline")
        record = run_campaign_job(job)
        # The Hough baseline scans the full grid.
        assert record.n_probes == 63 * 63
        assert record.method == "baseline"


class TestClassifyFailure:
    def test_success(self):
        assert classify_failure("", True, True) == "ok"

    def test_truth_mismatch(self):
        assert classify_failure("", True, False) == "truth-mismatch"

    @pytest.mark.parametrize(
        "reason, category",
        [
            ("slope fit did not converge", "fit-divergence"),
            ("pipeline did not produce a fit", "no-fit"),
            ("fitted slopes must both be negative (device physics); got", "slope-sign"),
            ("fitted slopes are not finite", "non-finite-slopes"),
            ("steep slope magnitude 0.2 below the physical minimum", "slope-bounds"),
            ("alpha_12 = 1.9 outside [0, 1.5]", "alpha-range"),
            ("need at least 4 transition points to fit, got 2", "too-few-points"),
            ("no anchor found on the diagonal", "anchor-search"),
            ("probe budget of 100 points exhausted", "probe-budget"),
            ("something unheard of", "other"),
        ],
    )
    def test_taxonomy_rules(self, reason, category):
        assert classify_failure(reason, False, False) == category
