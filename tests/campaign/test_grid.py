"""Tests for the declarative campaign grid and its expansion."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.campaign import CampaignGrid, DeviceSpec
from repro.campaign.grid import noise_for_scale
from repro.exceptions import ConfigurationError
from repro.physics.noise import CompositeNoise


class TestDeviceSpec:
    def test_builds_registered_factories(self):
        device = DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)).build()
        assert device.n_dots == 2
        device = DeviceSpec.of("linear_array", n_dots=3).build()
        assert device.n_dots == 3

    def test_unknown_factory_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec(factory="pentuple_dot")

    def test_spec_is_hashable_and_picklable(self):
        spec = DeviceSpec.of("double_dot", cross_coupling=(0.3, 0.2))
        assert hash(spec) == hash(pickle.loads(pickle.dumps(spec)))

    def test_label_names_factory_and_kwargs(self):
        assert DeviceSpec.of("double_dot").label == "double_dot"
        assert "n_dots=3" in DeviceSpec.of("linear_array", n_dots=3).label


class TestNoiseForScale:
    def test_zero_scale_is_noise_free(self):
        assert noise_for_scale(0.0) is None

    def test_positive_scale_builds_lab_mix(self):
        assert isinstance(noise_for_scale(1.0), CompositeNoise)

    def test_negative_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            noise_for_scale(-1.0)


class TestCampaignGrid:
    def test_expansion_covers_cross_product(self):
        grid = CampaignGrid(
            devices=(
                DeviceSpec.of("double_dot"),
                DeviceSpec.of("linear_array", n_dots=3),
            ),
            resolutions=(63, 100),
            noise_scales=(0.0, 1.0),
            methods=("fast",),
            n_repeats=2,
            seed=5,
        )
        jobs = grid.expand()
        # (1 + 2) gate pairs x 2 resolutions x 2 noises x 1 method x 2 repeats.
        assert len(jobs) == grid.n_jobs == 3 * 2 * 2 * 2
        assert [job.job_id for job in jobs] == list(range(len(jobs)))
        # The linear array contributes both neighbouring pairs.
        pairs = {(job.gate_x, job.gate_y) for job in jobs}
        assert ("P1", "P2") in pairs and ("P2", "P3") in pairs

    def test_expansion_is_deterministic(self):
        grid = CampaignGrid(n_repeats=3, seed=9)
        first = grid.expand()
        second = grid.expand()
        for a, b in zip(first, second):
            assert a.label == b.label
            assert a.seed.entropy == b.seed.entropy
            assert a.seed.spawn_key == b.seed.spawn_key

    def test_jobs_get_distinct_spawned_seeds(self):
        jobs = CampaignGrid(n_repeats=4, seed=3).expand()
        spawn_keys = {job.seed.spawn_key for job in jobs}
        assert len(spawn_keys) == len(jobs)
        assert all(isinstance(job.seed, np.random.SeedSequence) for job in jobs)

    def test_unseeded_grid_leaves_jobs_unseeded(self):
        jobs = CampaignGrid(n_repeats=2, seed=None).expand()
        assert all(job.seed is None for job in jobs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"devices": ()},
            {"resolutions": (8,)},
            {"noise_scales": (-0.5,)},
            {"methods": ("magic",)},
            {"methods": ()},
            {"n_repeats": 0},
            {"scenarios": ()},
            {"scenarios": ("not_a_registered_scenario",)},
        ],
    )
    def test_invalid_grids_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            CampaignGrid(**kwargs)

    def test_jobs_are_picklable(self):
        jobs = CampaignGrid(n_repeats=1, seed=1).expand()
        restored = pickle.loads(pickle.dumps(jobs))
        assert restored[0].label == jobs[0].label


class TestScenarioAxis:
    def test_default_axis_is_static_only(self):
        jobs = CampaignGrid(seed=1).expand()
        assert all(job.scenario is None for job in jobs)

    def test_scenario_axis_multiplies_the_cross_product(self):
        grid = CampaignGrid(
            resolutions=(48,),
            scenarios=(None, "quiet_lab", "drifting_sensor"),
            n_repeats=2,
            seed=7,
        )
        jobs = grid.expand()
        assert len(jobs) == grid.n_jobs == 1 * 1 * 1 * 3 * 1 * 2
        assert {job.scenario for job in jobs} == {None, "quiet_lab", "drifting_sensor"}

    def test_named_scenarios_not_crossed_with_noise_axis(self):
        # The static environment sweeps the noise axis; a named scenario
        # fixes its own noise, so it appears once (at recorded scale 1)
        # instead of being cloned per noise scale.
        grid = CampaignGrid(
            resolutions=(48,),
            noise_scales=(0.0, 0.5, 1.0),
            scenarios=(None, "drifting_sensor"),
            seed=7,
        )
        jobs = grid.expand()
        assert len(jobs) == grid.n_jobs == 3 + 1
        static = [job for job in jobs if job.scenario is None]
        scenario = [job for job in jobs if job.scenario == "drifting_sensor"]
        assert sorted(job.noise_scale for job in static) == [0.0, 0.5, 1.0]
        assert [job.noise_scale for job in scenario] == [1.0]

    def test_duplicate_scenario_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignGrid(scenarios=("quiet_lab", "quiet_lab"))

    def test_scenario_named_in_label(self):
        jobs = CampaignGrid(scenarios=("telegraph_storm",), seed=1).expand()
        assert "telegraph_storm" in jobs[0].label

    def test_scenario_jobs_are_picklable(self):
        jobs = CampaignGrid(scenarios=("overnight_run",), seed=1).expand()
        restored = pickle.loads(pickle.dumps(jobs))
        assert restored[0].scenario == "overnight_run"
