"""Tests for campaign result serialisation: JSON round-trips and journals."""

from __future__ import annotations

import dataclasses
import json
import math

import pytest

from repro.campaign import (
    CampaignGrid,
    CampaignJobRecord,
    CampaignResult,
    DeviceSpec,
    TuningCampaign,
)


@pytest.fixture(scope="module")
def result() -> CampaignResult:
    grid = CampaignGrid(
        devices=(DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)),),
        resolutions=(63,),
        noise_scales=(0.0, 1.0),
        n_repeats=1,
        seed=5,
    )
    return TuningCampaign(grid).run()


class TestRecordRoundTrip:
    def test_as_dict_covers_every_field(self, result):
        record = result.records[0]
        payload = record.as_dict()
        assert set(payload) == {
            f.name for f in dataclasses.fields(CampaignJobRecord)
        }

    def test_round_trip_is_exact(self, result):
        for record in result.records:
            rebuilt = CampaignJobRecord.from_dict(
                json.loads(json.dumps(record.as_dict()))
            )
            assert rebuilt == record

    def test_round_trip_preserves_non_finite_floats(self, result):
        record = dataclasses.replace(
            result.records[0], max_alpha_error=float("inf"), alpha_12=None
        )
        rebuilt = CampaignJobRecord.from_dict(
            json.loads(json.dumps(record.as_dict()))
        )
        assert math.isinf(rebuilt.max_alpha_error)
        assert rebuilt.alpha_12 is None

    def test_round_trip_equality_with_nan_fields(self, result):
        # A record with undefined ground truth carries NaN; IEEE nan != nan
        # must not break the round-trip and resume-equality contracts.
        record = dataclasses.replace(result.records[0], max_alpha_error=float("nan"))
        rebuilt = CampaignJobRecord.from_dict(
            json.loads(json.dumps(record.as_dict()))
        )
        assert rebuilt == record
        nan_result = dataclasses.replace(result, records=(record,))
        assert CampaignResult.from_dict(nan_result.as_dict()) == nan_result
        assert record != dataclasses.replace(record, n_probes=record.n_probes + 1)

    def test_records_stay_hashable_with_nan_consistent_hash(self, result):
        record = dataclasses.replace(result.records[0], max_alpha_error=float("nan"))
        twin = dataclasses.replace(record)
        assert hash(record) == hash(twin)
        assert len({record, twin}) == 1  # set dedup still works
        assert len(set(result.records)) == len(result.records)

    def test_from_dict_ignores_unknown_keys(self, result):
        payload = result.records[0].as_dict() | {"future_field": 42}
        assert CampaignJobRecord.from_dict(payload) == result.records[0]


class TestStageTelemetryRoundTrip:
    """PR 4's resume/round-trip matrix, extended to per-stage telemetry."""

    def test_records_carry_stage_telemetry(self, result):
        for record in result.records:
            assert record.stage_telemetry, record.job_id
            assert [t.stage for t in record.stage_telemetry] == [
                "anchors",
                "sweeps",
                "filter",
                "fit",
                "validate",
            ]
            assert (
                sum(t.n_probes for t in record.stage_telemetry) == record.n_probes
            )

    def test_as_dict_encodes_telemetry_json_native(self, result):
        payload = result.records[0].as_dict()
        assert isinstance(payload["stage_telemetry"], list)
        json.dumps(payload["stage_telemetry"])  # no custom encoders needed
        assert payload["stage_telemetry"][0]["stage"] == "anchors"

    def test_telemetry_survives_record_round_trip_bit_identically(self, result):
        for record in result.records:
            rebuilt = CampaignJobRecord.from_dict(
                json.loads(json.dumps(record.as_dict()))
            )
            # Whole-record equality covers it, but assert the telemetry
            # tuples explicitly: every float (including wall_s) must
            # round-trip through JSON exactly.
            assert rebuilt.stage_telemetry == record.stage_telemetry

    def test_pre_telemetry_journal_lines_still_load(self, result):
        # A journal written before the pipeline refactor has no
        # stage_telemetry key; records must rebuild with empty telemetry.
        payload = result.records[0].as_dict()
        del payload["stage_telemetry"]
        rebuilt = CampaignJobRecord.from_dict(payload)
        assert rebuilt.stage_telemetry == ()

    def test_telemetry_survives_journal_checkpoint_resume(self, result, tmp_path):
        grid = CampaignGrid(
            devices=(DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)),),
            resolutions=(63,),
            noise_scales=(0.0, 1.0),
            n_repeats=1,
            seed=5,
        )
        journal_path = tmp_path / "telemetry.jsonl"
        first = TuningCampaign(grid).run(checkpoint=journal_path)
        # Journaled records adopt verbatim on resume: telemetry included,
        # bit-identical down to the wall clock the journal recorded.
        resumed = TuningCampaign(grid).resume(journal_path)
        for old, new in zip(first.records, resumed.records):
            assert new.stage_telemetry == old.stage_telemetry
        assert resumed.normalized() == first.normalized()
        # The journal drill-down view keeps telemetry too.
        partial = CampaignResult.from_journal(journal_path)
        for old, new in zip(first.records, partial.records):
            assert new.stage_telemetry == old.stage_telemetry

    def test_normalized_pins_stage_wall_clock(self, result):
        normal = result.normalized()
        for record in normal.records:
            assert all(t.wall_s == 0.0 for t in record.stage_telemetry)
        # Everything except the wall clock is untouched.
        for raw, pinned in zip(result.records, normal.records):
            assert [t.stage for t in raw.stage_telemetry] == [
                t.stage for t in pinned.stage_telemetry
            ]
            assert [t.n_probes for t in raw.stage_telemetry] == [
                t.n_probes for t in pinned.stage_telemetry
            ]

    def test_stage_breakdown_appears_in_report(self, result):
        report = result.format_report()
        assert "Per-stage probe accounting" in report
        assert "anchors" in report
        breakdown = result.stage_breakdown()
        assert breakdown[("fast", "anchors")]["n_runs"] == result.n_jobs
        total = sum(
            entry["n_probes"] for entry in breakdown.values()
        )
        assert total == result.total_probes


class TestResultRoundTrip:
    def test_save_load_is_exact(self, result, tmp_path):
        path = result.save(tmp_path / "result.json")
        assert CampaignResult.load(path) == result

    def test_as_dict_is_json_native(self, result):
        json.dumps(result.as_dict())  # must not need custom encoders

    def test_normalized_pins_wall_clock_and_execution_policy(self, result):
        normal = result.normalized()
        assert normal.wall_time_s == 0.0
        assert all(r.wall_elapsed_s == 0.0 for r in normal.records)
        assert normal.n_workers == 0
        assert "backend" not in normal.metadata
        assert [r.job_id for r in normal.records] == [
            r.job_id for r in result.records
        ]
        assert normal.summary()["total_probes"] == result.summary()["total_probes"]

    def test_normalized_equates_runs_across_backends(self, result):
        # The documented contract: whole-result equality through
        # normalized(), even when backend and worker count differ.
        grid = CampaignGrid(
            devices=(DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)),),
            resolutions=(63,),
            noise_scales=(0.0, 1.0),
            n_repeats=1,
            seed=5,
        )
        process = TuningCampaign(grid, n_workers=2).run()
        asyncio_run = TuningCampaign(grid, backend="asyncio", n_workers=3).run()
        serial = TuningCampaign(grid).run()
        assert serial.normalized() == process.normalized() == asyncio_run.normalized()

    def test_save_emits_strict_json_even_with_failures(self, result, tmp_path):
        # Failure records carry infinite max_alpha_error; the persisted
        # format must still be strict JSON (no bare Infinity/NaN tokens
        # that jq / JSON.parse reject).
        crashed = dataclasses.replace(
            result.records[0], max_alpha_error=float("inf")
        )
        failed_result = dataclasses.replace(
            result, records=(crashed,) + result.records[1:]
        )
        path = failed_result.save(tmp_path / "failed.json")

        def reject_constant(name):
            raise AssertionError(f"non-standard JSON token {name!r} in output")

        json.loads(path.read_text(), parse_constant=reject_constant)
        loaded = CampaignResult.load(path)
        assert math.isinf(loaded.records[0].max_alpha_error)
        assert loaded == failed_result


class TestJournalView:
    def test_partial_journal_renders_partial_report(self, result, tmp_path):
        # Journal only a prefix of the records, as a killed run would.
        from repro.execution import CheckpointJournal

        journal = CheckpointJournal(
            tmp_path / "run.jsonl", serialize=CampaignJobRecord.as_dict
        )
        for record in result.records[:1]:
            journal.append(record.job_id, record)
        partial = CampaignResult.from_journal(
            tmp_path / "run.jsonl", n_expected=result.n_jobs
        )
        assert partial.is_partial
        assert partial.n_jobs == 1
        assert partial.n_expected == result.n_jobs
        assert partial.records[0] == result.records[0]
        report = partial.format_report()
        assert f"completed:             1/{result.n_jobs} (partial)" in report

    def test_complete_result_is_not_partial(self, result):
        assert not result.is_partial
        assert "(partial)" not in result.format_report()

    def test_empty_journal_view(self, tmp_path):
        partial = CampaignResult.from_journal(tmp_path / "none.jsonl")
        assert partial.n_jobs == 0
        assert not partial.is_partial
