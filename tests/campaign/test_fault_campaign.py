"""Tests for the campaign fault axis: grids, records, resilience, resume."""

from __future__ import annotations

import dataclasses

import pytest

from repro.campaign import CampaignGrid, CampaignResult, DeviceSpec, TuningCampaign
from repro.exceptions import ConfigurationError
from repro.execution import crash_message


def _grid(**overrides) -> CampaignGrid:
    kwargs = dict(
        devices=(DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)),),
        resolutions=(40,),
        noise_scales=(0.0,),
        methods=("fast",),
        faults=(None, "flaky-lab", "worker-crashes"),
        n_repeats=2,
        seed=11,
    )
    kwargs.update(overrides)
    return CampaignGrid(**kwargs)


@pytest.fixture(scope="module")
def faulty_grid() -> CampaignGrid:
    return _grid()


@pytest.fixture(scope="module")
def serial_result(faulty_grid) -> CampaignResult:
    return TuningCampaign(faulty_grid, n_workers=1).run()


class TestGridFaultAxis:
    def test_fault_axis_multiplies_jobs(self, faulty_grid):
        assert faulty_grid.n_jobs == 6
        assert _grid(faults=(None,)).n_jobs == 2

    def test_labels_carry_the_fault_condition(self, faulty_grid):
        jobs = faulty_grid.expand()
        for job in jobs:
            if job.fault is None:
                assert "!" not in job.label
            else:
                assert f"!{job.fault}" in job.label

    def test_unknown_fault_rejected(self):
        with pytest.raises(ConfigurationError, match="does-not-exist"):
            _grid(faults=("does-not-exist",))

    def test_duplicate_fault_rejected(self):
        with pytest.raises(ConfigurationError, match="repeat"):
            _grid(faults=("flaky-lab", "flaky-lab"))

    def test_empty_fault_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            _grid(faults=())

    def test_job_seeds_stay_independent(self, faulty_grid):
        jobs = faulty_grid.expand()
        assert len({job.seed.spawn_key for job in jobs}) == len(jobs)


class TestRecordFaultFields:
    def test_records_carry_fault_and_retry_counts(self, serial_result):
        by_fault = {}
        for record in serial_result.records:
            by_fault.setdefault(record.fault, []).append(record)
        assert set(by_fault) == {None, "flaky-lab", "worker-crashes"}
        assert all(r.n_probe_retries == 0 for r in by_fault[None])
        assert sum(r.n_probe_retries for r in by_fault["flaky-lab"]) > 0

    def test_round_trip_is_bit_identical(self, serial_result):
        for record in serial_result.records:
            assert type(record).from_dict(record.as_dict()) == record

    def test_pre_fault_journals_still_load(self, serial_result):
        legacy = serial_result.records[0].as_dict()
        del legacy["fault"]
        del legacy["n_probe_retries"]
        record = type(serial_result.records[0]).from_dict(legacy)
        assert record.fault is None
        assert record.n_probe_retries == 0


class TestFaultResilience:
    def test_flaky_lab_jobs_ride_out_the_chaos(self, serial_result):
        flaky = [r for r in serial_result.records if r.fault == "flaky-lab"]
        assert flaky and all(r.success for r in flaky)

    def test_worker_crashes_become_records_not_aborts(
        self, faulty_grid, serial_result
    ):
        assert serial_result.n_jobs == faulty_grid.n_jobs
        crashed = [
            r
            for r in serial_result.records
            if r.failure_category == "worker_error"
        ]
        assert crashed
        for record in crashed:
            assert record.fault == "worker-crashes"
            assert not record.success
            assert crash_message(record.job_id) in record.failure_reason

    def test_report_gains_a_fault_resilience_section(self, serial_result):
        report = serial_result.format_report()
        assert "Fault resilience: outcomes under injected conditions" in report
        assert "flaky-lab" in report

    def test_fault_free_results_render_without_the_section(self, serial_result):
        clean = dataclasses.replace(
            serial_result,
            records=tuple(
                r for r in serial_result.records if r.fault is None
            ),
        )
        assert "Fault resilience" not in clean.format_report()


class TestCrossBackendIdentity:
    @pytest.mark.parametrize(
        "backend, n_workers",
        [("process", 2), ("process", 3), ("asyncio", 2)],
    )
    def test_same_chaos_on_every_backend(
        self, faulty_grid, serial_result, backend, n_workers
    ):
        # The fault-axis contract: injected faults, retry counts, and
        # worker deaths are seed-determined, so every backend at every
        # worker count condenses into bit-identical records.
        result = TuningCampaign(
            faulty_grid, n_workers=n_workers, backend=backend
        ).run()
        assert result.normalized() == serial_result.normalized()
        assert [r.n_probe_retries for r in result.records] == [
            r.n_probe_retries for r in serial_result.records
        ]


class _InterruptAfter:
    """Progress hook that kills the campaign after ``n`` completed jobs."""

    def __init__(self, n: int) -> None:
        self.n = n

    def __call__(self, done, total, record) -> None:
        if done >= self.n:
            raise KeyboardInterrupt(f"simulated kill after {done} jobs")


class TestResumeUnderFaults:
    def test_interrupted_chaos_campaign_resumes_bit_identically(
        self, faulty_grid, serial_result, tmp_path
    ):
        journal_path = tmp_path / "chaos.jsonl"
        with pytest.raises(KeyboardInterrupt):
            TuningCampaign(faulty_grid, progress=_InterruptAfter(3)).run(
                checkpoint=journal_path
            )
        resumed = TuningCampaign(faulty_grid).resume(journal_path)
        assert resumed.normalized() == serial_result.normalized()
        # Retry counts survive the journal round trip exactly.
        assert [r.n_probe_retries for r in resumed.records] == [
            r.n_probe_retries for r in serial_result.records
        ]
        assert (
            resumed.normalized().format_report()
            == serial_result.normalized().format_report()
        )

    def test_fault_axis_is_part_of_the_fingerprint(self, faulty_grid, tmp_path):
        journal_path = tmp_path / "chaos.jsonl"
        with pytest.raises(KeyboardInterrupt):
            TuningCampaign(faulty_grid, progress=_InterruptAfter(1)).run(
                checkpoint=journal_path
            )
        with pytest.raises(ConfigurationError, match="fingerprint"):
            TuningCampaign(_grid(faults=(None,))).resume(journal_path)
