"""Tests for the composable tuning-pipeline subsystem (repro.pipeline)."""

from __future__ import annotations

import pytest

from repro.baseline import HoughBaselineExtractor
from repro.core import FastVirtualGateExtractor, StageTelemetry
from repro.exceptions import ConfigurationError, ExtractionError
from repro.instrument import ExperimentSession
from repro.pipeline import (
    StageOutcome,
    TuneContext,
    TuningPipeline,
    all_pipelines,
    format_stage_costs,
    get_pipeline,
    pipeline_catalogue,
    pipeline_names,
    register_pipeline,
)
from repro.pipeline.__main__ import main as pipeline_cli
from repro.scenarios import get_scenario


@pytest.fixture()
def session(clean_csd) -> ExperimentSession:
    return ExperimentSession.from_csd(clean_csd)


class TestRegistry:
    def test_builtins_are_registered(self):
        names = pipeline_names()
        for expected in ("fast-extraction", "dense-grid-baseline", "no-anchors"):
            assert expected in names

    def test_aliases_resolve_to_the_pr1_methods(self):
        assert get_pipeline("fast").name == "fast-extraction"
        assert get_pipeline("baseline").name == "dense-grid-baseline"
        assert get_pipeline("baseline").method_name == "hough-baseline"

    def test_unknown_name_raises_with_known_set(self):
        with pytest.raises(ConfigurationError, match="fast-extraction"):
            get_pipeline("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_pipeline(
                "fast-extraction", lambda: get_pipeline("fast-extraction")
            )

    def test_get_pipeline_returns_fresh_instances(self):
        assert get_pipeline("fast") is not get_pipeline("fast")

    def test_catalogue_lists_every_pipeline_with_stages(self):
        catalogue = pipeline_catalogue()
        for name in pipeline_names():
            assert name in catalogue
        assert "anchors -> sweeps -> filter -> fit -> validate" in catalogue

    def test_every_registered_pipeline_runs_end_to_end(self, clean_csd):
        # The registry contract: anything listed is runnable on a device.
        for pipeline in all_pipelines():
            result = pipeline.run(ExperimentSession.from_csd(clean_csd))
            assert result.method == pipeline.method_name
            assert result.stage_telemetry, pipeline.name
            assert result.probe_stats.n_probes > 0

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ExtractionError, match="at least one stage"):
            TuningPipeline("empty", [])


class TestEquivalence:
    """The registered compositions reproduce the monolithic extractors."""

    def test_fast_pipeline_matches_extractor(self, clean_csd):
        via_class = FastVirtualGateExtractor().extract(
            ExperimentSession.from_csd(clean_csd)
        )
        via_registry = get_pipeline("fast-extraction").run(
            ExperimentSession.from_csd(clean_csd)
        )
        assert via_class.success and via_registry.success
        assert via_class.alpha_12 == via_registry.alpha_12
        assert via_class.alpha_21 == via_registry.alpha_21
        assert via_class.probe_stats == via_registry.probe_stats

    def test_baseline_pipeline_matches_extractor(self, clean_csd):
        via_class = HoughBaselineExtractor().extract(
            ExperimentSession.from_csd(clean_csd)
        )
        via_registry = get_pipeline("dense-grid-baseline").run(
            ExperimentSession.from_csd(clean_csd)
        )
        assert via_class.method == via_registry.method == "hough-baseline"
        assert via_class.alpha_12 == via_registry.alpha_12
        assert via_class.metadata == via_registry.metadata

    def test_ablations_differ_from_the_default(self, clean_csd):
        default = get_pipeline("fast-extraction").run(
            ExperimentSession.from_csd(clean_csd)
        )
        no_anchors = get_pipeline("no-anchors").run(
            ExperimentSession.from_csd(clean_csd)
        )
        # Fixed-corner anchors spend nothing in the anchor stage but force
        # the sweeps to walk a larger triangle.
        assert no_anchors.stage("anchors").n_probes == 0
        assert default.stage("anchors").n_probes > 0
        assert (
            no_anchors.stage("sweeps").n_probes > default.stage("sweeps").n_probes
        )


class TestTelemetry:
    def test_stage_costs_sum_to_probe_statistics(self, session):
        result = get_pipeline("fast-extraction").run(session)
        total_probes = sum(t.n_probes for t in result.stage_telemetry)
        total_requests = sum(t.n_requests for t in result.stage_telemetry)
        total_hits = sum(t.cache_hits for t in result.stage_telemetry)
        total_sim = sum(t.sim_elapsed_s for t in result.stage_telemetry)
        assert total_probes == result.probe_stats.n_probes
        assert total_requests == result.probe_stats.n_requests
        assert total_hits == session.meter.n_cache_hits
        assert total_sim == pytest.approx(result.probe_stats.elapsed_s, abs=1e-9)

    def test_stage_order_and_outcomes(self, session):
        result = get_pipeline("fast-extraction").run(session)
        assert [t.stage for t in result.stage_telemetry] == [
            "anchors",
            "sweeps",
            "filter",
            "fit",
            "validate",
        ]
        assert all(t.outcome == "ok" for t in result.stage_telemetry)
        assert all(t.wall_s >= 0.0 for t in result.stage_telemetry)

    def test_compute_only_stages_probe_nothing(self, session):
        result = get_pipeline("fast-extraction").run(session)
        for stage in ("filter", "fit", "validate"):
            telemetry = result.stage(stage)
            assert telemetry.n_probes == 0
            assert telemetry.n_requests == 0
            assert telemetry.sim_elapsed_s == 0.0

    def test_baseline_probes_land_in_full_scan(self, session):
        result = get_pipeline("dense-grid-baseline").run(session)
        assert result.stage("full-scan").n_probes == session.meter.backend.n_pixels
        assert result.stage("edge-detect").n_probes == 0
        assert result.stage("line-fit").n_probes == 0

    def test_telemetry_round_trips_through_dicts(self, session):
        result = get_pipeline("fast-extraction").run(session)
        for telemetry in result.stage_telemetry:
            rebuilt = StageTelemetry.from_dict(telemetry.as_dict())
            assert rebuilt == telemetry

    def test_format_stage_costs_renders_every_stage(self, session):
        result = get_pipeline("fast-extraction").run(session)
        table = format_stage_costs(result.stage_telemetry)
        for telemetry in result.stage_telemetry:
            assert telemetry.stage in table


class _ExplodingStage:
    name = "exploding"

    def run(self, ctx):
        raise ExtractionError("boom mid-pipeline")


class _NotingStage:
    name = "noting"

    def __init__(self, log):
        self._log = log

    def run(self, ctx):
        self._log.append("ran")
        return StageOutcome(detail="noted")


class TestComposerSemantics:
    def test_raising_stage_yields_unsuccessful_result_with_telemetry(self, session):
        fast = get_pipeline("fast-extraction")
        pipeline = TuningPipeline(
            "boomy", list(fast.stages[:2]) + [_ExplodingStage()] + list(fast.stages[2:])
        )
        result = pipeline.run(session, config=fast.default_config())
        assert not result.success
        assert result.failure_reason == "boom mid-pipeline"
        # Completed stages keep their telemetry; the raising stage records a
        # failed row; nothing after it ran.
        assert [t.stage for t in result.stage_telemetry] == [
            "anchors",
            "sweeps",
            "exploding",
        ]
        assert result.stage_telemetry[-1].outcome == "failed"
        assert result.stage_telemetry[0].outcome == "ok"
        assert result.anchors is not None  # artifacts before the failure survive
        assert result.points is None

    def test_failed_status_stage_keeps_artifacts(self, clean_csd):
        # The validation stage rejects via status="failed" rather than
        # raising, so the rejected matrix stays visible.
        from repro.core import ExtractionConfig, FitConfig

        config = ExtractionConfig.paper_defaults().replace(
            fit=FitConfig(max_alpha=1e-9)
        )
        result = get_pipeline("fast-extraction").run(
            ExperimentSession.from_csd(clean_csd), config=config
        )
        assert not result.success
        assert result.matrix is not None
        assert result.stage("validate").outcome == "failed"
        assert "alpha" in result.stage("validate").detail

    def test_custom_stage_composes(self, session):
        log = []
        fast = get_pipeline("fast-extraction")
        pipeline = TuningPipeline(
            "noted", [_NotingStage(log)] + list(fast.stages),
            default_config=fast.default_config,
        )
        result = pipeline.run(session)
        assert log == ["ran"]
        assert result.success
        assert result.stage_telemetry[0].stage == "noting"
        assert result.stage_telemetry[0].detail == "noted"
        assert result.stage_telemetry[0].n_probes == 0

    def test_invalid_outcome_status_rejected(self):
        with pytest.raises(ValueError, match="ok"):
            StageOutcome(status="exploded")

    def test_execute_without_meter_fails_loudly(self):
        pipeline = TuningPipeline("bare", [_NotingStage([])])
        with pytest.raises(ExtractionError, match="without a measurement"):
            pipeline.execute(TuneContext())

    def test_meterless_failure_surfaces_the_real_cause(self):
        # Regression: a stage failing before any meter exists must raise its
        # own error, not the generic missing-meter message.
        pipeline = TuningPipeline("boom-first", [_ExplodingStage()])
        with pytest.raises(ExtractionError, match="boom mid-pipeline"):
            pipeline.execute(TuneContext())

    def test_execute_resolves_gate_names_from_the_meter(self, session):
        # A caller-built context without gate names must not silently fall
        # back to ("P1", "P2"); the composer resolves them from the backend.
        ctx = TuneContext(meter=session.meter)
        result, ctx = get_pipeline("fast-extraction").execute(ctx)
        assert (ctx.gate_x, ctx.gate_y) == ("P1", "P2")  # from the CSD itself
        assert result.matrix.gate_x == "P1"

    def test_execute_rejects_nameless_backend(self, clean_csd):
        from repro.instrument.measurement import ChargeSensorMeter, MeasurementBackend

        class NamelessBackend(MeasurementBackend):
            @property
            def x_voltages(self):
                return clean_csd.x_voltages

            @property
            def y_voltages(self):
                return clean_csd.y_voltages

            def current(self, row, col, time_s=None):
                return float(clean_csd.data[row, col])

        ctx = TuneContext(meter=ChargeSensorMeter(NamelessBackend()))
        with pytest.raises(ExtractionError, match="gate names"):
            get_pipeline("fast-extraction").execute(ctx)


class TestWorkflowTelemetry:
    def test_autotune_threads_window_search_telemetry(self, double_dot_device):
        from repro.core import AutoTuningWorkflow

        result = AutoTuningWorkflow(resolution=48, seed=7).run(double_dot_device)
        stages = [t.stage for t in result.stage_telemetry]
        assert stages[:2] == ["window-search", "open-session"]
        assert "anchors" in stages and "validate" in stages
        window_row = result.stage_telemetry[0]
        assert window_row.n_probes == result.window_search.n_probes
        assert window_row.sim_elapsed_s == pytest.approx(
            result.window_search.elapsed_s
        )
        # The whole timeline's telemetry sums to the combined budget.
        assert (
            sum(t.n_probes for t in result.stage_telemetry) == result.total_probes
        )
        # The extraction result's own telemetry stays extraction-only.
        assert (
            sum(t.n_probes for t in result.extraction.stage_telemetry)
            == result.extraction.probe_stats.n_probes
        )

    def test_retuning_cycles_carry_staleness_telemetry(self):
        from repro.core import AutoTuningWorkflow

        scenario = get_scenario("charge_jumpy")
        workflow = AutoTuningWorkflow.for_scenario(scenario, resolution=48, seed=3)
        result = workflow.run_with_retuning(
            scenario.build_device(), idle_time_s=1800.0, n_cycles=2
        )
        for cycle in result.cycles:
            assert cycle.stage_telemetry[0].stage == "staleness-check"
            assert (
                cycle.stage_telemetry[0].n_probes == cycle.check.n_check_pixels
            )
            if cycle.retuned:
                assert "anchors" in [t.stage for t in cycle.stage_telemetry]
        timeline = result.stage_telemetry
        assert timeline[0].stage == "window-search"
        assert sum(t.n_probes for t in timeline) == result.total_probes

    def test_workflow_accepts_ablation_pipeline_by_name(self, double_dot_device):
        from repro.core import AutoTuningWorkflow

        result = AutoTuningWorkflow(
            resolution=48, seed=7, pipeline="no-anchors"
        ).run(double_dot_device)
        assert result.extraction.method == "no-anchors"
        assert result.extraction.stage("anchors").n_probes == 0

    def test_workflow_runs_non_extraction_config_pipelines(self, double_dot_device):
        # Regression: the workflow used to force ExtractionConfig.paper_defaults
        # into the context, crashing any pipeline whose stages expect a
        # different config type (the dense-grid baseline reads .canny).
        from repro.core import AutoTuningWorkflow

        result = AutoTuningWorkflow(
            resolution=48, seed=7, pipeline="baseline"
        ).run(double_dot_device)
        assert result.extraction.method == "hough-baseline"
        assert result.extraction.stage("full-scan").n_probes == 48 * 48


class TestCampaignMethodAxis:
    def test_user_registered_pipeline_ships_to_process_workers(self, tmp_path):
        # The engine resolves pipelines in the parent and ships the objects
        # with the runner, the same treatment scenarios get — so a pipeline
        # registered only in the parent's registry still runs under a
        # process pool (a spawn-start worker would miss it otherwise).
        from repro.campaign import CampaignGrid, DeviceSpec, TuningCampaign
        from repro.core import ExtractionConfig
        from repro.pipeline import (
            AnchorStage,
            FilterStage,
            FitStage,
            SweepStage,
            ValidateStage,
        )

        name = "test-shipped-variant"
        register_pipeline(
            name,
            lambda: TuningPipeline(
                name,
                [AnchorStage(), SweepStage(), FilterStage(), FitStage(), ValidateStage()],
                default_config=ExtractionConfig.paper_defaults,
            ),
            overwrite=True,
        )
        grid = CampaignGrid(
            devices=(DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)),),
            resolutions=(63,),
            noise_scales=(0.0,),
            methods=("fast", name),
            n_repeats=1,
            seed=4,
        )
        serial = TuningCampaign(grid).run()
        parallel = TuningCampaign(grid, n_workers=2).run()
        assert serial.normalized() == parallel.normalized()
        shipped = [r for r in serial.records if r.method == name]
        assert shipped and all(r.failure_category != "worker_error" for r in shipped)
        assert all(r.stage_telemetry for r in shipped)

    def test_legacy_runner_signature_still_supported(self):
        # Custom runners written against the PR 4 contract
        # (job, criterion=..., scenarios=...) must keep working: the engine
        # only passes pipelines= to runners that declare it.
        from repro.campaign import CampaignGrid, DeviceSpec, TuningCampaign
        from repro.campaign.worker import run_campaign_job

        def legacy_runner(job, criterion=None, scenarios=None):
            return run_campaign_job(job, criterion=criterion, scenarios=scenarios)

        grid = CampaignGrid(
            devices=(DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)),),
            resolutions=(63,),
            noise_scales=(0.0,),
            n_repeats=1,
            seed=4,
        )
        result = TuningCampaign(grid, job_runner=legacy_runner).run()
        assert all(r.failure_category != "worker_error" for r in result.records)


class TestCli:
    def test_list_prints_catalogue(self, capsys):
        assert pipeline_cli(["--list"]) == 0
        out = capsys.readouterr().out
        for name in pipeline_names():
            assert name in out
        assert "fast -> fast-extraction" in out

    def test_stages_prints_one_pipeline(self, capsys):
        assert pipeline_cli(["--stages", "fast"]) == 0
        out = capsys.readouterr().out
        assert "fast-extraction" in out
        assert "  anchors" in out

    def test_unknown_pipeline_exits_with_error(self, capsys):
        with pytest.raises(SystemExit):
            pipeline_cli(["--stages", "nope"])
        assert "unknown pipeline" in capsys.readouterr().err


class TestMeterSnapshot:
    def test_snapshot_delta_accounts_probes_and_hits(self, clean_csd):
        session = ExperimentSession.from_csd(clean_csd)
        meter = session.meter
        before = meter.snapshot()
        meter.get_current(3, 4)
        meter.get_current(3, 4)  # cache hit
        meter.get_current(5, 6)
        delta = before.delta(meter.snapshot())
        assert delta.n_probes == 2
        assert delta.n_requests == 3
        assert delta.n_cache_hits == 1
        assert delta.elapsed_s == pytest.approx(2 * 0.05)


class TestInstrumentFaultDegradation:
    """A session whose instrument gives out degrades, never aborts."""

    def _doomed_session(self, **policy_overrides):
        from repro.faults import TransientReadFault
        from repro.instrument import ProbeRetryPolicy
        from repro.scenarios import DeviceSpec

        device = DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)).build()
        policy = dict(max_attempts=2, breaker_failures=0)
        policy.update(policy_overrides)
        return ExperimentSession.from_device(
            device,
            resolution=24,
            seed=7,
            faults=TransientReadFault(rate=1.0),
            probe_retry=ProbeRetryPolicy(**policy),
        )

    def test_exhausted_retries_fail_the_stage_not_the_run(self):
        result = get_pipeline("fast-extraction").run(self._doomed_session())
        assert not result.success
        assert "injected" in result.failure_reason
        # The probing stage records a failed telemetry row with its costs.
        assert result.stage_telemetry
        assert result.stage_telemetry[-1].outcome == "failed"

    def test_tripped_breaker_degrades_the_same_way(self):
        result = get_pipeline("fast-extraction").run(
            self._doomed_session(breaker_failures=2)
        )
        assert not result.success
        assert "circuit breaker" in result.failure_reason

    def test_failure_reasons_classify_into_the_fault_taxonomy(self):
        from repro.campaign import classify_failure

        assert (
            classify_failure("injected transient read failure at t=1.0s", False, False)
            == "instrument-fault"
        )
        assert (
            classify_failure(
                "circuit breaker open after 2 consecutive probe failures",
                False,
                False,
            )
            == "circuit-breaker"
        )
        assert (
            classify_failure(
                "probe (0, 0) stalled 5.000s, over the 1.000s timeout budget",
                False,
                False,
            )
            == "probe-timeout"
        )
