"""Tests for virtualization matrices (pairwise and array)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ArrayVirtualization, VirtualizationMatrix
from repro.exceptions import ExtractionError


class TestVirtualizationMatrix:
    def test_matrix_layout(self):
        matrix = VirtualizationMatrix(alpha_12=0.3, alpha_21=0.2)
        assert np.allclose(matrix.matrix, [[1.0, 0.3], [0.2, 1.0]])

    def test_identity(self):
        identity = VirtualizationMatrix.identity()
        assert np.allclose(identity.matrix, np.eye(2))

    def test_round_trip_physical_virtual(self):
        matrix = VirtualizationMatrix(alpha_12=0.35, alpha_21=0.25)
        physical = np.array([0.123, 0.456])
        assert np.allclose(matrix.to_physical(matrix.to_virtual(physical)), physical)

    def test_batch_transformation(self):
        matrix = VirtualizationMatrix(alpha_12=0.35, alpha_21=0.25)
        points = np.random.default_rng(0).uniform(size=(10, 2))
        virtual = matrix.to_virtual(points)
        assert virtual.shape == (10, 2)
        assert np.allclose(matrix.to_physical(virtual), points)

    def test_from_slopes_matches_paper_relations(self):
        # alpha_12 = -1/m_steep, alpha_21 = -m_shallow in this library's axes.
        matrix = VirtualizationMatrix.from_slopes(slope_steep=-2.5, slope_shallow=-0.4)
        assert matrix.alpha_12 == pytest.approx(0.4)
        assert matrix.alpha_21 == pytest.approx(0.4)

    def test_from_slopes_vertical_steep_line(self):
        matrix = VirtualizationMatrix.from_slopes(
            slope_steep=float("-inf"), slope_shallow=-0.3
        )
        assert matrix.alpha_12 == 0.0
        assert matrix.alpha_21 == pytest.approx(0.3)

    def test_from_slopes_zero_steep_rejected(self):
        with pytest.raises(ExtractionError):
            VirtualizationMatrix.from_slopes(slope_steep=0.0, slope_shallow=-0.3)

    def test_singular_matrix_rejected(self):
        with pytest.raises(ExtractionError):
            VirtualizationMatrix(alpha_12=2.0, alpha_21=0.5)

    def test_non_finite_rejected(self):
        with pytest.raises(ExtractionError):
            VirtualizationMatrix(alpha_12=float("nan"), alpha_21=0.1)

    def test_perfect_matrix_orthogonalizes_true_slopes(self):
        slope_steep, slope_shallow = -2.5, -0.4
        matrix = VirtualizationMatrix.from_slopes(slope_steep, slope_shallow)
        residual_steep, residual_shallow = matrix.virtual_slopes(slope_steep, slope_shallow)
        assert np.isinf(residual_steep)
        assert residual_shallow == pytest.approx(0.0, abs=1e-12)
        assert matrix.orthogonality_error(slope_steep, slope_shallow) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_identity_matrix_has_large_orthogonality_error(self):
        identity = VirtualizationMatrix.identity()
        error = identity.orthogonality_error(-2.5, -0.4)
        assert error > 15.0

    def test_slope_properties_invert_from_alphas(self):
        matrix = VirtualizationMatrix(alpha_12=0.4, alpha_21=0.3)
        assert matrix.slope_steep == pytest.approx(-2.5)
        assert matrix.slope_shallow == pytest.approx(-0.3)

    def test_wrong_vector_size_rejected(self):
        matrix = VirtualizationMatrix(alpha_12=0.3, alpha_21=0.2)
        with pytest.raises(ExtractionError):
            matrix.to_virtual([1.0, 2.0, 3.0])

    def test_as_dict(self):
        matrix = VirtualizationMatrix(alpha_12=0.3, alpha_21=0.2, gate_x="P3", gate_y="P4")
        payload = matrix.as_dict()
        assert payload == {
            "alpha_12": 0.3,
            "alpha_21": 0.2,
            "gate_x": "P3",
            "gate_y": "P4",
        }


class TestArrayVirtualization:
    def test_accumulates_pairwise_coefficients(self):
        array = ArrayVirtualization(("P1", "P2", "P3"))
        array.add_pair(VirtualizationMatrix(0.3, 0.25, gate_x="P1", gate_y="P2"))
        array.add_pair(VirtualizationMatrix(0.2, 0.15, gate_x="P2", gate_y="P3"))
        matrix = array.matrix
        assert matrix[0, 1] == pytest.approx(0.3)
        assert matrix[1, 0] == pytest.approx(0.25)
        assert matrix[1, 2] == pytest.approx(0.2)
        assert matrix[2, 1] == pytest.approx(0.15)
        assert np.allclose(np.diag(matrix), 1.0)
        assert array.is_complete_chain()

    def test_incomplete_chain_detected(self):
        array = ArrayVirtualization(("P1", "P2", "P3"))
        array.add_pair(VirtualizationMatrix(0.3, 0.25, gate_x="P1", gate_y="P2"))
        assert not array.is_complete_chain()

    def test_round_trip_transformation(self):
        array = ArrayVirtualization(("P1", "P2", "P3"))
        array.add_pair(VirtualizationMatrix(0.3, 0.25, gate_x="P1", gate_y="P2"))
        array.add_pair(VirtualizationMatrix(0.2, 0.15, gate_x="P2", gate_y="P3"))
        physical = np.array([0.1, 0.2, 0.3])
        assert np.allclose(array.to_physical(array.to_virtual(physical)), physical)

    def test_unknown_gate_rejected(self):
        array = ArrayVirtualization(("P1", "P2"))
        with pytest.raises(ExtractionError):
            array.add_pair(VirtualizationMatrix(0.3, 0.25, gate_x="P1", gate_y="P9"))

    def test_duplicate_gate_names_rejected(self):
        with pytest.raises(ExtractionError):
            ArrayVirtualization(("P1", "P1"))

    def test_needs_two_gates(self):
        with pytest.raises(ExtractionError):
            ArrayVirtualization(("P1",))

    def test_wrong_vector_size_rejected(self):
        array = ArrayVirtualization(("P1", "P2", "P3"))
        with pytest.raises(ExtractionError):
            array.to_virtual([0.1, 0.2])
