"""Tests for the anchor-point preprocessing step."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AnchorConfig, AnchorFinder
from repro.exceptions import AnchorSearchError
from repro.instrument import ChargeSensorMeter, DatasetBackend, ExperimentSession
from repro.physics import ChargeStabilityDiagram


class TestOnSyntheticDevice:
    def test_anchors_land_near_true_transition_lines(self, clean_csd, clean_session):
        finder = AnchorFinder(clean_session.meter)
        result = finder.find()
        steep, shallow = result.steep_anchor, result.shallow_anchor
        geometry = clean_csd.geometry
        # The steep anchor lies on the dot-1 addition line at its own row:
        # reconstruct the expected column from the ground-truth geometry.
        vx_expected = geometry.crossing_x + (
            float(clean_csd.y_voltages[steep.row]) - geometry.crossing_y
        ) / geometry.slope_steep
        col_expected = int(np.argmin(np.abs(clean_csd.x_voltages - vx_expected)))
        assert abs(steep.col - col_expected) <= 3
        # Same for the shallow anchor along its own column.
        vy_expected = geometry.crossing_y + geometry.slope_shallow * (
            float(clean_csd.x_voltages[shallow.col]) - geometry.crossing_x
        )
        row_expected = int(np.argmin(np.abs(clean_csd.y_voltages - vy_expected)))
        assert abs(shallow.row - row_expected) <= 3

    def test_geometry_of_anchor_pair(self, clean_session):
        result = AnchorFinder(clean_session.meter).find()
        assert result.steep_anchor.col > result.shallow_anchor.col
        assert result.shallow_anchor.row > result.steep_anchor.row

    def test_diagonal_probe_count(self, clean_session):
        finder = AnchorFinder(clean_session.meter)
        pixels, brightest = finder.diagonal_probe()
        assert len(pixels) == 10
        assert brightest in pixels

    def test_brightest_point_is_in_empty_region(self, clean_csd, clean_session):
        finder = AnchorFinder(clean_session.meter)
        _, brightest = finder.diagonal_probe()
        occupations = clean_csd.occupations
        assert tuple(occupations[brightest[0], brightest[1]]) == (0, 0)

    def test_probe_cost_is_a_small_fraction(self, noisy_session):
        result = AnchorFinder(noisy_session.meter).find()
        assert result is not None
        fraction = noisy_session.meter.probe_fraction
        assert fraction < 0.20

    def test_works_on_noisy_data(self, noisy_csd, noisy_session):
        result = AnchorFinder(noisy_session.meter).find()
        assert result.steep_anchor.col > result.shallow_anchor.col
        assert result.shallow_anchor.row > result.steep_anchor.row

    def test_respects_custom_margin(self, clean_csd):
        session = ExperimentSession.from_csd(clean_csd)
        config = AnchorConfig(start_margin_fraction=0.2)
        result = AnchorFinder(session.meter, config).find()
        rows, cols = clean_csd.shape
        assert result.start_point.row >= int(0.2 * (rows - 1))
        assert result.start_point.col >= int(0.2 * (cols - 1))


class TestFailureModes:
    def test_grid_too_small_for_masks(self):
        tiny = ChargeStabilityDiagram(
            data=np.random.default_rng(0).uniform(size=(6, 6)),
            x_voltages=np.linspace(0, 1, 6),
            y_voltages=np.linspace(0, 1, 6),
        )
        meter = ChargeSensorMeter(DatasetBackend(tiny))
        with pytest.raises(AnchorSearchError):
            AnchorFinder(meter).find()

    def test_result_contains_responses(self, clean_session):
        result = AnchorFinder(clean_session.meter).find()
        assert result.mask_x_responses.size > 0
        assert result.mask_y_responses.size > 0
        assert len(result.diagonal_pixels) == 10
