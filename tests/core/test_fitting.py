"""Tests for the two-piece-wise linear transition-line fit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FitConfig, TransitionLineFitter, piecewise_transition_model
from repro.exceptions import FitError


STEEP_ANCHOR = (0.030, 0.000)  # (vx, vy): bottom-right, on the steep line
SHALLOW_ANCHOR = (0.000, 0.024)  # top-left, on the shallow line
TRUE_INTERSECTION = (0.026, 0.020)


def synthetic_points(n_per_line: int = 15, noise: float = 0.0, seed: int = 0) -> np.ndarray:
    """Points sampled from the two ground-truth line segments."""
    rng = np.random.default_rng(seed)
    x0, y0 = TRUE_INTERSECTION
    steep_x = np.linspace(x0, STEEP_ANCHOR[0], n_per_line)
    steep_slope = (STEEP_ANCHOR[1] - y0) / (STEEP_ANCHOR[0] - x0)
    steep_y = y0 + steep_slope * (steep_x - x0)
    shallow_x = np.linspace(SHALLOW_ANCHOR[0], x0, n_per_line)
    shallow_slope = (y0 - SHALLOW_ANCHOR[1]) / (x0 - SHALLOW_ANCHOR[0])
    shallow_y = SHALLOW_ANCHOR[1] + shallow_slope * (shallow_x - SHALLOW_ANCHOR[0])
    xs = np.concatenate([steep_x, shallow_x])
    ys = np.concatenate([steep_y, shallow_y]) + rng.normal(0.0, noise, size=2 * n_per_line)
    return np.column_stack([xs, ys])


class TestPiecewiseModel:
    def test_passes_through_anchors_and_intersection(self):
        x0, y0 = TRUE_INTERSECTION
        for x, expected in [
            (STEEP_ANCHOR[0], STEEP_ANCHOR[1]),
            (SHALLOW_ANCHOR[0], SHALLOW_ANCHOR[1]),
            (x0, y0),
        ]:
            value = piecewise_transition_model(
                np.array([x]), x0, y0, STEEP_ANCHOR, SHALLOW_ANCHOR
            )
            assert value[0] == pytest.approx(expected, abs=1e-12)

    def test_branches_are_linear(self):
        x0, y0 = TRUE_INTERSECTION
        xs = np.linspace(0.0, x0, 10)
        values = piecewise_transition_model(xs, x0, y0, STEEP_ANCHOR, SHALLOW_ANCHOR)
        slopes = np.diff(values) / np.diff(xs)
        assert np.allclose(slopes, slopes[0])


class TestFitter:
    def test_recovers_exact_intersection_without_noise(self):
        fitter = TransitionLineFitter()
        result = fitter.fit(synthetic_points(), STEEP_ANCHOR, SHALLOW_ANCHOR)
        assert result.intersection_voltage[0] == pytest.approx(TRUE_INTERSECTION[0], abs=2e-4)
        assert result.intersection_voltage[1] == pytest.approx(TRUE_INTERSECTION[1], abs=2e-4)
        assert result.converged
        assert result.residual_rms < 1e-4

    def test_recovers_slopes_with_noise(self):
        fitter = TransitionLineFitter()
        result = fitter.fit(
            synthetic_points(noise=3e-4, seed=3), STEEP_ANCHOR, SHALLOW_ANCHOR
        )
        true_steep = (STEEP_ANCHOR[1] - TRUE_INTERSECTION[1]) / (
            STEEP_ANCHOR[0] - TRUE_INTERSECTION[0]
        )
        true_shallow = (TRUE_INTERSECTION[1] - SHALLOW_ANCHOR[1]) / (
            TRUE_INTERSECTION[0] - SHALLOW_ANCHOR[0]
        )
        assert result.slope_steep == pytest.approx(true_steep, rel=0.25)
        assert result.slope_shallow == pytest.approx(true_shallow, rel=0.25)

    def test_slopes_have_expected_signs(self):
        result = TransitionLineFitter().fit(synthetic_points(), STEEP_ANCHOR, SHALLOW_ANCHOR)
        assert result.slope_steep < 0
        assert result.slope_shallow < 0
        assert abs(result.slope_steep) > abs(result.slope_shallow)

    def test_n_points_recorded(self):
        points = synthetic_points(n_per_line=8)
        result = TransitionLineFitter().fit(points, STEEP_ANCHOR, SHALLOW_ANCHOR)
        assert result.n_points_used == len(points)

    def test_too_few_points_rejected(self):
        with pytest.raises(FitError):
            TransitionLineFitter(FitConfig(min_points=5)).fit(
                synthetic_points()[:3], STEEP_ANCHOR, SHALLOW_ANCHOR
            )

    def test_bad_anchor_arrangement_rejected(self):
        with pytest.raises(FitError):
            TransitionLineFitter().fit(synthetic_points(), SHALLOW_ANCHOR, STEEP_ANCHOR)

    def test_wrong_point_shape_rejected(self):
        with pytest.raises(FitError):
            TransitionLineFitter().fit(np.zeros((5, 3)), STEEP_ANCHOR, SHALLOW_ANCHOR)
