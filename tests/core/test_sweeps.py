"""Tests for the shrinking-triangle row/column sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AnchorFinder,
    PixelPoint,
    SweepConfig,
    TransitionLineSweeper,
)
from repro.exceptions import SweepError
from repro.instrument import ChargeSensorMeter, DatasetBackend, ExperimentSession
from repro.physics import ChargeStabilityDiagram


def line_distance_pixels(csd, points, slope, crossing_x, crossing_y) -> np.ndarray:
    """Perpendicular pixel distance of (row, col) points from a ground-truth line."""
    distances = []
    x_step, y_step = csd.x_step, csd.y_step
    for row, col in points:
        vx = csd.x_voltages[col]
        vy = csd.y_voltages[row]
        # Line through the crossing point with the given slope.
        residual_v = vy - (crossing_y + slope * (vx - crossing_x))
        # Convert the vertical voltage residual to pixels and project.
        residual_rows = residual_v / y_step
        slope_pixels = slope * x_step / y_step
        distances.append(abs(residual_rows) / np.sqrt(1.0 + slope_pixels**2))
    return np.array(distances)


@pytest.fixture()
def anchors_and_meter(clean_csd):
    session = ExperimentSession.from_csd(clean_csd)
    anchors = AnchorFinder(session.meter).find()
    return anchors, session.meter


class TestRowSweep:
    def test_tracks_steep_line(self, clean_csd, anchors_and_meter):
        anchors, meter = anchors_and_meter
        sweeper = TransitionLineSweeper(meter)
        trace = sweeper.row_major_sweep(anchors.steep_anchor, anchors.shallow_anchor)
        assert trace.direction == "row-major"
        assert trace.n_points > 10
        geometry = clean_csd.geometry
        # Points found below the crossing row should hug the steep line.
        crossing_row = int(
            np.argmin(np.abs(clean_csd.y_voltages - geometry.crossing_y))
        )
        steep_points = [p for p in trace.transition_points if p[0] < crossing_row - 2]
        assert len(steep_points) > 5
        distances = line_distance_pixels(
            clean_csd,
            steep_points,
            geometry.slope_steep,
            geometry.crossing_x,
            geometry.crossing_y,
        )
        assert np.median(distances) < 2.5

    def test_one_point_per_swept_row(self, anchors_and_meter):
        anchors, meter = anchors_and_meter
        trace = TransitionLineSweeper(meter).row_major_sweep(
            anchors.steep_anchor, anchors.shallow_anchor
        )
        rows = [p[0] for p in trace.transition_points]
        assert len(rows) == len(set(rows))

    def test_segments_stay_small_near_steep_line(self, anchors_and_meter):
        anchors, meter = anchors_and_meter
        trace = TransitionLineSweeper(meter).row_major_sweep(
            anchors.steep_anchor, anchors.shallow_anchor
        )
        # The shrinking triangle keeps early segments short (a few pixels).
        early = trace.segment_lengths[: max(3, len(trace.segment_lengths) // 4)]
        assert np.median(early) <= 6


class TestColumnSweep:
    def test_tracks_shallow_line(self, clean_csd, anchors_and_meter):
        anchors, meter = anchors_and_meter
        trace = TransitionLineSweeper(meter).column_major_sweep(
            anchors.steep_anchor, anchors.shallow_anchor
        )
        assert trace.direction == "column-major"
        assert trace.n_points > 10
        geometry = clean_csd.geometry
        crossing_col = int(
            np.argmin(np.abs(clean_csd.x_voltages - geometry.crossing_x))
        )
        shallow_points = [p for p in trace.transition_points if p[1] < crossing_col - 2]
        assert len(shallow_points) > 5
        distances = line_distance_pixels(
            clean_csd,
            shallow_points,
            geometry.slope_shallow,
            geometry.crossing_x,
            geometry.crossing_y,
        )
        assert np.median(distances) < 2.5

    def test_one_point_per_swept_column(self, anchors_and_meter):
        anchors, meter = anchors_and_meter
        trace = TransitionLineSweeper(meter).column_major_sweep(
            anchors.steep_anchor, anchors.shallow_anchor
        )
        cols = [p[1] for p in trace.transition_points]
        assert len(cols) == len(set(cols))


class TestRunBoth:
    def test_run_returns_both_traces(self, anchors_and_meter):
        anchors, meter = anchors_and_meter
        row_trace, column_trace = TransitionLineSweeper(meter).run(
            anchors.steep_anchor, anchors.shallow_anchor
        )
        assert row_trace.n_points > 0
        assert column_trace.n_points > 0

    def test_disabled_sweep_yields_empty_trace(self, anchors_and_meter):
        anchors, meter = anchors_and_meter
        sweeper = TransitionLineSweeper(meter, SweepConfig(run_column_sweep=False))
        row_trace, column_trace = sweeper.run(anchors.steep_anchor, anchors.shallow_anchor)
        assert row_trace.n_points > 0
        assert column_trace.n_points == 0

    def test_degenerate_anchors_raise(self):
        flat = ChargeStabilityDiagram(
            data=np.ones((20, 20)),
            x_voltages=np.linspace(0, 1, 20),
            y_voltages=np.linspace(0, 1, 20),
        )
        meter = ChargeSensorMeter(DatasetBackend(flat))
        sweeper = TransitionLineSweeper(meter)
        with pytest.raises(SweepError):
            # Anchors adjacent to each other leave no rows/columns to sweep.
            sweeper.run(PixelPoint(row=0, col=2), PixelPoint(row=1, col=1))

    def test_probe_fraction_stays_low(self, clean_csd, anchors_and_meter):
        anchors, meter = anchors_and_meter
        TransitionLineSweeper(meter).run(anchors.steep_anchor, anchors.shallow_anchor)
        assert meter.probe_fraction < 0.25
