"""Tests for the erroneous-point filtering (Algorithm 3 post-processing)."""

from __future__ import annotations

from repro.core import (
    SweepTrace,
    build_point_set,
    filter_transition_points,
    leftmost_point_per_row,
    lowest_point_per_column,
)


class TestElementaryFilters:
    def test_lowest_point_per_column(self):
        points = [(5, 3), (2, 3), (7, 3), (4, 8)]
        assert lowest_point_per_column(points) == {(2, 3), (4, 8)}

    def test_leftmost_point_per_row(self):
        points = [(3, 5), (3, 2), (3, 9), (8, 4)]
        assert leftmost_point_per_row(points) == {(3, 2), (8, 4)}

    def test_empty_input(self):
        assert lowest_point_per_column([]) == set()
        assert leftmost_point_per_row([]) == set()
        assert filter_transition_points([]) == ()


class TestJoinedFilter:
    def test_union_keeps_both_line_families(self):
        # Steep-line points (one per row, right side) and shallow-line points
        # (one per column, top side) must all survive the joined filter.
        steep = [(row, 20 - row // 4) for row in range(0, 12)]
        shallow = [(18 - col // 4, col) for col in range(0, 12)]
        filtered = set(filter_transition_points(steep + shallow))
        assert set(steep).issubset(filtered)
        assert set(shallow).issubset(filtered)

    def test_spurious_point_above_steep_line_removed(self):
        # A column-sweep mistake high above the steep line is dropped when a
        # reliable row-sweep point sits below it in the same column AND a
        # reliable column-sweep point sits to its left in the same row --
        # exactly the situation the paper's Figure 6 illustrates.
        good = [(2, 15), (3, 15), (4, 14), (12, 3)]
        spurious = [(12, 15)]
        filtered = set(filter_transition_points(good + spurious))
        assert (12, 15) not in filtered
        assert set(good).issubset(filtered)

    def test_spurious_point_right_of_shallow_line_removed(self):
        # A row-sweep mistake far to the right of the shallow line is dropped
        # because the column-sweep point to its left wins the per-row filter
        # and the steep-line point below it wins the per-column filter.
        good = [(15, 2), (15, 3), (4, 14)]
        spurious = [(15, 14)]
        filtered = set(filter_transition_points(good + spurious))
        assert (15, 14) not in filtered
        assert (15, 2) in filtered

    def test_isolated_spurious_point_survives(self):
        # A mistake that is alone in both its row and its column cannot be
        # removed by the order-statistics filter; the later fit absorbs it.
        filtered = set(filter_transition_points([(2, 15), (12, 9)]))
        assert (12, 9) in filtered

    def test_duplicates_collapse(self):
        filtered = filter_transition_points([(3, 3), (3, 3), (3, 3)])
        assert filtered == ((3, 3),)

    def test_output_sorted(self):
        filtered = filter_transition_points([(9, 1), (1, 9), (5, 5)])
        assert list(filtered) == sorted(filtered)


class TestBuildPointSet:
    def _traces(self):
        row_trace = SweepTrace(
            direction="row-major",
            transition_points=((2, 15), (3, 15), (12, 15)),
            segment_lengths=(2, 2, 9),
        )
        column_trace = SweepTrace(
            direction="column-major",
            transition_points=((15, 2), (14, 3), (12, 4)),
            segment_lengths=(2, 2, 3),
        )
        return row_trace, column_trace

    def test_with_filter(self):
        row_trace, column_trace = self._traces()
        point_set = build_point_set(row_trace, column_trace, apply_filter=True)
        assert (12, 15) not in point_set.filtered_points
        assert point_set.raw_points == row_trace.transition_points + column_trace.transition_points
        assert point_set.n_filtered < len(point_set.raw_points)

    def test_without_filter(self):
        row_trace, column_trace = self._traces()
        point_set = build_point_set(row_trace, column_trace, apply_filter=False)
        assert set(point_set.filtered_points) == set(point_set.raw_points)

    def test_trace_statistics(self):
        row_trace, column_trace = self._traces()
        assert row_trace.n_points == 3
        assert row_trace.total_probed_segments == 13
        assert column_trace.n_points == 3
        assert column_trace.total_probed_segments == 7


class TestBuildPointSetEdgeCases:
    @staticmethod
    def _trace(direction: str, points: tuple[tuple[int, int], ...]) -> SweepTrace:
        return SweepTrace(
            direction=direction,
            transition_points=points,
            segment_lengths=tuple(2 for _ in points),
        )

    def test_both_traces_empty(self):
        point_set = build_point_set(
            self._trace("row-major", ()), self._trace("column-major", ())
        )
        assert point_set.raw_points == ()
        assert point_set.filtered_points == ()
        assert point_set.n_filtered == 0

    def test_one_trace_empty(self):
        point_set = build_point_set(
            self._trace("row-major", ((4, 7),)), self._trace("column-major", ())
        )
        assert point_set.filtered_points == ((4, 7),)

    def test_single_point_traces(self):
        # One point per sweep: both are their own column-minimum and
        # row-minimum, so both survive the union filter.
        point_set = build_point_set(
            self._trace("row-major", ((2, 9),)),
            self._trace("column-major", ((9, 2),)),
        )
        assert set(point_set.filtered_points) == {(2, 9), (9, 2)}

    def test_duplicate_point_shared_by_both_sweeps(self):
        # The same pixel found by both sweeps must appear once, not twice,
        # in the filtered union (sets collapse it on the filter path).
        shared = (5, 5)
        point_set = build_point_set(
            self._trace("row-major", (shared, (2, 9))),
            self._trace("column-major", (shared, (9, 2))),
        )
        assert point_set.filtered_points.count(shared) == 1
        assert point_set.raw_points.count(shared) == 2  # raw view keeps both

    def test_no_filter_preserves_every_raw_point(self):
        row = self._trace("row-major", ((2, 15), (3, 15), (12, 15)))
        column = self._trace("column-major", ((15, 2), (12, 15)))
        point_set = build_point_set(row, column, apply_filter=False)
        # Every raw point survives (deduplicated and sorted), including the
        # spurious ones the filter would have removed.
        assert set(point_set.filtered_points) == set(point_set.raw_points)
        assert list(point_set.filtered_points) == sorted(set(point_set.raw_points))
        assert (12, 15) in point_set.filtered_points
