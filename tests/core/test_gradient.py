"""Tests for the feature gradient, anchor masks, and Gaussian window."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FeatureGradient, MaskResponse, gaussian_window, oriented_mask
from repro.core.config import PAPER_MASK_X, PAPER_MASK_Y
from repro.instrument import ChargeSensorMeter, DatasetBackend
from repro.physics import ChargeStabilityDiagram


def make_step_csd(step_col: int = 10, size: int = 20, high: float = 1.0, low: float = 0.2):
    """A synthetic diagram with a vertical current step at ``step_col``."""
    data = np.full((size, size), high)
    data[:, step_col:] = low
    return ChargeStabilityDiagram(
        data=data,
        x_voltages=np.linspace(0.0, 1.0, size),
        y_voltages=np.linspace(0.0, 1.0, size),
    )


def make_horizontal_step_csd(step_row: int = 10, size: int = 20):
    data = np.full((size, size), 1.0)
    data[step_row:, :] = 0.2
    return ChargeStabilityDiagram(
        data=data,
        x_voltages=np.linspace(0.0, 1.0, size),
        y_voltages=np.linspace(0.0, 1.0, size),
    )


def meter_for(csd) -> ChargeSensorMeter:
    return ChargeSensorMeter(DatasetBackend(csd))


class TestFeatureGradient:
    def test_peaks_just_before_vertical_step(self):
        csd = make_step_csd(step_col=10)
        gradient = FeatureGradient(meter_for(csd))
        values = [gradient.value(5, col) for col in range(3, 17)]
        best_col = 3 + int(np.argmax(values))
        assert best_col == 9  # last bright pixel before the step

    def test_peaks_just_before_horizontal_step(self):
        csd = make_horizontal_step_csd(step_row=12)
        gradient = FeatureGradient(meter_for(csd))
        values = [gradient.value(row, 5) for row in range(5, 18)]
        best_row = 5 + int(np.argmax(values))
        assert best_row == 11

    def test_zero_on_flat_region(self):
        csd = make_step_csd(step_col=15)
        gradient = FeatureGradient(meter_for(csd))
        assert gradient.value(5, 2) == pytest.approx(0.0)

    def test_edge_pixels_clamped(self):
        csd = make_step_csd()
        gradient = FeatureGradient(meter_for(csd))
        # Should not raise at the top-right corner.
        value = gradient.value(csd.shape[0] - 1, csd.shape[1] - 1)
        assert np.isfinite(value)

    def test_probes_are_logged(self):
        csd = make_step_csd()
        meter = meter_for(csd)
        FeatureGradient(meter).value(5, 5)
        assert meter.n_probes == 3  # centre, right, upper-right

    def test_delta_validation(self):
        csd = make_step_csd()
        with pytest.raises(ValueError):
            FeatureGradient(meter_for(csd), delta_pixels=0)

    def test_larger_delta_spans_wider(self):
        csd = make_step_csd(step_col=10)
        gradient = FeatureGradient(meter_for(csd), delta_pixels=3)
        # With delta 3 the feature already sees the step from 3 pixels away.
        assert gradient.value(5, 8) > 0


class TestOrientedMask:
    def test_flips_vertically(self):
        mask = oriented_mask(PAPER_MASK_X)
        assert np.allclose(mask[0], PAPER_MASK_X[2])
        assert np.allclose(mask[-1], PAPER_MASK_X[0])

    def test_shape_preserved(self):
        assert oriented_mask(PAPER_MASK_Y).shape == (5, 3)


class TestMaskResponse:
    def test_mask_x_sweep_peaks_at_vertical_edge(self):
        csd = make_step_csd(step_col=12, size=24)
        meter = meter_for(csd)
        response = MaskResponse(meter, PAPER_MASK_X)
        responses = response.sweep_along_columns(start_col=2, end_col=17, center_row=8)
        best_start = 2 + int(np.argmax(responses))
        # Mask centre = start + 2 should land near the bright side of the edge.
        assert abs((best_start + 2) - 11) <= 1

    def test_mask_y_sweep_peaks_at_horizontal_edge(self):
        csd = make_horizontal_step_csd(step_row=13)
        meter = meter_for(csd)
        response = MaskResponse(meter, PAPER_MASK_Y)
        responses = response.sweep_along_rows(start_row=2, end_row=14, center_col=8)
        best_start = 2 + int(np.argmax(responses))
        assert abs((best_start + 2) - 12) <= 1

    def test_response_probes_mask_footprint(self):
        csd = make_step_csd()
        meter = meter_for(csd)
        MaskResponse(meter, PAPER_MASK_X).response(5, 5)
        assert meter.n_probes == 15  # 3x5 patch


class TestGaussianWindow:
    def test_length_and_peak_position(self):
        window = gaussian_window(21, center_fraction=0.5, sigma_fraction=0.2)
        assert window.shape == (21,)
        assert int(np.argmax(window)) == 10
        assert window.max() == pytest.approx(1.0)

    def test_single_sample(self):
        assert np.allclose(gaussian_window(1), [1.0])

    def test_off_center(self):
        window = gaussian_window(11, center_fraction=0.0)
        assert int(np.argmax(window)) == 0

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            gaussian_window(0)
