"""Tests for the extraction configuration objects."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AnchorConfig, ExtractionConfig, FitConfig, SweepConfig
from repro.core.config import PAPER_MASK_X, PAPER_MASK_Y
from repro.exceptions import ConfigurationError


class TestPaperMasks:
    def test_mask_shapes_match_paper(self):
        assert np.asarray(PAPER_MASK_X).shape == (3, 5)
        assert np.asarray(PAPER_MASK_Y).shape == (5, 3)

    def test_mask_x_values_match_paper(self):
        assert PAPER_MASK_X[0] == (1, 1, -3, -4, -4)
        assert PAPER_MASK_X[2] == (4, 4, 3, -1, -1)

    def test_mask_y_values_match_paper(self):
        assert PAPER_MASK_Y[0] == (-1, -2, -4)
        assert PAPER_MASK_Y[4] == (4, 2, 1)


class TestAnchorConfig:
    def test_defaults_match_paper(self):
        config = AnchorConfig()
        assert config.n_diagonal_points == 10
        assert config.start_margin_fraction == pytest.approx(0.10)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_diagonal_points": 1},
            {"start_margin_fraction": 0.6},
            {"gaussian_sigma_fraction": 0.0},
            {"gaussian_center_fraction": 1.5},
            {"mask_x": ((),)},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            AnchorConfig(**kwargs)

    def test_mask_arrays(self):
        config = AnchorConfig()
        assert config.mask_x_array().shape == (3, 5)
        assert config.mask_y_array().shape == (5, 3)


class TestSweepConfig:
    def test_defaults(self):
        config = SweepConfig()
        assert config.delta_pixels == 1
        assert config.run_row_sweep and config.run_column_sweep
        assert config.apply_postprocess

    def test_invalid_delta(self):
        with pytest.raises(ConfigurationError):
            SweepConfig(delta_pixels=0)

    def test_both_sweeps_disabled_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepConfig(run_row_sweep=False, run_column_sweep=False)


class TestFitConfig:
    def test_defaults(self):
        config = FitConfig()
        assert config.min_points >= 3
        assert config.min_steep_slope_magnitude == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_points": 2},
            {"max_function_evaluations": 1},
            {"min_steep_slope_magnitude": 0.0},
            {"max_shallow_slope_magnitude": -1.0},
            {"max_alpha": 0.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FitConfig(**kwargs)


class TestExtractionConfig:
    def test_paper_defaults(self):
        config = ExtractionConfig.paper_defaults()
        assert isinstance(config.anchors, AnchorConfig)
        assert isinstance(config.sweeps, SweepConfig)
        assert isinstance(config.fit, FitConfig)

    def test_replace_single_section(self):
        config = ExtractionConfig.paper_defaults()
        updated = config.replace(sweeps=SweepConfig(run_column_sweep=False))
        assert updated.sweeps.run_column_sweep is False
        assert updated.anchors is config.anchors
        # Original untouched (frozen dataclasses).
        assert config.sweeps.run_column_sweep is True

    def test_replace_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            ExtractionConfig.paper_defaults().replace(bogus=1)
