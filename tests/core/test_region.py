"""Tests for the triangular search region geometry."""

from __future__ import annotations

import pytest

from repro.core import PixelPoint, TriangularRegion
from repro.exceptions import SweepError


@pytest.fixture()
def region() -> TriangularRegion:
    # Mirrors the worked example geometry: steep anchor bottom-right,
    # shallow anchor top-left.
    return TriangularRegion(
        steep_anchor=PixelPoint(row=1, col=12),
        shallow_anchor=PixelPoint(row=11, col=0),
    )


class TestConstruction:
    def test_anchor_arrangement_enforced(self):
        with pytest.raises(SweepError):
            TriangularRegion(
                steep_anchor=PixelPoint(row=11, col=12),
                shallow_anchor=PixelPoint(row=1, col=0),
            )
        with pytest.raises(SweepError):
            TriangularRegion(
                steep_anchor=PixelPoint(row=1, col=0),
                shallow_anchor=PixelPoint(row=11, col=12),
            )

    def test_corner_is_fixed_row_moving_col(self, region):
        corner = region.corner
        assert corner.row == 11
        assert corner.col == 12


class TestMembership:
    def test_anchors_and_corner_inside(self, region):
        assert region.contains(1, 12)
        assert region.contains(11, 0)
        assert region.contains(11, 12)

    def test_point_outside_bounding_box(self, region):
        assert not region.contains(0, 5)
        assert not region.contains(12, 5)
        assert not region.contains(5, 13)

    def test_point_below_hypotenuse_excluded(self, region):
        # At row 6 the hypotenuse sits at column 6; column 3 is on the wrong side.
        assert not region.contains(6, 3)
        assert region.contains(6, 7)

    def test_pixel_count_matches_segments(self, region):
        count = region.pixel_count()
        manual = sum(len(region.row_segment(row)) for row in range(1, 12))
        assert count == manual
        assert count > 0


class TestSegments:
    def test_row_segment_short_next_to_steep_anchor(self, region):
        # The row adjacent to the steep anchor only contains the two pixels
        # hugging the transition line — the paper's worked example (Fig. 5a).
        segment = region.row_segment(2)
        assert segment == [11, 12]

    def test_row_segment_long_in_shallow_region(self, region):
        # Near the shallow anchor's row the in-region segment is long; this is
        # exactly the error-prone regime the column sweep and the filter fix.
        segment = region.row_segment(10)
        assert segment[-1] == 12
        assert len(segment) > 5

    def test_row_segment_outside_rows_empty(self, region):
        assert region.row_segment(0) == []
        assert region.row_segment(12) == []

    def test_column_segment_outside_cols_empty(self, region):
        assert region.column_segment(13) == []

    def test_column_segment_short_next_to_shallow_anchor(self, region):
        segment = region.column_segment(1)
        assert segment == [11]

    def test_segments_shrink_after_anchor_update(self, region):
        wide = region.row_segment(9)
        shrunk = region.with_steep_anchor(PixelPoint(row=8, col=9)).row_segment(9)
        assert len(wide) >= len(shrunk) or shrunk == []

    def test_hypotenuse_endpoints(self, region):
        assert region.hypotenuse_col_at_row(1) == pytest.approx(12.0)
        assert region.hypotenuse_col_at_row(11) == pytest.approx(0.0)
        assert region.hypotenuse_row_at_col(12) == pytest.approx(1.0)
        assert region.hypotenuse_row_at_col(0) == pytest.approx(11.0)
