"""End-to-end tests of the fast virtual gate extraction pipeline."""

from __future__ import annotations

import pytest

from repro.core import ExtractionConfig, FastVirtualGateExtractor, FitConfig
from repro.exceptions import ExtractionError
from repro.instrument import ExperimentSession
from repro.physics import CSDSimulator, DotArrayDevice, WhiteNoise


class TestOnCleanData:
    def test_recovers_ground_truth_alphas(self, clean_csd, clean_session):
        result = FastVirtualGateExtractor().extract(clean_session)
        assert result.success
        geometry = clean_csd.geometry
        assert result.matrix.alpha_12 == pytest.approx(geometry.alpha_12, abs=0.06)
        assert result.matrix.alpha_21 == pytest.approx(geometry.alpha_21, abs=0.06)

    def test_probe_fraction_far_below_full_scan(self, clean_session):
        result = FastVirtualGateExtractor().extract(clean_session)
        assert result.probe_stats.probe_fraction < 0.25
        assert result.probe_stats.n_probes == clean_session.meter.n_probes

    def test_simulated_runtime_matches_probe_count(self, clean_session):
        result = FastVirtualGateExtractor().extract(clean_session)
        assert result.probe_stats.elapsed_s == pytest.approx(
            0.05 * result.probe_stats.n_probes
        )

    def test_result_contains_intermediate_artifacts(self, clean_session):
        result = FastVirtualGateExtractor().extract(clean_session)
        assert result.anchors is not None
        assert result.points is not None
        assert result.points.n_filtered >= 4
        assert result.fit is not None
        assert result.method == "fast-extraction"
        summary = result.summary()
        assert summary["success"] is True
        assert summary["n_probes"] > 0

    def test_gate_names_propagate_from_csd(self, clean_session):
        result = FastVirtualGateExtractor().extract(clean_session)
        assert result.matrix.gate_x == "P1"
        assert result.matrix.gate_y == "P2"

    def test_extraction_orthogonalizes_true_lines(self, clean_csd, clean_session):
        result = FastVirtualGateExtractor().extract(clean_session)
        geometry = clean_csd.geometry
        residual = result.matrix.orthogonality_error(
            geometry.slope_steep, geometry.slope_shallow
        )
        assert residual < 3.0  # degrees

    def test_accepts_bare_meter(self, clean_session):
        result = FastVirtualGateExtractor().extract(clean_session.meter)
        assert result.success

    def test_rejects_wrong_target_type(self):
        with pytest.raises(ExtractionError):
            FastVirtualGateExtractor().extract("not a session")

    def test_nameless_backend_rejected_instead_of_mislabeled(self, clean_csd):
        # Regression: a backend exposing neither a CSD nor gate-name
        # attributes used to fall back silently to ("P1", "P2"), mislabeling
        # every result extracted through it.  It must fail loudly instead.
        from repro.instrument.measurement import ChargeSensorMeter, MeasurementBackend

        class NamelessBackend(MeasurementBackend):
            @property
            def x_voltages(self):
                return clean_csd.x_voltages

            @property
            def y_voltages(self):
                return clean_csd.y_voltages

            def current(self, row, col, time_s=None):
                return float(clean_csd.data[row, col])

        meter = ChargeSensorMeter(NamelessBackend())
        with pytest.raises(ExtractionError, match="gate names"):
            FastVirtualGateExtractor().extract(meter)

    def test_partially_named_backend_also_rejected(self, clean_csd):
        # One gate name without the other is just as unlabelable.
        from repro.core import gate_names_for
        from repro.instrument.measurement import ChargeSensorMeter, MeasurementBackend

        class HalfNamedBackend(MeasurementBackend):
            gate_x_name = "P1"

            @property
            def x_voltages(self):
                return clean_csd.x_voltages

            @property
            def y_voltages(self):
                return clean_csd.y_voltages

            def current(self, row, col, time_s=None):
                return float(clean_csd.data[row, col])

        with pytest.raises(ExtractionError, match="gate names"):
            gate_names_for(ChargeSensorMeter(HalfNamedBackend()))


class TestOnNoisyData:
    def test_succeeds_with_lab_noise(self, noisy_csd, noisy_session):
        result = FastVirtualGateExtractor().extract(noisy_session)
        assert result.success
        geometry = noisy_csd.geometry
        assert result.matrix.alpha_12 == pytest.approx(geometry.alpha_12, abs=0.08)
        assert result.matrix.alpha_21 == pytest.approx(geometry.alpha_21, abs=0.08)

    def test_100px_probe_fraction_near_ten_percent(self, noisy_csd_100):
        session = ExperimentSession.from_csd(noisy_csd_100)
        result = FastVirtualGateExtractor().extract(session)
        assert result.success
        assert 0.05 < result.probe_stats.probe_fraction < 0.18

    def test_fails_gracefully_on_extreme_noise(self, double_dot_device):
        simulator = CSDSimulator(double_dot_device)
        csd = simulator.simulate(63, noise=WhiteNoise(sigma_na=2.0), seed=13)
        session = ExperimentSession.from_csd(csd)
        result = FastVirtualGateExtractor().extract(session)
        # Either the pipeline reports failure, or (rarely) it returns a matrix;
        # it must never raise and must always report its probe cost.
        assert result.probe_stats.n_probes > 0
        if not result.success:
            assert result.failure_reason != ""


class TestConfiguration:
    def test_strict_fit_config_can_reject(self, clean_session):
        config = ExtractionConfig.paper_defaults().replace(
            fit=FitConfig(max_alpha=1e-6)
        )
        result = FastVirtualGateExtractor(config).extract(clean_session)
        assert not result.success
        assert "alpha" in result.failure_reason

    def test_validation_failure_keeps_rejected_matrix(self, clean_session):
        # Regression: the validation-failure path must keep the rejected
        # matrix (and slopes) visible so a failed run can be diagnosed.
        config = ExtractionConfig.paper_defaults().replace(
            fit=FitConfig(max_alpha=1e-6)
        )
        result = FastVirtualGateExtractor(config).extract(clean_session)
        assert not result.success
        assert result.matrix is not None
        assert result.slopes is not None
        assert result.alpha_12 is not None and result.alpha_12 > 1e-6
        assert result.failure_reason != ""

    def test_different_devices_give_different_alphas(self):
        weak = DotArrayDevice.double_dot(cross_coupling=(0.12, 0.10))
        strong = DotArrayDevice.double_dot(cross_coupling=(0.38, 0.34))
        results = []
        for device in (weak, strong):
            csd = CSDSimulator(device).simulate(63, seed=1)
            session = ExperimentSession.from_csd(csd)
            results.append(FastVirtualGateExtractor().extract(session))
        assert results[0].success and results[1].success
        assert results[1].matrix.alpha_12 > results[0].matrix.alpha_12
        assert results[1].matrix.alpha_21 > results[0].matrix.alpha_21

    def test_device_backend_session(self, double_dot_device):
        session = ExperimentSession.from_device(double_dot_device, resolution=63, seed=2)
        result = FastVirtualGateExtractor().extract(session)
        assert result.success
        truth = double_dot_device.ground_truth_alphas(0, 1, "P1", "P2")
        assert result.matrix.alpha_12 == pytest.approx(truth[0], abs=0.08)
