"""Tests for the n-dot array extension (sequential pairwise extraction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ArrayVirtualGateExtractor
from repro.exceptions import ExtractionError
from repro.physics import DotArrayDevice


@pytest.fixture(scope="module")
def triple_dot_result():
    device = DotArrayDevice.linear_array(n_dots=3)
    extractor = ArrayVirtualGateExtractor(resolution=63, seed=21)
    return device, extractor.extract(device)


class TestTripleDot:
    def test_runs_n_minus_one_pairs(self, triple_dot_result):
        _, outcome = triple_dot_result
        assert outcome.n_pairs == 2
        assert [(r.dot_a, r.dot_b) for r in outcome.pair_records] == [(0, 1), (1, 2)]
        assert [(r.gate_x, r.gate_y) for r in outcome.pair_records] == [
            ("P1", "P2"),
            ("P2", "P3"),
        ]

    def test_all_pairs_succeed_and_match_truth(self, triple_dot_result):
        _, outcome = triple_dot_result
        assert outcome.all_pairs_succeeded
        assert outcome.max_alpha_error() < 0.08

    def test_matrix_structure(self, triple_dot_result):
        device, outcome = triple_dot_result
        matrix = outcome.virtualization.matrix
        assert matrix.shape == (3, 3)
        assert np.allclose(np.diag(matrix), 1.0)
        # Neighbouring couplings were measured, so they are non-zero ...
        assert matrix[0, 1] > 0 and matrix[1, 0] > 0
        assert matrix[1, 2] > 0 and matrix[2, 1] > 0
        # ... while non-neighbouring entries stay at zero (not measured by the
        # sequential pairwise procedure of the paper).
        assert matrix[0, 2] == 0.0 and matrix[2, 0] == 0.0
        assert outcome.virtualization.is_complete_chain()

    def test_costs_accumulate(self, triple_dot_result):
        _, outcome = triple_dot_result
        per_pair = [r.result.probe_stats for r in outcome.pair_records]
        assert outcome.total_probes == sum(p.n_probes for p in per_pair)
        assert outcome.total_elapsed_s == pytest.approx(sum(p.elapsed_s for p in per_pair))

    def test_metadata(self, triple_dot_result):
        device, outcome = triple_dot_result
        assert outcome.metadata["n_dots"] == 3
        assert outcome.metadata["device"] == device.name


class TestParallelDispatch:
    def test_parallel_matches_sequential_bit_for_bit(self, triple_dot_result):
        device, sequential = triple_dot_result
        parallel = ArrayVirtualGateExtractor(
            resolution=63, seed=21, n_workers=2
        ).extract(device)
        assert np.array_equal(
            parallel.virtualization.matrix, sequential.virtualization.matrix
        )
        assert parallel.total_probes == sequential.total_probes
        assert parallel.total_elapsed_s == sequential.total_elapsed_s
        for seq_rec, par_rec in zip(sequential.pair_records, parallel.pair_records):
            assert (seq_rec.dot_a, seq_rec.dot_b) == (par_rec.dot_a, par_rec.dot_b)
            assert seq_rec.result.matrix.alpha_12 == par_rec.result.matrix.alpha_12
            assert seq_rec.result.matrix.alpha_21 == par_rec.result.matrix.alpha_21

    def test_worker_count_recorded(self, triple_dot_result):
        _, outcome = triple_dot_result
        assert outcome.metadata["n_workers"] == 1


class TestValidation:
    def test_single_dot_rejected(self):
        device = DotArrayDevice.linear_array(n_dots=1)
        with pytest.raises(ExtractionError):
            ArrayVirtualGateExtractor(resolution=32).extract(device)

    def test_tiny_resolution_rejected(self):
        with pytest.raises(ExtractionError):
            ArrayVirtualGateExtractor(resolution=4)

    def test_zero_workers_rejected(self):
        with pytest.raises(ExtractionError):
            ArrayVirtualGateExtractor(n_workers=0)
