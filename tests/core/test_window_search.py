"""Tests for the experimental transition-window search and auto-tune workflow."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AutoTuningWorkflow,
    TransitionWindowFinder,
    WindowSearchConfig,
    tilted_gradient_image,
)
from repro.core.window_search import _first_and_second_crossings
from repro.exceptions import ExtractionError
from repro.physics import CSDSimulator, DotArrayDevice, standard_lab_noise


class TestTiltedGradientImage:
    def test_matches_probe_level_feature(self, clean_csd):
        from repro.core import FeatureGradient
        from repro.instrument import ChargeSensorMeter, DatasetBackend

        image_gradient = tilted_gradient_image(clean_csd.data)
        meter = ChargeSensorMeter(DatasetBackend(clean_csd))
        probe_gradient = FeatureGradient(meter)
        for row, col in [(5, 5), (20, 40), (0, 0), (30, 10)]:
            assert image_gradient[row, col] == pytest.approx(
                probe_gradient.value(row, col), abs=1e-12
            )

    def test_rejects_non_2d(self):
        with pytest.raises(ExtractionError):
            tilted_gradient_image(np.zeros(5))

    def test_zero_on_flat_image(self):
        assert np.allclose(tilted_gradient_image(np.full((8, 8), 1.3)), 0.0)


class TestFirstAndSecondCrossings:
    def test_two_separated_features(self):
        mask = np.array([0, 0, 1, 1, 0, 0, 0, 1, 0], dtype=bool)
        assert _first_and_second_crossings(mask) == (2, 7)

    def test_adjacent_pixels_are_one_feature(self):
        mask = np.array([0, 1, 1, 0, 0], dtype=bool)
        assert _first_and_second_crossings(mask) == (1, None)

    def test_empty(self):
        assert _first_and_second_crossings(np.zeros(6, dtype=bool)) == (None, None)


class TestWindowSearchConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"coarse_resolution": 4},
            {"relative_threshold": 0.0},
            {"edge_fraction": 0.0},
            {"span_in_spacings": 0.0},
            {"fallback_span_fraction": 1.5},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ExtractionError):
            WindowSearchConfig(**kwargs)


class TestTransitionWindowFinder:
    def test_window_contains_first_crossing(self):
        device = DotArrayDevice.double_dot(
            cross_coupling=(0.25, 0.22), voltage_range=(0.0, 0.05)
        )
        finder = TransitionWindowFinder(device, noise=standard_lab_noise(), seed=3)
        result = finder.find()
        crossing = CSDSimulator(device).first_transition_crossing()
        assert result.contains(*crossing)
        # The window is a small part of the searched range, found with a
        # coarse-scan budget only.
        (x_min, x_max), (y_min, y_max) = result.window
        assert (x_max - x_min) < 0.05
        assert (y_max - y_min) < 0.05
        assert result.n_probes == finder.config.coarse_resolution**2

    def test_spacing_estimate_has_the_right_scale(self):
        device = DotArrayDevice.double_dot(
            cross_coupling=(0.3, 0.2), voltage_range=(0.0, 0.07)
        )
        result = TransitionWindowFinder(device, seed=1).find()
        true_spans = CSDSimulator(device).addition_voltage_spans()
        assert result.estimated_spacing[0] == pytest.approx(true_spans[0], rel=0.6)
        assert result.estimated_spacing[1] == pytest.approx(true_spans[1], rel=0.6)

    def test_no_transitions_in_range_raises(self):
        device = DotArrayDevice.double_dot(voltage_range=(0.0, 1.0))
        finder = TransitionWindowFinder(
            device, x_range=(0.0, 0.004), y_range=(0.0, 0.004), seed=0
        )
        with pytest.raises(ExtractionError):
            finder.find()

    def test_invalid_range_rejected(self):
        device = DotArrayDevice.double_dot()
        with pytest.raises(ExtractionError):
            TransitionWindowFinder(device, x_range=(0.1, 0.1))

    def test_centered_span_respects_bounds(self):
        low, high = TransitionWindowFinder._centered_span(0.01, 0.04, (0.0, 0.1))
        assert low == pytest.approx(0.0)
        assert high == pytest.approx(0.04)
        low, high = TransitionWindowFinder._centered_span(0.09, 0.04, (0.0, 0.1))
        assert high == pytest.approx(0.1)
        assert low == pytest.approx(0.06)


class TestAutoTuningWorkflow:
    def test_end_to_end_recovers_alphas(self):
        device = DotArrayDevice.double_dot(
            cross_coupling=(0.35, 0.30), voltage_range=(0.0, 0.06)
        )
        workflow = AutoTuningWorkflow(
            resolution=100, noise=standard_lab_noise(), seed=6
        )
        outcome = workflow.run(device)
        assert outcome.success
        truth = device.ground_truth_alphas(0, 1, "P1", "P2")
        assert outcome.extraction.alpha_12 == pytest.approx(truth[0], abs=0.08)
        assert outcome.extraction.alpha_21 == pytest.approx(truth[1], abs=0.08)
        # Cost accounting covers both stages.
        assert outcome.total_probes == (
            outcome.window_search.n_probes + outcome.extraction.probe_stats.n_probes
        )
        assert outcome.total_elapsed_s == pytest.approx(
            outcome.window_search.elapsed_s + outcome.extraction.probe_stats.elapsed_s
        )
        # The combined budget is still a fraction of one full 100x100 scan.
        assert outcome.total_probes < 0.3 * 100 * 100
        summary = outcome.summary()
        assert summary["total_probes"] == outcome.total_probes
        assert summary["window_probes"] == outcome.window_search.n_probes

    def test_second_verified_device(self):
        device = DotArrayDevice.double_dot(
            cross_coupling=(0.30, 0.20), voltage_range=(0.0, 0.07)
        )
        workflow = AutoTuningWorkflow(
            resolution=100, noise=standard_lab_noise(), seed=13
        )
        outcome = workflow.run(device)
        assert outcome.success
        truth = device.ground_truth_alphas(0, 1, "P1", "P2")
        assert outcome.extraction.alpha_12 == pytest.approx(truth[0], abs=0.08)
        assert outcome.extraction.alpha_21 == pytest.approx(truth[1], abs=0.08)

    def test_invalid_resolution(self):
        with pytest.raises(ExtractionError):
            AutoTuningWorkflow(resolution=4)
