"""Integration test: a subset of the Table 1 reproduction.

The full twelve-benchmark run lives in ``benchmarks/bench_table1.py``; here we
verify the qualitative structure the paper reports on a fast subset:

* ordinary benchmarks succeed for both methods and show a large speedup,
* the low-contrast benchmark 7 splits the two methods (fast succeeds,
  Canny/Hough baseline fails),
* a pathological-noise benchmark defeats both methods.
"""

from __future__ import annotations

import pytest

from repro.analysis import ComparisonRunner, summarize_suite
from repro.datasets import load_benchmark


@pytest.fixture(scope="module")
def runner() -> ComparisonRunner:
    return ComparisonRunner()


class TestOrdinaryBenchmarks:
    @pytest.mark.parametrize("index", [3, 4, 5])
    def test_both_methods_succeed_on_63px_benchmarks(self, runner, index):
        record = runner.run_benchmark(load_benchmark(index), index=index)
        assert record.fast.success
        assert record.baseline.success
        assert record.speedup is not None and record.speedup > 4.0
        assert record.fast.probe_fraction < 0.25
        assert record.baseline.probe_fraction == pytest.approx(1.0)

    def test_100px_benchmark_probe_fraction_near_ten_percent(self, runner):
        record = runner.run_benchmark(load_benchmark(6), index=6)
        assert record.fast.success
        assert 0.05 < record.fast.probe_fraction < 0.18
        assert record.speedup > 6.0


class TestDiscriminatingBenchmarks:
    def test_benchmark7_fast_succeeds_baseline_fails(self, runner):
        record = runner.run_benchmark(load_benchmark(7), index=7)
        assert record.fast.success
        assert not record.baseline.success

    def test_pathological_noise_defeats_both(self, runner):
        record = runner.run_benchmark(load_benchmark(1), index=1)
        assert not record.fast.success
        assert not record.baseline.success


class TestSummaryShape:
    def test_subset_summary_matches_paper_structure(self, runner):
        records = [
            runner.run_benchmark(load_benchmark(index), index=index) for index in (3, 6, 7)
        ]
        summary = summarize_suite(records)
        assert summary.fast_successes == 3
        assert summary.baseline_successes == 2
        assert summary.min_speedup > 4.0
        assert summary.mean_probe_fraction < 0.2
