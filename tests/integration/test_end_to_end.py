"""Integration tests: whole-pipeline behaviour across modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ArrayVirtualGateExtractor,
    CSDSimulator,
    DotArrayDevice,
    ExperimentSession,
    FastVirtualGateExtractor,
    HoughBaselineExtractor,
    standard_lab_noise,
)
from repro.analysis import SuccessCriterion, accuracy_metrics


class TestFastVsBaselineOnSameDevice:
    @pytest.fixture(scope="class")
    def device_and_csd(self):
        device = DotArrayDevice.double_dot(cross_coupling=(0.28, 0.24))
        csd = CSDSimulator(device).simulate(100, noise=standard_lab_noise(), seed=77)
        return device, csd

    def test_both_methods_agree_with_truth_and_each_other(self, device_and_csd):
        device, csd = device_and_csd
        fast = FastVirtualGateExtractor().extract(ExperimentSession.from_csd(csd))
        baseline = HoughBaselineExtractor().extract(ExperimentSession.from_csd(csd))
        truth = device.ground_truth_alphas(0, 1, "P1", "P2")
        assert fast.success and baseline.success
        assert fast.matrix.alpha_12 == pytest.approx(truth[0], abs=0.08)
        assert baseline.matrix.alpha_12 == pytest.approx(truth[0], abs=0.08)
        assert fast.matrix.alpha_12 == pytest.approx(baseline.matrix.alpha_12, abs=0.1)
        assert fast.matrix.alpha_21 == pytest.approx(baseline.matrix.alpha_21, abs=0.1)

    def test_fast_method_is_cheaper_in_probes_and_time(self, device_and_csd):
        _, csd = device_and_csd
        fast = FastVirtualGateExtractor().extract(ExperimentSession.from_csd(csd))
        baseline = HoughBaselineExtractor().extract(ExperimentSession.from_csd(csd))
        assert fast.probe_stats.n_probes < 0.25 * baseline.probe_stats.n_probes
        assert baseline.probe_stats.elapsed_s / fast.probe_stats.elapsed_s > 4.0

    def test_probed_points_concentrate_near_transition_lines(self, device_and_csd):
        device, csd = device_and_csd
        session = ExperimentSession.from_csd(csd)
        FastVirtualGateExtractor().extract(session)
        geometry = csd.geometry
        mask = session.meter.log.probe_mask(csd.shape)
        rows, cols = np.nonzero(mask)
        # Distance (in volts, vertically) of each probed pixel from the
        # nearest of the two ground-truth lines.
        vx = csd.x_voltages[cols]
        vy = csd.y_voltages[rows]
        d_steep = np.abs(
            vy - (geometry.crossing_y + geometry.slope_steep * (vx - geometry.crossing_x))
        )
        d_shallow = np.abs(
            vy - (geometry.crossing_y + geometry.slope_shallow * (vx - geometry.crossing_x))
        )
        nearest = np.minimum(d_steep, d_shallow)
        span = csd.y_voltages[-1] - csd.y_voltages[0]
        # At least half of the probed points lie within 15% of the scan of a
        # line (the anchor search probes a full row and column, which accounts
        # for most of the remainder); a uniform scan would put only ~25% there.
        assert np.mean(nearest < 0.15 * span) > 0.5


class TestVirtualizedScan:
    def test_virtual_gates_give_orthogonal_control(self):
        """Scanning along one virtual gate should change only its own dot."""
        device = DotArrayDevice.double_dot(cross_coupling=(0.3, 0.26))
        csd = CSDSimulator(device).simulate(80, seed=5)
        session = ExperimentSession.from_csd(csd)
        result = FastVirtualGateExtractor().extract(session)
        assert result.success
        matrix = result.matrix
        geometry = csd.geometry
        # Start just inside the (0,0) region near the crossing and move along
        # the virtual x axis: dot 1 should load well before dot 2 moves.
        start_physical = np.array(
            [geometry.crossing_x - 0.004, geometry.crossing_y - 0.004]
        )
        start_virtual = matrix.to_virtual(start_physical)
        loaded_dot1 = False
        for step in np.linspace(0.0, 0.008, 41):
            virtual = start_virtual + np.array([step, 0.0])
            physical = matrix.to_physical(virtual)
            state = device.charge_state(physical)
            assert state.occupations[1] == 0, "virtual P1 sweep must not load dot 2"
            if state.occupations[0] == 1:
                loaded_dot1 = True
        assert loaded_dot1

    def test_physical_scan_violates_orthogonality(self):
        """Control: the same sweep along the *physical* gate crosses both lines."""
        device = DotArrayDevice.double_dot(cross_coupling=(0.45, 0.45))
        csd = CSDSimulator(device).simulate(40, seed=5)
        geometry = csd.geometry
        start = np.array([geometry.crossing_x - 0.002, geometry.crossing_y - 0.002])
        dot2_loaded = False
        for step in np.linspace(0.0, 0.02, 81):
            state = device.charge_state(start + np.array([step, 0.0]))
            if state.occupations[1] > 0:
                dot2_loaded = True
        # With such strong cross-coupling a purely physical P1 sweep drags
        # dot 2's potential along and eventually loads it.
        assert dot2_loaded


class TestQuadrupleDotWorkflow:
    def test_full_array_extraction(self):
        device = DotArrayDevice.quadruple_dot()
        extractor = ArrayVirtualGateExtractor(resolution=63, seed=3)
        outcome = extractor.extract(device)
        assert outcome.n_pairs == 3
        assert outcome.all_pairs_succeeded
        assert outcome.max_alpha_error() < 0.1
        matrix = outcome.virtualization.matrix
        assert matrix.shape == (4, 4)
        # Every neighbouring coupling was measured.
        for k in range(3):
            assert matrix[k, k + 1] > 0
            assert matrix[k + 1, k] > 0


class TestCriterionIntegration:
    def test_criterion_and_metrics_consistent(self, noisy_csd, noisy_session):
        result = FastVirtualGateExtractor().extract(noisy_session)
        criterion = SuccessCriterion()
        metrics = accuracy_metrics(result, noisy_csd.geometry)
        assert criterion.evaluate(result, noisy_csd.geometry) == (
            result.success
            and metrics.alpha_12_error
            <= max(
                criterion.max_alpha_abs_error,
                criterion.max_alpha_rel_error * noisy_csd.geometry.alpha_12,
            )
            and metrics.alpha_21_error
            <= max(
                criterion.max_alpha_abs_error,
                criterion.max_alpha_rel_error * noisy_csd.geometry.alpha_21,
            )
        )
