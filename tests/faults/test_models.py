"""Tests for the fault models and the named fault-condition registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, TransientReadError
from repro.faults import (
    DropoutFault,
    FaultModel,
    ProbeHangFault,
    StuckSensorFault,
    TransientReadFault,
    WorkerCrashFault,
    all_faults,
    fault_names,
    fault_uniforms,
    get_fault,
    models_for,
    register_fault,
)

KEY = np.uint64(0x1234_5678_9ABC_DEF0)
TIMES = np.linspace(0.05, 120.0, 400)


class TestDrawDeterminism:
    def test_fault_uniforms_are_pure(self):
        bits = np.arange(64, dtype=np.uint64)
        first = fault_uniforms(bits, KEY)
        second = fault_uniforms(bits, KEY)
        np.testing.assert_array_equal(first, second)
        assert np.all((first > 0.0) & (first < 1.0))

    def test_different_keys_decorrelate(self):
        bits = np.arange(256, dtype=np.uint64)
        a = fault_uniforms(bits, KEY)
        b = fault_uniforms(bits, np.uint64(7))
        assert not np.array_equal(a, b)

    def test_error_mask_depends_on_timestamp_not_call_shape(self):
        model = TransientReadFault(rate=0.3)
        batched = model.error_mask(TIMES, KEY)
        scalar = np.array(
            [model.error_mask(np.array([t]), KEY)[0] for t in TIMES]
        )
        np.testing.assert_array_equal(batched, scalar)

    def test_rate_zero_never_fires(self):
        assert not TransientReadFault(rate=0.0).error_mask(TIMES, KEY).any()
        assert not ProbeHangFault(rate=0.0).stall_s(TIMES, KEY).any()
        values = np.ones(TIMES.shape)
        np.testing.assert_array_equal(
            StuckSensorFault(rate=0.0).corrupt(values, TIMES, KEY), values
        )

    def test_rate_one_always_fires(self):
        assert TransientReadFault(rate=1.0).error_mask(TIMES, KEY).all()
        stalls = ProbeHangFault(rate=1.0, hang_s=2.5).stall_s(TIMES, KEY)
        np.testing.assert_array_equal(stalls, np.full(TIMES.shape, 2.5))


class TestModelSemantics:
    def test_base_model_is_a_no_op(self):
        model = FaultModel()
        values = np.arange(5.0)
        np.testing.assert_array_equal(model.corrupt(values, TIMES[:5], KEY), values)
        assert not model.error_mask(TIMES[:5], KEY).any()
        assert not model.stall_s(TIMES[:5], KEY).any()
        assert not model.crashes(3, KEY)
        assert isinstance(model.error_at(1.0), TransientReadError)

    def test_stuck_sensor_rails_whole_windows(self):
        model = StuckSensorFault(rate=0.5, window_s=10.0, rail_na=-1.0)
        values = np.ones(TIMES.shape)
        railed = model.corrupt(values, TIMES, KEY) == -1.0
        # Every probe inside one window shares its window's outcome.
        windows = np.floor(TIMES / model.window_s).astype(int)
        for window in np.unique(windows):
            outcomes = railed[windows == window]
            assert outcomes.all() or not outcomes.any()
        assert railed.any() and not railed.all()

    def test_dropouts_cluster_inside_bursts(self):
        model = DropoutFault(rate=0.3, burst_s=2.0, within_rate=1.0)
        mask = model.error_mask(TIMES, KEY)
        windows = np.floor(TIMES / model.burst_s).astype(np.uint64)
        burst = fault_uniforms(windows, KEY) < model.rate
        np.testing.assert_array_equal(mask, burst)

    def test_worker_crash_is_deterministic_per_job(self):
        model = WorkerCrashFault(rate=0.5)
        decisions = [model.crashes(job_id, KEY) for job_id in range(64)]
        assert decisions == [model.crashes(job_id, KEY) for job_id in range(64)]
        assert any(decisions) and not all(decisions)
        assert WorkerCrashFault.scope == "worker"
        assert TransientReadFault.scope == "probe"

    @pytest.mark.parametrize(
        "build",
        [
            lambda: TransientReadFault(rate=1.5),
            lambda: TransientReadFault(rate=-0.1),
            lambda: ProbeHangFault(hang_s=0.0),
            lambda: StuckSensorFault(window_s=-1.0),
            lambda: DropoutFault(burst_s=0.0),
            lambda: DropoutFault(within_rate=2.0),
            lambda: WorkerCrashFault(rate=7.0),
        ],
    )
    def test_invalid_parameters_rejected(self, build):
        with pytest.raises(ConfigurationError):
            build()


class TestRegistry:
    def test_builtin_conditions_registered(self):
        names = fault_names()
        for expected in (
            "transient-reads",
            "probe-hangs",
            "stuck-sensor",
            "dropout-bursts",
            "worker-crashes",
            "flaky-lab",
        ):
            assert expected in names
        assert all(
            isinstance(model, FaultModel)
            for models in all_faults().values()
            for model in models
        )

    def test_unknown_name_raises_naming_known(self):
        with pytest.raises(KeyError, match="flaky-lab"):
            get_fault("does-not-exist")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_fault("flaky-lab", TransientReadFault())

    def test_empty_condition_rejected(self):
        with pytest.raises(ValueError, match="at least one model"):
            register_fault("empty-condition", ())

    def test_non_model_entry_rejected(self):
        with pytest.raises(TypeError, match="non-FaultModel"):
            register_fault("bogus-condition", ("not a model",))

    def test_models_for_accepts_every_spec_shape(self):
        assert models_for(None) == ()
        assert models_for("flaky-lab") == get_fault("flaky-lab")
        single = TransientReadFault(rate=0.1)
        assert models_for(single) == (single,)
        mixed = models_for([single, "probe-hangs"])
        assert mixed == (single,) + get_fault("probe-hangs")
