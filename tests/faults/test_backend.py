"""Tests for FaultyBackend: planning, identity guarantees, delegation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TransientReadError
from repro.faults import (
    FaultyBackend,
    ProbeHangFault,
    TransientReadFault,
    WorkerCrashFault,
    probe_fault_models,
)
from repro.instrument import ExperimentSession, ProbeRetryPolicy
from repro.scenarios import DeviceSpec

RETRY = ProbeRetryPolicy(max_attempts=5, backoff_s=0.1, timeout_s=3.0)


def _device():
    return DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)).build()


def _session(faults=None, probe_retry=None, seed=7, resolution=24):
    return ExperimentSession.from_device(
        _device(),
        resolution=resolution,
        seed=seed,
        faults=faults,
        probe_retry=probe_retry,
    )


class TestFaultyBackendSurface:
    def test_rejects_worker_scope_models(self):
        inner = _session().meter.backend
        with pytest.raises(ValueError, match="worker-scope"):
            FaultyBackend(inner, (WorkerCrashFault(rate=0.5),), seed=7)

    def test_probe_fault_models_filters_scope(self):
        models = (TransientReadFault(), WorkerCrashFault())
        assert probe_fault_models(models) == (models[0],)

    def test_delegates_inner_attributes(self):
        session = _session(faults="transient-reads", probe_retry=RETRY)
        backend = session.meter.backend
        assert isinstance(backend, FaultyBackend)
        assert backend.gate_x_name == backend.inner.gate_x_name
        assert backend.gate_y_name == backend.inner.gate_y_name
        assert backend.n_pixels == backend.inner.n_pixels
        with pytest.raises(AttributeError):
            backend.does_not_exist

    def test_is_always_time_dependent(self):
        session = _session(faults=TransientReadFault(rate=0.0), probe_retry=RETRY)
        assert session.meter.backend.is_time_dependent

    def test_plan_batch_is_pure(self):
        session = _session(faults="flaky-lab", probe_retry=RETRY)
        backend = session.meter.backend
        rows = np.arange(10)
        cols = np.arange(10)
        times = np.linspace(0.03, 40.0, 10)
        first = backend.plan_batch(rows, cols, times)
        second = backend.plan_batch(rows, cols, times)
        np.testing.assert_array_equal(first.values, second.values)
        assert (first.disruption is None) == (second.disruption is None)
        if first.disruption is not None:
            assert first.disruption.index == second.disruption.index
            assert first.disruption.stall_s == second.disruption.stall_s

    def test_direct_currents_raise_first_injected_error(self):
        session = _session(
            faults=TransientReadFault(rate=1.0),
            probe_retry=ProbeRetryPolicy.no_retry(),
        )
        backend = session.meter.backend
        with pytest.raises(TransientReadError, match="injected"):
            backend.currents(
                np.array([0, 1]), np.array([0, 1]), np.linspace(0.03, 0.06, 2)
            )
        with pytest.raises(TransientReadError):
            backend.current(0, 0, time_s=0.03)


class TestIdentityGuarantees:
    def test_rate_zero_faults_are_bit_identical_to_clean(self):
        clean = _session()
        clean_image = clean.meter.acquire_full_grid()
        zeroed = _session(
            faults=(TransientReadFault(rate=0.0), ProbeHangFault(rate=0.0)),
            probe_retry=RETRY,
        )
        zeroed_image = zeroed.meter.acquire_full_grid()
        np.testing.assert_array_equal(clean_image, zeroed_image)
        assert clean.meter.elapsed_s == zeroed.meter.elapsed_s
        assert clean.meter.n_probes == zeroed.meter.n_probes
        assert zeroed.meter.n_probe_retries == 0
        assert zeroed.meter.n_fault_events == 0

    def test_scalar_and_batched_paths_fail_identically(self):
        batched = _session(faults="flaky-lab", probe_retry=RETRY)
        image = batched.meter.acquire_full_grid()
        scalar = _session(faults="flaky-lab", probe_retry=RETRY)
        n_rows, n_cols = scalar.meter.shape
        looped = np.array(
            [
                [scalar.meter.get_current(r, c) for c in range(n_cols)]
                for r in range(n_rows)
            ]
        )
        np.testing.assert_array_equal(image, looped)
        assert batched.meter.n_probe_retries == scalar.meter.n_probe_retries
        assert batched.meter.n_fault_events == scalar.meter.n_fault_events
        assert batched.meter.elapsed_s == scalar.meter.elapsed_s

    def test_same_seed_same_chaos(self):
        a = _session(faults="flaky-lab", probe_retry=RETRY, seed=13)
        b = _session(faults="flaky-lab", probe_retry=RETRY, seed=13)
        np.testing.assert_array_equal(
            a.meter.acquire_full_grid(), b.meter.acquire_full_grid()
        )
        assert a.meter.n_probe_retries == b.meter.n_probe_retries

    def test_faults_never_reshuffle_inner_noise(self):
        # The fault keys live on a reserved seed branch: wrapping must not
        # change the device's own noise/drift draws, so a fault session
        # that happens to see no events matches the clean session exactly.
        clean = _session(seed=5)
        faulty = _session(
            faults=TransientReadFault(rate=0.0), probe_retry=RETRY, seed=5
        )
        np.testing.assert_array_equal(
            clean.meter.acquire_full_grid(), faulty.meter.acquire_full_grid()
        )
