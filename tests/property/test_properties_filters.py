"""Property-based tests (hypothesis) for the baseline image filters."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.baseline import gaussian_blur, gaussian_kernel_1d, normalize_image, sobel_gradients
from repro.core import gaussian_window

images = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(8, 24), st.integers(8, 24)),
    elements=st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False),
)


class TestFilterProperties:
    @given(image=images, sigma=st.floats(min_value=0.5, max_value=3.0))
    @settings(max_examples=50, deadline=None)
    def test_blur_preserves_value_bounds(self, image, sigma):
        blurred = gaussian_blur(image, sigma)
        assert blurred.min() >= image.min() - 1e-9
        assert blurred.max() <= image.max() + 1e-9

    @given(image=images, sigma=st.floats(min_value=0.5, max_value=3.0))
    @settings(max_examples=50, deadline=None)
    def test_blur_commutes_with_constant_offset(self, image, sigma):
        offset = 2.5
        lhs = gaussian_blur(image + offset, sigma)
        rhs = gaussian_blur(image, sigma) + offset
        assert np.allclose(lhs, rhs, atol=1e-9)

    @given(sigma=st.floats(min_value=0.3, max_value=5.0))
    @settings(max_examples=50, deadline=None)
    def test_kernel_normalised_and_symmetric(self, sigma):
        kernel = gaussian_kernel_1d(sigma)
        assert np.isclose(kernel.sum(), 1.0)
        assert np.allclose(kernel, kernel[::-1])

    @given(image=images)
    @settings(max_examples=50, deadline=None)
    def test_normalize_bounds(self, image):
        normalized = normalize_image(image)
        assert normalized.min() >= 0.0
        assert normalized.max() <= 1.0

    @given(image=images)
    @settings(max_examples=40, deadline=None)
    def test_sobel_zero_on_constant_rows_and_columns(self, image):
        constant = np.full_like(image, 1.25)
        gx, gy, magnitude, _ = sobel_gradients(constant)
        assert np.allclose(gx, 0.0)
        assert np.allclose(gy, 0.0)
        assert np.allclose(magnitude, 0.0)

    @given(
        length=st.integers(min_value=1, max_value=200),
        center=st.floats(min_value=0.0, max_value=1.0),
        sigma=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_gaussian_window_bounds(self, length, center, sigma):
        window = gaussian_window(length, center_fraction=center, sigma_fraction=sigma)
        assert window.shape == (length,)
        assert np.all(window > 0)
        assert np.all(window <= 1.0 + 1e-12)
