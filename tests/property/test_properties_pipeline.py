"""Property-based tests over the composable tuning pipeline.

Two invariants the pipeline refactor must hold under any seed:

* **determinism** — the same seed produces bit-identical results *and*
  bit-identical per-stage telemetry (modulo the wall clock, which is the
  one legitimately nondeterministic field) across repeated runs;
* **failure isolation** — a stage raising anywhere in the composition
  yields an unsuccessful :class:`~repro.core.result.ExtractionResult`
  whose telemetry for the stages completed before the failure is intact
  (same rows, same costs as an unbroken run's prefix).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ExtractionError
from repro.pipeline import TuningPipeline, get_pipeline
from repro.scenarios import get_scenario

#: Small but fully end-to-end: 48 pixels crosses the anchor-mask minimum
#: comfortably and keeps one extraction under ~50 ms of compute.
RESOLUTION = 48

#: A time-dependent scenario, so determinism also covers the temporal noise
#: samplers and the probe-timestamp threading.
SCENARIO = "telegraph_storm"


def _run(seed: int, pipeline_name: str = "fast-extraction"):
    session = get_scenario(SCENARIO).open_session(resolution=RESOLUTION, seed=seed)
    return get_pipeline(pipeline_name).run(session)


def _normalized_telemetry(result):
    return tuple(t.normalized() for t in result.stage_telemetry)


class TestDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_same_seed_same_results_and_telemetry(self, seed):
        first = _run(seed)
        second = _run(seed)
        assert first.success == second.success
        assert first.alpha_12 == second.alpha_12
        assert first.alpha_21 == second.alpha_21
        assert first.probe_stats == second.probe_stats
        assert _normalized_telemetry(first) == _normalized_telemetry(second)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_ablation_pipelines_are_deterministic_too(self, seed):
        first = _run(seed, "no-filter")
        second = _run(seed, "no-filter")
        assert first.probe_stats == second.probe_stats
        assert _normalized_telemetry(first) == _normalized_telemetry(second)


class _BoomStage:
    name = "boom"

    def run(self, ctx):
        raise ExtractionError("injected failure")


class TestFailureIsolation:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16 - 1),
        position=st.integers(min_value=0, max_value=5),
    )
    def test_raising_stage_preserves_completed_telemetry(self, seed, position):
        reference = _run(seed)
        fast = get_pipeline("fast-extraction")
        stages = list(fast.stages)
        broken = TuningPipeline(
            "broken",
            stages[:position] + [_BoomStage()] + stages[position:],
            default_config=fast.default_config,
        )
        session = get_scenario(SCENARIO).open_session(
            resolution=RESOLUTION, seed=seed
        )
        result = broken.run(session)
        assert not result.success
        assert result.failure_reason == "injected failure"
        # Telemetry: the completed prefix matches the unbroken run's prefix
        # bit-for-bit (modulo wall clock), then one failed row, nothing after.
        prefix = _normalized_telemetry(result)[:position]
        assert prefix == _normalized_telemetry(reference)[:position]
        boom_row = result.stage_telemetry[position]
        assert boom_row.stage == "boom"
        assert boom_row.outcome == "failed"
        assert boom_row.detail == "injected failure"
        assert len(result.stage_telemetry) == position + 1
        # Probe accounting still balances: the stages that ran sum to the
        # meter's totals.
        assert (
            sum(t.n_probes for t in result.stage_telemetry)
            == result.probe_stats.n_probes
        )

    def test_post_failure_artifacts_match_completed_stages(self):
        fast = get_pipeline("fast-extraction")
        stages = list(fast.stages)
        # Fail right after the sweeps: anchors and traces exist, points don't.
        broken = TuningPipeline(
            "broken-after-sweeps",
            stages[:2] + [_BoomStage()],
            default_config=fast.default_config,
        )
        session = get_scenario(SCENARIO).open_session(
            resolution=RESOLUTION, seed=11
        )
        result = broken.run(session)
        assert not result.success
        assert result.anchors is not None
        assert result.points is None
        assert result.fit is None
        assert result.matrix is None
