"""Property-based tests (hypothesis) for virtualization matrices."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ArrayVirtualization, VirtualizationMatrix

#: Physically sensible compensation coefficients (strictly below 1 so the
#: matrix is always invertible).
alphas = st.floats(min_value=0.0, max_value=0.8, allow_nan=False, allow_infinity=False)
voltages = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False, allow_infinity=False)


class TestPairwiseMatrixProperties:
    @given(alpha_12=alphas, alpha_21=alphas, vx=voltages, vy=voltages)
    @settings(max_examples=120, deadline=None)
    def test_round_trip_is_identity(self, alpha_12, alpha_21, vx, vy):
        matrix = VirtualizationMatrix(alpha_12=alpha_12, alpha_21=alpha_21)
        physical = np.array([vx, vy])
        recovered = matrix.to_physical(matrix.to_virtual(physical))
        assert np.allclose(recovered, physical, atol=1e-9)

    @given(alpha_12=alphas, alpha_21=alphas)
    @settings(max_examples=120, deadline=None)
    def test_determinant_positive(self, alpha_12, alpha_21):
        matrix = VirtualizationMatrix(alpha_12=alpha_12, alpha_21=alpha_21)
        assert np.linalg.det(matrix.matrix) > 0

    @given(
        alpha_12=st.floats(min_value=0.01, max_value=0.8),
        alpha_21=st.floats(min_value=0.01, max_value=0.8),
    )
    @settings(max_examples=120, deadline=None)
    def test_from_slopes_inverts_slope_properties(self, alpha_12, alpha_21):
        original = VirtualizationMatrix(alpha_12=alpha_12, alpha_21=alpha_21)
        rebuilt = VirtualizationMatrix.from_slopes(
            original.slope_steep, original.slope_shallow
        )
        assert np.isclose(rebuilt.alpha_12, alpha_12, atol=1e-9)
        assert np.isclose(rebuilt.alpha_21, alpha_21, atol=1e-9)

    @given(
        alpha_12=st.floats(min_value=0.01, max_value=0.8),
        alpha_21=st.floats(min_value=0.01, max_value=0.8),
    )
    @settings(max_examples=120, deadline=None)
    def test_true_matrix_orthogonalizes_its_own_lines(self, alpha_12, alpha_21):
        matrix = VirtualizationMatrix(alpha_12=alpha_12, alpha_21=alpha_21)
        error = matrix.orthogonality_error(matrix.slope_steep, matrix.slope_shallow)
        assert error < 1e-6

    @given(alpha_12=alphas, alpha_21=alphas, vx=voltages, vy=voltages)
    @settings(max_examples=80, deadline=None)
    def test_transformation_is_linear(self, alpha_12, alpha_21, vx, vy):
        matrix = VirtualizationMatrix(alpha_12=alpha_12, alpha_21=alpha_21)
        a = np.array([vx, vy])
        b = np.array([0.3, -0.2])
        lhs = matrix.to_virtual(a + b)
        rhs = matrix.to_virtual(a) + matrix.to_virtual(b)
        assert np.allclose(lhs, rhs, atol=1e-9)


class TestArrayMatrixProperties:
    @given(
        pair_alphas=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=0.45),
                st.floats(min_value=0.0, max_value=0.45),
            ),
            min_size=2,
            max_size=5,
        ),
        scale=st.floats(min_value=-0.5, max_value=0.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_chain_round_trip(self, pair_alphas, scale):
        n_gates = len(pair_alphas) + 1
        names = tuple(f"P{i + 1}" for i in range(n_gates))
        array = ArrayVirtualization(names)
        for k, (alpha_12, alpha_21) in enumerate(pair_alphas):
            array.add_pair(
                VirtualizationMatrix(
                    alpha_12=alpha_12,
                    alpha_21=alpha_21,
                    gate_x=names[k],
                    gate_y=names[k + 1],
                )
            )
        assert array.is_complete_chain()
        physical = np.full(n_gates, scale)
        recovered = array.to_physical(array.to_virtual(physical))
        assert np.allclose(recovered, physical, atol=1e-8)
