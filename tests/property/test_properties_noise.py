"""Property-based tests (hypothesis) over every noise model.

Sweeps the whole :mod:`repro.physics.noise` family through the invariants the
measurement stack relies on:

* determinism — the same seed always produces the same field / trace;
* batch-split independence — a time-dependent sampler returns the same bits
  whether the probe times arrive in one batch, many batches, or one at a
  time (this is what makes the scalar and batched probe paths equivalent);
* telegraph mean-centering — the rendered RTS trace has (numerically) zero
  mean, and the temporal sampler's two levels are symmetric;
* degenerate shapes — ``(0, N)``, ``(N, 0)``, ``(1, 1)``, ``(0, 0)`` grids
  sample without crashing and with the right shape.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics import (
    CompositeNoise,
    DriftNoise,
    NoNoise,
    PinkNoise,
    TelegraphNoise,
    WhiteNoise,
    standard_lab_noise,
)

#: One representative of every model (amplitudes chosen non-zero so a broken
#: determinism or splitting property cannot hide behind a zero field).
ALL_MODELS = [
    NoNoise(),
    WhiteNoise(sigma_na=0.05),
    PinkNoise(sigma_na=0.03, exponent=1.0),
    PinkNoise(sigma_na=0.02, exponent=2.0),
    TelegraphNoise(amplitude_na=0.06, mean_dwell_pixels=17.0),
    DriftNoise(ramp_na=0.04, sine_amplitude_na=0.02, sine_periods=2.5),
    CompositeNoise([WhiteNoise(0.01), DriftNoise(ramp_na=0.02)]),
    standard_lab_noise(telegraph_amplitude_na=0.02),
]

MODEL_IDS = [model.describe() for model in ALL_MODELS]

shapes = st.tuples(st.integers(1, 24), st.integers(1, 24))
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@pytest.mark.parametrize("model", ALL_MODELS, ids=MODEL_IDS)
class TestGridProperties:
    @given(shape=shapes, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_deterministic_given_seed(self, model, shape, seed):
        first = model.sample_grid(shape, np.random.default_rng(seed))
        second = model.sample_grid(shape, np.random.default_rng(seed))
        assert np.array_equal(first, second)

    @given(shape=shapes, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_shape_and_finiteness(self, model, shape, seed):
        field = model.sample_grid(shape, np.random.default_rng(seed))
        assert field.shape == shape
        assert np.all(np.isfinite(field))

    @pytest.mark.parametrize("shape", [(0, 5), (5, 0), (1, 1), (0, 0)])
    def test_degenerate_shapes(self, model, shape):
        field = model.sample_grid(shape, np.random.default_rng(0))
        assert field.shape == shape
        assert np.all(np.isfinite(field))


@pytest.mark.parametrize("model", ALL_MODELS, ids=MODEL_IDS)
class TestTemporalProperties:
    @given(seed=seeds, n=st.integers(1, 300))
    @settings(max_examples=15, deadline=None)
    def test_deterministic_given_seed(self, model, seed, n):
        times = np.arange(n) * 0.05
        first = model.at_times(np.random.default_rng(seed)).sample_at(times)
        second = model.at_times(np.random.default_rng(seed)).sample_at(times)
        assert np.array_equal(first, second)

    @given(seed=seeds, n=st.integers(1, 300), chunk=st.integers(1, 97))
    @settings(max_examples=15, deadline=None)
    def test_independent_of_batch_splitting(self, model, seed, n, chunk):
        times = np.arange(n) * 0.05
        whole = model.at_times(np.random.default_rng(seed)).sample_at(times)
        split_sampler = model.at_times(np.random.default_rng(seed))
        parts = np.concatenate(
            [split_sampler.sample_at(times[i : i + chunk]) for i in range(0, n, chunk)]
        )
        assert np.array_equal(whole, parts)

    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_scalar_queries_match_batch(self, model, seed):
        times = np.arange(40) * 0.05
        whole = model.at_times(np.random.default_rng(seed)).sample_at(times)
        scalar_sampler = model.at_times(np.random.default_rng(seed))
        one_by_one = np.array(
            [scalar_sampler.sample_at(np.array([t]))[0] for t in times]
        )
        assert np.array_equal(whole, one_by_one)

    def test_empty_times(self, model):
        sampler = model.at_times(np.random.default_rng(0))
        assert sampler.sample_at(np.zeros(0)).shape == (0,)


class TestTelegraphCentering:
    @given(
        seed=seeds,
        shape=st.tuples(st.integers(2, 32), st.integers(2, 32)),
        amplitude=st.floats(min_value=1e-3, max_value=1.0),
        dwell=st.floats(min_value=1.0, max_value=500.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_grid_trace_is_mean_centred(self, seed, shape, amplitude, dwell):
        model = TelegraphNoise(amplitude_na=amplitude, mean_dwell_pixels=dwell)
        field = model.sample_grid(shape, np.random.default_rng(seed))
        assert abs(float(np.mean(field))) <= 1e-9 * amplitude

    @given(seed=seeds, amplitude=st.floats(min_value=1e-3, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_temporal_levels_are_symmetric(self, seed, amplitude):
        model = TelegraphNoise(amplitude_na=amplitude, mean_dwell_pixels=20.0)
        sampler = model.at_times(np.random.default_rng(seed))
        values = sampler.sample_at(np.arange(2000) * 0.05)
        levels = np.unique(values)
        assert levels.size <= 2
        assert np.allclose(np.abs(levels), 0.5 * amplitude)


class TestZeroAmplitudeIsZero:
    """Zero-amplitude variants of every model must be exactly zero fields."""

    ZERO_MODELS = [
        WhiteNoise(sigma_na=0.0),
        PinkNoise(sigma_na=0.0),
        TelegraphNoise(amplitude_na=0.0),
        DriftNoise(ramp_na=0.0, sine_amplitude_na=0.0),
    ]

    @pytest.mark.parametrize("model", ZERO_MODELS, ids=lambda m: m.describe())
    def test_grid_and_temporal_zero(self, model):
        field = model.sample_grid((13, 7), np.random.default_rng(1))
        assert np.array_equal(field, np.zeros((13, 7)))
        values = model.at_times(np.random.default_rng(1)).sample_at(np.arange(50) * 0.1)
        assert np.array_equal(values, np.zeros(50))
