"""Property-based tests (hypothesis) for the triangular region and filters."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PixelPoint,
    TriangularRegion,
    filter_transition_points,
    leftmost_point_per_row,
    lowest_point_per_column,
)


@st.composite
def anchors(draw):
    steep_row = draw(st.integers(min_value=0, max_value=20))
    shallow_row = draw(st.integers(min_value=steep_row + 2, max_value=60))
    shallow_col = draw(st.integers(min_value=0, max_value=20))
    steep_col = draw(st.integers(min_value=shallow_col + 2, max_value=60))
    return PixelPoint(row=steep_row, col=steep_col), PixelPoint(row=shallow_row, col=shallow_col)


points_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=40), st.integers(min_value=0, max_value=40)),
    min_size=0,
    max_size=60,
)


class TestTriangularRegionProperties:
    @given(data=anchors())
    @settings(max_examples=100, deadline=None)
    def test_anchors_and_corner_always_inside(self, data):
        steep, shallow = data
        region = TriangularRegion(steep_anchor=steep, shallow_anchor=shallow)
        assert region.contains(steep.row, steep.col)
        assert region.contains(shallow.row, shallow.col)
        assert region.contains(region.corner.row, region.corner.col)

    @given(data=anchors())
    @settings(max_examples=100, deadline=None)
    def test_segments_consistent_with_membership(self, data):
        steep, shallow = data
        region = TriangularRegion(steep_anchor=steep, shallow_anchor=shallow)
        for row in range(steep.row, shallow.row + 1):
            segment = region.row_segment(row)
            for col in segment:
                assert region.contains(row, col)
            # Pixels immediately outside the segment are not inside the region.
            if segment:
                assert not region.contains(row, segment[0] - 1) or segment[0] - 1 < shallow.col

    @given(data=anchors())
    @settings(max_examples=100, deadline=None)
    def test_row_and_column_pixel_counts_agree(self, data):
        steep, shallow = data
        region = TriangularRegion(steep_anchor=steep, shallow_anchor=shallow)
        by_rows = sum(len(region.row_segment(r)) for r in range(steep.row, shallow.row + 1))
        by_cols = sum(
            len(region.column_segment(c)) for c in range(shallow.col, steep.col + 1)
        )
        assert by_rows == by_cols == region.pixel_count()

    @given(data=anchors())
    @settings(max_examples=60, deadline=None)
    def test_shrinking_never_grows(self, data):
        steep, shallow = data
        region = TriangularRegion(steep_anchor=steep, shallow_anchor=shallow)
        mid_row = (steep.row + shallow.row) // 2
        segment = region.row_segment(mid_row)
        if not segment:
            return
        new_anchor = PixelPoint(row=mid_row, col=segment[len(segment) // 2])
        if new_anchor.row <= steep.row or new_anchor.col <= shallow.col:
            return
        shrunk = region.with_steep_anchor(new_anchor)
        assert shrunk.pixel_count() <= region.pixel_count()


class TestFilterProperties:
    @given(points=points_strategy)
    @settings(max_examples=150, deadline=None)
    def test_filtered_is_subset_of_input(self, points):
        filtered = filter_transition_points(points)
        assert set(filtered).issubset(set(points))

    @given(points=points_strategy)
    @settings(max_examples=150, deadline=None)
    def test_idempotent(self, points):
        once = filter_transition_points(points)
        twice = filter_transition_points(list(once))
        assert set(once) == set(twice)

    @given(points=points_strategy)
    @settings(max_examples=150, deadline=None)
    def test_covers_every_row_and_column_present(self, points):
        filtered = set(filter_transition_points(points))
        rows_in = {row for row, _ in points}
        cols_in = {col for _, col in points}
        assert {row for row, _ in filtered} == rows_in or not points
        # Every column that appears in the input keeps at least one point
        # via the lowest-per-column filter.
        assert {col for _, col in filtered} == cols_in or not points

    @given(points=points_strategy)
    @settings(max_examples=100, deadline=None)
    def test_elementary_filters_pick_extremes(self, points):
        for row, col in lowest_point_per_column(points):
            assert all(row <= other_row for other_row, other_col in points if other_col == col)
        for row, col in leftmost_point_per_row(points):
            assert all(col <= other_col for other_row, other_col in points if other_row == row)
