"""Property-based tests (hypothesis) for the capacitance / charge-state model."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics import CapacitanceModel, ChargeStateSolver

charging = st.floats(min_value=1.0, max_value=8.0)
cross = st.floats(min_value=0.02, max_value=0.45)
lever = st.floats(min_value=0.05, max_value=0.3)
mutual = st.floats(min_value=0.0, max_value=0.35)
voltage = st.floats(min_value=0.0, max_value=0.08)


def build_model(ec1, ec2, x12, x21, a1, a2, m):
    return CapacitanceModel.double_dot(
        charging_energy_mev=(ec1, ec2),
        mutual_fraction=m,
        plunger_lever_arms=(a1, a2),
        cross_lever_fractions=(x12, x21),
    )


class TestCapacitanceProperties:
    @given(ec1=charging, ec2=charging, x12=cross, x21=cross, a1=lever, a2=lever, m=mutual)
    @settings(max_examples=80, deadline=None)
    def test_slopes_always_negative_and_ordered(self, ec1, ec2, x12, x21, a1, a2, m):
        model = build_model(ec1, ec2, x12, x21, a1, a2, m)
        steep, shallow = model.transition_slopes(0, 1, "P1", "P2")
        assert steep < 0 and shallow < 0
        assert abs(steep) > abs(shallow)

    @given(ec1=charging, ec2=charging, x12=cross, x21=cross, a1=lever, a2=lever, m=mutual)
    @settings(max_examples=80, deadline=None)
    def test_alphas_positive_and_jointly_invertible(self, ec1, ec2, x12, x21, a1, a2, m):
        model = build_model(ec1, ec2, x12, x21, a1, a2, m)
        alpha_12, alpha_21 = model.virtualization_alphas(0, 1, "P1", "P2")
        assert alpha_12 > 0.0
        assert alpha_21 > 0.0
        # det(lever-arm matrix) > 0 guarantees the virtualization matrix
        # [[1, a12], [a21, 1]] is invertible for the true coefficients.
        assert alpha_12 * alpha_21 < 1.0

    @given(ec1=charging, ec2=charging, x12=cross, x21=cross, a1=lever, a2=lever, m=mutual)
    @settings(max_examples=60, deadline=None)
    def test_lever_arm_matrix_positive(self, ec1, ec2, x12, x21, a1, a2, m):
        model = build_model(ec1, ec2, x12, x21, a1, a2, m)
        assert np.all(model.lever_arm_matrix > 0)

    @given(
        ec1=charging,
        ec2=charging,
        x12=cross,
        x21=cross,
        a1=lever,
        a2=lever,
        m=mutual,
        v1=voltage,
        v2=voltage,
    )
    @settings(max_examples=60, deadline=None)
    def test_ground_state_energy_never_above_alternatives(
        self, ec1, ec2, x12, x21, a1, a2, m, v1, v2
    ):
        model = build_model(ec1, ec2, x12, x21, a1, a2, m)
        solver = ChargeStateSolver(model, max_electrons_per_dot=2)
        vg = np.array([v1, v2])
        state = solver.ground_state(vg)
        for n1 in range(3):
            for n2 in range(3):
                assert (
                    state.energy_mev
                    <= model.electrostatic_energy([n1, n2], vg) + 1e-9
                )

    @given(
        ec1=charging,
        ec2=charging,
        x12=cross,
        x21=cross,
        a1=lever,
        a2=lever,
        m=mutual,
        v1=voltage,
        v2=voltage,
        dv=st.floats(min_value=0.001, max_value=0.03),
    )
    @settings(max_examples=60, deadline=None)
    def test_occupation_monotone_in_own_gate(
        self, ec1, ec2, x12, x21, a1, a2, m, v1, v2, dv
    ):
        model = build_model(ec1, ec2, x12, x21, a1, a2, m)
        solver = ChargeStateSolver(model, max_electrons_per_dot=3)
        low = solver.ground_state([v1, v2])
        high = solver.ground_state([v1 + dv, v2])
        assert high.occupations[0] >= low.occupations[0]
