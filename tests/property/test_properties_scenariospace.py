"""Property-based tests (hypothesis) over scenario-space sampling.

The invariants the mining/surface stack relies on:

* determinism — ``sample(n, seed)`` is a pure function of the space and
  seed: same call, same parameter vectors, same scenario reprs, same
  session-seed identities;
* prefix stability — draw ``i`` does not depend on ``n``;
* spawn disjointness — every draw's parameter and session seeds are
  distinct ``SeedSequence.spawn`` children (no two draws share a stream);
* validity — every sampled scenario passes ``LabScenario`` construction,
  pickles round-trip, and carries an address-free repr (the registry
  contracts the lint audit enforces on catalogue entries).
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reprs import ADDRESS_REPR
from repro.scenariospace import Choice, Fixed, LogUniform, ScenarioSpace, Uniform
from repro.scenarios import LabScenario
from repro.scenarios.devices import DeviceSpec

DEVICES = (
    DeviceSpec.of("double_dot"),
    DeviceSpec.of("quadruple_dot"),
    DeviceSpec.of("linear_array", n_dots=6),
    DeviceSpec.of("linear_array", n_dots=8),
    DeviceSpec.of("grid_array", rows=2, cols=3),
    DeviceSpec.of("grid_array", rows=2, cols=4),
)


def make_space(name: str = "prop") -> ScenarioSpace:
    return ScenarioSpace(
        name=name,
        device=Choice(options=DEVICES),
        noise_scale=LogUniform(0.25, 4.0),
        drift_mv_per_hour=Uniform(0.0, 30.0),
        fault_rate=Uniform(0.0, 0.3),
    )


seeds = st.integers(min_value=0, max_value=2**31 - 1)
counts = st.integers(min_value=1, max_value=12)


class TestDeterminism:
    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, n=counts)
    def test_same_seed_same_sequence(self, seed, n):
        space = make_space()
        first = space.sample(n, seed=seed)
        second = space.sample(n, seed=seed)
        assert [d.params for d in first] == [d.params for d in second]
        assert [repr(d.scenario) for d in first] == [
            repr(d.scenario) for d in second
        ]
        assert [d.seed_entropy for d in first] == [d.seed_entropy for d in second]

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds, n=counts)
    def test_prefix_stable(self, seed, n):
        space = make_space()
        short = space.sample(n, seed=seed)
        long = space.sample(n + 5, seed=seed)
        assert [d.params for d in short] == [d.params for d in long[:n]]

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_different_seeds_differ(self, seed):
        space = make_space()
        a = space.sample(4, seed=seed)
        b = space.sample(4, seed=seed + 1)
        # Identical parameter vectors across different roots would mean the
        # seed is not actually feeding the draw.
        assert [d.params for d in a] != [d.params for d in b]


class TestSpawnDisjointness:
    @settings(max_examples=10, deadline=None)
    @given(seed=seeds, n=counts)
    def test_session_seeds_are_distinct_spawn_children(self, seed, n):
        space = make_space()
        draws = space.sample(n, seed=seed)
        identities = [d.seed_entropy for d in draws]
        assert len(set(identities)) == n
        for index, draw in enumerate(draws):
            # Child i's spawn key descends from (i,): draw order is baked
            # into the seed identity, not execution order.
            assert tuple(draw.seed.spawn_key)[0] == index


class TestDrawValidity:
    @settings(max_examples=15, deadline=None)
    @given(seed=seeds)
    def test_every_draw_is_a_valid_registrable_scenario(self, seed):
        space = make_space()
        for draw in space.sample(4, seed=seed):
            scenario = draw.scenario
            assert isinstance(scenario, LabScenario)
            # Re-validate through the constructor (what register_scenario
            # would have accepted).
            rebuilt = LabScenario(
                name=scenario.name,
                story=scenario.story,
                device=scenario.device,
                noise=scenario.noise,
                drift=scenario.drift,
                timing=scenario.timing,
                time_dependent_noise=scenario.time_dependent_noise,
                faults=scenario.faults,
                probe_retry=scenario.probe_retry,
            )
            assert repr(rebuilt) == repr(scenario)

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_every_draw_pickles_with_address_free_repr(self, seed):
        space = make_space()
        for draw in space.sample(4, seed=seed):
            text = repr(draw.scenario)
            assert not ADDRESS_REPR.search(text)
            restored = pickle.loads(pickle.dumps(draw.scenario))
            assert repr(restored) == text

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_params_round_trip_strict_json(self, seed):
        import json

        space = make_space()
        for draw in space.sample(4, seed=seed):
            payload = json.dumps(draw.params.as_dict(), allow_nan=False)
            restored = type(draw.params).from_dict(json.loads(payload))
            assert restored == draw.params

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_severity_values_respect_support(self, seed):
        space = make_space()
        for draw in space.sample(6, seed=seed):
            assert 0.25 <= draw.params.noise_scale <= 4.0
            assert 0.0 <= draw.params.drift_mv_per_hour <= 30.0
            assert 0.0 <= draw.params.fault_rate <= 0.3


class TestStressed:
    def test_stressing_scales_named_axes_only(self):
        space = make_space()
        stressed = space.stressed({"noise_scale": 2.0})
        assert stressed.noise_scale.support == (0.5, 8.0)
        assert stressed.drift_mv_per_hour is space.drift_mv_per_hour
        assert stressed.fault_rate is space.fault_rate

    def test_identity_multipliers_return_self(self):
        space = make_space()
        assert space.stressed({"noise_scale": 1.0, "fault_rate": 1.0}) is space

    def test_fixed_zero_axis_stays_zero(self):
        space = ScenarioSpace(name="zeros", fault_rate=Fixed(0.0))
        stressed = space.stressed({"fault_rate": 4.0})
        draws = stressed.sample(3, seed=1)
        assert all(d.params.fault_rate == 0.0 for d in draws)
