"""Campaign-level cluster tests: bit-identity to serial, chaos included.

The chaos matrix the cluster backend must survive without perturbing a
single record:

* worker subprocesses hard-killed (SIGKILL) mid-campaign,
* workers whose heartbeat goes silent mid-lease,
* deterministic in-worker crash injection (the ``worker-crashes`` fault
  axis, which ``os._exit``\\ s real cluster workers),
* the coordinator process dying mid-campaign and the campaign resuming
  from its checkpoint journal.

Every scenario asserts ``normalized()`` equality against an untouched
serial run — records, summaries, and retry counters, bit for bit.
"""

from __future__ import annotations

import threading

import pytest

from repro.campaign import CampaignGrid, CampaignResult, DeviceSpec, TuningCampaign
from repro.cluster import ClusterBackend
from repro.exceptions import ConfigurationError


def _grid(**overrides) -> CampaignGrid:
    kwargs = dict(
        devices=(DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)),),
        resolutions=(40,),
        noise_scales=(0.0, 1.0),
        n_repeats=2,
        seed=9,
    )
    kwargs.update(overrides)
    return CampaignGrid(**kwargs)


@pytest.fixture(scope="module")
def grid() -> CampaignGrid:
    return _grid()


@pytest.fixture(scope="module")
def serial_result(grid) -> CampaignResult:
    return TuningCampaign(grid).run()


@pytest.fixture(scope="module")
def faulty_grid() -> CampaignGrid:
    return _grid(
        noise_scales=(0.0,),
        faults=(None, "flaky-lab", "worker-crashes"),
        n_repeats=2,
        seed=11,
    )


@pytest.fixture(scope="module")
def serial_faulty_result(faulty_grid) -> CampaignResult:
    return TuningCampaign(faulty_grid).run()


class TestSerialIdentity:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_records_match_serial_at_any_worker_count(
        self, grid, serial_result, n_workers
    ):
        result = TuningCampaign(grid, backend=f"cluster:local:{n_workers}").run()
        assert result.normalized() == serial_result.normalized()
        assert result.normalized().summary() == serial_result.normalized().summary()
        assert result.metadata["backend"] == "cluster"
        assert result.metadata["backend_spec"] == f"cluster:local:{n_workers}"

    def test_worker_count_lands_in_the_result(self, grid):
        result = TuningCampaign(grid, backend="cluster:local:2").run()
        assert result.n_workers == 2


class TestInjectedWorkerCrashes:
    def test_fault_axis_chaos_matches_serial(
        self, faulty_grid, serial_faulty_result
    ):
        # The worker-crashes condition os._exit()s real cluster workers:
        # the coordinator sees dead sockets, re-leases the suspects, and
        # convicts — records must still condense bit-identically, retry
        # counters included.
        backend = ClusterBackend(n_workers=2)
        result = TuningCampaign(faulty_grid, backend=backend).run()
        assert result.normalized() == serial_faulty_result.normalized()
        assert [r.n_probe_retries for r in result.records] == [
            r.n_probe_retries for r in serial_faulty_result.records
        ]
        crashed = [
            r for r in result.records if r.failure_category == "worker_error"
        ]
        assert crashed, "the fault grid is expected to kill workers"
        # Each convicted job costs two worker deaths (lease, then solo).
        assert backend.last_stats.n_worker_deaths >= 2 * len(crashed)
        assert backend.last_stats.n_crash_markers == len(crashed)


class _KillOneWorker:
    """Progress hook that SIGKILLs a live worker after ``after`` records."""

    def __init__(self, backend: ClusterBackend, after: int) -> None:
        self.backend = backend
        self.after = after
        self.killed_pid: int | None = None

    def __call__(self, done, total, record) -> None:
        if done == self.after and self.killed_pid is None:
            cluster = self.backend._active_cluster
            if cluster is not None:
                try:
                    self.killed_pid = cluster.kill_one()
                except ConfigurationError:
                    pass  # every worker already dead/respawning; still chaos


class TestSigkillChaos:
    def test_sigkill_mid_campaign_does_not_perturb_records(
        self, grid, serial_result
    ):
        backend = ClusterBackend(n_workers=2)
        killer = _KillOneWorker(backend, after=1)
        result = TuningCampaign(grid, backend=backend, progress=killer).run()
        assert killer.killed_pid is not None
        assert result.normalized() == serial_result.normalized()
        assert result.normalized().summary() == serial_result.normalized().summary()


class _InterruptAfter:
    """Progress hook that kills the driver after ``n`` completed jobs."""

    def __init__(self, n: int) -> None:
        self.n = n

    def __call__(self, done, total, record) -> None:
        if done >= self.n:
            raise KeyboardInterrupt(f"simulated coordinator death after {done}")


class TestCoordinatorDeathAndResume:
    def test_resume_from_journal_matches_an_uninterrupted_serial_run(
        self, grid, serial_result, tmp_path
    ):
        journal_path = tmp_path / "cluster.jsonl"
        # The coordinator lives in the driver process: killing the driver
        # mid-campaign kills the coordinator and every lease with it.
        with pytest.raises(KeyboardInterrupt):
            TuningCampaign(
                grid, backend="cluster:local:2", progress=_InterruptAfter(2)
            ).run(checkpoint=journal_path)
        resumed = TuningCampaign(grid, backend="cluster:local:2").resume(
            journal_path
        )
        assert resumed.normalized() == serial_result.normalized()
        assert (
            resumed.normalized().format_report()
            == serial_result.normalized().format_report()
        )

    def test_interrupted_cluster_journal_resumes_on_serial(
        self, grid, serial_result, tmp_path
    ):
        # Backends are execution policy, not content: a journal written
        # under the cluster resumes under any backend.
        journal_path = tmp_path / "crossover.jsonl"
        with pytest.raises(KeyboardInterrupt):
            TuningCampaign(
                grid, backend="cluster:local:2", progress=_InterruptAfter(1)
            ).run(checkpoint=journal_path)
        resumed = TuningCampaign(grid).resume(journal_path)
        assert resumed.normalized() == serial_result.normalized()

    def test_threaded_consumers_do_not_deadlock_teardown(self, grid):
        # A paranoia check for generator cleanup: abandoning the stream
        # from another thread must still tear the cluster down.
        backend = ClusterBackend(n_workers=1)
        stream = backend.submit(grid.expand()[:2], _job_ids)
        holder = {}

        def pull_one():
            holder["first"] = next(stream)
            stream.close()

        thread = threading.Thread(target=pull_one)
        thread.start()
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert holder["first"][0] in {job.job_id for job in grid.expand()[:2]}
        assert backend._active_cluster is None


def _job_ids(job) -> int:
    return job.job_id
