"""Protocol-level coordinator tests driven by scripted in-test workers.

Real workers live in subprocesses and race; these tests speak the wire
protocol from the test thread instead, so every scheduling decision the
coordinator makes — lease sizing, steal victims, death requeues, crash
conviction, duplicate dedup, cache-affine ordering — is observed frame by
frame, deterministically, with no process spawn cost.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import time
from dataclasses import dataclass

import pytest

from repro.cluster import worker as worker_module
from repro.cluster.coordinator import Coordinator
from repro.cluster.worker import worker_main
from repro.cluster.wire import (
    Heartbeat,
    Lease,
    Register,
    Result,
    Shutdown,
    Steal,
    Stolen,
    Task,
    Welcome,
    encode_record,
    recv_message,
    send_message,
)
from repro.exceptions import ClusterProtocolError
from repro.execution import WorkerCrash


@dataclass(frozen=True)
class FakeJob:
    job_id: int
    key: str = ""


def echo_runner(job: FakeJob) -> str:
    """Picklable task body (scripted workers fabricate results instead)."""
    return f"record-{job.job_id}"


def slow_runner(job: FakeJob) -> str:
    """A job long enough to outlast the (monkeypatched) connect timeout."""
    time.sleep(0.6)
    return f"slow-{job.job_id}"


class UnpicklableError(RuntimeError):
    """An exception pickle refuses: its __dict__ holds a thread lock."""

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.lock = threading.Lock()


def unpicklable_raiser(job: FakeJob) -> str:
    raise UnpicklableError(f"boom-{job.job_id}")


class _Harness:
    """Drives ``Coordinator.run`` on a thread and collects its yields."""

    def __init__(self, jobs, runner=echo_runner, **coordinator_kwargs):
        coordinator_kwargs.setdefault("heartbeat_s", 1.0)
        self.coordinator = Coordinator(**coordinator_kwargs)
        self.records: list = []
        self.error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._drain, args=(tuple(jobs), runner), daemon=True
        )
        self._thread.start()

    def _drain(self, jobs, runner):
        try:
            for pair in self.coordinator.run(jobs, runner):
                self.records.append(pair)
        except BaseException as exc:  # noqa: BLE001 - surfaced to the test
            self.error = exc

    def finish(self, timeout=10.0):
        self._thread.join(timeout=timeout)
        assert not self._thread.is_alive(), "coordinator run did not finish"
        if self.error is not None:
            raise self.error
        return dict(self.records)

    def close(self):
        self.coordinator.close()
        self._thread.join(timeout=5.0)


class _ScriptedWorker:
    """A worker whose every frame the test sends by hand."""

    def __init__(self, address):
        self.sock = socket.create_connection(address)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def register(self) -> "_ScriptedWorker":
        send_message(self.sock, Register(pid=0, host="scripted"))
        welcome, _ = recv_message(self.sock)
        assert isinstance(welcome, Welcome)
        self.worker_id = welcome.worker_id
        task, blob = recv_message(self.sock)
        assert isinstance(task, Task)
        self.run_one = pickle.loads(blob)
        return self

    def expect_lease(self) -> tuple:
        message, payload = recv_message(self.sock)
        assert isinstance(message, Lease), f"expected lease, got {message}"
        jobs = pickle.loads(payload)
        assert tuple(job.job_id for job in jobs) == message.job_ids
        return jobs

    def expect_steal(self) -> Steal:
        message, _ = recv_message(self.sock)
        assert isinstance(message, Steal), f"expected steal, got {message}"
        return message

    def expect_shutdown(self) -> None:
        message, _ = recv_message(self.sock)
        assert isinstance(message, Shutdown), f"expected shutdown, got {message}"

    def drain_until_shutdown(self) -> None:
        """Answer end-game steal chatter (with refusals) until shutdown.

        Once both workers are draining, whichever finishes last may probe
        the other for work; the probe's timing depends on reader-thread
        interleaving, so tests past that point accept-and-refuse instead
        of asserting exact frames.
        """
        while True:
            try:
                message, _ = recv_message(self.sock)
            except (EOFError, OSError):
                return
            if isinstance(message, Shutdown):
                return
            if isinstance(message, Steal):
                try:
                    self.send_stolen(())
                except OSError:
                    return

    def send_result(self, job) -> None:
        encoding, payload = encode_record(self.run_one(job))
        send_message(
            self.sock, Result(job_id=job.job_id, encoding=encoding), payload
        )

    def send_stolen(self, job_ids) -> None:
        send_message(self.sock, Stolen(job_ids=tuple(job_ids)))

    def close(self) -> None:
        self.sock.close()


class _ThreadWorker:
    """A *real* worker (``worker_main``) run on a thread in this process.

    The scripted workers above fabricate frames; these tests need the
    genuine worker loop — its socket setup, executor, and crash shipping —
    against a real coordinator, without subprocess spawn cost.
    """

    def __init__(self, address, **kwargs):
        self._thread = threading.Thread(
            target=worker_main,
            args=(address[0], address[1]),
            kwargs=kwargs,
            daemon=True,
        )
        self._thread.start()

    def join(self, timeout=10.0):
        self._thread.join(timeout=timeout)
        assert not self._thread.is_alive(), "worker thread did not exit"


def _expected(jobs) -> dict:
    return {job.job_id: f"record-{job.job_id}" for job in jobs}


class TestLeaseGrowth:
    def test_fast_results_grow_the_lease(self):
        jobs = tuple(FakeJob(i) for i in range(12))
        harness = _Harness(jobs)
        try:
            worker = _ScriptedWorker(harness.coordinator.address).register()
            first = worker.expect_lease()
            # The adaptive policy starts conservative: one job to calibrate.
            assert [job.job_id for job in first] == [0]
            worker.send_result(first[0])
            second = worker.expect_lease()
            # A near-instant first lease drives the EWMA towards the cap;
            # the fair-share bound (one live worker) hands over the rest.
            assert [job.job_id for job in second] == list(range(1, 12))
            for job in second:
                worker.send_result(job)
            assert harness.finish() == _expected(jobs)
            worker.expect_shutdown()
            worker.close()
        finally:
            harness.close()
        stats = harness.coordinator.stats
        assert stats.n_workers == 1
        assert stats.n_leases == 2
        assert stats.n_worker_deaths == 0


class TestWorkStealing:
    def test_drained_worker_steals_half_the_victims_backlog(self):
        jobs = tuple(FakeJob(i) for i in range(12))
        harness = _Harness(jobs)
        try:
            victim = _ScriptedWorker(harness.coordinator.address).register()
            first = victim.expect_lease()
            victim.send_result(first[0])
            backlog = victim.expect_lease()  # jobs 1..11
            assert len(backlog) == 11

            thief = _ScriptedWorker(harness.coordinator.address).register()
            steal = victim.expect_steal()
            assert steal.max_jobs == 5  # half of 11, floor
            handed = backlog[-steal.max_jobs :]
            victim.send_stolen([job.job_id for job in handed])
            stolen_lease = thief.expect_lease()
            assert [j.job_id for j in stolen_lease] == [j.job_id for j in handed]

            for job in backlog[: -steal.max_jobs]:
                victim.send_result(job)
            for job in stolen_lease:
                thief.send_result(job)
            assert harness.finish() == _expected(jobs)
            victim.drain_until_shutdown()
            thief.drain_until_shutdown()
            victim.close()
            thief.close()
        finally:
            harness.close()
        stats = harness.coordinator.stats
        assert stats.n_steal_requests >= 1
        assert stats.n_stolen_jobs == 5
        assert stats.steal_latency_s > 0.0
        assert stats.n_worker_deaths == 0

    def test_steal_refusal_parks_the_thief_until_a_requeue(self):
        jobs = tuple(FakeJob(i) for i in range(3))
        harness = _Harness(jobs)
        try:
            victim = _ScriptedWorker(harness.coordinator.address).register()
            first = victim.expect_lease()
            victim.send_result(first[0])
            backlog = victim.expect_lease()  # jobs 1, 2
            thief = _ScriptedWorker(harness.coordinator.address).register()
            steal = victim.expect_steal()
            victim.send_stolen(())  # refuse: both jobs already started
            for job in backlog:
                victim.send_result(job)
            assert steal.max_jobs == 1
            assert harness.finish() == _expected(jobs)
            victim.drain_until_shutdown()
            thief.drain_until_shutdown()
            victim.close()
            thief.close()
        finally:
            harness.close()
        assert harness.coordinator.stats.n_stolen_jobs == 0


class TestDeathHandling:
    def test_dead_workers_jobs_requeue_as_solo_suspects(self):
        jobs = tuple(FakeJob(i) for i in range(3))
        harness = _Harness(jobs)
        try:
            first = _ScriptedWorker(harness.coordinator.address).register()
            lease = first.expect_lease()
            first.send_result(lease[0])
            first.expect_lease()  # jobs 1 and 2, never to be run
            first.close()  # hard death with two jobs outstanding

            second = _ScriptedWorker(harness.coordinator.address).register()
            # Requeued jobs are suspects: leased one at a time so a second
            # death can convict a single job.
            solo = second.expect_lease()
            assert [job.job_id for job in solo] == [1]
            second.send_result(solo[0])
            solo = second.expect_lease()
            assert [job.job_id for job in solo] == [2]
            second.send_result(solo[0])
            assert harness.finish() == _expected(jobs)
            second.expect_shutdown()
            second.close()
        finally:
            harness.close()
        stats = harness.coordinator.stats
        assert stats.n_worker_deaths == 1
        assert stats.n_requeued_jobs == 2
        assert stats.n_crash_markers == 0

    def test_second_death_on_a_suspect_convicts_it(self):
        jobs = tuple(FakeJob(i) for i in range(2))
        harness = _Harness(jobs)
        try:
            first = _ScriptedWorker(harness.coordinator.address).register()
            lease = first.expect_lease()
            first.send_result(lease[0])
            first.expect_lease()  # job 1
            first.close()  # death one: job 1 becomes a suspect

            second = _ScriptedWorker(harness.coordinator.address).register()
            solo = second.expect_lease()
            assert [job.job_id for job in solo] == [1]
            second.close()  # death two, holding only the suspect: convicted

            records = harness.finish()
        finally:
            harness.close()
        assert records[0] == "record-0"
        marker = records[1]
        assert isinstance(marker, WorkerCrash)
        assert marker.job_id == 1
        stats = harness.coordinator.stats
        assert stats.n_worker_deaths == 2
        assert stats.n_crash_markers == 1

    def test_duplicate_results_are_deduped(self):
        jobs = (FakeJob(0), FakeJob(1))
        harness = _Harness(jobs)
        try:
            worker = _ScriptedWorker(harness.coordinator.address).register()
            lease = worker.expect_lease()
            worker.send_result(lease[0])
            worker.send_result(lease[0])  # steal/re-lease race twin
            lease = worker.expect_lease()
            assert [job.job_id for job in lease] == [1]
            worker.send_result(lease[0])
            # A dedup failure would satisfy the yield count with the twin
            # and drop job 1; the exact dict is the proof it cannot.
            assert harness.finish() == _expected(jobs)
            worker.expect_shutdown()
            worker.close()
        finally:
            harness.close()


class TestCacheAffinity:
    def test_warm_keys_are_preferred_at_the_queue_front(self):
        jobs = (
            FakeJob(0, key="a"),
            FakeJob(1, key="b"),
            FakeJob(2, key="a"),
            FakeJob(3, key="b"),
            FakeJob(4, key="a"),
        )
        harness = _Harness(jobs, affinity=lambda job: job.key)
        try:
            worker = _ScriptedWorker(harness.coordinator.address).register()
            first = worker.expect_lease()
            assert [job.job_id for job in first] == [0]
            worker.send_result(first[0])  # worker is now warm for "a"
            second = worker.expect_lease()
            # Affine jobs 2 and 4 jump the queue; the rest fill head-first.
            assert [job.job_id for job in second] == [2, 4, 1, 3]
            for job in second:
                worker.send_result(job)
            assert harness.finish() == _expected(jobs)
            worker.expect_shutdown()
            worker.close()
        finally:
            harness.close()
        assert harness.coordinator.stats.n_affinity_hits == 2


class TestRegisterTimeout:
    def test_workerless_cluster_fails_loudly(self):
        harness = _Harness(
            (FakeJob(0),), heartbeat_s=0.05, register_timeout_s=0.2
        )
        with pytest.raises(ClusterProtocolError, match="no worker registered"):
            harness.finish(timeout=10.0)
        harness.close()


class TestStallTimeout:
    def test_emptied_cluster_fails_loudly(self):
        """All workers die, none reconnect: run() raises, never hangs."""
        jobs = tuple(FakeJob(i) for i in range(3))
        harness = _Harness(jobs, heartbeat_s=0.05, stall_timeout_s=0.3)
        worker = _ScriptedWorker(harness.coordinator.address).register()
        worker.expect_lease()
        worker.close()  # the only worker dies holding its lease
        with pytest.raises(ClusterProtocolError, match="cluster stalled"):
            harness.finish(timeout=10.0)
        harness.close()
        assert harness.coordinator.stats.n_worker_deaths == 1


class TestStrayPeers:
    def test_out_of_protocol_peers_are_dropped_not_fatal(self):
        """Unregistered nonsense closes that socket; the campaign lives.

        Two flavours: a well-formed frame of the wrong kind before
        register, and a correctly framed header that is not JSON at all
        (which must not silently kill the serve thread either).
        """
        jobs = (FakeJob(0), FakeJob(1))
        harness = _Harness(jobs)
        try:
            stray = socket.create_connection(harness.coordinator.address)
            stray.settimeout(5.0)
            send_message(
                stray, Heartbeat(worker_id=99, current_job=-1, n_queued=0)
            )
            garbage = socket.create_connection(harness.coordinator.address)
            garbage.settimeout(5.0)
            blob = b"\x00this is not json"
            garbage.sendall(struct.pack(">II", len(blob), 0) + blob)
            # The coordinator hangs up on both (recv sees EOF, not a reset
            # mid-campaign abort)...
            assert stray.recv(1) == b""
            assert garbage.recv(1) == b""
            stray.close()
            garbage.close()
            # ...and a real worker still runs the campaign to completion.
            worker = _ScriptedWorker(harness.coordinator.address).register()
            first = worker.expect_lease()
            worker.send_result(first[0])
            for job in worker.expect_lease():
                worker.send_result(job)
            assert harness.finish() == _expected(jobs)
            worker.expect_shutdown()
            worker.close()
        finally:
            harness.close()
        assert harness.coordinator.stats.n_rejected_peers == 2


class TestRealWorkerLoop:
    def test_job_longer_than_connect_timeout_is_not_convicted(self, monkeypatch):
        """The connect timeout must not linger on the session socket.

        Regression: ``create_connection(..., timeout=...)`` used to leave
        the timeout armed permanently, so any job outlasting it made the
        worker's blocking recv raise, drop the session, and re-register —
        churning healthy long jobs into false WorkerCrash convictions.
        Shrinking the attempt timeout under the job length reproduces the
        geometry without a five-second sleep in the suite.
        """
        monkeypatch.setattr(worker_module, "_CONNECT_ATTEMPT_TIMEOUT_S", 0.2)
        jobs = (FakeJob(0),)
        harness = _Harness(jobs, runner=slow_runner, heartbeat_s=0.05)
        try:
            worker = _ThreadWorker(harness.coordinator.address)
            assert harness.finish() == {0: "slow-0"}
            worker.join()
        finally:
            harness.close()
        stats = harness.coordinator.stats
        assert stats.n_worker_deaths == 0
        assert stats.n_crash_markers == 0
        assert stats.n_workers == 1  # no churned re-registrations either

    def test_unpicklable_exception_ships_as_surrogate(self):
        """A Crash whose exception refuses to pickle must still arrive."""
        jobs = (FakeJob(0),)
        harness = _Harness(jobs, runner=unpicklable_raiser, heartbeat_s=0.05)
        worker = _ThreadWorker(harness.coordinator.address)
        with pytest.raises(RuntimeError, match="UnpicklableError: boom-0"):
            harness.finish()
        harness.close()
        worker.join()
