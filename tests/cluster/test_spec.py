"""Tests for parameterised backend specs and their campaign threading."""

from __future__ import annotations

import pytest

from repro.campaign import CampaignGrid, DeviceSpec, TuningCampaign
from repro.cluster import ClusterBackend
from repro.exceptions import ConfigurationError
from repro.execution import ProcessPoolBackend, backend_from_spec, backend_names


class TestClusterSpecs:
    def test_cluster_is_registered(self):
        assert "cluster" in backend_names()

    def test_bare_name_uses_the_worker_count(self):
        backend = backend_from_spec("cluster", n_workers=3)
        assert isinstance(backend, ClusterBackend)
        assert backend.max_workers == 3

    def test_local_spec_sets_the_worker_count(self):
        backend = backend_from_spec("cluster:local:4", n_workers=1)
        assert isinstance(backend, ClusterBackend)
        assert backend.max_workers == 4

    def test_address_spec_selects_listen_mode(self):
        backend = backend_from_spec("cluster:10.0.0.5:7077")
        assert isinstance(backend, ClusterBackend)
        assert "host='10.0.0.5'" in repr(backend)
        assert "port=7077" in repr(backend)

    @pytest.mark.parametrize(
        "spec",
        [
            "cluster:",
            "cluster:local",
            "cluster:local:",
            "cluster:local:zero",
            "cluster:local:0",
            "cluster:10.0.0.5:http",
            "cluster:10.0.0.5:",
        ],
    )
    def test_malformed_cluster_specs_fail_loudly(self, spec):
        with pytest.raises(ConfigurationError, match="cluster"):
            backend_from_spec(spec)


class TestProcessSpecs:
    def test_worker_count_parameter(self):
        backend = backend_from_spec("process:8", n_workers=1)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.max_workers == 8

    @pytest.mark.parametrize("spec", ["process:", "process:two", "process:0"])
    def test_malformed_process_specs_fail_loudly(self, spec):
        with pytest.raises(ConfigurationError, match="process"):
            backend_from_spec(spec)

    def test_parameterless_backends_refuse_parameters(self):
        with pytest.raises(ConfigurationError, match="parameter"):
            backend_from_spec("serial:4")
        with pytest.raises(ConfigurationError, match="parameter"):
            backend_from_spec("asyncio:4")

    def test_unknown_backend_still_lists_the_catalogue(self):
        with pytest.raises(ConfigurationError, match="serial"):
            backend_from_spec("quantum:4")


class TestCampaignSpecThreading:
    @pytest.fixture(scope="class")
    def grid(self):
        return CampaignGrid(
            devices=(DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)),),
            resolutions=(40,),
            noise_scales=(0.0,),
            n_repeats=1,
            seed=5,
        )

    def test_spec_string_lands_in_result_metadata(self, grid):
        result = TuningCampaign(grid, backend="process:2").run()
        assert result.metadata["backend"] == "process"
        assert result.metadata["backend_spec"] == "process:2"

    def test_default_backend_records_its_name_as_spec(self, grid):
        result = TuningCampaign(grid).run()
        assert result.metadata["backend"] == "serial"
        assert result.metadata["backend_spec"] == "serial"

    def test_spec_is_stripped_from_the_normalized_view(self, grid):
        spec_run = TuningCampaign(grid, backend="process:2").run()
        serial_run = TuningCampaign(grid).run()
        assert spec_run.normalized() == serial_run.normalized()

    def test_chunk_size_knob_still_guards_non_process_backends(self, grid):
        with pytest.raises(ConfigurationError, match="chunk_size"):
            TuningCampaign(grid, backend="cluster:local:2", chunk_size=3)
        # The process spec keeps the knob, parameters and all.
        TuningCampaign(grid, backend="process:2", chunk_size=3)
