"""Tests for the cluster wire protocol: frames, messages, record encodings."""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass

import numpy as np
import pytest

from repro.cluster.wire import (
    MESSAGE_CLASSES,
    RECORD_ENCODINGS,
    Crash,
    Heartbeat,
    Lease,
    Register,
    Result,
    Shutdown,
    Steal,
    Stolen,
    Task,
    Welcome,
    decode_record,
    encode_record,
    recv_message,
    send_message,
)
from repro.exceptions import ClusterProtocolError

SAMPLES = [
    Register(pid=4242, host="node-a"),
    Welcome(worker_id=3, heartbeat_s=0.2),
    Task(),
    Lease(job_ids=(3, 4, 5)),
    Heartbeat(worker_id=3, current_job=-1, n_queued=2),
    Steal(max_jobs=4),
    Stolen(job_ids=()),
    Result(job_id=9, encoding="columnar"),
    Crash(job_id=9, message="ValueError: boom"),
    Shutdown(),
]


class TestMessageRoundTrip:
    def test_every_kind_has_a_sample(self):
        assert {type(m).kind for m in SAMPLES} == set(MESSAGE_CLASSES)

    @pytest.mark.parametrize("message", SAMPLES, ids=lambda m: m.kind)
    def test_strict_json_round_trip(self, message):
        encoded = json.dumps(message.as_dict(), allow_nan=False)
        assert type(message).from_dict(json.loads(encoded)) == message

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ClusterProtocolError, match="kind"):
            Lease.from_dict(Steal(max_jobs=1).as_dict())

    @pytest.mark.parametrize("message", SAMPLES, ids=lambda m: m.kind)
    def test_frame_round_trip_over_a_socket(self, message):
        left, right = socket.socketpair()
        try:
            payload = b"x" * 17 if message.kind in ("lease", "result") else b""
            send_message(left, message, payload)
            received, received_payload = recv_message(right)
            assert received == message
            assert received_payload == payload
        finally:
            left.close()
            right.close()

    def test_frames_preserve_ordering(self):
        left, right = socket.socketpair()
        try:
            for message in SAMPLES:
                send_message(left, message)
            for message in SAMPLES:
                assert recv_message(right)[0] == message
        finally:
            left.close()
            right.close()


class TestMalformedFrames:
    def test_closed_peer_raises_eof(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(EOFError):
                recv_message(right)
        finally:
            right.close()

    def test_truncated_frame_raises_eof(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">II", 50, 0) + b'{"kind":')
            left.close()
            with pytest.raises(EOFError):
                recv_message(right)
        finally:
            right.close()

    def test_oversized_frame_refused_before_allocation(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">II", (1 << 31) + 1, 0))
            with pytest.raises(ClusterProtocolError, match="ceiling"):
                recv_message(right)
        finally:
            left.close()
            right.close()

    def test_unknown_kind_refused(self):
        left, right = socket.socketpair()
        try:
            header = json.dumps({"kind": "teleport"}).encode()
            left.sendall(struct.pack(">II", len(header), 0) + header)
            with pytest.raises(ClusterProtocolError, match="teleport"):
                recv_message(right)
        finally:
            left.close()
            right.close()


@dataclass(frozen=True)
class _OpaqueRecord:
    value: float


class TestRecordEncodings:
    @pytest.mark.parametrize(
        "record",
        [None, True, 0, 42, -7, "a string", 1.5, 0.0],
        ids=repr,
    )
    def test_json_scalars_travel_as_strict_json(self, record):
        encoding, payload = encode_record(record)
        assert encoding == "strict-json"
        restored = decode_record(encoding, payload)
        assert restored == record
        assert type(restored) is type(record)

    def test_nonfinite_float_falls_back_to_pickle(self):
        encoding, payload = encode_record(float("nan"))
        assert encoding == "pickle"
        assert np.isnan(decode_record(encoding, payload))

    def test_numpy_array_travels_columnar(self):
        record = np.arange(12, dtype=np.float64).reshape(3, 4)
        encoding, payload = encode_record(record)
        assert encoding == "columnar"
        np.testing.assert_array_equal(decode_record(encoding, payload), record)

    def test_dict_of_columns_travels_columnar(self):
        record = {
            "current": np.linspace(0.0, 1.0, 64),
            "labels": np.arange(64, dtype=np.int32),
        }
        encoding, payload = encode_record(record)
        assert encoding == "columnar"
        restored = decode_record(encoding, payload)
        assert set(restored) == set(record)
        for key in record:
            np.testing.assert_array_equal(restored[key], record[key])
            assert restored[key].dtype == record[key].dtype

    def test_arbitrary_object_pickles(self):
        record = _OpaqueRecord(value=float("inf"))
        encoding, payload = encode_record(record)
        assert encoding == "pickle"
        assert decode_record(encoding, payload) == record

    def test_unknown_encoding_refused(self):
        with pytest.raises(ClusterProtocolError, match="morse"):
            decode_record("morse", b"")

    def test_preference_order_is_published(self):
        assert RECORD_ENCODINGS == ("columnar", "strict-json", "pickle")
