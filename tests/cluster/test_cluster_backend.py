"""Tests for ClusterBackend with real spawn-start worker subprocesses."""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass

import pytest

from repro.cluster import ClusterBackend, ClusterStats
from repro.exceptions import ConfigurationError
from repro.execution import (
    AdaptiveChunkPolicy,
    SerialBackend,
    WorkerCrash,
    crash_message,
)


@dataclass(frozen=True)
class FakeJob:
    """Picklable job: an id, a simulated cost, an optional hard death."""

    job_id: int
    cost: float = 0.0
    lethal: bool = False


def echo_runner(job: FakeJob) -> str:
    if job.cost:
        time.sleep(job.cost)
    return f"record-{job.job_id}"


def crashy_runner(job: FakeJob) -> str:
    if job.lethal:
        os._exit(1)  # hard death: no exception, no frame, just a dead socket
    return f"record-{job.job_id}"


def raising_runner(job: FakeJob) -> str:
    raise RuntimeError(f"boom on {job.job_id}")


JOBS = tuple(FakeJob(job_id=i) for i in range(20))
EXPECTED = {job.job_id: f"record-{job.job_id}" for job in JOBS}


class TestStreamingContract:
    def test_two_workers_yield_every_job_exactly_once(self):
        backend = ClusterBackend(n_workers=2)
        assert dict(backend.submit(JOBS, echo_runner)) == EXPECTED
        stats = backend.last_stats
        assert isinstance(stats, ClusterStats)
        assert stats.n_leases >= 1
        assert stats.n_worker_deaths == 0

    def test_single_worker_matches_serial(self):
        serial = dict(SerialBackend().submit(JOBS, echo_runner))
        cluster = dict(ClusterBackend(n_workers=1).submit(JOBS, echo_runner))
        assert cluster == serial

    def test_empty_job_list_spawns_nothing(self):
        backend = ClusterBackend(n_workers=2)
        assert list(backend.submit((), echo_runner)) == []
        assert backend.last_stats is None  # no coordinator was ever built

    def test_runner_exception_propagates(self):
        backend = ClusterBackend(n_workers=1)
        with pytest.raises(RuntimeError, match="boom on"):
            list(backend.submit(JOBS, raising_runner))

    def test_back_to_back_submissions_reuse_the_backend(self):
        backend = ClusterBackend(n_workers=1)
        first = dict(backend.submit(JOBS[:4], echo_runner))
        second = dict(backend.submit(JOBS[:4], echo_runner))
        assert first == second == {i: f"record-{i}" for i in range(4)}


class TestCrashCondensation:
    def test_hard_death_condenses_to_the_canonical_marker(self):
        jobs = tuple(
            FakeJob(job_id=i, lethal=(i == 4)) for i in range(12)
        )
        backend = ClusterBackend(n_workers=2)
        records = dict(backend.submit(jobs, crashy_runner))
        assert set(records) == {job.job_id for job in jobs}
        marker = records[4]
        assert isinstance(marker, WorkerCrash)
        assert marker.job_id == 4
        assert marker.message == crash_message(4)
        for job in jobs:
            if not job.lethal:
                assert records[job.job_id] == f"record-{job.job_id}"
        stats = backend.last_stats
        # Conviction takes two deaths: one to suspect the job's whole
        # lease, one more while holding the suspect alone.
        assert stats.n_worker_deaths >= 2
        assert stats.n_crash_markers == 1


class TestHeartbeatDeath:
    def test_muted_worker_is_declared_dead_and_its_lease_rescued(self):
        # The muted worker stops heartbeating after its first result but
        # keeps holding its lease; job costs exceed the death timeout, so
        # only the monitor's missed-beat path can reclaim those jobs.
        jobs = tuple(FakeJob(job_id=i, cost=0.3) for i in range(8))
        backend = ClusterBackend(n_workers=2, heartbeat_s=0.05)
        backend._mute_first_worker_after = 1
        records = dict(backend.submit(jobs, echo_runner))
        assert records == {job.job_id: f"record-{job.job_id}" for job in jobs}
        assert backend.last_stats.n_worker_deaths >= 1
        assert backend.last_stats.n_crash_markers == 0


class TestConfiguration:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_workers": 0},
            {"port": 7077},  # port without host
            {"host": "0.0.0.0"},  # host without port
            {"host": "0.0.0.0", "port": 7077, "n_workers": 2},
            {"heartbeat_s": 0.0},
            {"register_timeout_s": 0.0},
            {"stall_timeout_s": 0.0},
            {"chunking": "adaptive"},  # the pool's string spelling
        ],
        ids=lambda kw: ",".join(kw),
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ClusterBackend(**kwargs)

    def test_local_mode_defaults(self):
        backend = ClusterBackend()
        assert backend.name == "cluster"
        assert backend.max_workers == 2
        assert backend.last_stats is None

    def test_listen_mode_reports_remote_worker_count(self):
        backend = ClusterBackend(host="0.0.0.0", port=7077)
        assert backend.max_workers == 1

    def test_chunking_policy_accepted(self):
        policy = AdaptiveChunkPolicy(target_lease_s=0.5)
        backend = ClusterBackend(n_workers=2, chunking=policy)
        assert "target_lease_s=0.5" in repr(backend)

    def test_backend_is_picklable_at_rest(self):
        backend = ClusterBackend(n_workers=3, heartbeat_s=0.1)
        restored = pickle.loads(pickle.dumps(backend))
        assert repr(restored) == repr(backend)
        assert "0x" not in repr(backend)
