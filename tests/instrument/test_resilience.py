"""Tests for the probe retry policy and the meter's resilient probe loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    CircuitBreakerOpenError,
    ConfigurationError,
    InstrumentFault,
    ProbeTimeoutError,
    TransientReadError,
)
from repro.faults import ProbeHangFault, TransientReadFault
from repro.instrument import ExperimentSession, ProbeRetryPolicy
from repro.scenarios import DeviceSpec


def _session(faults, probe_retry, seed=7, resolution=16):
    device = DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)).build()
    return ExperimentSession.from_device(
        device,
        resolution=resolution,
        seed=seed,
        faults=faults,
        probe_retry=probe_retry,
    )


class TestProbeRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_s": -0.1},
            {"backoff_factor": 0.5},
            {"timeout_s": -1.0},
            {"breaker_failures": -1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ProbeRetryPolicy(**kwargs)

    def test_no_retry_fails_on_first_fault(self):
        policy = ProbeRetryPolicy.no_retry()
        assert policy.max_attempts == 1
        assert policy.breaker_failures == 0

    def test_defaults_are_simulated_time_only(self):
        policy = ProbeRetryPolicy()
        assert policy.backoff_s == 0.0
        assert policy.timeout_s is None


class TestRetryLoop:
    def test_retries_ride_out_transient_errors(self):
        session = _session(
            faults=TransientReadFault(rate=0.25),
            probe_retry=ProbeRetryPolicy(max_attempts=8, breaker_failures=0),
            resolution=24,
        )
        image = session.meter.acquire_full_grid()
        assert np.isfinite(image).all()
        assert session.meter.n_probe_retries > 0
        assert session.meter.n_fault_events == session.meter.n_probe_retries
        assert session.meter.n_probes_exhausted == 0

    def test_exhausted_attempts_raise_the_last_typed_error(self):
        session = _session(
            faults=TransientReadFault(rate=1.0),
            probe_retry=ProbeRetryPolicy(max_attempts=3, breaker_failures=0),
        )
        with pytest.raises(TransientReadError, match="injected"):
            session.meter.get_current(0, 0)
        meter = session.meter
        assert meter.n_probes_exhausted == 1
        assert meter.n_probe_retries == 2
        assert meter.n_fault_events == 3
        # Every attempt failed, so all elapsed time was fault time.
        assert meter.elapsed_s == pytest.approx(meter.fault_delay_s)

    def test_backoff_is_charged_to_the_virtual_clock(self):
        def elapsed_after_failure(backoff_s):
            session = _session(
                faults=TransientReadFault(rate=1.0),
                probe_retry=ProbeRetryPolicy(
                    max_attempts=3,
                    backoff_s=backoff_s,
                    backoff_factor=2.0,
                    breaker_failures=0,
                ),
            )
            with pytest.raises(InstrumentFault):
                session.meter.get_current(0, 0)
            return session.meter.elapsed_s

        # Two retries back off 0.5 s then 1.0 s; everything else is equal.
        assert elapsed_after_failure(0.5) - elapsed_after_failure(0.0) == (
            pytest.approx(1.5)
        )

    def test_probe_timeout_budget(self):
        session = _session(
            faults=ProbeHangFault(rate=1.0, hang_s=5.0),
            probe_retry=ProbeRetryPolicy(
                max_attempts=2, timeout_s=1.0, breaker_failures=0
            ),
        )
        with pytest.raises(ProbeTimeoutError, match="timeout budget"):
            session.meter.get_current(0, 0)
        assert session.meter.n_fault_events == 2

    def test_tolerated_stall_advances_the_clock(self):
        hang = ProbeHangFault(rate=1.0, hang_s=5.0)
        stalled = _session(faults=hang, probe_retry=ProbeRetryPolicy())
        clean = _session(faults=None, probe_retry=None)
        value = stalled.meter.get_current(0, 0)
        assert value == clean.meter.get_current(0, 0)
        # No timeout budget: the hang is waited out, not retried.
        assert stalled.meter.n_probe_retries == 0
        assert stalled.meter.n_fault_events == 0
        assert stalled.meter.fault_delay_s == pytest.approx(5.0)
        assert stalled.meter.elapsed_s == pytest.approx(
            clean.meter.elapsed_s + 5.0
        )


class TestCircuitBreaker:
    def _failing_session(self):
        return _session(
            faults=TransientReadFault(rate=1.0),
            probe_retry=ProbeRetryPolicy(max_attempts=1, breaker_failures=3),
        )

    def test_breaker_opens_after_consecutive_failures(self):
        session = self._failing_session()
        meter = session.meter
        for _ in range(2):
            with pytest.raises(TransientReadError):
                meter.get_current(0, 0)
        assert not meter.breaker_open
        with pytest.raises(CircuitBreakerOpenError, match="3 consecutive"):
            meter.get_current(0, 0)
        assert meter.breaker_open

    def test_open_breaker_short_circuits_probes(self):
        session = self._failing_session()
        meter = session.meter
        for _ in range(3):
            with pytest.raises(InstrumentFault):
                meter.get_current(0, 0)
        elapsed = meter.elapsed_s
        with pytest.raises(CircuitBreakerOpenError, match="reset"):
            meter.get_current(0, 1)
        # Short-circuited: the backend was never touched, no time charged.
        assert meter.elapsed_s == elapsed

    def test_reset_rearms_the_breaker(self):
        session = self._failing_session()
        meter = session.meter
        for _ in range(3):
            with pytest.raises(InstrumentFault):
                meter.get_current(0, 0)
        assert meter.breaker_open
        meter.reset()
        assert not meter.breaker_open
        assert meter.n_probe_retries == 0
        assert meter.n_fault_events == 0
        # Probing works again (and fails honestly, not via the breaker).
        with pytest.raises(TransientReadError):
            meter.get_current(0, 0)

    def test_success_resets_the_consecutive_count(self):
        session = _session(
            faults=TransientReadFault(rate=0.15),
            probe_retry=ProbeRetryPolicy(max_attempts=10, breaker_failures=6),
            resolution=24,
            seed=3,
        )
        image = session.meter.acquire_full_grid()
        assert np.isfinite(image).all()
        assert session.meter.n_fault_events >= 4
        assert not session.meter.breaker_open
