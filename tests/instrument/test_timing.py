"""Tests for the virtual clock and timing model."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.instrument import TimingModel, VirtualClock


class TestTimingModel:
    def test_paper_default_dwell(self):
        timing = TimingModel.paper_default()
        assert timing.dwell_time_s == pytest.approx(0.050)
        assert timing.cost_per_probe_s == pytest.approx(0.050)

    def test_cost_sums_components(self):
        timing = TimingModel(dwell_time_s=0.05, set_voltage_s=0.002, readout_s=0.003)
        assert timing.cost_per_probe_s == pytest.approx(0.055)

    def test_negative_costs_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingModel(dwell_time_s=-0.01)


class TestVirtualClock:
    def test_starts_at_zero(self):
        clock = VirtualClock()
        assert clock.elapsed_s == 0.0

    def test_charge_probe_accumulates_dwell(self):
        clock = VirtualClock(TimingModel(dwell_time_s=0.05))
        for _ in range(10):
            clock.charge_probe()
        assert clock.elapsed_s == pytest.approx(0.5)

    def test_advance_arbitrary(self):
        clock = VirtualClock()
        clock.advance(1.25)
        assert clock.elapsed_s == pytest.approx(1.25)

    def test_negative_advance_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ConfigurationError):
            clock.advance(-1.0)

    def test_reset(self):
        clock = VirtualClock()
        clock.advance(2.0)
        clock.reset()
        assert clock.elapsed_s == 0.0

    def test_no_real_sleep_by_default(self):
        clock = VirtualClock(TimingModel(dwell_time_s=10.0))
        clock.charge_probe()  # must return immediately
        assert clock.elapsed_s == pytest.approx(10.0)
        assert clock.wall_time_s < 1.0

    def test_realtime_mode_sleeps(self):
        clock = VirtualClock(TimingModel(dwell_time_s=0.01), realtime=True)
        clock.charge_probe()
        assert clock.wall_time_s >= 0.009
