"""Tests for the experiment session wrapper."""

from __future__ import annotations

import pytest

from repro.instrument import ExperimentSession, SessionFactory, TimingModel
from repro.physics import DotArrayDevice, WhiteNoise


class TestFromCsd:
    def test_carries_geometry_and_label(self, clean_csd):
        session = ExperimentSession.from_csd(clean_csd, label="my-run")
        assert session.label == "my-run"
        assert session.geometry is not None
        assert session.geometry.alpha_12 > 0
        assert session.shape == clean_csd.shape

    def test_summary_tracks_probes(self, clean_session):
        meter = clean_session.meter
        meter.get_current(0, 0)
        meter.get_current(0, 1)
        summary = clean_session.summary()
        assert summary.n_probes == 2
        assert summary.n_pixels == clean_session.shape[0] * clean_session.shape[1]
        assert summary.probe_fraction == pytest.approx(2 / summary.n_pixels)
        assert summary.elapsed_s == pytest.approx(0.1)
        assert summary.as_dict()["n_probes"] == 2

    def test_reset(self, clean_session):
        clean_session.meter.get_current(0, 0)
        clean_session.reset()
        assert clean_session.summary().n_probes == 0

    def test_custom_timing(self, clean_csd):
        session = ExperimentSession.from_csd(clean_csd, timing=TimingModel(dwell_time_s=0.1))
        session.meter.get_current(0, 0)
        assert session.summary().elapsed_s == pytest.approx(0.1)

    def test_voltage_source_has_gate_channels(self, clean_csd):
        session = ExperimentSession.from_csd(clean_csd)
        assert session.voltage_source is not None
        assert session.voltage_source.channel_names == (clean_csd.gate_x, clean_csd.gate_y)


class TestFromDevice:
    def test_measures_device_on_demand(self, double_dot_device):
        session = ExperimentSession.from_device(
            double_dot_device, resolution=24, noise=WhiteNoise(0.0), seed=0
        )
        assert session.shape == (24, 24)
        value = session.meter.get_current(12, 12)
        assert value > 0
        assert session.summary().n_probes == 1

    def test_geometry_matches_device(self, double_dot_device):
        session = ExperimentSession.from_device(double_dot_device, resolution=24)
        alpha_12, alpha_21 = double_dot_device.ground_truth_alphas(0, 1, "P1", "P2")
        assert session.geometry is not None
        assert session.geometry.alpha_12 == pytest.approx(alpha_12)
        assert session.geometry.alpha_21 == pytest.approx(alpha_21)

    def test_rectangular_resolution(self, double_dot_device):
        session = ExperimentSession.from_device(double_dot_device, resolution=(20, 30))
        assert session.shape == (20, 30)

    def test_quadruple_dot_pair_selection(self):
        device = DotArrayDevice.quadruple_dot()
        session = ExperimentSession.from_device(
            device, resolution=20, gate_x="P2", gate_y="P3", dot_a=1, dot_b=2
        )
        assert session.shape == (20, 20)
        assert session.geometry is not None
        assert session.geometry.alpha_12 > 0


class TestSessionFactory:
    def test_makes_sessions_with_shared_settings(self, double_dot_device):
        factory = SessionFactory(
            device=double_dot_device, resolution=24, noise=WhiteNoise(0.01)
        )
        session = factory.make(seed=3)
        assert session.shape == (24, 24)
        assert session.geometry is not None
        assert session.label == f"{double_dot_device.name}:P1-P2"

    def test_gate_pair_varies_per_session(self):
        device = DotArrayDevice.quadruple_dot()
        factory = SessionFactory(device=device, resolution=20)
        first = factory.make(gate_x="P1", gate_y="P2", dot_a=0, dot_b=1, seed=1)
        second = factory.make(gate_x="P2", gate_y="P3", dot_a=1, dot_b=2, seed=2)
        assert first.label.endswith("P1-P2")
        assert second.label.endswith("P2-P3")
        truth = device.ground_truth_alphas(1, 2, "P2", "P3")
        assert second.geometry.alpha_12 == pytest.approx(truth[0])

    def test_accepts_seed_sequence(self, double_dot_device):
        import numpy as np

        factory = SessionFactory(
            device=double_dot_device, resolution=24, noise=WhiteNoise(0.05)
        )
        seed = np.random.SeedSequence(4)
        a = factory.make(seed=np.random.SeedSequence(4))
        b = factory.make(seed=seed)
        assert a.meter.get_current(3, 3) == b.meter.get_current(3, 3)

    def test_factory_is_picklable(self, double_dot_device):
        import pickle

        factory = SessionFactory(device=double_dot_device, resolution=24)
        restored = pickle.loads(pickle.dumps(factory))
        assert restored.resolution == 24
        assert restored.make(seed=0).shape == (24, 24)
