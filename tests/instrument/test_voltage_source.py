"""Tests for the simulated DAC voltage source."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, VoltageRangeError
from repro.instrument import ChannelSpec, VoltageSource


class TestChannelSpec:
    def test_invalid_range(self):
        with pytest.raises(ConfigurationError):
            ChannelSpec(name="P1", min_voltage=1.0, max_voltage=0.0)

    def test_invalid_ramp_rate(self):
        with pytest.raises(ConfigurationError):
            ChannelSpec(name="P1", ramp_rate_v_per_s=0.0)


class TestVoltageSource:
    def test_for_gates_builds_channels(self):
        source = VoltageSource.for_gates(("P1", "P2", "P3"))
        assert source.channel_names == ("P1", "P2", "P3")
        assert source.get("P2") == 0.0

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            VoltageSource([ChannelSpec(name="P1"), ChannelSpec(name="P1")])

    def test_empty_channels_rejected(self):
        with pytest.raises(ConfigurationError):
            VoltageSource([])

    def test_set_and_get(self):
        source = VoltageSource.for_gates(("P1", "P2"))
        source.set("P1", 0.3)
        assert source.get("P1") == pytest.approx(0.3)
        assert source.get_all() == {"P1": pytest.approx(0.3), "P2": 0.0}

    def test_out_of_range_rejected(self):
        source = VoltageSource.for_gates(("P1",), min_voltage=0.0, max_voltage=1.0)
        with pytest.raises(VoltageRangeError):
            source.set("P1", 1.5)
        with pytest.raises(VoltageRangeError):
            source.set("P1", -0.1)

    def test_non_finite_rejected(self):
        source = VoltageSource.for_gates(("P1",))
        with pytest.raises(VoltageRangeError):
            source.set("P1", float("nan"))

    def test_unknown_channel_rejected(self):
        source = VoltageSource.for_gates(("P1",))
        with pytest.raises(ConfigurationError):
            source.get("P9")

    def test_ramp_time_proportional_to_step(self):
        source = VoltageSource.for_gates(("P1",), ramp_rate_v_per_s=2.0)
        ramp = source.set("P1", 1.0)
        assert ramp == pytest.approx(0.5)

    def test_set_many_returns_longest_ramp(self):
        source = VoltageSource.for_gates(("P1", "P2"), ramp_rate_v_per_s=1.0)
        longest = source.set_many({"P1": 0.2, "P2": 0.7})
        assert longest == pytest.approx(0.7)

    def test_as_vector_order(self):
        source = VoltageSource.for_gates(("P1", "P2"))
        source.set("P2", 0.4)
        assert np.allclose(source.as_vector(), [0.0, 0.4])
        assert np.allclose(source.as_vector(("P2", "P1")), [0.4, 0.0])
