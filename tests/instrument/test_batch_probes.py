"""Equivalence tests for the batched probe path.

The batch API (`MeasurementBackend.currents`, `ChargeSensorMeter.get_currents`,
`FeatureGradient.values`, batched `acquire_full_grid`) must be request-by-
request indistinguishable from the scalar path: same values (bit-identical),
same probe counts, same cache hits, same clock charges, same log contents,
and the same budget-exhaustion point.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gradient import FeatureGradient
from repro.exceptions import MeasurementError, ProbeBudgetExceededError
from repro.instrument import (
    ChargeSensorMeter,
    DatasetBackend,
    DeviceBackend,
    TimingModel,
    VirtualClock,
)
from repro.physics import DeviceDrift, WhiteNoise, standard_lab_noise


def _device_backend(device, noise=True):
    xs = np.linspace(0.0, 0.04, 40)
    ys = np.linspace(0.0, 0.04, 40)
    return DeviceBackend(
        device,
        xs,
        ys,
        noise=WhiteNoise(0.05) if noise else None,
        seed=7,
    )


def _meter_pair(backend_factory, **meter_kwargs):
    """Two meters over identically configured backends."""
    return (
        ChargeSensorMeter(backend_factory(), **meter_kwargs),
        ChargeSensorMeter(backend_factory(), **meter_kwargs),
    )


def _request_pattern(rng, shape, n):
    """Random request pattern with plenty of duplicates."""
    rows = rng.integers(0, shape[0], size=n)
    cols = rng.integers(0, shape[1], size=n)
    # Repeat a slice so the batch contains guaranteed duplicates.
    rows[n // 2 : n // 2 + n // 4] = rows[: n // 4]
    cols[n // 2 : n // 2 + n // 4] = cols[: n // 4]
    return rows, cols


def _assert_meters_identical(batch_meter, scalar_meter):
    assert batch_meter.n_probes == scalar_meter.n_probes
    assert batch_meter.n_requests == scalar_meter.n_requests
    assert batch_meter.elapsed_s == scalar_meter.elapsed_s
    batch_arrays = batch_meter.log.as_arrays()
    scalar_arrays = scalar_meter.log.as_arrays()
    for key in batch_arrays:
        assert np.array_equal(batch_arrays[key], scalar_arrays[key]), key


class TestBackendCurrents:
    def test_dataset_backend_matches_scalar(self, clean_csd, rng):
        backend = DatasetBackend(clean_csd)
        rows, cols = _request_pattern(rng, backend.shape, 200)
        batch = backend.currents(rows, cols)
        scalar = np.array([backend.current(int(r), int(c)) for r, c in zip(rows, cols)])
        assert np.array_equal(batch, scalar)

    def test_device_backend_matches_scalar(self, double_dot_device, rng):
        backend = _device_backend(double_dot_device)
        rows, cols = _request_pattern(rng, backend.shape, 200)
        batch = backend.currents(rows, cols)
        scalar = np.array([backend.current(int(r), int(c)) for r, c in zip(rows, cols)])
        assert np.array_equal(batch, scalar)

    def test_device_backend_batch_split_invariance(self, double_dot_device, rng):
        """The same requests give the same bits regardless of batching."""
        backend = _device_backend(double_dot_device)
        rows, cols = _request_pattern(rng, backend.shape, 500)
        whole = backend.currents(rows, cols)
        parts = np.concatenate(
            [backend.currents(rows[i : i + 37], cols[i : i + 37]) for i in range(0, 500, 37)]
        )
        assert np.array_equal(whole, parts)

    def test_off_grid_batch_rejected(self, clean_csd):
        backend = DatasetBackend(clean_csd)
        with pytest.raises(MeasurementError):
            backend.currents([0, 1000], [0, 0])

    def test_shape_mismatch_rejected(self, clean_csd):
        backend = DatasetBackend(clean_csd)
        with pytest.raises(MeasurementError):
            backend.currents([0, 1], [0])

    def test_non_integer_indices_rejected(self, clean_csd):
        backend = DatasetBackend(clean_csd)
        with pytest.raises(MeasurementError):
            backend.currents([0.5, 1.5], [0.0, 1.0])

    def test_empty_batch(self, clean_csd):
        backend = DatasetBackend(clean_csd)
        assert backend.currents([], []).shape == (0,)


class TestGetCurrentsEquivalence:
    @pytest.mark.parametrize("cache", [True, False])
    def test_dataset_backend(self, clean_csd, rng, cache):
        batch_meter, scalar_meter = _meter_pair(
            lambda: DatasetBackend(clean_csd), cache=cache
        )
        rows, cols = _request_pattern(rng, clean_csd.shape, 300)
        batch = batch_meter.get_currents(rows, cols)
        scalar = np.array(
            [scalar_meter.get_current(int(r), int(c)) for r, c in zip(rows, cols)]
        )
        assert np.array_equal(batch, scalar)
        _assert_meters_identical(batch_meter, scalar_meter)

    @pytest.mark.parametrize("cache", [True, False])
    def test_device_backend(self, double_dot_device, rng, cache):
        batch_meter, scalar_meter = _meter_pair(
            lambda: _device_backend(double_dot_device), cache=cache
        )
        rows, cols = _request_pattern(rng, batch_meter.shape, 300)
        batch = batch_meter.get_currents(rows, cols)
        scalar = np.array(
            [scalar_meter.get_current(int(r), int(c)) for r, c in zip(rows, cols)]
        )
        assert np.array_equal(batch, scalar)
        _assert_meters_identical(batch_meter, scalar_meter)

    def test_mixed_scalar_and_batch_calls(self, clean_csd, rng):
        """Interleaving scalar and batched requests shares one cache."""
        batch_meter, scalar_meter = _meter_pair(lambda: DatasetBackend(clean_csd))
        rows, cols = _request_pattern(rng, clean_csd.shape, 60)
        batch_meter.get_current(int(rows[0]), int(cols[0]))
        batch_meter.get_currents(rows, cols)
        batch_meter.get_current(int(rows[1]), int(cols[1]))
        scalar_meter.get_current(int(rows[0]), int(cols[0]))
        for r, c in zip(rows, cols):
            scalar_meter.get_current(int(r), int(c))
        scalar_meter.get_current(int(rows[1]), int(cols[1]))
        _assert_meters_identical(batch_meter, scalar_meter)

    def test_empty_batch_is_a_no_op(self, clean_csd):
        meter = ChargeSensorMeter(DatasetBackend(clean_csd))
        values = meter.get_currents([], [])
        assert values.shape == (0,)
        assert meter.n_requests == 0
        assert meter.elapsed_s == 0.0

    def test_acquire_full_grid_matches_scalar_loop(self, double_dot_device):
        batch_meter, scalar_meter = _meter_pair(
            lambda: _device_backend(double_dot_device)
        )
        image_batch = batch_meter.acquire_full_grid()
        rows, cols = scalar_meter.shape
        image_scalar = np.array(
            [[scalar_meter.get_current(r, c) for c in range(cols)] for r in range(rows)]
        )
        assert np.array_equal(image_batch, image_scalar)
        _assert_meters_identical(batch_meter, scalar_meter)


class TestGetCurrentsBudget:
    def _run_scalar(self, meter, rows, cols):
        values = []
        for r, c in zip(rows, cols):
            values.append(meter.get_current(int(r), int(c)))
        return values

    @pytest.mark.parametrize("cache", [True, False])
    def test_budget_exhaustion_point_matches(self, clean_csd, rng, cache):
        rows, cols = _request_pattern(rng, clean_csd.shape, 120)
        batch_meter, scalar_meter = _meter_pair(
            lambda: DatasetBackend(clean_csd), cache=cache, max_probes=40
        )
        with pytest.raises(ProbeBudgetExceededError):
            batch_meter.get_currents(rows, cols)
        with pytest.raises(ProbeBudgetExceededError):
            self._run_scalar(scalar_meter, rows, cols)
        # Everything before the violating request was committed identically.
        _assert_meters_identical(batch_meter, scalar_meter)
        assert batch_meter.n_probes == 40

    def test_cached_requests_allowed_after_exhaustion(self, clean_csd):
        meter = ChargeSensorMeter(DatasetBackend(clean_csd), max_probes=3)
        meter.get_currents([0, 0, 0], [0, 1, 2])
        # Re-requesting measured pixels is free and still allowed.
        values = meter.get_currents([0, 0], [1, 2])
        assert np.array_equal(values, clean_csd.data[0, 1:3])
        with pytest.raises(ProbeBudgetExceededError):
            meter.get_currents([0], [3])

    def test_budget_hit_on_first_request_commits_nothing(self, clean_csd):
        meter = ChargeSensorMeter(DatasetBackend(clean_csd), max_probes=2)
        meter.get_currents([0, 0], [0, 1])
        with pytest.raises(ProbeBudgetExceededError):
            meter.get_currents([1, 2], [0, 0])
        assert meter.n_probes == 2
        assert meter.n_requests == 2


def _time_dependent_backend(device):
    """A backend whose noise AND device evolve with the probe timestamps."""
    xs = np.linspace(0.0, 0.04, 40)
    ys = np.linspace(0.0, 0.04, 40)
    return DeviceBackend(
        device,
        xs,
        ys,
        noise=standard_lab_noise(telegraph_amplitude_na=0.03),
        seed=11,
        drift=DeviceDrift(
            operating_point_mv_per_hour=40.0,
            charge_jumps_per_hour=900.0,
            charge_jump_mv=0.3,
            interference_mv=0.2,
            interference_period_s=0.7,
            lever_arm_fraction_per_hour=0.05,
        ),
        time_dependent_noise=True,
    )


class TestTimeDependentEquivalence:
    """Batched and scalar probe paths stay bit-identical when the noise (and
    the device itself) depend on the per-probe simulated timestamps."""

    @pytest.mark.parametrize("cache", [True, False])
    def test_get_currents_matches_scalar_loop(self, double_dot_device, rng, cache):
        batch_meter, scalar_meter = _meter_pair(
            lambda: _time_dependent_backend(double_dot_device), cache=cache
        )
        rows, cols = _request_pattern(rng, batch_meter.shape, 300)
        batch = batch_meter.get_currents(rows, cols)
        scalar = np.array(
            [scalar_meter.get_current(int(r), int(c)) for r, c in zip(rows, cols)]
        )
        assert np.array_equal(batch, scalar)
        _assert_meters_identical(batch_meter, scalar_meter)

    def test_batch_split_invariance_through_meter(self, double_dot_device, rng):
        """Splitting one batch into many cannot change values, log, or clock."""
        whole_meter, split_meter = _meter_pair(
            lambda: _time_dependent_backend(double_dot_device)
        )
        rows, cols = _request_pattern(rng, whole_meter.shape, 400)
        whole = whole_meter.get_currents(rows, cols)
        parts = np.concatenate(
            [
                split_meter.get_currents(rows[i : i + 29], cols[i : i + 29])
                for i in range(0, 400, 29)
            ]
        )
        assert np.array_equal(whole, parts)
        _assert_meters_identical(whole_meter, split_meter)

    def test_revisiting_a_pixel_later_sees_an_evolved_device(self, double_dot_device):
        backend = _time_dependent_backend(double_dot_device)
        meter = ChargeSensorMeter(backend, cache=False)
        first = meter.get_current(7, 9)
        meter.clock.advance(3600.0)  # an hour of drift
        second = meter.get_current(7, 9)
        assert first != second

    def test_direct_probe_without_timestamps_is_refused(self, double_dot_device):
        backend = _time_dependent_backend(double_dot_device)
        assert backend.is_time_dependent
        with pytest.raises(MeasurementError):
            backend.currents(np.array([0]), np.array([0]))
        with pytest.raises(MeasurementError):
            backend.current(0, 0)

    def test_static_backend_ignores_timestamps(self, double_dot_device):
        backend = _device_backend(double_dot_device)
        assert not backend.is_time_dependent
        plain = backend.currents(np.array([3, 4]), np.array([5, 6]))
        timed = backend.currents(
            np.array([3, 4]), np.array([5, 6]), times_s=np.array([0.05, 0.10])
        )
        assert np.array_equal(plain, timed)

    def test_shared_seed_sequence_not_mutated(self, double_dot_device):
        """Two backends seeded with the same SeedSequence object agree.

        Regression: child streams used to be derived via SeedSequence.spawn,
        which mutates the caller's object, so the second backend silently
        got different noise/drift realisations.
        """
        root = np.random.SeedSequence(7)
        xs = np.linspace(0.0, 0.04, 40)
        make = lambda: DeviceBackend(  # noqa: E731 - local factory
            double_dot_device,
            xs,
            xs,
            noise=WhiteNoise(0.05),
            seed=root,
            drift=DeviceDrift(charge_jumps_per_hour=600.0, charge_jump_mv=0.4),
            time_dependent_noise=True,
        )
        first, second = make(), make()
        rows = np.arange(20)
        times = (rows + 1) * 0.05
        assert np.array_equal(
            first.currents(rows, rows, times_s=times),
            second.currents(rows, rows, times_s=times),
        )
        assert root.n_children_spawned == 0

    def test_zero_probe_cost_with_time_dependent_noise_rejected(self, double_dot_device):
        xs = np.linspace(0.0, 0.04, 40)
        with pytest.raises(MeasurementError):
            DeviceBackend(
                double_dot_device,
                xs,
                xs,
                noise=WhiteNoise(0.05),
                seed=1,
                time_dependent_noise=True,
                probe_interval_s=0.0,
            )

    def test_timestamp_count_mismatch_rejected(self, double_dot_device):
        backend = _time_dependent_backend(double_dot_device)
        with pytest.raises(MeasurementError):
            backend.currents(
                np.array([0, 1]), np.array([0, 1]), times_s=np.array([0.05])
            )

    def test_acquire_full_grid_matches_scalar_loop(self, double_dot_device):
        batch_meter, scalar_meter = _meter_pair(
            lambda: _time_dependent_backend(double_dot_device)
        )
        image_batch = batch_meter.acquire_full_grid()
        rows, cols = scalar_meter.shape
        image_scalar = np.array(
            [[scalar_meter.get_current(r, c) for c in range(cols)] for r in range(rows)]
        )
        assert np.array_equal(image_batch, image_scalar)
        _assert_meters_identical(batch_meter, scalar_meter)

    @pytest.mark.parametrize("cache", [True, False])
    def test_budget_exhaustion_point_matches(self, double_dot_device, rng, cache):
        rows, cols = _request_pattern(rng, (40, 40), 120)
        batch_meter, scalar_meter = _meter_pair(
            lambda: _time_dependent_backend(double_dot_device),
            cache=cache,
            max_probes=40,
        )
        with pytest.raises(ProbeBudgetExceededError):
            batch_meter.get_currents(rows, cols)
        with pytest.raises(ProbeBudgetExceededError):
            for r, c in zip(rows, cols):
                scalar_meter.get_current(int(r), int(c))
        _assert_meters_identical(batch_meter, scalar_meter)
        assert batch_meter.n_probes == 40


class TestVirtualClockBatch:
    def test_charge_probes_bit_identical_to_loop(self):
        a = VirtualClock(TimingModel(dwell_time_s=0.05, readout_s=0.001))
        b = VirtualClock(TimingModel(dwell_time_s=0.05, readout_s=0.001))
        a.advance(0.123)
        b.advance(0.123)
        times = a.charge_probes(500)
        expected = []
        for _ in range(500):
            b.charge_probe()
            expected.append(b.elapsed_s)
        assert np.array_equal(times, np.array(expected))
        assert a.elapsed_s == b.elapsed_s

    def test_charge_probes_zero_and_negative(self):
        clock = VirtualClock()
        assert clock.charge_probes(0).shape == (0,)
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            clock.charge_probes(-1)


class TestFeatureGradientBatch:
    def test_values_matches_scalar_loop(self, clean_csd, rng):
        batch_meter, scalar_meter = _meter_pair(lambda: DatasetBackend(clean_csd))
        batch_gradient = FeatureGradient(batch_meter, delta_pixels=2)
        scalar_gradient = FeatureGradient(scalar_meter, delta_pixels=2)
        rows = rng.integers(-1, clean_csd.shape[0] + 1, size=50)
        cols = rng.integers(-1, clean_csd.shape[1] + 1, size=50)
        batch = batch_gradient.values(rows, cols)
        scalar = np.array(
            [scalar_gradient.value(int(r), int(c)) for r, c in zip(rows, cols)]
        )
        assert np.array_equal(batch, scalar)
        _assert_meters_identical(batch_meter, scalar_meter)


class TestProbeLogColumnar:
    def test_empty_log_arrays_are_independent(self):
        from repro.instrument import ProbeLog

        arrays = ProbeLog().as_arrays()
        assert all(column.size == 0 for column in arrays.values())
        # Regression: the float columns of an empty log used to be the same
        # array object, so in-place mutation of one corrupted the others.
        float_keys = ["voltage_x", "voltage_y", "current_na", "time_s"]
        for i, first in enumerate(float_keys):
            for second in float_keys[i + 1 :]:
                assert arrays[first] is not arrays[second]

    def test_record_view_round_trip(self, clean_csd):
        meter = ChargeSensorMeter(DatasetBackend(clean_csd))
        meter.get_current(2, 3)
        meter.get_current(2, 3)
        log = meter.log
        assert len(log) == 2
        assert log.records[0].cached is False
        assert log[-1].cached is True
        assert [record.row for record in log] == [2, 2]
        with pytest.raises(IndexError):
            log[2]

    def test_log_constructible_from_records(self, clean_csd):
        from repro.instrument import ProbeLog, ProbeRecord

        record = ProbeRecord(
            row=1, col=2, voltage_x=0.1, voltage_y=0.2, current_na=0.5, time_s=0.05
        )
        log = ProbeLog(records=[record])
        assert log.records == (record,)
        assert log.n_unique_pixels == 1

    def test_growth_beyond_initial_capacity(self, clean_csd):
        meter = ChargeSensorMeter(DatasetBackend(clean_csd))
        meter.acquire_full_grid()
        assert meter.log.n_requests == clean_csd.n_pixels
        assert meter.log.n_unique_pixels == clean_csd.n_pixels
        mask = meter.log.probe_mask(clean_csd.shape)
        assert mask.all()


class TestPixelAtFastPath:
    def test_uniform_axis_matches_argmin(self, clean_csd, rng):
        backend = DatasetBackend(clean_csd)
        for _ in range(100):
            vx = float(rng.uniform(clean_csd.x_voltages[0] - 0.01, clean_csd.x_voltages[-1] + 0.01))
            vy = float(rng.uniform(clean_csd.y_voltages[0] - 0.01, clean_csd.y_voltages[-1] + 0.01))
            expected = (
                int(np.argmin(np.abs(clean_csd.y_voltages - vy))),
                int(np.argmin(np.abs(clean_csd.x_voltages - vx))),
            )
            assert backend.pixel_at(vx, vy) == expected
            assert clean_csd.pixel_at(vx, vy) == expected

    def test_non_uniform_axis_falls_back_to_argmin(self, double_dot_device):
        xs = np.array([0.0, 0.01, 0.03, 0.07, 0.15])
        ys = np.array([0.0, 0.02, 0.03, 0.08, 0.20])
        backend = DeviceBackend(double_dot_device, xs, ys)
        for vx, vy in [(0.02, 0.05), (0.069, 0.001), (0.5, -0.5)]:
            expected = (
                int(np.argmin(np.abs(ys - vy))),
                int(np.argmin(np.abs(xs - vx))),
            )
            assert backend.pixel_at(vx, vy) == expected

    def test_round_trip_through_voltage_at(self, clean_csd):
        backend = DatasetBackend(clean_csd)
        for row, col in [(0, 0), (31, 17), (62, 62)]:
            vx, vy = backend.voltage_at(row, col)
            assert backend.pixel_at(vx, vy) == (row, col)

    def test_midpoint_ties_match_argmin_path(self, clean_csd):
        """Exact and ulp-perturbed midpoints resolve like the argmin scan."""
        from repro.physics.csd import nearest_axis_index, uniform_axis_step

        axis = clean_csd.x_voltages
        step = uniform_axis_step(axis)
        assert step is not None
        for i in range(axis.size - 1):
            midpoint = 0.5 * (axis[i] + axis[i + 1])
            for value in (
                midpoint,
                np.nextafter(midpoint, -np.inf),
                np.nextafter(midpoint, np.inf),
            ):
                expected = int(np.argmin(np.abs(axis - value)))
                assert nearest_axis_index(axis, float(value), step) == expected

    def test_non_finite_voltage_matches_argmin_path(self, clean_csd):
        backend = DatasetBackend(clean_csd)
        for value in [float("nan"), float("inf"), float("-inf")]:
            expected = (
                int(np.argmin(np.abs(clean_csd.y_voltages - value))),
                int(np.argmin(np.abs(clean_csd.x_voltages - value))),
            )
            assert backend.pixel_at(value, value) == expected
            assert clean_csd.pixel_at(value, value) == expected
