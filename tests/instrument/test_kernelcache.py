"""Kernel cache: bit-identical reuse of noise-free CSD kernels.

The cache's contract has three legs: cached and uncached measurements are
exactly equal (the cache stores the same values the solver would recompute),
the fingerprint separates every input the pure values depend on, and
anything time-dependent (drift, time-dependent noise) bypasses the cache
completely so stale kernels can never leak into evolving sessions.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.instrument import ChargeSensorMeter, DeviceBackend, ExperimentSession
from repro.kernelcache import (
    KernelCache,
    KernelCacheEntry,
    KernelCacheStats,
    clear_kernel_cache,
    configure_kernel_cache,
    default_kernel_cache,
    kernel_fingerprint,
)
from repro.physics import DeviceDrift, DotArrayDevice, WhiteNoise

RESOLUTION = 24


def build_backend(cache, seed=7, noise=None, drift=None, time_dependent_noise=False,
                  device=None, span=0.05):
    device = device or DotArrayDevice.double_dot(cross_coupling=(0.25, 0.22))
    xs = np.linspace(0.0, span, RESOLUTION)
    ys = np.linspace(0.0, span, RESOLUTION)
    return DeviceBackend(
        device,
        xs,
        ys,
        noise=noise,
        seed=seed,
        drift=drift,
        time_dependent_noise=time_dependent_noise,
        probe_interval_s=0.05,
        kernel_cache=cache,
    )


class TestCacheHits:
    def test_second_backend_reuses_kernel(self):
        cache = KernelCache()
        first = ChargeSensorMeter(build_backend(cache))
        warm = first.acquire_full_grid()
        second = ChargeSensorMeter(build_backend(cache))
        reused = second.acquire_full_grid()

        np.testing.assert_array_equal(warm, reused)
        stats = cache.stats
        assert stats.entry_hits == 1
        assert stats.entry_misses == 1
        assert stats.pixel_solves == RESOLUTION * RESOLUTION
        assert stats.pixel_hits == RESOLUTION * RESOLUTION

    def test_cache_on_equals_cache_off(self):
        cache = KernelCache()
        ChargeSensorMeter(build_backend(cache)).acquire_full_grid()  # warm
        noise = WhiteNoise(0.05)
        cached = ChargeSensorMeter(
            build_backend(cache, noise=noise)
        ).acquire_full_grid()
        uncached = ChargeSensorMeter(
            build_backend(False, noise=noise)
        ).acquire_full_grid()
        np.testing.assert_array_equal(cached, uncached)

    def test_different_seed_reuses_kernel_but_changes_noise(self):
        cache = KernelCache()
        noise = WhiteNoise(0.05)
        a = ChargeSensorMeter(build_backend(cache, seed=1, noise=noise))
        b = ChargeSensorMeter(build_backend(cache, seed=2, noise=noise))
        image_a = a.acquire_full_grid()
        image_b = b.acquire_full_grid()

        assert not np.array_equal(image_a, image_b)
        assert cache.stats.pixel_solves == RESOLUTION * RESOLUTION
        assert cache.stats.pixel_hits == RESOLUTION * RESOLUTION

    def test_meter_exposes_backend_counters(self):
        cache = KernelCache()
        ChargeSensorMeter(build_backend(cache)).acquire_full_grid()  # warm
        meter = ChargeSensorMeter(build_backend(cache))
        meter.acquire_full_grid()
        assert meter.kernel_cache_hits == RESOLUTION * RESOLUTION
        assert meter.kernel_cache_solves == 0


class TestCacheBypass:
    def test_disabled_backend_leaves_cache_untouched(self):
        cache = KernelCache()
        meter = ChargeSensorMeter(build_backend(False))
        meter.acquire_full_grid()
        assert cache.stats.as_dict() == KernelCacheStats(0, 0, 0, 0, 0, 0).as_dict()

    def test_drift_bypasses_cache(self):
        cache = KernelCache()
        drift = DeviceDrift(operating_point_mv_per_hour=8.0)
        meter = ChargeSensorMeter(build_backend(cache, drift=drift))
        meter.acquire_full_grid()
        assert cache.stats == KernelCacheStats(0, 0, 0, 0, 0, 0)

    def test_time_dependent_noise_bypasses_cache(self):
        cache = KernelCache()
        meter = ChargeSensorMeter(
            build_backend(cache, noise=WhiteNoise(0.05), time_dependent_noise=True)
        )
        meter.acquire_full_grid()
        assert cache.stats == KernelCacheStats(0, 0, 0, 0, 0, 0)

    def test_disabled_cache_object_serves_nothing(self):
        cache = KernelCache(enabled=False)
        meter = ChargeSensorMeter(build_backend(cache))
        meter.acquire_full_grid()
        assert len(cache) == 0
        assert meter.kernel_cache_hits == 0


class TestFingerprint:
    def _fingerprint(self, device=None, span=0.05, resolution=RESOLUTION,
                     gate_x=0, gate_y=1, fixed=None):
        device = device or DotArrayDevice.double_dot(cross_coupling=(0.25, 0.22))
        xs = np.linspace(0.0, span, resolution)
        ys = np.linspace(0.0, span, resolution)
        fixed_voltages = np.zeros(device.n_gates) if fixed is None else fixed
        return kernel_fingerprint(device, xs, ys, gate_x, gate_y, fixed_voltages)

    def test_identical_inputs_identical_fingerprint(self):
        assert self._fingerprint() == self._fingerprint()

    def test_device_window_resolution_fixed_all_discriminate(self):
        fingerprints = {
            "base": self._fingerprint(),
            "device": self._fingerprint(
                device=DotArrayDevice.double_dot(cross_coupling=(0.3, 0.22))
            ),
            "window": self._fingerprint(span=0.06),
            "resolution": self._fingerprint(resolution=RESOLUTION + 1),
            "gates": self._fingerprint(gate_x=1, gate_y=0),
            "fixed": self._fingerprint(
                fixed=np.full(2, 0.01)
            ),
        }
        assert len(set(fingerprints.values())) == len(fingerprints)

    def test_solver_bound_discriminates(self):
        loose = DotArrayDevice.double_dot(cross_coupling=(0.25, 0.22))
        tight = DotArrayDevice(
            capacitance=loose.capacitance,
            sensor=loose.sensor,
            gate_specs=loose.gate_specs,
            max_electrons_per_dot=2,
            name=loose.name,
        )
        assert self._fingerprint(device=loose) != self._fingerprint(device=tight)


class TestLRUAndStats:
    def test_lru_evicts_oldest_entry(self):
        cache = KernelCache(max_entries=2)
        for name in ("a", "b", "c"):
            cache.entry(name, (4, 4))
        assert len(cache) == 2
        stats = cache.stats
        assert stats.evictions == 1
        assert stats.entry_misses == 3

    def test_evicted_pixel_work_stays_counted(self):
        cache = KernelCache(max_entries=1)
        entry = cache.entry("a", (4, 4))
        entry.fetch(
            np.array([0, 0]), np.array([0, 1]), lambda idx: np.zeros(idx.size)
        )
        cache.entry("b", (4, 4))
        assert cache.stats.pixel_solves == 2

    def test_entry_fetch_dedups_repeated_pixels(self):
        entry = KernelCacheEntry("fp", (4, 4))
        calls = []

        def solve(idx):
            calls.append(idx.size)
            return np.arange(idx.size, dtype=float)

        rows = np.array([1, 1, 1, 2])
        cols = np.array([3, 3, 3, 0])
        entry.fetch(rows, cols, solve)
        assert calls == [2]
        assert entry.n_solved == 2

    def test_stats_round_trip_strict_json(self):
        stats = KernelCacheStats(2, 100, 10, 5, 2, 1)
        payload = json.loads(json.dumps(stats.as_dict(), allow_nan=False))
        assert KernelCacheStats.from_dict(payload) == stats

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            KernelCache(max_entries=0)


class TestGlobalCache:
    def test_configure_and_clear_global_cache(self):
        try:
            clear_kernel_cache()
            cache = configure_kernel_cache(enabled=True, max_entries=4)
            assert cache is default_kernel_cache()
            device = DotArrayDevice.double_dot(cross_coupling=(0.25, 0.22))
            session = ExperimentSession.from_device(
                device, resolution=RESOLUTION, seed=3
            )
            session.meter.acquire_full_grid()
            assert default_kernel_cache().stats.pixel_solves == RESOLUTION**2
            clear_kernel_cache()
            assert default_kernel_cache().stats.entry_misses == 0
        finally:
            clear_kernel_cache()
            configure_kernel_cache(enabled=True, max_entries=32)

    def test_session_cache_on_off_identical(self):
        try:
            clear_kernel_cache()
            device = DotArrayDevice.double_dot(cross_coupling=(0.25, 0.22))

            def acquire(kernel_cache):
                session = ExperimentSession.from_device(
                    device,
                    resolution=RESOLUTION,
                    seed=11,
                    noise=WhiteNoise(0.05),
                    kernel_cache=kernel_cache,
                )
                return session.meter.acquire_full_grid()

            warm = acquire(True)      # populates the global cache
            cached = acquire(True)    # served from it
            uncached = acquire(False)
            np.testing.assert_array_equal(warm, cached)
            np.testing.assert_array_equal(cached, uncached)
        finally:
            clear_kernel_cache()
