"""Tests for the measurement backends and the charge-sensor meter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import MeasurementError, ProbeBudgetExceededError
from repro.instrument import (
    ChargeSensorMeter,
    DatasetBackend,
    DeviceBackend,
    TimingModel,
    VirtualClock,
)
from repro.physics import WhiteNoise


class TestDatasetBackend:
    def test_replays_pixels(self, clean_csd):
        backend = DatasetBackend(clean_csd)
        assert backend.shape == clean_csd.shape
        assert backend.current(5, 7) == pytest.approx(clean_csd.data[5, 7])

    def test_off_grid_rejected(self, clean_csd):
        backend = DatasetBackend(clean_csd)
        with pytest.raises(MeasurementError):
            backend.current(1000, 0)

    def test_pixel_at_voltage(self, clean_csd):
        backend = DatasetBackend(clean_csd)
        vx, vy = backend.voltage_at(3, 9)
        assert backend.pixel_at(vx, vy) == (3, 9)


class TestDeviceBackend:
    def test_matches_device_physics_without_noise(self, double_dot_device):
        xs = np.linspace(0.0, 0.03, 20)
        ys = np.linspace(0.0, 0.03, 20)
        backend = DeviceBackend(double_dot_device, xs, ys)
        vg = np.array([xs[4], ys[11]])
        assert backend.current(11, 4) == pytest.approx(
            double_dot_device.sensor_current(vg)
        )

    def test_noise_is_reproducible_per_seed(self, double_dot_device):
        xs = np.linspace(0.0, 0.03, 10)
        ys = np.linspace(0.0, 0.03, 10)
        a = DeviceBackend(double_dot_device, xs, ys, noise=WhiteNoise(0.1), seed=5)
        b = DeviceBackend(double_dot_device, xs, ys, noise=WhiteNoise(0.1), seed=5)
        assert a.current(3, 3) == pytest.approx(b.current(3, 3))

    def test_value_cached_between_calls(self, double_dot_device):
        xs = np.linspace(0.0, 0.03, 10)
        ys = np.linspace(0.0, 0.03, 10)
        backend = DeviceBackend(double_dot_device, xs, ys, noise=WhiteNoise(0.1), seed=1)
        assert backend.current(2, 2) == backend.current(2, 2)

    def test_grid_validation(self, double_dot_device):
        with pytest.raises(MeasurementError):
            DeviceBackend(double_dot_device, np.array([0.0]), np.linspace(0, 1, 5))


class TestChargeSensorMeter:
    def test_probe_charges_dwell_time(self, clean_csd):
        meter = ChargeSensorMeter(
            DatasetBackend(clean_csd), clock=VirtualClock(TimingModel(dwell_time_s=0.05))
        )
        meter.get_current(0, 0)
        meter.get_current(0, 1)
        assert meter.elapsed_s == pytest.approx(0.10)
        assert meter.n_probes == 2
        assert meter.n_requests == 2

    def test_cache_hit_costs_nothing(self, clean_csd):
        meter = ChargeSensorMeter(DatasetBackend(clean_csd))
        first = meter.get_current(3, 3)
        second = meter.get_current(3, 3)
        assert first == second
        assert meter.n_probes == 1
        assert meter.n_requests == 2
        assert meter.elapsed_s == pytest.approx(0.05)
        assert meter.log.records[-1].cached is True

    def test_cache_disabled_charges_every_request(self, clean_csd):
        meter = ChargeSensorMeter(DatasetBackend(clean_csd), cache=False)
        meter.get_current(3, 3)
        meter.get_current(3, 3)
        assert meter.elapsed_s == pytest.approx(0.10)

    def test_probe_budget_enforced(self, clean_csd):
        meter = ChargeSensorMeter(DatasetBackend(clean_csd), max_probes=3)
        for i in range(3):
            meter.get_current(0, i)
        with pytest.raises(ProbeBudgetExceededError):
            meter.get_current(0, 3)
        # Cached pixels are still allowed after the budget is exhausted.
        assert meter.get_current(0, 0) == pytest.approx(clean_csd.data[0, 0])

    def test_get_current_at_voltage(self, clean_csd):
        meter = ChargeSensorMeter(DatasetBackend(clean_csd))
        vx, vy = clean_csd.voltage_at(8, 12)
        assert meter.get_current_at_voltage(vx, vy) == pytest.approx(clean_csd.data[8, 12])

    def test_acquire_full_grid(self, clean_csd):
        meter = ChargeSensorMeter(DatasetBackend(clean_csd))
        image = meter.acquire_full_grid()
        assert np.allclose(image, clean_csd.data)
        assert meter.n_probes == clean_csd.n_pixels
        assert meter.probe_fraction == pytest.approx(1.0)
        assert meter.elapsed_s == pytest.approx(0.05 * clean_csd.n_pixels)

    def test_measured_image_marks_unprobed_as_nan(self, clean_csd):
        meter = ChargeSensorMeter(DatasetBackend(clean_csd))
        meter.get_current(1, 1)
        image = meter.measured_image()
        assert image[1, 1] == pytest.approx(clean_csd.data[1, 1])
        assert np.isnan(image[0, 0])

    def test_reset_clears_everything(self, clean_csd):
        meter = ChargeSensorMeter(DatasetBackend(clean_csd))
        meter.get_current(0, 0)
        meter.reset()
        assert meter.n_probes == 0
        assert meter.elapsed_s == 0.0
        assert len(meter.log) == 0


class TestProbeLog:
    def test_unique_pixels_order_and_mask(self, clean_csd):
        meter = ChargeSensorMeter(DatasetBackend(clean_csd))
        meter.get_current(2, 2)
        meter.get_current(4, 4)
        meter.get_current(2, 2)
        log = meter.log
        assert log.unique_pixels() == [(2, 2), (4, 4)]
        mask = log.probe_mask(clean_csd.shape)
        assert mask.sum() == 2
        assert mask[2, 2] and mask[4, 4]

    def test_as_arrays_columns(self, clean_csd):
        meter = ChargeSensorMeter(DatasetBackend(clean_csd))
        meter.get_current(0, 0)
        meter.get_current(0, 0)
        arrays = meter.log.as_arrays()
        assert arrays["row"].shape == (2,)
        assert arrays["cached"].tolist() == [False, True]

    def test_empty_log_arrays(self):
        from repro.instrument import ProbeLog

        arrays = ProbeLog().as_arrays()
        assert arrays["row"].size == 0
        assert arrays["cached"].size == 0
