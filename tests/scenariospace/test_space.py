"""Tests for scenario spaces: params, sampling, and campaign execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.scenariospace import (
    Choice,
    Fixed,
    LogUniform,
    ScenarioParams,
    ScenarioSpace,
    Uniform,
    jobs_for_draws,
    run_draws,
    scenario_from_params,
)
from repro.scenarios import get_scenario
from repro.scenarios.catalog import (
    register_scenario,
    temporary_scenarios,
    unregister_scenario,
)
from repro.scenarios.devices import DeviceSpec


class TestScenarioParams:
    def test_defaults_are_benign(self):
        params = ScenarioParams()
        assert params.noise_scale == 1.0
        assert params.drift_mv_per_hour == 0.0
        assert params.fault_rate == 0.0

    @pytest.mark.parametrize("field", ["noise_scale", "drift_mv_per_hour", "fault_rate"])
    @pytest.mark.parametrize("value", [-0.1, float("nan"), float("inf")])
    def test_rejects_bad_severities(self, field, value):
        with pytest.raises(ConfigurationError):
            ScenarioParams(**{field: value})

    def test_rejects_fault_rate_above_one(self):
        with pytest.raises(ConfigurationError):
            ScenarioParams(fault_rate=1.5)

    def test_with_axis(self):
        params = ScenarioParams().with_axis("fault_rate", 0.25)
        assert params.fault_rate == 0.25
        assert params.noise_scale == 1.0

    def test_with_axis_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            ScenarioParams().with_axis("resolution", 2.0)

    def test_round_trip_preserves_device_kwargs(self):
        params = ScenarioParams(
            device=DeviceSpec.of("grid_array", rows=2, cols=3),
            noise_scale=2.5,
            drift_mv_per_hour=12.0,
            fault_rate=0.1,
        )
        assert ScenarioParams.from_dict(params.as_dict()) == params


class TestScenarioFromParams:
    def test_benign_params_make_quiet_scenario(self):
        scenario = scenario_from_params(
            "quiet", ScenarioParams(noise_scale=0.0)
        )
        assert scenario.noise is None
        assert scenario.drift is None
        assert scenario.faults is None
        assert scenario.probe_retry is None
        assert scenario.time_dependent_noise is False

    def test_severities_materialise_models(self):
        scenario = scenario_from_params(
            "loud",
            ScenarioParams(
                noise_scale=2.0, drift_mv_per_hour=10.0, fault_rate=0.2
            ),
        )
        assert scenario.noise is not None
        assert scenario.drift.operating_point_mv_per_hour == 10.0
        assert scenario.faults.rate == 0.2
        assert scenario.probe_retry is not None
        assert scenario.time_dependent_noise is True

    def test_fault_rate_capped_below_one(self):
        scenario = scenario_from_params(
            "flood", ScenarioParams(fault_rate=1.0)
        )
        assert scenario.faults.rate == 0.9


class TestSpaceValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpace(name="")

    def test_negative_severity_support_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpace(name="bad", drift_mv_per_hour=Uniform(-5.0, 5.0))

    def test_categorical_severity_sampler_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpace(name="bad", noise_scale=Choice(options=(0.5, 2.0)))

    def test_device_sampler_must_yield_device_specs(self):
        space = ScenarioSpace(name="bad", device=Fixed("double_dot"))
        with pytest.raises(ConfigurationError):
            space.sample(1, seed=0)

    def test_negative_n_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpace(name="s").sample(-1)

    def test_stressed_rejects_unknown_axis(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpace(name="s").stressed({"resolution": 2.0})


class TestSampling:
    def test_draw_names_follow_space_and_index(self):
        draws = ScenarioSpace(name="demo").sample(3, seed=5)
        assert [d.scenario.name for d in draws] == [
            "demo-0000", "demo-0001", "demo-0002"
        ]

    def test_sampled_fault_rate_respects_cap(self):
        space = ScenarioSpace(name="flood", fault_rate=Fixed(0.95))
        draws = space.sample(2, seed=0)
        assert all(d.params.fault_rate == 0.9 for d in draws)


class TestJobsForDraws:
    def test_first_pair_only_by_default(self):
        space = ScenarioSpace(
            name="grid", device=Fixed(DeviceSpec.of("grid_array", rows=2, cols=3))
        )
        draws = space.sample(2, seed=3)
        jobs = jobs_for_draws(draws)
        assert len(jobs) == 2
        assert [job.job_id for job in jobs] == [0, 1]
        assert all(job.noise_scale == 1.0 for job in jobs)
        assert all(job.fault is None for job in jobs)
        assert [job.scenario for job in jobs] == ["grid-0000", "grid-0001"]

    def test_all_pairs_expands_every_bond(self):
        space = ScenarioSpace(
            name="grid", device=Fixed(DeviceSpec.of("grid_array", rows=2, cols=3))
        )
        draws = space.sample(1, seed=3)
        jobs = jobs_for_draws(draws, pairs="all")
        # The 2x3 lattice has 7 bonds; every job gets a distinct seed.
        assert len(jobs) == 7
        identities = {
            (job.seed.entropy, tuple(job.seed.spawn_key)) for job in jobs
        }
        assert len(identities) == 7

    def test_invalid_pairs_mode_rejected(self):
        draws = ScenarioSpace(name="s").sample(1, seed=0)
        with pytest.raises(ConfigurationError):
            jobs_for_draws(draws, pairs="some")


class TestRunDraws:
    def test_records_carry_draw_scenarios_and_registry_is_restored(self):
        space = ScenarioSpace(
            name="tiny",
            noise_scale=Fixed(0.5),
            drift_mv_per_hour=Fixed(0.0),
        )
        draws = space.sample(2, seed=7)
        result = run_draws(draws, resolution=16)
        assert [r.scenario for r in result.records] == [
            "tiny-0000", "tiny-0001"
        ]
        # temporary_scenarios must have cleaned up after the run.
        with pytest.raises(ConfigurationError):
            get_scenario("tiny-0000")

    def test_serial_and_process_runs_are_bit_identical(self):
        """The PR's acceptance criterion: sampled-scenario campaigns are
        bit-reproducible across serial and process-pool execution."""
        space = ScenarioSpace(
            name="xbackend",
            device=Choice(
                options=(
                    DeviceSpec.of("double_dot"),
                    DeviceSpec.of("linear_array", n_dots=6),
                )
            ),
            noise_scale=LogUniform(0.5, 2.0),
            drift_mv_per_hour=Uniform(0.0, 10.0),
            fault_rate=Fixed(0.0),
        )
        draws = space.sample(4, seed=13)
        serial = run_draws(draws, resolution=16, backend="serial")
        pooled = run_draws(
            draws, resolution=16, n_workers=2, backend="process"
        )
        # Prove we compared genuinely different execution policies before
        # normalization strips them.
        assert serial.metadata["backend"] == "serial"
        assert pooled.metadata["backend"] == "process"
        assert serial.normalized() == pooled.normalized()


class TestRegistryHelpers:
    def test_unregister_returns_scenario_and_removes_it(self):
        scenario = ScenarioSpace(name="once").sample(1, seed=0)[0].scenario
        register_scenario(scenario)
        assert unregister_scenario(scenario.name) == scenario
        with pytest.raises(ConfigurationError):
            get_scenario(scenario.name)

    def test_unregister_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            unregister_scenario("never-registered")

    def test_temporary_scenarios_shadow_and_restore(self):
        original = get_scenario("quiet_lab")
        shadow = ScenarioSpace(name="shadowspace").sample(1, seed=0)[0].scenario
        shadow = type(shadow)(
            name="quiet_lab",
            story=shadow.story,
            device=shadow.device,
            noise=shadow.noise,
            drift=shadow.drift,
            timing=shadow.timing,
            time_dependent_noise=shadow.time_dependent_noise,
            faults=shadow.faults,
            probe_retry=shadow.probe_retry,
        )
        with temporary_scenarios(shadow):
            assert get_scenario("quiet_lab") == shadow
        assert get_scenario("quiet_lab") == original

    def test_temporary_scenarios_clean_up_on_error(self):
        scenario = ScenarioSpace(name="doomed").sample(1, seed=0)[0].scenario
        with pytest.raises(RuntimeError):
            with temporary_scenarios(scenario):
                assert get_scenario(scenario.name) == scenario
                raise RuntimeError("boom")
        with pytest.raises(ConfigurationError):
            get_scenario(scenario.name)
