"""Tests for the adversarial miner and the failure distiller."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.exceptions import ConfigurationError
from repro.scenariospace import (
    Fixed,
    MINED_REGRESSIONS,
    MinedFailure,
    ScenarioParams,
    ScenarioSpace,
    Uniform,
    distill_failure,
    mine_failures,
)
from repro.scenariospace.distill import replay_failure
from repro.scenariospace.mining import MULTIPLIER_RANGE, _clamp_multiplier
from repro.scenarios.devices import DeviceSpec

#: A parameter vector + seed known to fail (the distilled transient-flood
#: regression), reused here so distiller tests run one real failing job
#: instead of mining from scratch.
FLOOD = next(r for r in MINED_REGRESSIONS if r.name == "mined_transient_flood")


def flood_failure(params: ScenarioParams | None = None) -> MinedFailure:
    return MinedFailure(
        space="test",
        round_index=0,
        params=params if params is not None else FLOOD.params,
        seed_entropy=FLOOD.seed_entropy,
        seed_spawn_key=FLOOD.seed_spawn_key,
        method=FLOOD.method,
        resolution=FLOOD.resolution,
        failure_category=FLOOD.failure_category,
        failure_reason="probe fault budget exhausted",
    )


class TestClamp:
    def test_clamps_to_range(self):
        low, high = MULTIPLIER_RANGE
        assert _clamp_multiplier(1e9) == high
        assert _clamp_multiplier(1e-9) == low
        assert _clamp_multiplier(1.0) == 1.0


class TestMineFailures:
    @pytest.fixture(scope="class")
    def quiet_space(self):
        # A space whose draws reliably pass: no noise, no drift, no faults.
        return ScenarioSpace(
            name="calm",
            device=Fixed(DeviceSpec.of("double_dot")),
            noise_scale=Fixed(0.0),
            drift_mv_per_hour=Fixed(0.0),
            fault_rate=Fixed(0.0),
        )

    @pytest.fixture(scope="class")
    def faulty_space(self):
        # High fault rates break jobs often enough for a 1-round climb.
        return ScenarioSpace(
            name="storm",
            device=Fixed(DeviceSpec.of("double_dot")),
            noise_scale=Fixed(0.0),
            drift_mv_per_hour=Fixed(0.0),
            fault_rate=Uniform(0.3, 0.6),
        )

    def test_mining_is_deterministic(self, faulty_space):
        kwargs = dict(
            n_rounds=1,
            draws_per_round=3,
            seed=4,
            resolution=12,
            axes=("fault_rate",),
        )
        first = mine_failures(faulty_space, **kwargs)
        second = mine_failures(faulty_space, **kwargs)
        assert first == second

    def test_failures_carry_replayable_identity(self, faulty_space):
        result = mine_failures(
            faulty_space,
            n_rounds=1,
            draws_per_round=3,
            seed=4,
            resolution=12,
            axes=("fault_rate",),
        )
        assert result.n_failures > 0
        failure = result.failures[0]
        record = replay_failure(
            failure.params,
            failure.seed,
            method=failure.method,
            resolution=failure.resolution,
        )
        assert not record.success
        assert record.failure_category == failure.failure_category

    def test_quiet_space_mines_nothing(self, quiet_space):
        result = mine_failures(
            quiet_space,
            n_rounds=1,
            draws_per_round=2,
            seed=0,
            resolution=12,
            axes=("drift_mv_per_hour",),
        )
        assert result.n_failures == 0
        # Round 0 plus one climb round that found nothing better.
        assert [r.accepted for r in result.rounds] == [True, False]
        assert dict(result.best_multipliers) == {"drift_mv_per_hour": 1.0}

    def test_stop_at_failure_rate_short_circuits(self, faulty_space):
        stressed = faulty_space.stressed({"fault_rate": 2.0})
        result = mine_failures(
            stressed,
            n_rounds=3,
            draws_per_round=3,
            seed=4,
            resolution=12,
            axes=("fault_rate",),
            stop_at_failure_rate=0.01,
        )
        # Round 0 already exceeds the threshold: no climb rounds run.
        assert len(result.rounds) == 1

    def test_rejects_bad_arguments(self, quiet_space):
        with pytest.raises(ConfigurationError):
            mine_failures(quiet_space, n_rounds=0)
        with pytest.raises(ConfigurationError):
            mine_failures(quiet_space, draws_per_round=0)
        with pytest.raises(ConfigurationError):
            mine_failures(quiet_space, step=1.0)
        with pytest.raises(ConfigurationError):
            mine_failures(quiet_space, axes=("resolution",))


class TestDistillFailure:
    def test_distils_away_irrelevant_axes(self):
        # Inflate two axes the flood failure provably does not need; the
        # distiller must zero both and keep a failing fault rate.
        original = FLOOD.params.with_axis("noise_scale", 2.0).with_axis(
            "drift_mv_per_hour", 15.0
        )
        distilled = distill_failure(flood_failure(original), max_bisections=6)
        assert distilled.original == original
        assert distilled.minimal.noise_scale == 0.0
        assert distilled.minimal.drift_mv_per_hour == 0.0
        assert 0.0 < distilled.minimal.fault_rate <= original.fault_rate
        assert set(distilled.zeroed_axes()) == {
            "noise_scale", "drift_mv_per_hour"
        }
        assert distilled.failure_category == FLOOD.failure_category
        assert distilled.n_evaluations > 1
        # The contract that makes the fixture worth writing: the minimised
        # vector still fails on the recorded seed.
        record = replay_failure(
            distilled.minimal,
            flood_failure().seed,
            method=distilled.method,
            resolution=distilled.resolution,
        )
        assert not record.success

    def test_refuses_non_reproducing_failure(self):
        benign = ScenarioParams(
            device=FLOOD.params.device,
            noise_scale=0.0,
            drift_mv_per_hour=0.0,
            fault_rate=0.0,
        )
        with pytest.raises(ConfigurationError, match="does not reproduce"):
            distill_failure(flood_failure(benign))

    def test_rejects_bad_budget(self):
        with pytest.raises(ConfigurationError):
            distill_failure(flood_failure(), max_bisections=0)


class TestReplayFailure:
    def test_replay_is_deterministic(self):
        def pinned(record):
            return replace(
                record,
                wall_elapsed_s=0.0,
                stage_telemetry=tuple(
                    t.normalized(0.0) for t in record.stage_telemetry
                ),
            )

        first = replay_failure(
            FLOOD.params,
            flood_failure().seed,
            method=FLOOD.method,
            resolution=FLOOD.resolution,
        )
        second = replay_failure(
            FLOOD.params,
            flood_failure().seed,
            method=FLOOD.method,
            resolution=FLOOD.resolution,
        )
        assert pinned(first) == pinned(second)
        assert not first.success
