"""Tests for the scenario-space samplers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.scenariospace import Choice, Fixed, LogUniform, Uniform


@pytest.fixture()
def rng():
    return np.random.default_rng(3)


class TestFixed:
    def test_draws_value(self, rng):
        assert Fixed(value=2.5).draw(rng) == 2.5

    def test_support_degenerate(self):
        assert Fixed(value=2.5).support == (2.5, 2.5)

    def test_scaled(self):
        assert Fixed(value=2.0).scaled(3.0) == Fixed(value=6.0)

    def test_non_numeric_support_rejected(self):
        with pytest.raises(ConfigurationError):
            Fixed(value="grid").support

    def test_non_numeric_scaling_rejected(self):
        with pytest.raises(ConfigurationError):
            Fixed(value="grid").scaled(2.0)


class TestUniform:
    def test_draws_within_support(self, rng):
        sampler = Uniform(low=1.0, high=3.0)
        values = [sampler.draw(rng) for _ in range(50)]
        assert all(1.0 <= v <= 3.0 for v in values)

    def test_scaled_stretches_both_ends(self):
        assert Uniform(1.0, 3.0).scaled(2.0) == Uniform(2.0, 6.0)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            Uniform(low=3.0, high=1.0)

    @pytest.mark.parametrize("factor", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_scale_factor_rejected(self, factor):
        with pytest.raises(ConfigurationError):
            Uniform(1.0, 2.0).scaled(factor)


class TestLogUniform:
    def test_draws_within_support(self, rng):
        sampler = LogUniform(low=0.1, high=10.0)
        values = [sampler.draw(rng) for _ in range(100)]
        assert all(0.1 <= v <= 10.0 for v in values)

    def test_spans_decades_roughly_equally(self, rng):
        sampler = LogUniform(low=0.01, high=100.0)
        values = np.array([sampler.draw(rng) for _ in range(2000)])
        below_one = np.sum(values < 1.0)
        # Log-uniform over 4 decades puts half the mass below the midpoint
        # decade; a linear uniform would put ~1% there.
        assert 800 < below_one < 1200

    def test_nonpositive_low_rejected(self):
        with pytest.raises(ConfigurationError):
            LogUniform(low=0.0, high=1.0)

    def test_scaled(self):
        assert LogUniform(0.5, 2.0).scaled(2.0) == LogUniform(1.0, 4.0)


class TestChoice:
    def test_draws_only_options(self, rng):
        sampler = Choice(options=("a", "b", "c"))
        assert {sampler.draw(rng) for _ in range(60)} == {"a", "b", "c"}

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Choice(options=())

    def test_no_numeric_support(self):
        with pytest.raises(ConfigurationError):
            Choice(options=(1, 2)).support

    def test_scaling_rejected(self):
        with pytest.raises(ConfigurationError):
            Choice(options=(1, 2)).scaled(2.0)
