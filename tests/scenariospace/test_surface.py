"""Tests for success-rate surfaces and the Wilson interval beneath them."""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis.metrics import wilson_interval
from repro.analysis.reporting import format_surface_table
from repro.exceptions import ConfigurationError
from repro.scenariospace import (
    Fixed,
    ScenarioSpace,
    SurfaceCell,
    SurfaceReport,
    Uniform,
    success_surface,
)
from repro.scenariospace.surface import _bin_edges, _bin_index


class TestWilsonInterval:
    def test_empty_sample_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_contains_the_point_estimate(self):
        low, high = wilson_interval(7, 10)
        assert low < 0.7 < high

    def test_never_leaves_unit_interval(self):
        assert wilson_interval(10, 10)[1] == 1.0
        assert wilson_interval(0, 10)[0] == 0.0

    def test_all_failures_still_has_width(self):
        low, high = wilson_interval(0, 10)
        assert low == 0.0
        assert 0.0 < high < 0.5

    def test_narrows_with_more_data(self):
        narrow = wilson_interval(70, 100)
        wide = wilson_interval(7, 10)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]

    def test_known_value(self):
        # Classic textbook case: 8/10 at z=1.96.
        low, high = wilson_interval(8, 10)
        assert low == pytest.approx(0.4901, abs=1e-3)
        assert high == pytest.approx(0.9433, abs=1e-3)

    def test_rejects_inconsistent_counts(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 3)
        with pytest.raises(ConfigurationError):
            wilson_interval(-1, 3)
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 3, z=0.0)


class TestBinning:
    def test_edges_span_sampler_support(self):
        space = ScenarioSpace(name="s", drift_mv_per_hour=Uniform(0.0, 30.0))
        edges = _bin_edges(space, "drift_mv_per_hour", 3)
        assert list(edges) == [0.0, 10.0, 20.0, 30.0]

    def test_degenerate_axis_collapses_to_one_cell(self):
        space = ScenarioSpace(name="s", fault_rate=Fixed(0.0))
        edges = _bin_edges(space, "fault_rate", 3)
        assert list(edges) == [0.0, 0.0]
        assert _bin_index(edges, 0.0) == 0

    def test_top_edge_belongs_to_last_cell(self):
        space = ScenarioSpace(name="s", drift_mv_per_hour=Uniform(0.0, 30.0))
        edges = _bin_edges(space, "drift_mv_per_hour", 3)
        assert _bin_index(edges, 30.0) == 2
        assert _bin_index(edges, 0.0) == 0
        assert _bin_index(edges, 10.0) == 1


class TestSurfaceCell:
    def test_empty_cell_rate_is_nan(self):
        cell = SurfaceCell(0, 1, 0, 1, 0, 0, 0.0, 1.0)
        assert math.isnan(cell.success_rate)

    def test_round_trip(self):
        cell = SurfaceCell(0.0, 1.0, 0.0, 0.5, 4, 3, 0.3, 0.95)
        assert SurfaceCell.from_dict(cell.as_dict()) == cell


class TestSuccessSurface:
    @pytest.fixture(scope="class")
    def report(self):
        space = ScenarioSpace(
            name="surf",
            noise_scale=Uniform(0.5, 2.0),
            drift_mv_per_hour=Uniform(0.0, 20.0),
            fault_rate=Fixed(0.0),
        )
        return success_surface(
            space,
            n_draws=6,
            seed=2,
            axes=("noise_scale", "drift_mv_per_hour"),
            bins=2,
            resolution=16,
        )

    def test_every_job_lands_in_exactly_one_cell(self, report):
        assert report.n_jobs == 6
        assert len(report.cells) == 4

    def test_cells_carry_wilson_intervals(self, report):
        for cell in report.cells:
            if cell.n_jobs == 0:
                continue
            low, high = wilson_interval(cell.n_succeeded, cell.n_jobs)
            assert (cell.ci_low, cell.ci_high) == (low, high)

    def test_worst_cell_is_populated_minimum(self, report):
        worst = report.worst_cell()
        assert worst is not None
        rates = [c.success_rate for c in report.cells if c.n_jobs > 0]
        assert worst.success_rate == min(rates)

    def test_report_round_trips_strict_json(self, report):
        payload = json.dumps(report.as_dict(), allow_nan=False)
        assert SurfaceReport.from_dict(json.loads(payload)) == report

    def test_format_renders_bounds_and_counts(self, report):
        text = report.format()
        assert "Success surface: surf" in text
        assert "95% CI" in text
        assert "noise_scale" in text

    def test_degenerate_axis_makes_single_column(self):
        space = ScenarioSpace(
            name="flat",
            noise_scale=Uniform(0.5, 2.0),
            drift_mv_per_hour=Fixed(0.0),
            fault_rate=Fixed(0.0),
        )
        report = success_surface(
            space,
            n_draws=4,
            seed=1,
            axes=("noise_scale", "fault_rate"),
            bins=2,
            resolution=16,
        )
        # x has 2 bins; the Fixed y axis collapses to one column.
        assert len(report.cells) == 2
        assert report.n_jobs == 4

    def test_same_seed_same_surface(self):
        space = ScenarioSpace(
            name="det",
            noise_scale=Uniform(0.5, 2.0),
            fault_rate=Fixed(0.0),
        )
        kwargs = dict(
            n_draws=4,
            seed=9,
            axes=("noise_scale", "drift_mv_per_hour"),
            bins=2,
            resolution=16,
        )
        assert success_surface(space, **kwargs) == success_surface(
            space, **kwargs
        )

    def test_rejects_bad_axes(self):
        space = ScenarioSpace(name="s")
        with pytest.raises(ConfigurationError):
            success_surface(space, axes=("noise_scale", "noise_scale"))
        with pytest.raises(ConfigurationError):
            success_surface(space, axes=("noise_scale", "resolution"))
        with pytest.raises(ConfigurationError):
            success_surface(space, bins=0)


class TestFormatSurfaceTable:
    def test_degenerate_bounds_render_as_equality(self):
        text = format_surface_table(
            "noise_scale",
            "fault_rate",
            [
                {
                    "x_low": 0.5,
                    "x_high": 2.0,
                    "y_low": 0.0,
                    "y_high": 0.0,
                    "n_jobs": 3,
                    "n_succeeded": 2,
                    "ci_low": 0.2,
                    "ci_high": 0.9,
                }
            ],
        )
        assert "fault_rate=0" in text
        assert "noise_scale [0.5, 2)" in text

    def test_empty_cell_renders_dashes(self):
        text = format_surface_table(
            "noise_scale",
            "fault_rate",
            [
                {
                    "x_low": 0.0,
                    "x_high": 1.0,
                    "y_low": 0.0,
                    "y_high": 1.0,
                    "n_jobs": 0,
                    "n_succeeded": 0,
                    "ci_low": 0.0,
                    "ci_high": 1.0,
                }
            ],
        )
        assert "-" in text
