"""Shared fixtures for the test suite.

The fixtures favour small, fast synthetic devices (40-63 pixel grids) so the
whole suite runs in well under a couple of minutes while still exercising the
full pipeline end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

# Imported for its side effect: the hypothesis pytest plugin lazily imports
# hypothesis inside pytest_terminal_summary, deep in the pluggy hook stack,
# where pytest's assertion rewriter re-parses it and can trip CPython
# 3.11.7's "AST constructor recursion depth mismatch" parser bug.  Importing
# it here, at shallow stack depth during collection, makes the late import a
# no-op regardless of which subset of the suite runs.  Guarded so only the
# property tests, not the whole suite, depend on hypothesis being installed
# (without it the plugin is absent and the workaround is moot anyway).
try:
    import hypothesis.internal.observability  # noqa: F401
except ImportError:  # pragma: no cover
    pass

from repro.datasets.synthetic import NoiseRecipe, SyntheticCSDConfig
from repro.instrument import ExperimentSession
from repro.physics import CSDSimulator, DotArrayDevice, standard_lab_noise


@pytest.fixture(scope="session")
def double_dot_device() -> DotArrayDevice:
    """A reference double-dot device used across many tests."""
    return DotArrayDevice.double_dot(cross_coupling=(0.25, 0.22))


@pytest.fixture(scope="session")
def clean_csd(double_dot_device):
    """A noise-free 63x63 charge-stability diagram."""
    simulator = CSDSimulator(double_dot_device)
    return simulator.simulate(63, seed=0)


@pytest.fixture(scope="session")
def noisy_csd(double_dot_device):
    """A realistically noisy 63x63 charge-stability diagram."""
    simulator = CSDSimulator(double_dot_device)
    return simulator.simulate(63, noise=standard_lab_noise(), seed=3)


@pytest.fixture(scope="session")
def noisy_csd_100(double_dot_device):
    """A realistically noisy 100x100 charge-stability diagram."""
    simulator = CSDSimulator(double_dot_device)
    return simulator.simulate(100, noise=standard_lab_noise(), seed=5)


@pytest.fixture()
def clean_session(clean_csd) -> ExperimentSession:
    """A fresh replay session over the clean diagram."""
    return ExperimentSession.from_csd(clean_csd)


@pytest.fixture()
def noisy_session(noisy_csd) -> ExperimentSession:
    """A fresh replay session over the noisy diagram."""
    return ExperimentSession.from_csd(noisy_csd)


@pytest.fixture(scope="session")
def small_benchmark_config() -> SyntheticCSDConfig:
    """A small synthetic benchmark configuration (fast to build)."""
    return SyntheticCSDConfig(
        name="test-benchmark",
        resolution=48,
        cross_coupling=(0.24, 0.20),
        noise=NoiseRecipe(white_sigma_na=0.01, pink_sigma_na=0.01, drift_na=0.01),
        seed=11,
    )


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """A seeded random generator for test data."""
    return np.random.default_rng(12345)
