"""Tests for the drift-aware retuning mode of the auto-tuning workflow."""

from __future__ import annotations

import pytest

from repro.core import AutoTuningWorkflow
from repro.exceptions import ExtractionError
from repro.physics import DeviceDrift, WhiteNoise
from repro.scenarios import get_scenario

RESOLUTION = 48


@pytest.fixture(scope="module")
def drifting_outcome():
    """One retuning run on a fast-drifting sensor, shared across asserts."""
    # 30 mV/h: over a 1800 s idle the operating point moves 15 mV, which is
    # 3 mV modulo the sensor's 4 mV peak spacing — a large, *visible* shift.
    # (A rate whose per-idle drift is a multiple of the spacing would wrap
    # back onto the original flank and hide.)
    workflow = AutoTuningWorkflow(
        resolution=RESOLUTION,
        noise=WhiteNoise(sigma_na=0.01),
        drift=DeviceDrift(operating_point_mv_per_hour=30.0),
        time_dependent_noise=True,
        seed=11,
    )
    device = get_scenario("drifting_sensor").build_device()
    return workflow.run_with_retuning(
        device, idle_time_s=1800.0, n_cycles=2, staleness_threshold_na=0.08
    )


class TestDriftTriggersRetunes:
    def test_initial_extraction_succeeds(self, drifting_outcome):
        assert drifting_outcome.initial.success

    def test_every_idle_period_detects_staleness(self, drifting_outcome):
        # 30 mV/h over 30 idle minutes moves the sensor ~15 mV — far past
        # any sane threshold, so every check must flag stale and retune.
        assert len(drifting_outcome.cycles) == 2
        for cycle in drifting_outcome.cycles:
            assert cycle.check.stale
            assert cycle.retuned
        assert drifting_outcome.n_retunes == 2

    def test_timeline_is_continuous(self, drifting_outcome):
        checks = [cycle.check.checked_at_s for cycle in drifting_outcome.cycles]
        assert checks == sorted(checks)
        assert checks[0] >= 1800.0
        assert drifting_outcome.final_elapsed_s >= checks[-1]

    def test_final_extraction_is_the_last_retune(self, drifting_outcome):
        assert (
            drifting_outcome.final_extraction
            is drifting_outcome.cycles[-1].extraction
        )

    def test_stage_elapsed_is_not_the_absolute_timeline(self, drifting_outcome):
        """Regression: extractions on the shared clock used to report the
        absolute timeline age as their elapsed_s, double-counting the window
        search (and, for retunes, every idle period before them)."""
        initial = drifting_outcome.initial
        window_s = initial.window_search.elapsed_s
        extraction_s = initial.extraction.probe_stats.elapsed_s
        # An extraction costs its own probes' dwell time, which is far less
        # than the idle periods that precede the retunes.
        assert extraction_s < 1800.0
        assert initial.total_elapsed_s == pytest.approx(window_s + extraction_s)
        for cycle in drifting_outcome.cycles:
            assert cycle.extraction.probe_stats.elapsed_s < 1800.0

    def test_probe_accounting_includes_checks(self, drifting_outcome):
        expected = drifting_outcome.initial.total_probes
        for cycle in drifting_outcome.cycles:
            expected += cycle.check.n_check_pixels
            expected += cycle.extraction.probe_stats.n_probes
        assert drifting_outcome.total_probes == expected

    def test_summary_is_flat_and_complete(self, drifting_outcome):
        summary = drifting_outcome.summary()
        assert summary["n_retunes"] == 2
        assert summary["final_success"] == drifting_outcome.final_extraction.success
        assert summary["total_probes"] == drifting_outcome.total_probes


class TestStableDeviceStaysFresh:
    def test_no_retunes_without_drift(self):
        workflow = AutoTuningWorkflow(
            resolution=RESOLUTION,
            noise=WhiteNoise(sigma_na=0.005),
            time_dependent_noise=True,
            seed=11,
        )
        device = get_scenario("quiet_lab").build_device()
        outcome = workflow.run_with_retuning(
            device, idle_time_s=1800.0, n_cycles=2, staleness_threshold_na=0.08
        )
        assert outcome.n_retunes == 0
        for cycle in outcome.cycles:
            assert not cycle.check.stale
            assert cycle.extraction is None
        # A fresh device keeps its original matrix.
        assert outcome.final_extraction is outcome.initial.extraction
        # Checks are cheap: a handful of probes, not a rescan.
        check_probes = sum(c.check.n_check_pixels for c in outcome.cycles)
        assert check_probes <= 2 * 16


class TestForScenario:
    def test_accepts_names_and_instances(self):
        by_name = AutoTuningWorkflow.for_scenario("drifting_sensor", resolution=48)
        scenario = get_scenario("drifting_sensor")
        by_instance = AutoTuningWorkflow.for_scenario(scenario, resolution=48)
        for workflow in (by_name, by_instance):
            assert workflow._drift is scenario.drift
            assert workflow._noise is scenario.noise
            assert workflow._time_dependent_noise

    def test_plain_run_carries_the_environment(self):
        workflow = AutoTuningWorkflow.for_scenario(
            "drifting_sensor", resolution=48, seed=4
        )
        outcome = workflow.run(get_scenario("drifting_sensor").build_device())
        assert outcome.extraction.probe_stats.n_probes > 0


class TestParameterValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"idle_time_s": -1.0},
            {"n_cycles": 0},
            {"staleness_threshold_na": 0.0},
            {"n_check_pixels": 0},
        ],
    )
    def test_bad_arguments_rejected(self, kwargs):
        workflow = AutoTuningWorkflow(resolution=RESOLUTION, seed=1)
        device = get_scenario("quiet_lab").build_device()
        with pytest.raises(ExtractionError):
            workflow.run_with_retuning(device, **kwargs)
