"""Tests for the DeviceDrift model and its seeded time-evaluable state."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.physics import DeviceDrift

HOUR = 3600.0


def _state(drift, seed=5):
    return drift.at_times(np.random.default_rng(seed))


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"operating_point_mv_per_hour": float("nan")},
            {"lever_arm_fraction_per_hour": float("inf")},
            {"charge_jumps_per_hour": -1.0},
            {"charge_jump_mv": -0.1},
            {"interference_mv": -0.1},
            {"interference_period_s": 0.0},
            {"interference_period_s": float("nan")},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            DeviceDrift(**kwargs)

    def test_negative_rates_are_legal(self):
        # The sensor can wander either way; only magnitudes must be positive.
        drift = DeviceDrift(
            operating_point_mv_per_hour=-10.0, lever_arm_fraction_per_hour=-0.01
        )
        assert not drift.is_static

    def test_is_static(self):
        assert DeviceDrift().is_static
        assert DeviceDrift(charge_jump_mv=0.5).is_static  # rate is zero
        assert DeviceDrift(charge_jumps_per_hour=5.0, charge_jump_mv=0.0).is_static
        assert not DeviceDrift(operating_point_mv_per_hour=1.0).is_static
        assert not DeviceDrift(interference_mv=0.1).is_static


class TestOperatingPointRamp:
    def test_linear_in_time(self):
        state = _state(DeviceDrift(operating_point_mv_per_hour=12.0))
        times = np.array([0.0, HOUR, 2 * HOUR])
        assert np.allclose(state.detuning_offset_mv(times), [0.0, 12.0, 24.0])

    def test_static_drift_is_zero(self):
        state = _state(DeviceDrift())
        times = np.linspace(0, 10 * HOUR, 50)
        assert np.array_equal(state.detuning_offset_mv(times), np.zeros(50))
        assert np.array_equal(state.gate_scale(times), np.ones(50))


class TestInterference:
    def test_bounded_by_amplitude_and_periodic(self):
        drift = DeviceDrift(interference_mv=0.3, interference_period_s=60.0)
        state = _state(drift)
        times = np.linspace(0, 600, 4001)
        values = state.detuning_offset_mv(times)
        assert np.max(np.abs(values)) <= 0.3 + 1e-12
        # One full period later the interference repeats exactly.
        assert np.allclose(
            state.detuning_offset_mv(times),
            state.detuning_offset_mv(times + 60.0),
        )

    def test_phase_comes_from_the_seed(self):
        drift = DeviceDrift(interference_mv=0.3, interference_period_s=60.0)
        t = np.array([7.0])
        a = _state(drift, seed=1).detuning_offset_mv(t)
        b = _state(drift, seed=2).detuning_offset_mv(t)
        assert a[0] != b[0]


class TestChargeJumps:
    DRIFT = DeviceDrift(charge_jumps_per_hour=120.0, charge_jump_mv=0.5)

    def test_piecewise_constant_and_eventually_jumps(self):
        state = _state(self.DRIFT)
        times = np.linspace(0, 2 * HOUR, 2000)
        values = state.detuning_offset_mv(times)
        assert values[0] == 0.0
        assert np.unique(values).size > 1  # ~240 expected jumps in 2 h

    def test_independent_of_query_order_and_batching(self):
        times = np.linspace(0, HOUR, 500)
        forward = _state(self.DRIFT, seed=9).detuning_offset_mv(times)
        state = _state(self.DRIFT, seed=9)
        # Query the far future first, then the past, then everything.
        state.detuning_offset_mv(np.array([HOUR]))
        state.detuning_offset_mv(times[:10])
        assert np.array_equal(state.detuning_offset_mv(times), forward)

    def test_deterministic_given_seed(self):
        times = np.linspace(0, HOUR, 300)
        a = _state(self.DRIFT, seed=3).detuning_offset_mv(times)
        b = _state(self.DRIFT, seed=3).detuning_offset_mv(times)
        assert np.array_equal(a, b)


class TestGateScale:
    def test_fractional_ramp(self):
        state = _state(DeviceDrift(lever_arm_fraction_per_hour=0.06))
        scale = state.gate_scale(np.array([0.0, HOUR / 2, HOUR]))
        assert np.allclose(scale, [1.0, 1.03, 1.06])


class TestDescribe:
    def test_mentions_active_mechanisms(self):
        text = DeviceDrift(
            operating_point_mv_per_hour=5.0,
            charge_jumps_per_hour=10.0,
            interference_mv=0.2,
        ).describe()
        assert "op=5" in text and "jumps=10" in text and "hum=0.2" in text

    def test_static_says_so(self):
        assert "static" in DeviceDrift().describe()
