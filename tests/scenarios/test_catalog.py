"""Tests for the lab-scenario catalogue and registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import CampaignGrid, TuningCampaign
from repro.core import FastVirtualGateExtractor
from repro.exceptions import ConfigurationError
from repro.physics import CompositeNoise, NoNoise, TelegraphNoise, WhiteNoise
from repro.scenarios import (
    DeviceSpec,
    LabScenario,
    all_scenarios,
    get_scenario,
    register_scenario,
    scaled_scenario,
    scenario_catalogue,
    scenario_names,
)

EXPECTED_BUILTINS = {
    "quiet_lab",
    "standard_lab",
    "hot_amplifier",
    "flicker_forest",
    "telegraph_storm",
    "drifting_sensor",
    "charge_jumpy",
    "mains_hum",
    "overnight_run",
    "cryostat_warming",
}


class TestRegistry:
    def test_at_least_eight_builtins(self):
        assert len(scenario_names()) >= 8
        assert EXPECTED_BUILTINS <= set(scenario_names())

    def test_get_unknown_name_names_the_known_ones(self):
        with pytest.raises(ConfigurationError, match="quiet_lab"):
            get_scenario("definitely_not_a_scenario")

    def test_register_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            register_scenario(LabScenario(name="quiet_lab", story="dup"))

    def test_register_and_overwrite(self):
        custom = LabScenario(name="_test_custom", story="test-only entry")
        try:
            register_scenario(custom)
            assert get_scenario("_test_custom") is custom
            replacement = LabScenario(name="_test_custom", story="replaced")
            register_scenario(replacement, overwrite=True)
            assert get_scenario("_test_custom") is replacement
        finally:
            from repro.scenarios.catalog import _REGISTRY

            _REGISTRY.pop("_test_custom", None)

    def test_catalogue_lists_every_scenario(self):
        text = scenario_catalogue()
        for name in scenario_names():
            assert name in text

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            LabScenario(name="", story="nameless")


@pytest.mark.parametrize("name", sorted(EXPECTED_BUILTINS))
class TestEveryScenario:
    """Every built-in is constructible, openable, and extraction-runnable."""

    def test_constructible_and_described(self, name):
        scenario = get_scenario(name)
        assert scenario.name == name
        assert scenario.story
        assert name in scenario.describe()
        assert scenario.build_device().n_dots >= 2

    def test_open_session_and_probe(self, name):
        session = get_scenario(name).open_session(resolution=24, seed=5)
        values = session.meter.get_currents(np.arange(10), np.arange(10))
        assert values.shape == (10,)
        assert np.all(np.isfinite(values))
        assert session.meter.n_probes == 10

    def test_session_is_seed_deterministic(self, name):
        scenario = get_scenario(name)
        images = []
        for _ in range(2):
            session = scenario.open_session(resolution=20, seed=9)
            images.append(session.meter.acquire_full_grid())
        assert np.array_equal(images[0], images[1])

    def test_runs_through_campaign_scenario_axis(self, name):
        grid = CampaignGrid(
            devices=(DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)),),
            resolutions=(32,),
            scenarios=(name,),
            seed=2,
        )
        result = TuningCampaign(grid).run()
        assert result.n_jobs == 1
        record = result.records[0]
        assert record.scenario == name
        # Every job must complete without crashing the campaign machinery;
        # hostile scenarios may legitimately fail extraction.
        assert record.failure_category != "crash"


class TestScenarioSemantics:
    def test_quiet_lab_is_noise_free_and_static(self):
        scenario = get_scenario("quiet_lab")
        assert scenario.noise is None
        assert not scenario.is_time_dependent
        session = scenario.open_session(resolution=24, seed=1)
        assert not session.meter.backend.is_time_dependent

    def test_drifting_scenarios_are_time_dependent(self):
        for name in ("drifting_sensor", "charge_jumpy", "overnight_run"):
            scenario = get_scenario(name)
            assert scenario.is_time_dependent
            session = scenario.open_session(resolution=24, seed=1)
            assert session.meter.backend.is_time_dependent

    def test_overnight_run_has_slow_probes(self):
        assert (
            get_scenario("overnight_run").timing.cost_per_probe_s
            > get_scenario("standard_lab").timing.cost_per_probe_s
        )

    def test_extraction_succeeds_in_the_quiet_lab(self):
        session = get_scenario("quiet_lab").open_session(resolution=64, seed=4)
        result = FastVirtualGateExtractor().extract(session)
        assert result.success

    def test_session_factory_applies_environment_to_foreign_device(self):
        scenario = get_scenario("drifting_sensor")
        device = DeviceSpec.of("double_dot", cross_coupling=(0.30, 0.28)).build()
        factory = scenario.session_factory(device=device, resolution=24)
        assert factory.device is device
        assert factory.drift is scenario.drift
        assert factory.time_dependent_noise


class TestScaledScenario:
    def test_scale_one_is_identity(self):
        scenario = get_scenario("telegraph_storm")
        assert scaled_scenario("telegraph_storm", 1.0) is scenario

    def test_scale_zero_silences_noise_but_keeps_drift(self):
        scaled = scaled_scenario("drifting_sensor", 0.0)
        assert scaled.noise is None
        assert scaled.drift is get_scenario("drifting_sensor").drift

    def test_scaling_multiplies_amplitudes(self):
        scaled = scaled_scenario("telegraph_storm", 2.0)
        assert isinstance(scaled.noise, CompositeNoise)
        white, telegraph = scaled.noise.components
        base_white, base_telegraph = get_scenario("telegraph_storm").noise.components
        assert isinstance(white, WhiteNoise)
        assert isinstance(telegraph, TelegraphNoise)
        assert white.sigma_na == pytest.approx(2.0 * base_white.sigma_na)
        assert telegraph.amplitude_na == pytest.approx(
            2.0 * base_telegraph.amplitude_na
        )
        # Non-amplitude parameters survive untouched.
        assert telegraph.mean_dwell_pixels == base_telegraph.mean_dwell_pixels

    def test_noise_free_scenario_passes_through(self):
        assert scaled_scenario("quiet_lab", 3.0) is get_scenario("quiet_lab")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            scaled_scenario("quiet_lab", -1.0)
        with pytest.raises(ConfigurationError):
            scaled_scenario("quiet_lab", float("nan"))

    def test_no_noise_component_passes_through(self):
        custom = LabScenario(
            name="_test_nonoise", story="x", noise=CompositeNoise([NoNoise()])
        )
        try:
            register_scenario(custom)
            scaled = scaled_scenario("_test_nonoise", 2.0)
            assert isinstance(scaled.noise.components[0], NoNoise)
        finally:
            from repro.scenarios.catalog import _REGISTRY

            _REGISTRY.pop("_test_nonoise", None)


class TestAllScenariosListing:
    def test_listing_matches_names(self):
        assert tuple(s.name for s in all_scenarios()) == scenario_names()


class TestUserScenariosReachWorkers:
    def test_jobs_run_without_the_registry(self):
        """The engine resolves scenarios in the parent and ships the objects,
        so a user-registered scenario works even when the worker process has
        a fresh registry (spawn start method)."""
        from repro.campaign.worker import run_campaign_job

        custom = LabScenario(
            name="_test_worker_only",
            story="registered in the parent only",
            noise=WhiteNoise(sigma_na=0.01),
        )
        try:
            register_scenario(custom)
            grid = CampaignGrid(
                resolutions=(32,), scenarios=("_test_worker_only",), seed=4
            )
            job = grid.expand()[0]
            # Simulate a spawn-start worker: the registry entry is gone, only
            # the shipped mapping is available.
            from repro.scenarios.catalog import _REGISTRY

            _REGISTRY.pop("_test_worker_only")
            record = run_campaign_job(job, scenarios={"_test_worker_only": custom})
            assert record.failure_category != "crash"
            assert record.scenario == "_test_worker_only"
        finally:
            _REGISTRY.pop("_test_worker_only", None)

    def test_parallel_campaign_with_user_scenario(self):
        custom = LabScenario(
            name="_test_parallel",
            story="user entry through a process pool",
            noise=WhiteNoise(sigma_na=0.01),
        )
        try:
            register_scenario(custom)
            grid = CampaignGrid(
                resolutions=(32,),
                scenarios=("_test_parallel",),
                n_repeats=2,
                seed=4,
            )
            result = TuningCampaign(grid, n_workers=2).run()
            assert all(r.failure_category != "crash" for r in result.records)
        finally:
            from repro.scenarios.catalog import _REGISTRY

            _REGISTRY.pop("_test_parallel", None)
