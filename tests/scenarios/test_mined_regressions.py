"""The distilled-failure regression suite: replay every mined scenario.

Each entry of :data:`repro.scenariospace.MINED_REGRESSIONS` is replayed on
its recorded seed and asserted against the golden expectations in
``tests/golden/mined_regressions.json`` — bit-identical, like the scenario
goldens.  The suite is a ledger, not a graveyard:

* ``status == "open"`` — the failure is still expected.  The test asserts
  it *still reproduces exactly*; if a change fixes it, the test fails with
  instructions to flip the status (and keep pinning the fix forever).
* ``status == "fixed"`` — the once-mined failure must now succeed.

Regenerate deliberately (after a change that is *supposed* to alter the
records) with::

    PYTHONPATH=src python tests/scenarios/test_mined_regressions.py --regenerate
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.scenariospace import MINED_REGRESSIONS, regression_record
from repro.scenarios import get_scenario

FIXTURE_PATH = (
    Path(__file__).parent.parent / "golden" / "mined_regressions.json"
)


def normalized_record_dict(record) -> dict:
    """The record's strict-JSON view with wall-clock fields pinned to 0."""
    pinned = replace(
        record,
        wall_elapsed_s=0.0,
        stage_telemetry=tuple(t.normalized(0.0) for t in record.stage_telemetry),
    )
    return pinned.as_dict()


def load_fixtures() -> dict:
    with FIXTURE_PATH.open() as handle:
        return json.load(handle)


def test_corpus_is_large_enough():
    assert len(MINED_REGRESSIONS) >= 3


def test_every_regression_is_registered():
    for regression in MINED_REGRESSIONS:
        assert get_scenario(regression.name).name == regression.name


def test_fixture_file_has_no_stale_entries():
    assert set(load_fixtures()) == {r.name for r in MINED_REGRESSIONS}


@pytest.mark.parametrize(
    "regression", MINED_REGRESSIONS, ids=lambda r: r.name
)
def test_mined_regression_replays_exactly(regression):
    fixtures = load_fixtures()
    assert regression.name in fixtures, (
        f"missing golden fixture {regression.name!r}; regenerate with "
        "PYTHONPATH=src python tests/scenarios/test_mined_regressions.py "
        "--regenerate"
    )
    expected = fixtures[regression.name]
    record = regression_record(regression)
    if regression.status == "open":
        assert not record.success, (
            f"mined regression {regression.name!r} no longer fails — the "
            "underlying bug appears fixed. Flip its status to 'fixed' and "
            "regenerate the fixture so the fix stays pinned."
        )
        assert record.failure_category == regression.failure_category
    else:
        assert record.success, (
            f"fixed regression {regression.name!r} fails again — "
            f"({record.failure_category}: {record.failure_reason})"
        )
    # Exact equality on purpose (same contract as the scenario goldens):
    # JSON round-trips doubles by shortest repr, so == catches single-ulp
    # drift anywhere in the probe/noise/fault/extraction stack.
    assert normalized_record_dict(record) == expected["record"]


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--regenerate", action="store_true", help="rewrite the fixture JSON"
    )
    args = parser.parse_args()
    if not args.regenerate:
        parser.error("nothing to do; pass --regenerate")
    fixtures = {}
    for regression in MINED_REGRESSIONS:
        record = regression_record(regression)
        fixtures[regression.name] = {
            "status": regression.status,
            "params": regression.params.as_dict(),
            "seed": [regression.seed_entropy, list(regression.seed_spawn_key)],
            "record": normalized_record_dict(record),
        }
    FIXTURE_PATH.write_text(
        json.dumps(fixtures, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {len(fixtures)} fixtures to {FIXTURE_PATH}")


if __name__ == "__main__":
    main()
