"""Tests for the fast-vs-baseline comparison harness."""

from __future__ import annotations

import pytest

from repro.analysis import ComparisonRunner
from repro.datasets import NoiseRecipe, SyntheticCSDConfig


@pytest.fixture(scope="module")
def record(small_benchmark_config):
    csd = small_benchmark_config.build_csd()
    return ComparisonRunner().run_benchmark(csd, index=1)


class TestBenchmarkRecord:
    def test_both_methods_ran(self, record):
        assert record.fast.method == "fast-extraction"
        assert record.baseline.method == "hough-baseline"
        assert record.index == 1
        assert record.name == "test-benchmark"

    def test_probe_accounting_is_independent(self, record):
        assert record.baseline.n_probes == record.resolution[0] * record.resolution[1]
        assert record.fast.n_probes < record.baseline.n_probes
        assert record.fast.probe_fraction < 1.0

    def test_speedup_defined_when_fast_succeeds(self, record):
        assert record.fast.success
        assert record.speedup is not None
        assert record.speedup > 1.0
        assert record.speedup == pytest.approx(
            record.baseline.elapsed_s / record.fast.elapsed_s
        )

    def test_accuracy_computed_for_both(self, record):
        assert record.fast.accuracy is not None
        assert record.baseline.accuracy is not None
        assert record.fast.accuracy.max_alpha_error < 0.1

    def test_ground_truth_recorded_in_metadata(self, record):
        assert 0 < record.metadata["true_alpha_12"] < 1
        assert 0 < record.metadata["true_alpha_21"] < 1

    def test_size_label(self, record):
        assert record.size_label == "48x48"


class TestRunSuite:
    def test_runs_all_and_indexes_from_one(self):
        configs = [
            SyntheticCSDConfig(
                name=f"mini-{i}",
                resolution=40,
                cross_coupling=(0.2 + 0.05 * i, 0.2),
                noise=NoiseRecipe(white_sigma_na=0.01, pink_sigma_na=0.0, drift_na=0.0),
                seed=i,
            )
            for i in range(2)
        ]
        records = ComparisonRunner().run_suite([c.build_csd() for c in configs])
        assert [r.index for r in records] == [1, 2]
        assert [r.name for r in records] == ["mini-0", "mini-1"]
