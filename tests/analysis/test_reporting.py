"""Tests for report formatting (Table 1 and summaries)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    TABLE1_HEADERS,
    ComparisonRunner,
    format_accuracy_table,
    format_summary,
    format_table,
    format_table1,
    summarize_suite,
    table1_rows,
)


@pytest.fixture(scope="module")
def records(small_benchmark_config):
    csd = small_benchmark_config.build_csd()
    runner = ComparisonRunner()
    return [runner.run_benchmark(csd, index=1), runner.run_benchmark(csd, index=2)]


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.split("\n")
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert "---" in lines[2]
        assert len(lines) == 5

    def test_wide_cells_expand_columns(self):
        text = format_table(["h"], [["very long cell"]])
        assert "very long cell" in text


class TestTable1:
    def test_rows_have_all_columns(self, records):
        rows = table1_rows(records)
        assert len(rows) == 2
        assert all(len(row) == len(TABLE1_HEADERS) for row in rows)

    def test_formatted_table_mentions_success_and_speedup(self, records):
        text = format_table1(records)
        assert "Success" in text
        assert "x" in text  # speedup suffix
        assert "48x48" in text
        assert "(100%)" in text

    def test_accuracy_table(self, records):
        text = format_accuracy_table(records)
        assert "true a12" in text
        assert text.count("\n") >= 3


class TestSummary:
    def test_summarize_counts_and_range(self, records):
        summary = summarize_suite(records)
        assert summary.n_benchmarks == 2
        assert summary.fast_successes == 2
        assert summary.baseline_successes == 2
        assert summary.min_speedup <= summary.max_speedup
        assert 0 < summary.mean_probe_fraction < 1
        assert summary.as_dict()["n_benchmarks"] == 2

    def test_format_summary_text(self, records):
        text = format_summary(summarize_suite(records))
        assert "fast successes" in text
        assert "2/2" in text
