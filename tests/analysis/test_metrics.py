"""Tests for success criteria and accuracy metrics."""

from __future__ import annotations

import math

import pytest

from repro.analysis import SuccessCriterion, accuracy_metrics, probe_reduction, speedup
from repro.core import FastVirtualGateExtractor
from repro.core.result import ExtractionResult, ProbeStatistics
from repro.core.virtualization import VirtualizationMatrix
from repro.physics.csd import TransitionLineGeometry


GEOMETRY = TransitionLineGeometry(
    slope_steep=-2.5,
    slope_shallow=-0.35,
    crossing_x=0.02,
    crossing_y=0.02,
    alpha_12=0.4,
    alpha_21=0.35,
)


def make_result(alpha_12, alpha_21, success=True) -> ExtractionResult:
    matrix = VirtualizationMatrix(alpha_12=alpha_12, alpha_21=alpha_21)
    return ExtractionResult(
        success=success,
        method="fast-extraction",
        matrix=matrix,
        slopes=(matrix.slope_steep, matrix.slope_shallow),
        probe_stats=ProbeStatistics(n_probes=100, n_requests=120, n_pixels=1000, elapsed_s=5.0),
    )


class TestSuccessCriterion:
    def test_exact_match_succeeds(self):
        criterion = SuccessCriterion()
        assert criterion.evaluate(make_result(0.4, 0.35), GEOMETRY)

    def test_small_error_within_absolute_tolerance(self):
        criterion = SuccessCriterion(max_alpha_abs_error=0.08)
        assert criterion.evaluate(make_result(0.45, 0.30), GEOMETRY)

    def test_large_error_fails(self):
        criterion = SuccessCriterion(max_alpha_abs_error=0.05, max_alpha_rel_error=0.1)
        assert not criterion.evaluate(make_result(0.8, 0.35), GEOMETRY)

    def test_internal_failure_fails_regardless(self):
        criterion = SuccessCriterion()
        assert not criterion.evaluate(make_result(0.4, 0.35, success=False), GEOMETRY)

    def test_no_geometry_falls_back_to_internal_verdict(self):
        criterion = SuccessCriterion()
        assert criterion.evaluate(make_result(0.9, 0.9), None)
        assert not criterion.evaluate(make_result(0.9, 0.9, success=False), None)

    def test_relative_tolerance_path(self):
        criterion = SuccessCriterion(max_alpha_abs_error=0.001, max_alpha_rel_error=0.5)
        assert criterion.alpha_matches(0.5, 0.4)
        assert not criterion.alpha_matches(0.9, 0.4)

    def test_non_finite_extraction_rejected(self):
        criterion = SuccessCriterion()
        assert not criterion.alpha_matches(float("nan"), 0.4)

    def test_zero_truth_judged_by_absolute_branch(self):
        criterion = SuccessCriterion(max_alpha_abs_error=0.08, max_alpha_rel_error=0.35)
        assert criterion.alpha_matches(0.05, 0.0)
        assert not criterion.alpha_matches(0.2, 0.0)

    def test_near_zero_truth_does_not_explode_relative_branch(self):
        # Regression: a denormal-scale truth used to hit the relative branch
        # with a near-zero denominator; the floor routes it to the absolute
        # branch like an exact zero.
        criterion = SuccessCriterion(max_alpha_abs_error=0.08, max_alpha_rel_error=0.35)
        assert criterion.alpha_matches(0.05, 1e-300)
        assert not criterion.alpha_matches(0.2, 1e-300)
        assert not criterion.alpha_matches(0.2, 1e-7)

    def test_denominator_floor_boundary(self):
        # Absolute tolerance tightened so only the relative branch can match.
        criterion = SuccessCriterion(
            max_alpha_abs_error=1e-9,
            max_alpha_rel_error=0.5,
            rel_error_denominator_floor=1e-6,
        )
        # Just above the floor the relative branch applies (40% error ok).
        assert criterion.alpha_matches(1.4e-6, 1.0e-6)
        # Just below it the relative branch is disabled, even though the
        # relative error (~41%) would have been within tolerance.
        assert not criterion.alpha_matches(1.4e-6, 9.9e-7)


class TestAccuracyMetrics:
    def test_perfect_extraction_has_zero_errors(self):
        metrics = accuracy_metrics(make_result(0.4, 0.35), GEOMETRY)
        assert metrics.alpha_12_error == pytest.approx(0.0)
        assert metrics.alpha_21_error == pytest.approx(0.0)
        assert metrics.orthogonality_error_deg == pytest.approx(0.0, abs=1e-9)
        assert metrics.max_alpha_error == 0.0

    def test_failed_extraction_has_infinite_errors(self):
        failed = ExtractionResult(
            success=False,
            method="fast-extraction",
            matrix=None,
            slopes=None,
            probe_stats=ProbeStatistics(0, 0, 100, 0.0),
        )
        metrics = accuracy_metrics(failed, GEOMETRY)
        assert metrics.max_alpha_error == float("inf")

    def test_errors_scale_with_deviation(self):
        small = accuracy_metrics(make_result(0.42, 0.36), GEOMETRY)
        large = accuracy_metrics(make_result(0.55, 0.45), GEOMETRY)
        assert large.max_alpha_error > small.max_alpha_error
        assert large.orthogonality_error_deg > small.orthogonality_error_deg


class TestRatios:
    def test_speedup(self):
        assert speedup(500.0, 50.0) == pytest.approx(10.0)
        assert speedup(100.0, 0.0) == float("inf")

    def test_probe_reduction(self):
        assert probe_reduction(10000, 1000) == pytest.approx(10.0)
        assert probe_reduction(10, 0) == float("inf")

    def test_empty_runs_have_undefined_ratios(self):
        # Both costs zero means "nothing ran": nan, not an infinite speedup
        # that would poison campaign aggregate tables.
        assert math.isnan(speedup(0.0, 0.0))
        assert math.isnan(probe_reduction(0, 0))

    def test_zero_baseline_with_real_fast_cost(self):
        assert speedup(0.0, 2.0) == 0.0
        assert probe_reduction(0, 5) == 0.0


class TestEndToEndConsistency:
    def test_extractor_result_passes_criterion_on_clean_data(self, clean_csd, clean_session):
        result = FastVirtualGateExtractor().extract(clean_session)
        assert SuccessCriterion().evaluate(result, clean_csd.geometry)
