"""Tests for the experiment runners (small, fast configurations only)."""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    run_ablation_sweeps,
    run_array_scaling,
    run_figure7,
    run_noise_sweep,
    run_resolution_scaling,
    run_table1,
)


class TestTable1Subset:
    def test_subset_of_small_benchmarks(self):
        records, report = run_table1(indices=(3, 4))
        assert len(records) == 2
        assert all(record.fast.success for record in records)
        assert "Table 1" in report
        assert "Summary" in report


class TestFigure7:
    def test_probe_map_for_benchmark_3(self):
        results = run_figure7(indices=(3,))
        assert len(results) == 1
        result = results[0]
        assert result.shape == (63, 63)
        assert result.probe_mask.shape == (63, 63)
        assert result.probe_mask.sum() == result.n_probes
        assert 0.03 < result.probe_fraction < 0.30
        assert result.success


class TestAblations:
    def test_sweep_ablation_on_two_benchmarks(self):
        rows, report = run_ablation_sweeps(indices=(3, 4))
        assert len(rows) == 4
        labels = [row.label for row in rows]
        assert "both sweeps + filter (paper)" in labels
        paper_row = rows[0]
        assert paper_row.success_rate == 1.0
        assert "Ablation" in report


class TestNoiseSweep:
    def test_success_degrades_with_noise(self):
        rows, report = run_noise_sweep(noise_scales=(0.0, 30.0), resolution=63, n_seeds=1)
        assert len(rows) == 2
        assert rows[0].success_rate >= rows[1].success_rate
        assert rows[0].success_rate == 1.0
        assert "Noise robustness" in report


class TestResolutionScaling:
    def test_probe_fraction_decreases_with_resolution(self):
        rows, report = run_resolution_scaling(resolutions=(63, 126), seed=3)
        assert len(rows) == 2
        assert rows[0].fast_fraction > rows[1].fast_fraction
        assert rows[1].speedup > rows[0].speedup
        assert "Scaling" in report


class TestArrayScaling:
    def test_pairs_grow_linearly(self):
        rows, report = run_array_scaling(dot_counts=(2, 3), resolution=63)
        assert [row.n_pairs for row in rows] == [1, 2]
        assert rows[1].total_probes > rows[0].total_probes
        assert all(row.all_pairs_succeeded for row in rows)
        assert all(np.isfinite(row.max_alpha_error) for row in rows)
        assert "n-dot array" in report
