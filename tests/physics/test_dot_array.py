"""Tests for the device-level model (DotArrayDevice, GateSpec)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DeviceModelError
from repro.physics import DotArrayDevice, GateSpec


class TestGateSpec:
    def test_clamp(self):
        spec = GateSpec(name="P1", min_voltage=0.0, max_voltage=1.0)
        assert spec.clamp(-0.5) == 0.0
        assert spec.clamp(0.5) == 0.5
        assert spec.clamp(2.0) == 1.0

    def test_contains(self):
        spec = GateSpec(name="P1", min_voltage=0.0, max_voltage=1.0)
        assert spec.contains(0.0) and spec.contains(1.0)
        assert not spec.contains(1.0001)

    def test_invalid_range(self):
        with pytest.raises(DeviceModelError):
            GateSpec(name="P1", min_voltage=1.0, max_voltage=0.0)


class TestDoubleDot:
    def test_factory_shapes(self, double_dot_device):
        assert double_dot_device.n_dots == 2
        assert double_dot_device.n_gates == 2
        assert double_dot_device.gate_names == ("P1", "P2")
        assert len(double_dot_device.gate_specs) == 2

    def test_charge_state_at_origin(self, double_dot_device):
        state = double_dot_device.charge_state([0.0, 0.0])
        assert state.occupations == (0, 0)

    def test_sensor_current_consistency(self, double_dot_device):
        vg = np.array([0.01, 0.01])
        state = double_dot_device.charge_state(vg)
        explicit = double_dot_device.sensor_current(vg, occupations=state.occupations)
        implicit = double_dot_device.sensor_current(vg)
        assert explicit == pytest.approx(implicit)

    def test_sensor_current_changes_across_transition(self, double_dot_device):
        low = double_dot_device.sensor_current([0.0, 0.0])
        high = double_dot_device.sensor_current([0.06, 0.06])
        assert low != pytest.approx(high)

    def test_ground_truth_alphas_positive(self, double_dot_device):
        alpha_12, alpha_21 = double_dot_device.ground_truth_alphas(0, 1, "P1", "P2")
        assert 0 < alpha_12 < 1
        assert 0 < alpha_21 < 1

    def test_ground_truth_slopes_ordering(self, double_dot_device):
        steep, shallow = double_dot_device.ground_truth_slopes(0, 1, "P1", "P2")
        assert steep < -1 < shallow < 0

    def test_wrong_voltage_vector_shape(self, double_dot_device):
        with pytest.raises(DeviceModelError):
            double_dot_device.charge_state([0.0])

    def test_gate_index(self, double_dot_device):
        assert double_dot_device.gate_index("P2") == 1


class TestLinearArray:
    def test_quadruple_dot_factory(self):
        device = DotArrayDevice.quadruple_dot()
        assert device.n_dots == 4
        assert device.n_gates == 4
        assert device.name == "quadruple-dot"

    def test_all_neighbour_pairs_have_ground_truth(self):
        device = DotArrayDevice.linear_array(n_dots=4)
        for k in range(3):
            alpha_12, alpha_21 = device.ground_truth_alphas(
                k, k + 1, device.gate_names[k], device.gate_names[k + 1]
            )
            assert 0 < alpha_12 < 1
            assert 0 < alpha_21 < 1

    def test_six_dot_chain_has_five_pairs(self):
        device = DotArrayDevice.linear_array(n_dots=6)
        pairs = device.neighbour_pairs()
        assert [(a, b) for a, b, _, _ in pairs] == [(i, i + 1) for i in range(5)]
        assert device.adjacency is None


class TestGridArray:
    def test_factory_shapes_and_name(self):
        device = DotArrayDevice.grid_array(rows=2, cols=3)
        assert device.n_dots == 6
        assert device.n_gates == 6
        assert device.name == "2x3-lattice"

    def test_neighbour_pairs_walk_lattice_bonds(self):
        device = DotArrayDevice.grid_array(rows=2, cols=3)
        bonds = [(a, b) for a, b, _, _ in device.neighbour_pairs()]
        assert bonds == [(0, 1), (0, 3), (1, 2), (1, 4), (2, 5), (3, 4), (4, 5)]
        assert len(bonds) == 2 * (3 - 1) + (2 - 1) * 3

    def test_pair_gate_names_match_dots(self):
        device = DotArrayDevice.grid_array(rows=2, cols=2)
        for a, b, gate_a, gate_b in device.neighbour_pairs():
            assert gate_a == device.gate_names[a]
            assert gate_b == device.gate_names[b]

    def test_all_bonds_have_ground_truth(self):
        device = DotArrayDevice.grid_array(rows=2, cols=3)
        for a, b, gate_a, gate_b in device.neighbour_pairs():
            alpha_ab, alpha_ba = device.ground_truth_alphas(a, b, gate_a, gate_b)
            assert 0 < alpha_ab < 1
            assert 0 < alpha_ba < 1

    def test_single_row_grid_matches_chain_topology(self):
        grid = DotArrayDevice.grid_array(rows=1, cols=4)
        chain = DotArrayDevice.linear_array(n_dots=4)
        grid_bonds = [(a, b) for a, b, _, _ in grid.neighbour_pairs()]
        chain_bonds = [(a, b) for a, b, _, _ in chain.neighbour_pairs()]
        assert grid_bonds == chain_bonds

    def test_invalid_shape_rejected(self):
        with pytest.raises(DeviceModelError):
            DotArrayDevice.grid_array(rows=0, cols=3)


class TestExplicitAdjacency:
    def test_custom_adjacency_overrides_chain(self, double_dot_device):
        device = DotArrayDevice(
            capacitance=double_dot_device.capacitance,
            adjacency=((0, 1),),
        )
        assert device.adjacency == ((0, 1),)
        assert [(a, b) for a, b, _, _ in device.neighbour_pairs()] == [(0, 1)]

    def test_out_of_range_edge_rejected(self, double_dot_device):
        with pytest.raises(DeviceModelError):
            DotArrayDevice(
                capacitance=double_dot_device.capacitance,
                adjacency=((0, 2),),
            )

    def test_unordered_edge_rejected(self, double_dot_device):
        with pytest.raises(DeviceModelError):
            DotArrayDevice(
                capacitance=double_dot_device.capacitance,
                adjacency=((1, 0),),
            )

    def test_duplicate_edge_rejected(self, double_dot_device):
        with pytest.raises(DeviceModelError):
            DotArrayDevice(
                capacitance=double_dot_device.capacitance,
                adjacency=((0, 1), (0, 1)),
            )

    def test_gate_spec_count_mismatch_rejected(self, double_dot_device):
        with pytest.raises(DeviceModelError):
            DotArrayDevice(
                capacitance=double_dot_device.capacitance,
                gate_specs=(GateSpec(name="only-one"),),
            )
