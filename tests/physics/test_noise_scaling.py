"""Tests for ``NoiseModel.scaled`` across every noise family.

The scaling hook must be *linear in the sampled field*: for any factor f,
``model.scaled(f)`` sampled from a given seed equals ``f *`` the original
model sampled from the same seed — in both the static-grid and the
time-dependent surfaces.  Anything weaker would make
``LabScenario.scaled`` change the noise's character, not just its size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.physics import (
    CompositeNoise,
    DriftNoise,
    NoNoise,
    PinkNoise,
    TelegraphNoise,
    WhiteNoise,
)
from repro.physics.noise import AMPLITUDE_FIELDS, NoiseModel
from repro.scenarios import LabScenario
from repro.scenarios.catalog import _scale_noise

SHAPE = (32, 24)
TIMES = np.linspace(0.0, 90.0, 25)

MODELS = [
    NoNoise(),
    WhiteNoise(sigma_na=0.04),
    PinkNoise(sigma_na=0.03, exponent=1.3),
    TelegraphNoise(amplitude_na=0.06, mean_dwell_pixels=40.0),
    DriftNoise(ramp_na=0.05, sine_amplitude_na=0.02, sine_periods=2.0),
    CompositeNoise(
        [
            WhiteNoise(sigma_na=0.01),
            TelegraphNoise(amplitude_na=0.03, mean_dwell_pixels=25.0),
            DriftNoise(ramp_na=0.02),
        ]
    ),
]


def _ids(model: NoiseModel) -> str:
    return type(model).__name__


@pytest.mark.parametrize("model", MODELS, ids=_ids)
@pytest.mark.parametrize("factor", [0.5, 2.0])
class TestScaledIsLinear:
    def test_grid_field_scales_linearly(self, model, factor):
        base = model.sample_grid(SHAPE, np.random.default_rng(11))
        scaled = model.scaled(factor).sample_grid(SHAPE, np.random.default_rng(11))
        np.testing.assert_allclose(scaled, factor * base, atol=1e-12)

    def test_temporal_samples_scale_linearly(self, model, factor):
        base = model.at_times(np.random.default_rng(23)).sample_at(TIMES)
        scaled = model.scaled(factor).at_times(np.random.default_rng(23)).sample_at(TIMES)
        np.testing.assert_allclose(scaled, factor * base, atol=1e-12)


@pytest.mark.parametrize("model", MODELS, ids=_ids)
class TestScaledContract:
    def test_preserves_type(self, model):
        assert type(model.scaled(1.5)) is type(model)

    def test_identity_factor_round_trips(self, model):
        assert repr(model.scaled(1.0)) == repr(model)

    @pytest.mark.parametrize("factor", [-1.0, float("nan"), float("inf")])
    def test_rejects_bad_factor(self, model, factor):
        with pytest.raises(ConfigurationError):
            model.scaled(factor)


class TestPerFamilyFields:
    def test_nonoise_returns_self(self):
        model = NoNoise()
        assert model.scaled(3.0) is model

    def test_white_scales_sigma(self):
        assert WhiteNoise(sigma_na=0.02).scaled(2.0).sigma_na == pytest.approx(0.04)

    def test_pink_keeps_exponent(self):
        scaled = PinkNoise(sigma_na=0.02, exponent=1.4).scaled(0.5)
        assert scaled.sigma_na == pytest.approx(0.01)
        assert scaled.exponent == 1.4

    def test_telegraph_keeps_dwell(self):
        scaled = TelegraphNoise(amplitude_na=0.1, mean_dwell_pixels=80.0).scaled(0.25)
        assert scaled.amplitude_na == pytest.approx(0.025)
        assert scaled.mean_dwell_pixels == 80.0

    def test_drift_scales_both_amplitudes_keeps_shape(self):
        model = DriftNoise(
            ramp_na=0.04, sine_amplitude_na=0.02, sine_periods=3.0, timescale_s=120.0
        )
        scaled = model.scaled(2.0)
        assert scaled.ramp_na == pytest.approx(0.08)
        assert scaled.sine_amplitude_na == pytest.approx(0.04)
        assert scaled.sine_periods == 3.0
        assert scaled.timescale_s == 120.0

    def test_composite_preserves_component_count_and_order(self):
        model = CompositeNoise([NoNoise(), WhiteNoise(sigma_na=0.02)])
        scaled = model.scaled(2.0)
        assert [type(c) for c in scaled.components] == [NoNoise, WhiteNoise]
        assert scaled.components[1].sigma_na == pytest.approx(0.04)


@dataclass(frozen=True)
class _Lorentzian(NoiseModel):
    """Custom subclass with a non-standard amplitude parameterisation."""

    height_na: float = 0.05

    def sample_grid(self, shape, rng):
        return np.full(shape, self.height_na)

    def scaled(self, factor: float) -> NoiseModel:
        return _Lorentzian(height_na=self.height_na * factor)


@dataclass(frozen=True)
class _Unscalable(NoiseModel):
    """Custom subclass that declares no known amplitude field."""

    knob: float = 1.0

    def sample_grid(self, shape, rng):
        return np.zeros(shape)


class TestCustomSubclasses:
    def test_override_participates_in_scale_noise(self):
        scaled = _scale_noise(_Lorentzian(height_na=0.05), 2.0)
        assert scaled.height_na == pytest.approx(0.10)

    def test_default_rejects_unknown_parameterisation(self):
        with pytest.raises(ConfigurationError, match="amplitude field"):
            _Unscalable().scaled(2.0)

    def test_error_names_every_known_field(self):
        with pytest.raises(ConfigurationError) as excinfo:
            _Unscalable().scaled(2.0)
        for name in AMPLITUDE_FIELDS:
            assert name in str(excinfo.value)


class TestScenarioScaled:
    def test_zero_scale_drops_time_dependence(self):
        scenario = LabScenario(
            name="_scaling_probe",
            story="temporal noise for the scaling tests",
            noise=WhiteNoise(sigma_na=0.03),
            time_dependent_noise=True,
        )
        silenced = scenario.scaled(0.0)
        assert silenced.noise is None
        assert silenced.time_dependent_noise is False

    def test_nonzero_scale_keeps_time_dependence(self):
        scenario = LabScenario(
            name="_scaling_probe",
            story="temporal noise for the scaling tests",
            noise=WhiteNoise(sigma_na=0.03),
            time_dependent_noise=True,
        )
        scaled = scenario.scaled(0.5)
        assert scaled.noise.sigma_na == pytest.approx(0.015)
        assert scaled.time_dependent_noise is True

    def test_scale_noise_zero_returns_none(self):
        assert _scale_noise(WhiteNoise(sigma_na=0.03), 0.0) is None
