"""Tests for the 1-D channel potential model."""

from __future__ import annotations

import pytest

from repro.exceptions import DeviceModelError
from repro.physics import ChannelPotential, GateElectrode


class TestGateElectrode:
    def test_invalid_width(self):
        with pytest.raises(DeviceModelError):
            GateElectrode(name="P1", position_nm=0.0, width_nm=0.0)

    def test_invalid_polarity(self):
        with pytest.raises(DeviceModelError):
            GateElectrode(name="P1", position_nm=0.0, polarity=2)

    def test_invalid_lever_arm(self):
        with pytest.raises(DeviceModelError):
            GateElectrode(name="P1", position_nm=0.0, lever_arm_mev_per_v=-5.0)


class TestStandardStack:
    def test_gate_count(self):
        stack = ChannelPotential.standard_stack(n_plungers=4)
        names = [gate.name for gate in stack.gates]
        assert names.count("P1") == 1
        assert len([n for n in names if n.startswith("P")]) == 4
        assert len([n for n in names if n.startswith("B")]) == 5

    def test_invalid_plunger_count(self):
        with pytest.raises(DeviceModelError):
            ChannelPotential.standard_stack(n_plungers=0)

    def test_gate_lookup(self):
        stack = ChannelPotential.standard_stack(n_plungers=2)
        assert stack.gate_by_name("P2").polarity == 1
        with pytest.raises(DeviceModelError):
            stack.gate_by_name("Q7")


class TestProfileAndWells:
    def test_zero_voltages_give_flat_profile(self):
        stack = ChannelPotential.standard_stack(n_plungers=2)
        profile = stack.profile({})
        assert profile.min() == pytest.approx(profile.max())

    def test_plunger_voltage_creates_well(self):
        stack = ChannelPotential.standard_stack(n_plungers=2)
        voltages = {"P1": 0.5, "B1": 0.3, "B2": 0.3}
        wells = stack.find_wells(voltages, min_confinement_mev=1.0)
        assert len(wells) >= 1
        p1_position = stack.gate_by_name("P1").position_nm
        closest = min(wells, key=lambda w: abs(w.position_nm - p1_position))
        assert abs(closest.position_nm - p1_position) < 20.0

    def test_four_plungers_form_four_dots(self):
        stack = ChannelPotential.standard_stack(n_plungers=4)
        voltages = {f"P{i}": 0.6 for i in range(1, 5)}
        voltages.update({f"B{i}": 0.4 for i in range(1, 6)})
        assert stack.count_dots(voltages, min_confinement_mev=1.0) == 4

    def test_barriers_only_form_no_dots(self):
        stack = ChannelPotential.standard_stack(n_plungers=3)
        voltages = {f"B{i}": 0.5 for i in range(1, 5)}
        assert stack.count_dots(voltages, min_confinement_mev=1.0) == 0

    def test_deeper_plunger_deepens_well(self):
        stack = ChannelPotential.standard_stack(n_plungers=1)
        shallow = stack.profile({"P1": 0.2})
        deep = stack.profile({"P1": 0.8})
        assert deep.min() < shallow.min()

    def test_well_confinement_property(self):
        stack = ChannelPotential.standard_stack(n_plungers=2)
        voltages = {"P1": 0.6, "P2": 0.6, "B1": 0.4, "B2": 0.4, "B3": 0.4}
        wells = stack.find_wells(voltages, min_confinement_mev=0.5)
        for well in wells:
            assert well.confinement_mev == min(well.left_barrier_mev, well.right_barrier_mev)

    def test_requires_gates(self):
        with pytest.raises(DeviceModelError):
            ChannelPotential(gates=())
