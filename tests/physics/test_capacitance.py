"""Tests for the constant-interaction capacitance model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import CapacitanceModelError
from repro.physics import CapacitanceModel


def make_symmetric_double_dot(cross: float = 0.25) -> CapacitanceModel:
    return CapacitanceModel.double_dot(
        charging_energy_mev=(3.0, 3.0),
        mutual_fraction=0.0,
        plunger_lever_arms=(0.1, 0.1),
        cross_lever_fractions=(cross, cross),
    )


class TestConstruction:
    def test_double_dot_shapes(self):
        model = CapacitanceModel.double_dot()
        assert model.n_dots == 2
        assert model.n_gates == 2
        assert model.gate_names == ("P1", "P2")

    def test_linear_array_shapes(self):
        model = CapacitanceModel.linear_array(n_dots=4)
        assert model.n_dots == 4
        assert model.n_gates == 4
        assert model.gate_names == ("P1", "P2", "P3", "P4")

    def test_rejects_asymmetric_maxwell_matrix(self):
        with pytest.raises(CapacitanceModelError):
            CapacitanceModel(
                dot_dot=np.array([[50.0, -5.0], [-6.0, 50.0]]),
                dot_gate=np.array([[5.0, 1.0], [1.0, 5.0]]),
            )

    def test_rejects_positive_off_diagonal(self):
        with pytest.raises(CapacitanceModelError):
            CapacitanceModel(
                dot_dot=np.array([[50.0, 5.0], [5.0, 50.0]]),
                dot_gate=np.array([[5.0, 1.0], [1.0, 5.0]]),
            )

    def test_rejects_negative_dot_gate(self):
        with pytest.raises(CapacitanceModelError):
            CapacitanceModel(
                dot_dot=np.array([[50.0, -5.0], [-5.0, 50.0]]),
                dot_gate=np.array([[5.0, -1.0], [1.0, 5.0]]),
            )

    def test_rejects_wrong_gate_name_count(self):
        with pytest.raises(CapacitanceModelError):
            CapacitanceModel(
                dot_dot=np.array([[50.0, -5.0], [-5.0, 50.0]]),
                dot_gate=np.array([[5.0, 1.0], [1.0, 5.0]]),
                gate_names=("P1",),
            )

    def test_rejects_non_square_maxwell(self):
        with pytest.raises(CapacitanceModelError):
            CapacitanceModel(
                dot_dot=np.ones((2, 3)),
                dot_gate=np.ones((2, 2)),
            )

    def test_gate_index_by_name_and_int(self):
        model = CapacitanceModel.double_dot()
        assert model.gate_index("P2") == 1
        assert model.gate_index(0) == 0
        with pytest.raises(CapacitanceModelError):
            model.gate_index("P9")
        with pytest.raises(CapacitanceModelError):
            model.gate_index(5)


class TestEnergies:
    def test_charging_energy_matches_request(self):
        model = CapacitanceModel.double_dot(
            charging_energy_mev=(3.0, 4.0), mutual_fraction=0.0
        )
        energies = model.charging_energies_mev()
        assert energies[0] == pytest.approx(3.0, rel=1e-6)
        assert energies[1] == pytest.approx(4.0, rel=1e-6)

    def test_energy_minimum_at_zero_occupation_for_zero_voltage(self):
        model = make_symmetric_double_dot()
        zero = model.electrostatic_energy([0, 0], [0.0, 0.0])
        one = model.electrostatic_energy([1, 0], [0.0, 0.0])
        assert zero < one

    def test_energy_shape_validation(self):
        model = make_symmetric_double_dot()
        with pytest.raises(CapacitanceModelError):
            model.electrostatic_energy([0, 0, 0], [0.0, 0.0])
        with pytest.raises(CapacitanceModelError):
            model.electrostatic_energy([0, 0], [0.0])

    def test_chemical_potential_decreases_with_gate_voltage(self):
        model = make_symmetric_double_dot()
        mu_low = model.chemical_potential(0, [0, 0], [0.0, 0.0])
        mu_high = model.chemical_potential(0, [0, 0], [0.05, 0.0])
        assert mu_high < mu_low

    def test_chemical_potential_invalid_dot(self):
        model = make_symmetric_double_dot()
        with pytest.raises(CapacitanceModelError):
            model.chemical_potential(5, [0, 0], [0.0, 0.0])


class TestLeverArmsAndSlopes:
    def test_lever_arm_matrix_dominant_diagonal(self):
        model = CapacitanceModel.double_dot()
        lever = model.lever_arm_matrix
        assert lever[0, 0] > lever[0, 1] > 0
        assert lever[1, 1] > lever[1, 0] > 0

    def test_transition_slopes_signs_and_ordering(self):
        model = CapacitanceModel.double_dot()
        steep, shallow = model.transition_slopes(0, 1, "P1", "P2")
        assert steep < -1.0
        assert -1.0 < shallow < 0.0
        assert abs(steep) > abs(shallow)

    def test_alphas_match_slopes(self):
        model = CapacitanceModel.double_dot()
        steep, shallow = model.transition_slopes(0, 1, "P1", "P2")
        alpha_12, alpha_21 = model.virtualization_alphas(0, 1, "P1", "P2")
        assert alpha_12 == pytest.approx(-1.0 / steep)
        assert alpha_21 == pytest.approx(-shallow)

    def test_symmetric_device_has_equal_alphas(self):
        model = make_symmetric_double_dot(cross=0.3)
        alpha_12, alpha_21 = model.virtualization_alphas(0, 1, "P1", "P2")
        assert alpha_12 == pytest.approx(alpha_21, rel=1e-9)

    def test_zero_cross_coupling_gives_zero_alphas_without_mutual(self):
        model = make_symmetric_double_dot(cross=0.0)
        with pytest.raises(CapacitanceModelError):
            # Zero cross lever arms make the slope degenerate; the model
            # explicitly refuses rather than dividing by zero.
            model.transition_slopes(0, 1, "P1", "P2")

    def test_larger_cross_coupling_increases_alpha(self):
        weak = make_symmetric_double_dot(cross=0.1).virtualization_alphas(0, 1, 0, 1)
        strong = make_symmetric_double_dot(cross=0.4).virtualization_alphas(0, 1, 0, 1)
        assert strong[0] > weak[0]
        assert strong[1] > weak[1]

    def test_mutual_capacitance_increases_effective_cross_talk(self):
        without = CapacitanceModel.double_dot(mutual_fraction=0.0).virtualization_alphas(
            0, 1, 0, 1
        )
        with_mutual = CapacitanceModel.double_dot(mutual_fraction=0.2).virtualization_alphas(
            0, 1, 0, 1
        )
        assert with_mutual[0] > without[0]


class TestLinearArray:
    def test_nearest_neighbour_coupling_decays_with_distance(self):
        model = CapacitanceModel.linear_array(n_dots=4)
        cdg = model.dot_gate
        assert cdg[0, 0] > cdg[0, 1] > cdg[0, 2] > cdg[0, 3] >= 0.0

    def test_invalid_parameters(self):
        with pytest.raises(CapacitanceModelError):
            CapacitanceModel.linear_array(n_dots=0)
        with pytest.raises(CapacitanceModelError):
            CapacitanceModel.grid_lattice(rows=0, cols=3)
        with pytest.raises(CapacitanceModelError):
            CapacitanceModel.grid_lattice(rows=2, cols=3, charging_energy_mev=0.0)


class TestGridLattice:
    def test_shapes_and_names(self):
        model = CapacitanceModel.grid_lattice(rows=2, cols=3)
        assert model.n_dots == 6
        assert model.n_gates == 6
        assert model.gate_names == ("P1", "P2", "P3", "P4", "P5", "P6")

    def test_mutual_capacitance_only_on_lattice_bonds(self):
        model = CapacitanceModel.grid_lattice(rows=2, cols=3)
        cdd = model.dot_dot
        sites = [(i // 3, i % 3) for i in range(6)]
        for i, (ri, ci) in enumerate(sites):
            for j, (rj, cj) in enumerate(sites):
                if i == j:
                    continue
                distance = abs(ri - rj) + abs(ci - cj)
                if distance == 1:
                    assert cdd[i, j] < 0.0
                else:
                    assert cdd[i, j] == 0.0

    def test_cross_coupling_decays_with_manhattan_distance(self):
        model = CapacitanceModel.grid_lattice(rows=2, cols=3)
        cdg = model.dot_gate
        # dot 0 sits at (0, 0): gate 1 is distance 1, gate 4 distance 2,
        # gate 5 distance 3 (beyond the modelled range).
        assert cdg[0, 0] > cdg[0, 1] > cdg[0, 4] > cdg[0, 5] == 0.0

    def test_single_row_matches_linear_array(self):
        grid = CapacitanceModel.grid_lattice(rows=1, cols=4)
        chain = CapacitanceModel.linear_array(n_dots=4)
        np.testing.assert_allclose(grid.dot_dot, chain.dot_dot)
        np.testing.assert_allclose(grid.dot_gate, chain.dot_gate)

    def test_charging_energy_matches_request(self):
        model = CapacitanceModel.grid_lattice(
            rows=2, cols=2, charging_energy_mev=4.0, mutual_fraction=0.0
        )
        energies = model.charging_energies_mev()
        np.testing.assert_allclose(energies, 4.0, rtol=1e-6)
        with pytest.raises(CapacitanceModelError):
            CapacitanceModel.linear_array(n_dots=2, charging_energy_mev=-1.0)
        with pytest.raises(CapacitanceModelError):
            CapacitanceModel.double_dot(mutual_fraction=0.7)
        with pytest.raises(CapacitanceModelError):
            CapacitanceModel.double_dot(plunger_lever_arms=(1.5, 0.1))
