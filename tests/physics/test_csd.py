"""Tests for charge-stability-diagram simulation and the CSD container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DatasetError, DeviceModelError
from repro.physics import (
    ChargeStabilityDiagram,
    CSDSimulator,
    DotArrayDevice,
    WhiteNoise,
)


@pytest.fixture(scope="module")
def simulator() -> CSDSimulator:
    return CSDSimulator(DotArrayDevice.double_dot())


class TestContainerValidation:
    def test_axis_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            ChargeStabilityDiagram(
                data=np.zeros((4, 5)),
                x_voltages=np.linspace(0, 1, 4),
                y_voltages=np.linspace(0, 1, 4),
            )

    def test_non_monotonic_axis_rejected(self):
        with pytest.raises(DatasetError):
            ChargeStabilityDiagram(
                data=np.zeros((3, 3)),
                x_voltages=np.array([0.0, 0.2, 0.1]),
                y_voltages=np.linspace(0, 1, 3),
            )

    def test_one_pixel_axis_rejected(self):
        with pytest.raises(DatasetError):
            ChargeStabilityDiagram(
                data=np.zeros((1, 3)),
                x_voltages=np.linspace(0, 1, 3),
                y_voltages=np.array([0.0]),
            )


class TestPixelVoltageConversion:
    def test_round_trip(self, clean_csd):
        vx, vy = clean_csd.voltage_at(10, 20)
        row, col = clean_csd.pixel_at(vx, vy)
        assert (row, col) == (10, 20)

    def test_contains_voltage(self, clean_csd):
        assert clean_csd.contains_voltage(
            float(clean_csd.x_voltages[5]), float(clean_csd.y_voltages[5])
        )
        assert not clean_csd.contains_voltage(
            float(clean_csd.x_voltages[-1]) + 1.0, float(clean_csd.y_voltages[0])
        )

    def test_value_accessors(self, clean_csd):
        assert clean_csd.value(3, 4) == pytest.approx(clean_csd.data[3, 4])
        vx, vy = clean_csd.voltage_at(3, 4)
        assert clean_csd.value_at_voltage(vx, vy) == pytest.approx(clean_csd.data[3, 4])

    def test_steps_positive(self, clean_csd):
        assert clean_csd.x_step > 0
        assert clean_csd.y_step > 0


class TestCropAndNormalize:
    def test_crop_shapes(self, clean_csd):
        cropped = clean_csd.crop(slice(10, 30), slice(5, 25))
        assert cropped.shape == (20, 20)
        assert cropped.metadata.get("cropped") is True

    def test_crop_fraction_centers_on_geometry(self, clean_csd):
        cropped = clean_csd.crop_fraction(0.5)
        assert cropped.shape[0] == pytest.approx(clean_csd.shape[0] * 0.5, abs=1)
        geometry = clean_csd.geometry
        assert geometry is not None
        # The crossing point stays inside the cropped window.
        assert cropped.contains_voltage(geometry.crossing_x, geometry.crossing_y)

    def test_crop_fraction_invalid(self, clean_csd):
        with pytest.raises(DatasetError):
            clean_csd.crop_fraction(0.0)

    def test_normalized_range(self, noisy_csd):
        normalized = noisy_csd.normalized()
        assert normalized.data.min() == pytest.approx(0.0)
        assert normalized.data.max() == pytest.approx(1.0)


class TestSimulator:
    def test_all_four_regions_present(self, clean_csd):
        occupations = clean_csd.occupations
        states = {tuple(occupations[r, c]) for r in range(0, 63, 4) for c in range(0, 63, 4)}
        assert {(0, 0), (0, 1), (1, 0), (1, 1)}.issubset(states)

    def test_corner_states(self, clean_csd):
        occ = clean_csd.occupations
        assert tuple(occ[0, 0]) == (0, 0)
        assert tuple(occ[0, -1]) == (1, 0)
        assert tuple(occ[-1, 0]) == (0, 1)
        assert tuple(occ[-1, -1]) == (1, 1)

    def test_geometry_consistent_with_device(self, simulator, double_dot_device):
        geometry = simulator.geometry()
        alpha_12, alpha_21 = double_dot_device.ground_truth_alphas(0, 1, "P1", "P2")
        assert geometry.alpha_12 == pytest.approx(alpha_12)
        assert geometry.alpha_21 == pytest.approx(alpha_21)
        assert geometry.slope_steep < -1 < geometry.slope_shallow < 0

    def test_crossing_point_is_inside_default_window(self, simulator):
        (x_min, x_max), (y_min, y_max) = simulator.default_window()
        crossing_x, crossing_y = simulator.first_transition_crossing()
        assert x_min < crossing_x < x_max
        assert y_min < crossing_y < y_max

    def test_crossing_matches_charge_state_boundary(self, simulator, double_dot_device):
        crossing_x, crossing_y = simulator.first_transition_crossing()
        delta = 0.003
        below = double_dot_device.charge_state([crossing_x - delta, crossing_y - delta])
        assert below.occupations == (0, 0)
        above = double_dot_device.charge_state([crossing_x + delta, crossing_y + delta])
        assert above.total_electrons >= 1

    def test_noise_seed_reproducibility(self, simulator):
        a = simulator.simulate(32, noise=WhiteNoise(0.05), seed=9)
        b = simulator.simulate(32, noise=WhiteNoise(0.05), seed=9)
        c = simulator.simulate(32, noise=WhiteNoise(0.05), seed=10)
        assert np.array_equal(a.data, b.data)
        assert not np.array_equal(a.data, c.data)

    def test_ideal_current_matches_grid(self, simulator):
        csd = simulator.simulate(32, seed=0)
        row, col = 10, 20
        vx, vy = csd.voltage_at(row, col)
        assert simulator.ideal_current(vx, vy) == pytest.approx(csd.data[row, col], rel=1e-9)

    def test_rectangular_resolution(self, simulator):
        csd = simulator.simulate((20, 30), seed=0)
        assert csd.shape == (20, 30)

    def test_invalid_resolution(self, simulator):
        with pytest.raises(DatasetError):
            simulator.simulate(1)

    def test_invalid_window(self, simulator):
        with pytest.raises(DatasetError):
            simulator.simulate(32, window=((0.1, 0.0), (0.0, 0.1)))

    def test_same_gate_rejected(self):
        with pytest.raises(DeviceModelError):
            CSDSimulator(DotArrayDevice.double_dot(), gate_x="P1", gate_y="P1")

    def test_single_dot_device_rejected(self):
        device = DotArrayDevice.linear_array(n_dots=1)
        with pytest.raises(DeviceModelError):
            CSDSimulator(device)
