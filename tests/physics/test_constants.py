"""Tests for physical constants and unit helpers."""

from __future__ import annotations

import math

import pytest

from repro.physics import constants


class TestConstants:
    def test_elementary_charge_af_v_scale(self):
        # 1 aF * 1 V = 1e-18 C, so e expressed in aF*V is ~0.16.
        assert constants.ELEMENTARY_CHARGE_AF_V == pytest.approx(0.1602176634, rel=1e-9)

    def test_e_squared_over_af_is_mev_scale(self):
        # e^2 / 1 aF ~ 160 meV, the right order for small quantum dots.
        assert 100.0 < constants.E_SQUARED_OVER_AF_IN_MEV < 200.0


class TestThermalEnergy:
    def test_room_temperature(self):
        assert constants.thermal_energy_mev(300.0) == pytest.approx(25.85, rel=0.01)

    def test_dilution_fridge(self):
        assert constants.thermal_energy_mev(0.1) == pytest.approx(0.0086, rel=0.01)

    def test_zero_temperature(self):
        assert constants.thermal_energy_mev(0.0) == 0.0

    def test_negative_temperature_rejected(self):
        with pytest.raises(ValueError):
            constants.thermal_energy_mev(-1.0)


class TestChargingEnergy:
    def test_typical_dot(self):
        # A 50 aF dot has a charging energy of ~3.2 meV.
        assert constants.charging_energy_mev(50.0) == pytest.approx(3.2, rel=0.02)

    def test_inverse_relationship(self):
        assert constants.charging_energy_mev(25.0) == pytest.approx(
            2.0 * constants.charging_energy_mev(50.0)
        )

    @pytest.mark.parametrize("capacitance", [0.0, -1.0])
    def test_nonpositive_capacitance_rejected(self, capacitance):
        with pytest.raises(ValueError):
            constants.charging_energy_mev(capacitance)


class TestLeverArm:
    def test_unity_lever_arm(self):
        assert constants.lever_arm_to_mev_per_volt(1.0) == 1000.0

    def test_typical_lever_arm(self):
        assert constants.lever_arm_to_mev_per_volt(0.1) == pytest.approx(100.0)


class TestGaussian:
    def test_peak_value(self):
        assert constants.gaussian(0.0, 0.0, 1.0) == pytest.approx(
            1.0 / math.sqrt(2.0 * math.pi)
        )

    def test_symmetry(self):
        assert constants.gaussian(1.0, 0.0, 2.0) == pytest.approx(
            constants.gaussian(-1.0, 0.0, 2.0)
        )

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            constants.gaussian(0.0, 0.0, 0.0)
