"""Bound-certified solver pruning: exactly equal to full enumeration.

The pruned batch path in :class:`~repro.physics.ChargeStateSolver` is a pure
overhead cut — every occupation and every energy must match brute-force
lattice enumeration bit for bit, on any device and any point batch.  These
tests pin that equivalence across the device families the campaigns use
(long chains, 2-D lattices) plus randomised capacitance models and sweep
windows, and sanity-check the work counters that the benchmarks report.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics import CapacitanceModel, ChargeStateSolver, CSDSimulator, DotArrayDevice


def solver_pair(model, max_electrons_per_dot=3):
    """(full, pruned) solvers over the same model."""
    full = ChargeStateSolver(
        model, max_electrons_per_dot=max_electrons_per_dot, prune=False
    )
    pruned = ChargeStateSolver(
        model, max_electrons_per_dot=max_electrons_per_dot, prune=True
    )
    return full, pruned


def window_points(device, resolution):
    """Flattened gate-voltage batch rasterising the default CSD window."""
    window = CSDSimulator(device).default_window()
    (x_min, x_max), (y_min, y_max) = window
    xs = np.linspace(x_min, x_max, resolution)
    ys = np.linspace(y_min, y_max, resolution)
    ix = device.gate_index("P1")
    iy = device.gate_index("P2")
    points = np.zeros((resolution * resolution, device.n_gates))
    grid_x, grid_y = np.meshgrid(xs, ys)
    points[:, ix] = grid_x.ravel()
    points[:, iy] = grid_y.ravel()
    return points


class TestPrunedEqualsFull:
    @pytest.mark.parametrize("n_dots", [6, 7, 8])
    def test_chain_window_occupations_identical(self, n_dots):
        device = DotArrayDevice.linear_array(n_dots)
        points = window_points(device, resolution=8)
        full, pruned = solver_pair(device.capacitance)
        np.testing.assert_array_equal(
            pruned.occupations_at(points), full.occupations_at(points)
        )

    def test_grid_lattice_occupations_identical(self):
        device = DotArrayDevice.grid_array(rows=2, cols=3)
        points = window_points(device, resolution=10)
        full, pruned = solver_pair(device.capacitance)
        np.testing.assert_array_equal(
            pruned.occupations_at(points), full.occupations_at(points)
        )

    def test_chain_states_and_energies_identical(self):
        device = DotArrayDevice.linear_array(6)
        points = window_points(device, resolution=6)
        full, pruned = solver_pair(device.capacitance)
        full_states = full.ground_states_batch(points)
        pruned_states = pruned.ground_states_batch(points)
        assert len(full_states) == len(pruned_states)
        for a, b in zip(full_states, pruned_states):
            assert a.occupations == b.occupations
            assert a.energy_mev == b.energy_mev

    def test_batch_matches_scalar_solves(self):
        device = DotArrayDevice.linear_array(6)
        points = window_points(device, resolution=5)
        _, pruned = solver_pair(device.capacitance)
        batch = pruned.occupations_at(points)
        for point, occupation in zip(points, batch):
            assert tuple(occupation) == pruned.ground_state(point).occupations

    @given(
        charging=st.floats(min_value=1.5, max_value=6.0),
        mutual=st.floats(min_value=0.0, max_value=0.3),
        nearest=st.floats(min_value=0.05, max_value=0.4),
        span=st.floats(min_value=0.01, max_value=0.25),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_chain_and_sweep_identical(
        self, charging, mutual, nearest, span, seed
    ):
        model = CapacitanceModel.linear_array(
            5,
            charging_energy_mev=charging,
            mutual_fraction=mutual,
            nearest_cross_fraction=nearest,
        )
        rng = np.random.default_rng(seed)
        points = rng.uniform(0.0, span, size=(40, model.n_gates))
        full, pruned = solver_pair(model)
        assert pruned.prune_enabled
        np.testing.assert_array_equal(
            pruned.occupations_at(points), full.occupations_at(points)
        )


class TestSolverStats:
    def test_auto_threshold_small_lattice_disabled(self):
        double = DotArrayDevice.double_dot()
        assert not double.solver.prune_enabled
        chain = DotArrayDevice.linear_array(6)
        assert chain.solver.prune_enabled

    def test_pruned_path_scores_fewer_states(self):
        # Needs more than one pruning block (256 points): the first block
        # has no carried-over winners and always falls back to full scoring.
        device = DotArrayDevice.linear_array(6)
        points = window_points(device, resolution=24)
        full, pruned = solver_pair(device.capacitance)
        full.occupations_at(points)
        pruned.occupations_at(points)
        assert full.stats.n_points == pruned.stats.n_points == len(points)
        pruned_total = pruned.stats.n_state_scores + pruned.stats.n_bound_scores
        assert pruned_total < full.stats.n_state_scores
        assert pruned.stats.n_pruned_points + pruned.stats.n_full_points == len(points)
        assert pruned.stats.n_pruned_points > 0

    def test_reset_stats_zeroes_counters(self):
        device = DotArrayDevice.linear_array(6)
        solver = device.solver
        solver.occupations_at(window_points(device, resolution=4))
        assert solver.stats.n_points > 0
        solver.reset_stats()
        stats = solver.stats
        assert stats.n_points == 0
        assert stats.n_state_scores == 0
        assert stats.n_bound_scores == 0

    def test_stats_round_trips_as_dict(self):
        device = DotArrayDevice.linear_array(6)
        solver = device.solver
        solver.occupations_at(window_points(device, resolution=4))
        stats = solver.stats
        assert type(stats).from_dict(stats.as_dict()) == stats
