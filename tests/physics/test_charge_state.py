"""Tests for the ground-state charge configuration solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ChargeStateError
from repro.physics import CapacitanceModel, ChargeStateSolver, format_charge_state
from repro.physics.charge_state import ChargeState


@pytest.fixture(scope="module")
def model() -> CapacitanceModel:
    return CapacitanceModel.double_dot(cross_lever_fractions=(0.25, 0.22))


@pytest.fixture(scope="module")
def solver(model) -> ChargeStateSolver:
    return ChargeStateSolver(model, max_electrons_per_dot=3)


class TestFormatting:
    def test_format_charge_state(self):
        assert format_charge_state((0, 1)) == "(0, 1)"
        assert format_charge_state(np.array([2, 0, 1])) == "(2, 0, 1)"

    def test_charge_state_properties(self):
        state = ChargeState(occupations=(1, 2), energy_mev=0.5)
        assert state.total_electrons == 3
        assert state.label == "(1, 2)"


class TestGroundState:
    def test_empty_at_zero_voltage(self, solver):
        state = solver.ground_state([0.0, 0.0])
        assert state.occupations == (0, 0)

    def test_high_voltage_fills_dots(self, solver):
        state = solver.ground_state([0.2, 0.2])
        assert state.occupations[0] >= 1
        assert state.occupations[1] >= 1

    def test_single_gate_loads_its_own_dot_first(self, solver):
        state = solver.ground_state([0.04, 0.0])
        assert state.occupations[0] >= state.occupations[1]

    def test_energy_is_minimal_over_lattice(self, solver, model):
        vg = np.array([0.025, 0.02])
        state = solver.ground_state(vg)
        for n1 in range(3):
            for n2 in range(3):
                assert state.energy_mev <= model.electrostatic_energy([n1, n2], vg) + 1e-9

    def test_invalid_max_electrons(self, model):
        with pytest.raises(ChargeStateError):
            ChargeStateSolver(model, max_electrons_per_dot=0)


class TestLocalDescent:
    def test_matches_enumeration(self, solver, rng):
        for _ in range(25):
            vg = rng.uniform(0.0, 0.06, size=2)
            exact = solver.ground_state(vg)
            local = solver.ground_state_local(vg, initial_guess=(0, 0))
            assert exact.occupations == local.occupations

    def test_matches_enumeration_from_far_guess(self, solver, rng):
        for _ in range(10):
            vg = rng.uniform(0.0, 0.06, size=2)
            exact = solver.ground_state(vg)
            local = solver.ground_state_local(vg, initial_guess=(3, 3))
            assert exact.occupations == local.occupations

    def test_invalid_guess_shape(self, solver):
        with pytest.raises(ChargeStateError):
            solver.ground_state_local([0.0, 0.0], initial_guess=(0, 0, 0))


class TestOccupationMap:
    def test_map_shape_and_dtype(self, solver):
        xs = np.linspace(0.0, 0.05, 12)
        ys = np.linspace(0.0, 0.05, 10)
        occupations = solver.occupation_map("P1", "P2", xs, ys)
        assert occupations.shape == (10, 12, 2)
        assert occupations.dtype.kind == "i"

    def test_map_matches_pointwise_ground_state(self, solver, rng):
        xs = np.linspace(0.0, 0.05, 15)
        ys = np.linspace(0.0, 0.05, 15)
        occupations = solver.occupation_map("P1", "P2", xs, ys)
        for _ in range(20):
            row = int(rng.integers(0, 15))
            col = int(rng.integers(0, 15))
            exact = solver.ground_state([xs[col], ys[row]])
            assert tuple(occupations[row, col]) == exact.occupations

    def test_occupations_monotone_along_axes(self, solver):
        xs = np.linspace(0.0, 0.06, 30)
        ys = np.linspace(0.0, 0.06, 30)
        occupations = solver.occupation_map("P1", "P2", xs, ys)
        # Increasing the x gate never removes electrons from dot 0.
        diffs_x = np.diff(occupations[:, :, 0], axis=1)
        assert np.all(diffs_x >= 0)
        # Increasing the y gate never removes electrons from dot 1.
        diffs_y = np.diff(occupations[:, :, 1], axis=0)
        assert np.all(diffs_y >= 0)

    def test_same_gate_rejected(self, solver):
        xs = np.linspace(0.0, 0.05, 5)
        with pytest.raises(ChargeStateError):
            solver.occupation_map("P1", "P1", xs, xs)

    def test_fixed_voltages_shift_transitions(self, solver):
        xs = np.linspace(0.0, 0.05, 20)
        ys = np.linspace(0.0, 0.05, 20)
        base = solver.occupation_map("P1", "P2", xs, ys)
        shifted = solver.occupation_map("P1", "P2", xs, ys, fixed_voltages=[0.0, 0.0])
        assert np.array_equal(base, shifted)

    def test_fixed_voltage_wrong_shape(self, solver):
        xs = np.linspace(0.0, 0.05, 5)
        with pytest.raises(ChargeStateError):
            solver.occupation_map("P1", "P2", xs, xs, fixed_voltages=[0.0])
