"""Tests for the SET charge-sensor model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SensorModelError
from repro.physics import ChargeSensor, ChargeSensorConfig


class TestConfigValidation:
    def test_defaults_are_valid(self):
        config = ChargeSensorConfig()
        assert config.peak_spacing_mv > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"peak_spacing_mv": 0.0},
            {"peak_width_mv": -1.0},
            {"peak_current_na": 0.0},
            {"dot_shift_mv": ()},
            {"background_current_na": -0.1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(SensorModelError):
            ChargeSensorConfig(**kwargs)


class TestCoulombPeakShape:
    def test_peak_maximum_at_zero_detuning(self):
        sensor = ChargeSensor()
        peak = sensor.current_from_detuning(0.0)
        off_peak = sensor.current_from_detuning(1.5)
        assert peak > off_peak

    def test_periodicity(self):
        sensor = ChargeSensor()
        spacing = sensor.config.peak_spacing_mv
        assert sensor.current_from_detuning(0.3) == pytest.approx(
            sensor.current_from_detuning(0.3 + spacing), rel=1e-9
        )

    def test_vectorised_evaluation(self):
        sensor = ChargeSensor()
        detunings = np.linspace(-5, 5, 101)
        currents = sensor.current_from_detuning(detunings)
        assert isinstance(currents, np.ndarray)
        assert currents.shape == detunings.shape
        assert np.all(currents >= sensor.config.background_current_na - 1e-12)

    def test_background_far_from_peak(self):
        config = ChargeSensorConfig(peak_spacing_mv=100.0, peak_width_mv=0.5)
        sensor = ChargeSensor(config)
        assert sensor.current_from_detuning(50.0) == pytest.approx(
            config.background_current_na, abs=1e-6
        )


class TestChargeResponse:
    def test_adding_electron_changes_current(self):
        sensor = ChargeSensor()
        zeros = np.zeros(2)
        before = sensor.current([0, 0], zeros)
        after = sensor.current([1, 0], zeros)
        assert before != pytest.approx(after)

    def test_default_operating_point_makes_added_electron_darker(self):
        # The default sensor is parked on the falling flank, so loading an
        # electron reduces the current; this is what makes the (0,0) region
        # the brightest, as the anchor search assumes.
        sensor = ChargeSensor()
        assert sensor.step_contrast(0) < 0
        assert sensor.step_contrast(1) < 0

    def test_closer_dot_has_larger_contrast(self):
        sensor = ChargeSensor()
        assert abs(sensor.step_contrast(0)) > abs(sensor.step_contrast(1))

    def test_step_contrast_invalid_dot(self):
        sensor = ChargeSensor()
        with pytest.raises(SensorModelError):
            sensor.step_contrast(7)

    def test_detuning_includes_gate_crosstalk(self):
        sensor = ChargeSensor()
        base = sensor.detuning_mv([0, 0], [0.0, 0.0])
        shifted = sensor.detuning_mv([0, 0], [0.1, 0.0])
        assert shifted > base

    def test_detuning_requires_enough_occupations(self):
        sensor = ChargeSensor()
        with pytest.raises(SensorModelError):
            sensor.detuning_mv([0], [0.0, 0.0])
        with pytest.raises(SensorModelError):
            sensor.detuning_mv([0, 0], [0.0])


class TestWithSensitivity:
    def test_sizes_vectors_to_device(self):
        sensor = ChargeSensor.with_sensitivity(n_dots=4, n_gates=4)
        assert len(sensor.config.dot_shift_mv) == 4
        assert len(sensor.config.gate_crosstalk_mv_per_v) == 4

    def test_shifts_decay_with_distance(self):
        sensor = ChargeSensor.with_sensitivity(n_dots=3, n_gates=3)
        shifts = sensor.config.dot_shift_mv
        assert shifts[0] > shifts[1] > shifts[2]
