"""Equivalence tests for the vectorised physics kernel.

`ChargeStateSolver.occupations_at` / `ground_states_batch` and
`ChargeSensor.currents` / `DotArrayDevice.sensor_currents` must agree with
their scalar counterparts point by point — the batch probe path in the
instrument layer is built on that guarantee.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ChargeStateError, DeviceModelError, SensorModelError
from repro.physics import CapacitanceModel, ChargeStateSolver, DotArrayDevice


@pytest.fixture(scope="module")
def solver() -> ChargeStateSolver:
    model = CapacitanceModel.double_dot(cross_lever_fractions=(0.25, 0.22))
    return ChargeStateSolver(model, max_electrons_per_dot=3)


@pytest.fixture(scope="module")
def quad_solver() -> ChargeStateSolver:
    model = CapacitanceModel.linear_array(n_dots=4)
    return ChargeStateSolver(model, max_electrons_per_dot=2)


class TestGroundStatesBatch:
    def test_matches_looped_ground_state(self, solver, rng):
        points = rng.uniform(0.0, 0.08, size=(300, 2))
        batch = solver.ground_states_batch(points)
        for point, state in zip(points, batch):
            exact = solver.ground_state(point)
            assert state.occupations == exact.occupations
            assert state.energy_mev == exact.energy_mev

    def test_matches_on_larger_array(self, quad_solver, rng):
        points = rng.uniform(0.0, 0.06, size=(50, 4))
        batch = quad_solver.ground_states_batch(points)
        for point, state in zip(points, batch):
            exact = quad_solver.ground_state(point)
            assert state.occupations == exact.occupations
            assert state.energy_mev == exact.energy_mev

    def test_chunked_evaluation_is_equivalent(self, solver, rng, monkeypatch):
        points = rng.uniform(0.0, 0.08, size=(101, 2))
        whole = solver.occupations_at(points)
        monkeypatch.setattr(ChargeStateSolver, "_CHUNK", 17)
        chunked = solver.occupations_at(points)
        assert np.array_equal(whole, chunked)

    def test_occupations_at_matches_ground_state(self, solver, rng):
        points = rng.uniform(0.0, 0.08, size=(200, 2))
        occupations = solver.occupations_at(points)
        assert occupations.shape == (200, 2)
        assert occupations.dtype.kind == "i"
        for point, occupation in zip(points, occupations):
            assert tuple(occupation) == solver.ground_state(point).occupations

    def test_wrong_point_shape_rejected(self, solver):
        with pytest.raises(ChargeStateError):
            solver.occupations_at(np.zeros((4, 3)))
        with pytest.raises(ChargeStateError):
            solver.ground_states_batch(np.zeros(2))

    def test_empty_batch(self, solver):
        assert solver.occupations_at(np.zeros((0, 2))).shape == (0, 2)
        assert solver.ground_states_batch(np.zeros((0, 2))) == []


class TestSensorCurrentsBatch:
    def test_matches_scalar_current(self, double_dot_device, rng):
        sensor = double_dot_device.sensor
        occupations = rng.integers(0, 3, size=(100, 2))
        voltages = rng.uniform(0.0, 0.08, size=(100, 2))
        batch = sensor.currents(occupations.astype(float), voltages)
        scalar = np.array(
            [sensor.current(n, vg) for n, vg in zip(occupations, voltages)]
        )
        assert batch == pytest.approx(scalar, rel=1e-12, abs=1e-15)

    def test_shape_validation(self, double_dot_device):
        sensor = double_dot_device.sensor
        with pytest.raises(SensorModelError):
            sensor.currents(np.zeros((3, 1)), np.zeros((3, 2)))
        with pytest.raises(SensorModelError):
            sensor.currents(np.zeros((3, 2)), np.zeros((4, 2)))

    def test_device_sensor_currents_matches_scalar(self, double_dot_device, rng):
        points = rng.uniform(0.0, 0.08, size=(150, 2))
        batch = double_dot_device.sensor_currents(points)
        scalar = np.array([double_dot_device.sensor_current(p) for p in points])
        assert batch == pytest.approx(scalar, rel=1e-12, abs=1e-15)

    def test_device_sensor_currents_with_precomputed_occupations(
        self, double_dot_device, rng
    ):
        points = rng.uniform(0.0, 0.08, size=(40, 2))
        occupations = double_dot_device.solver.occupations_at(points)
        with_occ = double_dot_device.sensor_currents(points, occupations=occupations)
        without = double_dot_device.sensor_currents(points)
        assert np.array_equal(with_occ, without)

    def test_device_point_shape_rejected(self, double_dot_device):
        with pytest.raises(DeviceModelError):
            double_dot_device.sensor_currents(np.zeros((5, 3)))

    def test_oversized_sensor_rejected_at_construction(self):
        from repro.physics import CapacitanceModel, ChargeSensor, ChargeSensorConfig

        capacitance = CapacitanceModel.double_dot()
        sensor = ChargeSensor(
            ChargeSensorConfig(dot_shift_mv=(0.9, 0.55, 0.3))
        )
        with pytest.raises(DeviceModelError):
            DotArrayDevice(capacitance=capacitance, sensor=sensor)


class TestSimulatorSharedKernel:
    def test_simulate_matches_ideal_current_pointwise(self, double_dot_device):
        from repro.physics import CSDSimulator

        simulator = CSDSimulator(double_dot_device)
        csd = simulator.simulate(24, seed=0)
        for row, col in [(0, 0), (5, 17), (23, 23), (12, 3)]:
            vx, vy = csd.voltage_at(row, col)
            assert csd.data[row, col] == pytest.approx(
                simulator.ideal_current(vx, vy), rel=1e-10
            )
