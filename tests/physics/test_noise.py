"""Tests for the measurement-noise models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.physics import (
    CompositeNoise,
    DriftNoise,
    NoNoise,
    PinkNoise,
    TelegraphNoise,
    WhiteNoise,
    standard_lab_noise,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


SHAPE = (64, 48)


class TestNoNoise:
    def test_zero_field(self, rng):
        field = NoNoise().sample_grid(SHAPE, rng)
        assert field.shape == SHAPE
        assert np.all(field == 0)


class TestWhiteNoise:
    def test_shape_and_amplitude(self, rng):
        field = WhiteNoise(sigma_na=0.05).sample_grid(SHAPE, rng)
        assert field.shape == SHAPE
        assert np.std(field) == pytest.approx(0.05, rel=0.15)

    def test_zero_sigma(self, rng):
        field = WhiteNoise(sigma_na=0.0).sample_grid(SHAPE, rng)
        assert np.all(field == 0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            WhiteNoise(sigma_na=-0.1)

    def test_deterministic_given_seed(self):
        a = WhiteNoise(0.02).sample_grid(SHAPE, np.random.default_rng(3))
        b = WhiteNoise(0.02).sample_grid(SHAPE, np.random.default_rng(3))
        assert np.array_equal(a, b)


class TestPinkNoise:
    def test_rms_matches_request(self, rng):
        field = PinkNoise(sigma_na=0.04).sample_grid(SHAPE, rng)
        assert np.sqrt(np.mean(field**2)) == pytest.approx(0.04, rel=1e-6)

    def test_spatial_correlation_exceeds_white(self, rng):
        # 1/f noise is spatially correlated: neighbouring pixels of the pink
        # field are strongly correlated while white-noise neighbours are not.
        pink = PinkNoise(sigma_na=0.05).sample_grid((128, 128), np.random.default_rng(1))
        white = WhiteNoise(sigma_na=0.05).sample_grid((128, 128), np.random.default_rng(1))

        def lag1_correlation(field: np.ndarray) -> float:
            return float(np.corrcoef(field[:, :-1].ravel(), field[:, 1:].ravel())[0, 1])

        assert lag1_correlation(pink) > 0.15
        assert abs(lag1_correlation(white)) < 0.1

    def test_zero_sigma(self, rng):
        assert np.all(PinkNoise(sigma_na=0.0).sample_grid(SHAPE, rng) == 0)

    def test_invalid_exponent(self):
        with pytest.raises(ConfigurationError):
            PinkNoise(exponent=0.0)


class TestTelegraphNoise:
    def test_two_level_structure(self, rng):
        field = TelegraphNoise(amplitude_na=0.1, mean_dwell_pixels=50).sample_grid(SHAPE, rng)
        unique = np.unique(np.round(field, 9))
        assert len(unique) == 2
        assert np.ptp(unique) == pytest.approx(0.1, rel=1e-9)

    def test_zero_mean(self, rng):
        field = TelegraphNoise(amplitude_na=0.2, mean_dwell_pixels=10).sample_grid(SHAPE, rng)
        assert abs(np.mean(field)) < 1e-12

    def test_zero_amplitude(self, rng):
        assert np.all(TelegraphNoise(amplitude_na=0.0).sample_grid(SHAPE, rng) == 0)

    def test_invalid_dwell(self):
        with pytest.raises(ConfigurationError):
            TelegraphNoise(mean_dwell_pixels=0.0)


class TestDriftNoise:
    def test_ramp_along_rows(self, rng):
        field = DriftNoise(ramp_na=0.1, sine_amplitude_na=0.0).sample_grid(SHAPE, rng)
        # Bottom row sits half a ramp below the top row.
        assert field[-1, 0] - field[0, 0] == pytest.approx(0.1, rel=1e-9)
        # Constant within a row.
        assert np.allclose(field[10, :], field[10, 0])

    def test_sine_component(self, rng):
        field = DriftNoise(ramp_na=0.0, sine_amplitude_na=0.05).sample_grid(SHAPE, rng)
        assert np.max(np.abs(field)) <= 0.05 + 1e-12
        assert np.max(np.abs(field)) > 0.0

    def test_invalid_periods(self):
        with pytest.raises(ConfigurationError):
            DriftNoise(sine_periods=0.0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_ramp_rejected(self, bad):
        # Regression: ramp_na/sine_amplitude_na used to accept NaN/inf while
        # the sibling models validated their amplitudes in __post_init__.
        with pytest.raises(ConfigurationError):
            DriftNoise(ramp_na=bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_sine_amplitude_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            DriftNoise(sine_amplitude_na=bad)

    def test_negative_ramp_rejected(self):
        with pytest.raises(ConfigurationError):
            DriftNoise(ramp_na=-0.01)

    def test_negative_sine_amplitude_rejected(self):
        with pytest.raises(ConfigurationError):
            DriftNoise(sine_amplitude_na=-0.01)

    @pytest.mark.parametrize("bad", [0.0, -5.0, float("nan"), float("inf")])
    def test_invalid_timescale_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            DriftNoise(timescale_s=bad)

    def test_non_finite_periods_rejected(self):
        with pytest.raises(ConfigurationError):
            DriftNoise(sine_periods=float("nan"))


class TestSiblingFinitenessValidation:
    """The finiteness gap is closed across the whole family, not just drift."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_white_sigma(self, bad):
        with pytest.raises(ConfigurationError):
            WhiteNoise(sigma_na=bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_pink_sigma_and_exponent(self, bad):
        with pytest.raises(ConfigurationError):
            PinkNoise(sigma_na=bad)
        with pytest.raises(ConfigurationError):
            PinkNoise(exponent=bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_telegraph_amplitude_and_dwell(self, bad):
        with pytest.raises(ConfigurationError):
            TelegraphNoise(amplitude_na=bad)
        with pytest.raises(ConfigurationError):
            TelegraphNoise(mean_dwell_pixels=bad)


class TestCompositeNoise:
    def test_sum_of_components(self):
        composite = CompositeNoise([WhiteNoise(0.0), DriftNoise(ramp_na=0.1, sine_amplitude_na=0.0)])
        field = composite.sample_grid(SHAPE, np.random.default_rng(0))
        pure_drift = DriftNoise(ramp_na=0.1, sine_amplitude_na=0.0).sample_grid(
            SHAPE, np.random.default_rng(0)
        )
        assert np.allclose(field, pure_drift)

    def test_empty_components_rejected(self):
        with pytest.raises(ConfigurationError):
            CompositeNoise([])

    def test_describe_mentions_components(self):
        composite = standard_lab_noise(telegraph_amplitude_na=0.05)
        description = composite.describe()
        assert "white" in description
        assert "pink" in description
        assert "telegraph" in description

    def test_standard_lab_noise_shape(self, rng):
        field = standard_lab_noise().sample_grid(SHAPE, rng)
        assert field.shape == SHAPE
        assert np.isfinite(field).all()
