"""Tests for the execution backends: streaming, determinism, chunking."""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.exceptions import ConfigurationError
from repro.execution import (
    DEFAULT_CHUNK_CAP,
    AsyncioBackend,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    backend_from_spec,
    backend_names,
    register_backend,
)


@dataclass(frozen=True)
class FakeJob:
    """Minimal schedulable job: an id plus a simulated cost in seconds."""

    job_id: int
    cost: float = 0.0
    marker_dir: str = ""


def marker_runner(job: FakeJob) -> int:
    """Touches a per-job marker file so tests can count cross-process runs."""
    time.sleep(job.cost)
    (Path(job.marker_dir) / str(job.job_id)).touch()
    return job.job_id


def echo_runner(job: FakeJob) -> str:
    """Module-level (hence picklable) runner with a deterministic record."""
    return f"record-{job.job_id}"


def sleepy_runner(job: FakeJob) -> int:
    """Runner whose wall time is the job's declared cost."""
    time.sleep(job.cost)
    return job.job_id * 10


def raising_runner(job: FakeJob) -> str:
    raise RuntimeError(f"boom on {job.job_id}")


JOBS = tuple(FakeJob(job_id=i) for i in range(10))

ALL_BACKENDS = [
    SerialBackend(),
    ProcessPoolBackend(max_workers=2),
    ProcessPoolBackend(max_workers=3, chunk_size=2),
    AsyncioBackend(max_workers=2),
    AsyncioBackend(max_workers=8),
]


@pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: f"{b.name}")
class TestStreamingContract:
    def test_yields_every_job_exactly_once(self, backend):
        pairs = list(backend.submit(JOBS, echo_runner))
        assert sorted(job_id for job_id, _ in pairs) == [j.job_id for j in JOBS]

    def test_records_are_deterministic(self, backend):
        first = dict(backend.submit(JOBS, echo_runner))
        second = dict(backend.submit(JOBS, echo_runner))
        assert first == second == {j.job_id: f"record-{j.job_id}" for j in JOBS}

    def test_empty_job_list(self, backend):
        assert list(backend.submit((), echo_runner)) == []

    def test_single_job(self, backend):
        assert list(backend.submit((FakeJob(7),), echo_runner)) == [(7, "record-7")]

    def test_runner_exception_propagates(self, backend):
        # Fault isolation is the RunController's job, not the backend's.
        with pytest.raises(Exception):
            list(backend.submit(JOBS, raising_runner))


class TestSerialBackend:
    def test_yields_in_submission_order(self):
        pairs = list(SerialBackend().submit(JOBS, echo_runner))
        assert [job_id for job_id, _ in pairs] == [j.job_id for j in JOBS]

    def test_streams_lazily(self):
        # Pull one record without running the rest: streaming, not batching.
        seen = []

        def recording_runner(job):
            seen.append(job.job_id)
            return job.job_id

        stream = SerialBackend().submit(JOBS, recording_runner)
        next(stream)
        assert seen == [0]


class TestProcessPoolBackend:
    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessPoolBackend(max_workers=0)
        with pytest.raises(ConfigurationError):
            ProcessPoolBackend(max_workers=2, chunk_size=0)

    def test_default_chunk_is_capped(self):
        backend = ProcessPoolBackend(max_workers=2)
        # The old campaign default (len // (4 * workers)) would ship
        # 125-job chunks here, starving the pool tail on mixed-cost grids.
        assert 1000 // (4 * 2) == 125
        assert backend.effective_chunk_size(1000) == DEFAULT_CHUNK_CAP
        # Small grids keep the fine-grained old behaviour.
        assert backend.effective_chunk_size(10) == 1
        assert backend.effective_chunk_size(0) == 1

    def test_explicit_chunk_wins(self):
        assert ProcessPoolBackend(2, chunk_size=17).effective_chunk_size(1000) == 17

    def test_mixed_cost_grid_streams_past_a_slow_job(self):
        # One expensive job up front plus a tail of cheap ones: with the
        # old blocking pool.map nothing would be yielded until the slow
        # chunk finished; the streaming backend hands back cheap records
        # while the expensive job still runs, keeping the pool busy.
        jobs = (FakeJob(0, cost=0.6),) + tuple(
            FakeJob(i, cost=0.01) for i in range(1, 9)
        )
        backend = ProcessPoolBackend(max_workers=2)
        order = [job_id for job_id, _ in backend.submit(jobs, sleepy_runner)]
        assert sorted(order) == list(range(9))
        assert order[0] != 0
        assert order.index(0) >= 4

    def test_abandoned_stream_cancels_pending_chunks(self, tmp_path):
        # An interrupting consumer (a progress hook raising) must not sit
        # through the whole remaining grid: unstarted chunks are cancelled,
        # so only the chunk(s) already running can still execute.
        jobs = tuple(
            FakeJob(i, cost=0.05, marker_dir=str(tmp_path)) for i in range(8)
        )
        stream = ProcessPoolBackend(max_workers=1, chunk_size=1).submit(
            jobs, marker_runner
        )
        next(stream)
        stream.close()
        ran = len(list(tmp_path.iterdir()))
        assert ran < len(jobs)


class TestAsyncioBackend:
    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            AsyncioBackend(max_workers=0)

    def test_abandoned_stream_cleans_up(self):
        # Closing the generator early must not leak the event loop.
        stream = AsyncioBackend(max_workers=2).submit(JOBS, echo_runner)
        next(stream)
        stream.close()

    def test_rejected_inside_running_event_loop(self):
        # Jupyter/ipykernel runs user code inside a live loop, where the
        # sync bridge cannot nest; the backend must fail up front with the
        # workaround rather than mid-campaign with a bare RuntimeError.
        import asyncio

        async def attempt():
            stream = AsyncioBackend(max_workers=2).submit(JOBS, echo_runner)
            with pytest.raises(ConfigurationError, match="already-running"):
                next(stream)

        asyncio.run(attempt())

    def test_slow_job_does_not_block_streaming(self):
        jobs = (FakeJob(0, cost=0.5),) + tuple(
            FakeJob(i, cost=0.01) for i in range(1, 6)
        )
        order = [
            job_id
            for job_id, _ in AsyncioBackend(max_workers=2).submit(jobs, sleepy_runner)
        ]
        assert sorted(order) == list(range(6))
        assert order[-1] == 0  # the sleeper finishes last, others streamed past


class TestBackendRegistry:
    def test_stock_backends_registered(self):
        assert {"serial", "process", "asyncio"} <= set(backend_names())

    def test_auto_spec_follows_worker_count(self):
        assert isinstance(backend_from_spec(None, n_workers=1), SerialBackend)
        auto = backend_from_spec(None, n_workers=3, chunk_size=5)
        assert isinstance(auto, ProcessPoolBackend)
        assert auto.max_workers == 3
        assert auto.effective_chunk_size(100) == 5

    def test_name_spec(self):
        assert isinstance(backend_from_spec("serial", n_workers=4), SerialBackend)
        assert isinstance(backend_from_spec("asyncio", n_workers=4), AsyncioBackend)

    def test_instance_passes_through(self):
        backend = AsyncioBackend(max_workers=2)
        assert backend_from_spec(backend, n_workers=99) is backend

    def test_unknown_name_rejected_with_catalogue(self):
        with pytest.raises(ConfigurationError, match="serial"):
            backend_from_spec("quantum-teleport")

    def test_custom_backend_registers(self):
        class NullBackend(ExecutionBackend):
            name = "null"

            def submit(self, jobs, run_one):
                return iter(())

        register_backend("null", lambda n_workers, chunk_size: NullBackend())
        try:
            assert isinstance(backend_from_spec("null"), NullBackend)
        finally:
            from repro.execution.base import _BACKEND_FACTORIES

            _BACKEND_FACTORIES.pop("null", None)
