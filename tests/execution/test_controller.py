"""Tests for the run controller: isolation, retries, journal, progress."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.exceptions import ConfigurationError
from repro.execution import (
    CheckpointJournal,
    ProcessPoolBackend,
    RetryPolicy,
    RunController,
    SerialBackend,
    guarded_runner,
)


@dataclass(frozen=True)
class FakeJob:
    job_id: int


JOBS = tuple(FakeJob(job_id=i) for i in range(6))

POISONED_ID = 3


def poisoned_runner(job: FakeJob) -> str:
    """Module-level so the process backend can pickle it into workers."""
    if job.job_id == POISONED_ID:
        raise RuntimeError("poisoned payload")
    return f"ok-{job.job_id}"


def error_record(job: FakeJob, exc: BaseException) -> str:
    """Module-level on_error hook, picklable alongside the runner."""
    return f"error-{job.job_id}:{type(exc).__name__}"


class FlakyRunner:
    """Raises the first ``fail_times`` calls per job, then succeeds."""

    def __init__(self, fail_times: int) -> None:
        self.fail_times = fail_times
        self.calls: dict[int, int] = {}

    def __call__(self, job: FakeJob) -> str:
        attempt = self.calls.get(job.job_id, 0)
        self.calls[job.job_id] = attempt + 1
        if attempt < self.fail_times:
            raise TimeoutError(f"transient fault on {job.job_id}")
        return f"recovered-{job.job_id}"


class TestFaultIsolation:
    def test_poisoned_job_becomes_error_record_serial(self):
        records = RunController(SerialBackend()).run(
            JOBS, poisoned_runner, on_error=error_record
        )
        assert records[POISONED_ID] == "error-3:RuntimeError"
        assert all(records[i] == f"ok-{i}" for i in range(6) if i != POISONED_ID)

    def test_poisoned_job_becomes_error_record_across_processes(self):
        # The wrapper runs inside the worker, so the exception never
        # crosses the process boundary and the other records all survive.
        records = RunController(ProcessPoolBackend(max_workers=2)).run(
            JOBS, poisoned_runner, on_error=error_record
        )
        assert records[POISONED_ID] == "error-3:RuntimeError"
        assert len(records) == len(JOBS)

    def test_without_on_error_the_exception_propagates(self):
        with pytest.raises(RuntimeError, match="poisoned"):
            RunController(SerialBackend()).run(JOBS, poisoned_runner)

    def test_guarded_runner_is_reusable_standalone(self):
        safe = guarded_runner(poisoned_runner, error_record)
        assert safe(FakeJob(POISONED_ID)) == "error-3:RuntimeError"
        assert safe(FakeJob(0)) == "ok-0"


class TestRetryPolicy:
    def test_invalid_attempts_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)

    def test_transient_fault_recovers_within_budget(self):
        runner = FlakyRunner(fail_times=2)
        records = RunController(
            SerialBackend(), retry=RetryPolicy(max_attempts=3)
        ).run(JOBS, runner, on_error=error_record)
        assert all(records[i] == f"recovered-{i}" for i in range(6))
        assert all(count == 3 for count in runner.calls.values())

    def test_retries_apply_without_on_error(self):
        runner = FlakyRunner(fail_times=2)
        records = RunController(
            SerialBackend(), retry=RetryPolicy(max_attempts=3)
        ).run(JOBS[:2], runner)
        assert records == {0: "recovered-0", 1: "recovered-1"}

    def test_exhausted_retries_propagate_without_on_error(self):
        runner = FlakyRunner(fail_times=5)
        with pytest.raises(TimeoutError):
            RunController(SerialBackend(), retry=RetryPolicy(max_attempts=2)).run(
                JOBS[:1], runner
            )
        assert runner.calls == {0: 2}

    def test_exhausted_retries_yield_error_record(self):
        runner = FlakyRunner(fail_times=5)
        records = RunController(
            SerialBackend(), retry=RetryPolicy(max_attempts=2)
        ).run(JOBS[:2], runner, on_error=error_record)
        assert records == {0: "error-0:TimeoutError", 1: "error-1:TimeoutError"}
        assert runner.calls == {0: 2, 1: 2}


class TestProgress:
    def test_progress_fires_per_record_in_completion_order(self):
        calls = []
        RunController(
            SerialBackend(),
            progress=lambda done, total, record: calls.append((done, total, record)),
        ).run(JOBS, poisoned_runner, on_error=error_record)
        assert [done for done, _, _ in calls] == list(range(1, 7))
        assert all(total == 6 for _, total, _ in calls)
        assert calls[0][2] == "ok-0"

    def test_journaled_jobs_count_as_done_without_firing(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "run.jsonl")
        journal.append(0, "ok-0")
        journal.append(1, "ok-1")
        calls = []
        RunController(
            SerialBackend(),
            journal=journal,
            progress=lambda done, total, record: calls.append((done, total)),
        ).run(JOBS, poisoned_runner, on_error=error_record)
        assert [done for done, _ in calls] == [3, 4, 5, 6]


class TestJournaling:
    def test_journaled_ids_are_skipped(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "run.jsonl")
        journal.append(POISONED_ID, "adopted-from-journal")
        ran = []

        def spying_runner(job):
            ran.append(job.job_id)
            return f"ok-{job.job_id}"

        records = RunController(SerialBackend(), journal=journal).run(
            JOBS, spying_runner, on_error=error_record
        )
        assert POISONED_ID not in ran
        assert records[POISONED_ID] == "adopted-from-journal"

    def test_unknown_journal_ids_are_ignored(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "run.jsonl")
        journal.append(999, "stale-entry")
        records = RunController(SerialBackend(), journal=journal).run(
            JOBS[:2], poisoned_runner, on_error=error_record
        )
        assert set(records) == {0, 1}

    def test_every_new_record_is_appended(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "run.jsonl")
        RunController(SerialBackend(), journal=journal).run(
            JOBS, poisoned_runner, on_error=error_record
        )
        assert len(journal.load()) == len(JOBS)
