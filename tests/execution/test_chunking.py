"""Tests for the shared chunk-size policies and the pool's adaptive opt-in."""

from __future__ import annotations

import time
from dataclasses import dataclass

import pytest

from repro.exceptions import ConfigurationError
from repro.execution import (
    DEFAULT_CHUNK_CAP,
    AdaptiveChunkPolicy,
    ProcessPoolBackend,
    SerialBackend,
    static_chunk_size,
)


@dataclass(frozen=True)
class FakeJob:
    job_id: int
    cost: float = 0.0


def echo_runner(job: FakeJob) -> str:
    if job.cost:
        time.sleep(job.cost)
    return f"record-{job.job_id}"


class TestStaticChunkSize:
    def test_matches_the_pool_default(self):
        backend = ProcessPoolBackend(max_workers=2)
        for n_jobs in (0, 1, 10, 100, 1000):
            assert static_chunk_size(n_jobs, 2) == backend.effective_chunk_size(
                n_jobs
            )

    def test_cap_applies_to_big_grids(self):
        assert static_chunk_size(1000, 2) == DEFAULT_CHUNK_CAP
        assert static_chunk_size(10, 2) == 1


class TestAdaptiveChunkPolicy:
    def test_starts_at_the_initial_chunk(self):
        assert AdaptiveChunkPolicy().chunk_size() == 1
        assert AdaptiveChunkPolicy(initial_chunk=8).chunk_size() == 8

    def test_fast_jobs_grow_the_chunk(self):
        policy = AdaptiveChunkPolicy(target_lease_s=0.25)
        policy.observe(n_jobs=4, elapsed_s=0.02)  # 5 ms/job -> 50 per lease
        assert policy.chunk_size() == 50

    def test_slow_jobs_shrink_back_to_one(self):
        policy = AdaptiveChunkPolicy(target_lease_s=0.25)
        policy.observe(n_jobs=1, elapsed_s=0.001)
        assert policy.chunk_size() > 1
        for _ in range(12):
            policy.observe(n_jobs=1, elapsed_s=2.0)
        assert policy.chunk_size() == 1

    def test_clamps_apply(self):
        policy = AdaptiveChunkPolicy(target_lease_s=0.25, max_chunk=16)
        policy.observe(n_jobs=100, elapsed_s=0.0001)
        assert policy.chunk_size() == 16
        floor = AdaptiveChunkPolicy(target_lease_s=0.25, min_chunk=3, initial_chunk=3)
        floor.observe(n_jobs=1, elapsed_s=100.0)
        assert floor.chunk_size() == 3

    def test_ewma_smooths_rather_than_tracks(self):
        policy = AdaptiveChunkPolicy(smoothing=0.5)
        policy.observe(n_jobs=1, elapsed_s=0.1)
        policy.observe(n_jobs=1, elapsed_s=0.3)
        assert policy.per_job_s == pytest.approx(0.2)

    def test_degenerate_observations_ignored(self):
        policy = AdaptiveChunkPolicy()
        policy.observe(n_jobs=0, elapsed_s=1.0)
        policy.observe(n_jobs=4, elapsed_s=0.0)
        policy.observe(n_jobs=4, elapsed_s=-1.0)
        assert policy.per_job_s is None
        assert policy.chunk_size() == 1

    def test_fresh_copies_configuration_not_state(self):
        policy = AdaptiveChunkPolicy(target_lease_s=0.5, max_chunk=32)
        policy.observe(n_jobs=1, elapsed_s=0.001)
        copy = policy.fresh()
        assert copy.per_job_s is None
        assert copy.target_lease_s == 0.5
        assert repr(copy) == repr(AdaptiveChunkPolicy(target_lease_s=0.5, max_chunk=32))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_lease_s": 0.0},
            {"min_chunk": 0},
            {"max_chunk": 0},
            {"initial_chunk": 100},
            {"smoothing": 0.0},
            {"smoothing": 1.5},
        ],
        ids=lambda kw: ",".join(kw),
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdaptiveChunkPolicy(**kwargs)

    def test_content_repr_and_pickle(self):
        import pickle

        policy = AdaptiveChunkPolicy(target_lease_s=0.5)
        assert "0x" not in repr(policy)
        assert repr(pickle.loads(pickle.dumps(policy))) == repr(policy)


class TestPoolAdaptiveChunking:
    def test_unknown_chunking_rejected(self):
        with pytest.raises(ConfigurationError, match="chunking"):
            ProcessPoolBackend(max_workers=2, chunking="dynamic")

    def test_default_stays_static(self):
        assert ProcessPoolBackend(max_workers=2).chunking == "static"

    def test_adaptive_records_match_static_bit_for_bit(self):
        jobs = tuple(FakeJob(job_id=i, cost=0.002) for i in range(24))
        serial = dict(SerialBackend().submit(jobs, echo_runner))
        static = dict(
            ProcessPoolBackend(max_workers=2).submit(jobs, echo_runner)
        )
        adaptive = dict(
            ProcessPoolBackend(max_workers=2, chunking="adaptive").submit(
                jobs, echo_runner
            )
        )
        assert adaptive == static == serial

    def test_policy_instance_is_accepted_as_configuration(self):
        policy = AdaptiveChunkPolicy(target_lease_s=0.1, max_chunk=8)
        backend = ProcessPoolBackend(max_workers=2, chunking=policy)
        jobs = tuple(FakeJob(job_id=i) for i in range(8))
        records = dict(backend.submit(jobs, echo_runner))
        assert records == {i: f"record-{i}" for i in range(8)}
        # The configuration instance itself stays unobserved: submissions
        # run on fresh copies, so reuse cannot leak timing state.
        assert policy.per_job_s is None

    def test_explicit_chunk_size_overrides_the_policy(self):
        backend = ProcessPoolBackend(max_workers=2, chunk_size=3, chunking="adaptive")
        assert backend.effective_chunk_size(100) == 3
