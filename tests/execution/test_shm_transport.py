"""Tests for the shared-memory columnar transport behind ProcessPoolBackend.

The transport is a pure transfer-path optimisation: for any payload, any
transport setting, and any worker count, ``submit()`` must stream the same
``(job_id, record)`` pairs it would over the pickle pipe — columnar arrays
value-exact, non-columnar records transparently falling back to pickle, and
crash recovery untouched.  Encoding itself is tested at the chunk level so
failure modes (object dtype, undersized payloads) are pinned explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.execution import (
    DEFAULT_MIN_SHM_BYTES,
    ProcessPoolBackend,
    SerialBackend,
    ShmChunk,
    WorkerCrash,
    decode_chunk,
    encode_chunk,
)
from repro.execution.shm import decode_payload, release_payload


@dataclass(frozen=True)
class ArrayJob:
    """Picklable job producing a deterministic columnar record."""

    job_id: int
    n_rows: int = 256
    kind: str = "dict"  # "dict" | "array" | "object" | "lethal"


def array_runner(job: ArrayJob):
    if job.kind == "lethal":
        os._exit(1)
    rng = np.random.default_rng(job.job_id)
    if job.kind == "array":
        return rng.standard_normal((job.n_rows, 3))
    if job.kind == "object":
        return {"label": f"job-{job.job_id}", "values": rng.random(job.n_rows)}
    return {
        "rows": np.arange(job.n_rows, dtype=np.int64),
        "currents": rng.standard_normal(job.n_rows),
        "flags": rng.random(job.n_rows) > 0.5,
    }


def records_equal(a, b) -> bool:
    if isinstance(a, np.ndarray):
        return (
            isinstance(b, np.ndarray)
            and a.dtype == b.dtype
            and np.array_equal(a, b)
        )
    if isinstance(a, dict):
        if not isinstance(b, dict) or a.keys() != b.keys():
            return False
        return all(records_equal(a[key], b[key]) for key in a)
    return a == b


class TestChunkCodec:
    def test_round_trip_preserves_values_and_dtypes(self):
        results = [(i, array_runner(ArrayJob(job_id=i))) for i in range(4)]
        chunk = encode_chunk(results, min_bytes=0)
        assert isinstance(chunk, ShmChunk)
        decoded = decode_chunk(chunk)
        assert [job_id for job_id, _ in decoded] == [0, 1, 2, 3]
        for (_, original), (_, rebuilt) in zip(results, decoded):
            assert records_equal(original, rebuilt)

    def test_bare_array_record_round_trips(self):
        original = np.arange(24, dtype=np.float32).reshape(4, 6)
        chunk = encode_chunk([(7, original)], min_bytes=0)
        [(job_id, rebuilt)] = decode_chunk(chunk)
        assert job_id == 7
        assert records_equal(original, rebuilt)

    def test_decode_unlinks_the_segment(self):
        chunk = encode_chunk([(0, np.zeros(64))], min_bytes=0)
        decode_chunk(chunk)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=chunk.shm_name)

    def test_object_dtype_refuses_shm(self):
        record = {"values": np.array(["a", object()], dtype=object)}
        assert encode_chunk([(0, record)], min_bytes=0) is None

    def test_non_columnar_records_refuse_shm(self):
        assert encode_chunk([(0, "a plain string")], min_bytes=0) is None
        assert encode_chunk([(0, {"x": 1.5})], min_bytes=0) is None
        assert encode_chunk([(0, {})], min_bytes=0) is None

    def test_undersized_payload_refuses_shm(self):
        tiny = [(0, np.zeros(4))]
        assert encode_chunk(tiny, min_bytes=DEFAULT_MIN_SHM_BYTES) is None
        forced = encode_chunk(tiny, min_bytes=0)
        assert isinstance(forced, ShmChunk)
        decode_chunk(forced)

    def test_release_payload_frees_unconsumed_chunk(self):
        chunk = encode_chunk([(0, np.zeros(64))], min_bytes=0)
        release_payload(chunk)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=chunk.shm_name)
        release_payload(chunk)  # second call is a no-op

    def test_decode_payload_passes_lists_through(self):
        results = [(0, "record")]
        assert decode_payload(results) is results


JOBS = tuple(ArrayJob(job_id=i) for i in range(8))


class TestTransportEquivalence:
    def reference(self, jobs):
        return dict(SerialBackend().submit(jobs, array_runner))

    @pytest.mark.parametrize("transport", ["auto", "pickle", "shared-memory"])
    def test_dict_records_identical_across_transports(self, transport):
        backend = ProcessPoolBackend(max_workers=2, transport=transport)
        records = dict(backend.submit(JOBS, array_runner))
        reference = self.reference(JOBS)
        assert records.keys() == reference.keys()
        for job_id in reference:
            assert records_equal(records[job_id], reference[job_id])

    def test_bare_array_records_over_shm(self):
        jobs = tuple(ArrayJob(job_id=i, kind="array") for i in range(6))
        backend = ProcessPoolBackend(max_workers=2, transport="shared-memory")
        records = dict(backend.submit(jobs, array_runner))
        reference = self.reference(jobs)
        for job_id in reference:
            assert records_equal(records[job_id], reference[job_id])

    def test_object_records_fall_back_to_pickle(self):
        jobs = tuple(ArrayJob(job_id=i, kind="object") for i in range(6))
        backend = ProcessPoolBackend(max_workers=2, transport="shared-memory")
        records = dict(backend.submit(jobs, array_runner))
        reference = self.reference(jobs)
        for job_id in reference:
            assert records_equal(records[job_id], reference[job_id])

    def test_worker_crash_recovery_under_shm(self):
        jobs = tuple(
            ArrayJob(job_id=i, kind="lethal" if i == 3 else "dict")
            for i in range(7)
        )
        backend = ProcessPoolBackend(
            max_workers=2, chunk_size=2, transport="shared-memory"
        )
        records = dict(backend.submit(jobs, array_runner))
        assert set(records) == {job.job_id for job in jobs}
        assert isinstance(records[3], WorkerCrash)
        reference = self.reference(tuple(j for j in jobs if j.kind == "dict"))
        for job_id, record in reference.items():
            assert records_equal(records[job_id], record)

    def test_abandoned_stream_leaks_no_segments(self):
        def segments() -> set:
            if not os.path.isdir("/dev/shm"):
                return set()
            return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}

        before = segments()
        backend = ProcessPoolBackend(
            max_workers=2, chunk_size=2, transport="shared-memory"
        )
        stream = backend.submit(JOBS, array_runner)
        next(stream)
        stream.close()  # abandon mid-iteration; teardown must drain segments
        assert segments() - before == set()


class TestTransportConfig:
    def test_invalid_transport_rejected(self):
        with pytest.raises(Exception):
            ProcessPoolBackend(max_workers=2, transport="carrier-pigeon")

    def test_negative_min_bytes_rejected(self):
        with pytest.raises(Exception):
            ProcessPoolBackend(max_workers=2, shm_min_bytes=-1)

    def test_transport_property_reflects_setting(self):
        backend = ProcessPoolBackend(max_workers=2, transport="pickle")
        assert backend.transport == "pickle"
