"""Tests for the JSONL checkpoint journal, including kill-mid-write tails."""

from __future__ import annotations

import json

import pytest

from repro.execution import CheckpointJournal


class TestAppendLoad:
    def test_missing_file_loads_empty(self, tmp_path):
        assert CheckpointJournal(tmp_path / "nope.jsonl").load() == {}

    def test_round_trip(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "run.jsonl")
        journal.append(3, {"value": 1.25})
        journal.append(1, {"value": float("inf")})
        loaded = journal.load()
        assert loaded == {3: {"value": 1.25}, 1: {"value": float("inf")}}

    def test_one_line_per_record(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = CheckpointJournal(path)
        for i in range(4):
            journal.append(i, {"i": i})
        lines = path.read_text().splitlines()
        assert len(lines) == 4
        assert all(json.loads(line)["job_id"] == i for i, line in enumerate(lines))

    def test_parent_directories_created(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "deep" / "er" / "run.jsonl")
        journal.append(0, {"ok": True})
        assert journal.load() == {0: {"ok": True}}

    def test_duplicate_job_id_last_wins(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "run.jsonl")
        journal.append(0, {"attempt": 1})
        journal.append(0, {"attempt": 2})
        assert journal.load() == {0: {"attempt": 2}}

    def test_custom_serializers(self, tmp_path):
        journal = CheckpointJournal(
            tmp_path / "run.jsonl",
            serialize=lambda record: {"doubled": record * 2},
            deserialize=lambda data: data["doubled"] // 2,
        )
        journal.append(5, 21)
        assert journal.load() == {5: 21}

    def test_float_fidelity(self, tmp_path):
        # JSON serialises floats by shortest repr, which round-trips exactly;
        # this is what makes resumed campaigns bit-identical.
        ugly = 0.1 + 0.2
        journal = CheckpointJournal(tmp_path / "run.jsonl")
        journal.append(0, {"x": ugly})
        assert journal.load()[0]["x"] == ugly


class TestKilledRunTails:
    """A killed run leaves a strict prefix plus at most one mangled line."""

    @pytest.mark.parametrize(
        "tail",
        [
            '{"job_id": 2, "rec',  # cut mid-key
            '{"job_id": 2, "record": {"x": 1',  # cut mid-value
            '{"record": {"x": 1}}',  # missing job_id
            "not json at all",
            '{"job_id": "also-not-an-int", "record": {}}',
        ],
    )
    def test_truncated_tail_keeps_prefix(self, tmp_path, tail):
        path = tmp_path / "run.jsonl"
        journal = CheckpointJournal(path)
        journal.append(0, {"x": 1})
        journal.append(1, {"x": 2})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(tail)
        assert journal.load() == {0: {"x": 1}, 1: {"x": 2}}

    def test_midfile_corruption_refuses_to_heal(self, tmp_path):
        # Only the FINAL line may be a kill artefact.  Junk *followed by*
        # records means bit rot or an incompatible writer — healing would
        # silently delete the valid records after it, so load() refuses.
        from repro.exceptions import ConfigurationError

        path = tmp_path / "run.jsonl"
        journal = CheckpointJournal(path)
        journal.append(0, {"x": 1})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("corrupted by cosmic ray\n")
            handle.write(json.dumps({"job_id": 2, "record": {"x": 3}}) + "\n")
        with pytest.raises(ConfigurationError, match="corrupt mid-file"):
            CheckpointJournal(path).load()

    def test_append_refuses_midfile_corruption_like_load_does(self, tmp_path):
        # The write path shares load()'s policy: junk followed by valid
        # records is corruption to refuse, not a tail to truncate away.
        from repro.exceptions import ConfigurationError

        path = tmp_path / "run.jsonl"
        journal = CheckpointJournal(path)
        journal.append(0, {"x": 1})
        journal.load()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("corrupted by cosmic ray\n")
            handle.write(json.dumps({"job_id": 2, "record": {"x": 3}}) + "\n")
        with pytest.raises(ConfigurationError, match="corrupt mid-file"):
            journal.append(3, {"x": 4})

    def test_append_adopts_another_writers_records_instead_of_truncating(
        self, tmp_path
    ):
        # Two instances on one file: A's cached prefix going stale must not
        # let A truncate away B's durable, valid record.
        path = tmp_path / "run.jsonl"
        a = CheckpointJournal(path)
        a.append(0, {"x": 1})
        a.load()
        b = CheckpointJournal(path)
        b.append(1, {"x": 2})
        a.append(2, {"x": 3})
        assert CheckpointJournal(path).load() == {
            0: {"x": 1},
            1: {"x": 2},
            2: {"x": 3},
        }

    def test_parsable_tail_without_newline_is_truncated(self, tmp_path):
        # A kill can cut a line exactly before its trailing newline,
        # leaving JSON that *parses* — accepting it would let the next
        # append glue onto it and corrupt the file for every later load.
        path = tmp_path / "run.jsonl"
        journal = CheckpointJournal(path)
        journal.append(0, {"x": 1})
        journal.append(1, {"x": 2})
        path.write_bytes(path.read_bytes()[:-1])  # drop the final newline
        assert journal.load() == {0: {"x": 1}}
        journal.append(2, {"x": 3})
        assert CheckpointJournal(path).load() == {0: {"x": 1}, 2: {"x": 3}}

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = CheckpointJournal(path)
        journal.append(0, {"x": 1})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n\n")
        journal.append(1, {"x": 2})
        assert set(journal.load()) == {0, 1}

    def test_append_after_load_heals_the_truncated_tail(self, tmp_path):
        # The resumed run's append cuts the file back to the valid prefix
        # before writing, so records appended after a mangled tail are
        # never shadowed by it on later loads (multi-crash resume safety).
        path = tmp_path / "run.jsonl"
        journal = CheckpointJournal(path)
        journal.append(0, {"x": 1})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"job_id": 1, "rec')
        assert journal.load() == {0: {"x": 1}}
        journal.append(1, {"x": 2})
        journal.append(2, {"x": 3})
        # A fresh reader (new instance, no prior load) sees everything.
        assert CheckpointJournal(path).load() == {
            0: {"x": 1},
            1: {"x": 2},
            2: {"x": 3},
        }
        lines = path.read_text().splitlines()
        assert len(lines) == 3  # the mangled fragment is gone
        assert all(json.loads(line) for line in lines)

    def test_append_without_prior_load_still_heals(self, tmp_path):
        # A fresh instance appending to an existing file scans it first,
        # so the healing guarantee holds even for append-without-load use
        # (the engine always loads first; direct API users may not).
        path = tmp_path / "run.jsonl"
        journal = CheckpointJournal(path)
        journal.append(0, {"x": 1})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"job_id": 1, "rec\n')
        blind = CheckpointJournal(path)
        blind.append(2, {"x": 3})
        assert CheckpointJournal(path).load() == {0: {"x": 1}, 2: {"x": 3}}


class TestFingerprint:
    def test_header_written_once_and_checked(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = CheckpointJournal(path, fingerprint="abc123")
        journal.append(0, {"x": 1})
        journal.append(1, {"x": 2})
        lines = path.read_text().splitlines()
        assert json.loads(lines[0]) == {"fingerprint": "abc123"}
        assert len(lines) == 3
        assert journal.load() == {0: {"x": 1}, 1: {"x": 2}}

    def test_mismatched_fingerprint_rejected(self, tmp_path):
        from repro.exceptions import ConfigurationError

        path = tmp_path / "run.jsonl"
        CheckpointJournal(path, fingerprint="campaign-a").append(0, {"x": 1})
        with pytest.raises(ConfigurationError, match="different run"):
            CheckpointJournal(path, fingerprint="campaign-b").load()

    def test_reader_without_fingerprint_skips_header(self, tmp_path):
        path = tmp_path / "run.jsonl"
        CheckpointJournal(path, fingerprint="abc").append(0, {"x": 1})
        assert CheckpointJournal(path).load() == {0: {"x": 1}}

    def test_headerless_journal_accepted_by_fingerprinted_reader(self, tmp_path):
        path = tmp_path / "run.jsonl"
        CheckpointJournal(path).append(0, {"x": 1})
        assert CheckpointJournal(path, fingerprint="abc").load() == {0: {"x": 1}}
