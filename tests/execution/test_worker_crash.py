"""Tests for worker-death recovery: hard crashes, markers, crash injection."""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import pytest

from repro.exceptions import ConfigurationError, WorkerCrashError
from repro.execution import (
    ProcessPoolBackend,
    RetryPolicy,
    RunController,
    SerialBackend,
    WorkerCrash,
    crash_message,
)
from repro.faults import WorkerCrashFault, inject_worker_faults


@dataclass(frozen=True)
class CrashyJob:
    """Picklable job that hard-kills its worker when ``lethal`` is set."""

    job_id: int
    lethal: bool = False


def crashy_runner(job: CrashyJob) -> str:
    if job.lethal:
        os._exit(1)  # hard death: no exception, no cleanup, no record
    return f"record-{job.job_id}"


def failure_record(job: CrashyJob, error: BaseException) -> str:
    return f"error-{job.job_id}:{error}"


JOBS = tuple(CrashyJob(job_id=i, lethal=(i == 4)) for i in range(9))


class TestProcessPoolCrashRecovery:
    def test_survivors_all_stream_despite_hard_crash(self):
        backend = ProcessPoolBackend(max_workers=2, chunk_size=2)
        records = dict(backend.submit(JOBS, crashy_runner))
        assert set(records) == {job.job_id for job in JOBS}
        for job in JOBS:
            if job.lethal:
                continue
            assert records[job.job_id] == f"record-{job.job_id}"

    def test_crashed_job_yields_a_marker_not_an_exception(self):
        backend = ProcessPoolBackend(max_workers=2, chunk_size=2)
        records = dict(backend.submit(JOBS, crashy_runner))
        marker = records[4]
        assert isinstance(marker, WorkerCrash)
        assert marker.job_id == 4
        assert marker.message == crash_message(4)

    def test_multiple_crashes_are_each_attributed(self):
        jobs = tuple(CrashyJob(job_id=i, lethal=i in (1, 5)) for i in range(7))
        backend = ProcessPoolBackend(max_workers=2, chunk_size=3)
        records = dict(backend.submit(jobs, crashy_runner))
        assert isinstance(records[1], WorkerCrash)
        assert isinstance(records[5], WorkerCrash)
        assert records[6] == "record-6"


class TestControllerCrashConversion:
    def test_marker_converted_through_on_error(self):
        controller = RunController(ProcessPoolBackend(max_workers=2, chunk_size=2))
        records = controller.run(JOBS, crashy_runner, on_error=failure_record)
        assert records[4] == f"error-4:{crash_message(4)}"
        assert records[0] == "record-0"

    def test_marker_raises_without_on_error(self):
        controller = RunController(ProcessPoolBackend(max_workers=2, chunk_size=2))
        with pytest.raises(WorkerCrashError, match="job 4"):
            controller.run(JOBS, crashy_runner)


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs", [{"backoff_s": -1.0}, {"max_elapsed_s": -0.5}]
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_defaults_do_not_wait(self):
        policy = RetryPolicy()
        assert policy.backoff_s == 0.0
        assert policy.max_elapsed_s == 0.0

    def test_backoff_waits_between_attempts(self):
        calls: list[float] = []

        def flaky(job):
            calls.append(time.monotonic())
            if len(calls) < 3:
                raise RuntimeError("transient")
            return "ok"

        controller = RunController(
            SerialBackend(), retry=RetryPolicy(max_attempts=3, backoff_s=0.05)
        )
        records = controller.run((CrashyJob(0),), flaky)
        assert records[0] == "ok"
        # Doubling backoff: >=0.05s then >=0.1s between the attempts.
        assert calls[1] - calls[0] >= 0.05
        assert calls[2] - calls[1] >= 0.1

    def test_max_elapsed_cuts_the_retry_budget(self):
        attempts: list[int] = []

        def always_fails(job):
            attempts.append(len(attempts))
            time.sleep(0.05)
            raise RuntimeError("permanent")

        controller = RunController(
            SerialBackend(),
            retry=RetryPolicy(max_attempts=50, max_elapsed_s=0.1),
        )
        records = controller.run(
            (CrashyJob(0),), always_fails, on_error=failure_record
        )
        assert records[0].startswith("error-0:")
        assert len(attempts) < 50


class TestInProcessCrashInjection:
    def test_no_worker_models_is_a_no_op(self):
        inject_worker_faults(0, (), seed=7)  # must not raise

    def test_surviving_job_returns_normally(self):
        model = WorkerCrashFault(rate=0.3)
        survivors = [
            job_id
            for job_id in range(32)
            if not _crashes_in_process(job_id, model, seed=7)
        ]
        assert survivors  # rate 0.3 leaves most jobs alive

    def test_crash_raises_canonical_message_in_process(self):
        model = WorkerCrashFault(rate=1.0)
        with pytest.raises(WorkerCrashError) as err:
            inject_worker_faults(11, (model,), seed=7)
        assert str(err.value) == crash_message(11)

    def test_crash_decision_is_seed_deterministic(self):
        model = WorkerCrashFault(rate=0.5)
        first = [_crashes_in_process(j, model, seed=3) for j in range(32)]
        second = [_crashes_in_process(j, model, seed=3) for j in range(32)]
        other = [_crashes_in_process(j, model, seed=4) for j in range(32)]
        assert first == second
        assert first != other
        assert any(first) and not all(first)


def _crashes_in_process(job_id, model, seed) -> bool:
    try:
        inject_worker_faults(job_id, (model,), seed=seed)
    except WorkerCrashError:
        return True
    return False
