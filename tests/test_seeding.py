"""Tests for spawned-seed derivation across child runs.

The old scheme derived child seeds arithmetically (``seed + pair_index`` in
the array extractor, ``seed + 1`` in the auto-tuning workflow), which makes
neighbouring root seeds reuse each other's noise streams wholesale.  These
tests pin the :func:`repro.seeding.spawn_seeds` scheme: children are
independent of each other, of other roots' children, and deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ArrayVirtualGateExtractor
from repro.instrument.measurement import DeviceBackend
from repro.physics import DotArrayDevice, standard_lab_noise
from repro.seeding import as_seed_sequence, spawn_seeds


class TestSpawnSeeds:
    def test_none_root_stays_unseeded(self):
        assert spawn_seeds(None, 3) == (None, None, None)

    def test_children_are_seed_sequences(self):
        children = spawn_seeds(7, 4)
        assert len(children) == 4
        assert all(isinstance(c, np.random.SeedSequence) for c in children)

    def test_deterministic_for_integer_roots(self):
        first = spawn_seeds(7, 3)
        second = spawn_seeds(7, 3)
        for a, b in zip(first, second):
            assert a.entropy == b.entropy and a.spawn_key == b.spawn_key
            assert np.random.default_rng(a).random() == np.random.default_rng(b).random()

    def test_children_produce_distinct_streams(self):
        streams = [
            np.random.default_rng(c).random(8).tolist() for c in spawn_seeds(7, 4)
        ]
        assert len({tuple(s) for s in streams}) == 4

    def test_neighbouring_roots_do_not_share_children(self):
        # The failure mode of seed + i derivation: root 7's child 1 equalled
        # root 8's child 0.  Spawned children never collide across roots.
        children_7 = [np.random.default_rng(c).random(8).tolist() for c in spawn_seeds(7, 3)]
        children_8 = [np.random.default_rng(c).random(8).tolist() for c in spawn_seeds(8, 3)]
        assert not ({tuple(s) for s in children_7} & {tuple(s) for s in children_8})

    def test_accepts_seed_sequence_root(self):
        root = np.random.SeedSequence(5)
        children = spawn_seeds(root, 2)
        assert all(isinstance(c, np.random.SeedSequence) for c in children)

    def test_seed_sequence_root_is_not_consumed(self):
        # Repeated calls with the same SeedSequence must return the same
        # children (the caller's spawn counter is neither read nor advanced);
        # this is what keeps n_workers=1 and n_workers=N runs bit-identical
        # when the user seeds with a SeedSequence instead of an int.
        root = np.random.SeedSequence(21)
        first = spawn_seeds(root, 2)
        second = spawn_seeds(root, 2)
        for a, b in zip(first, second):
            assert a.spawn_key == b.spawn_key
            assert np.random.default_rng(a).random() == np.random.default_rng(b).random()
        assert root.n_children_spawned == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)

    def test_as_seed_sequence_passthrough(self):
        root = np.random.SeedSequence(9)
        assert as_seed_sequence(root) is root
        assert as_seed_sequence(9).entropy == 9


def _noise_field(seed, shape=(24, 24)) -> np.ndarray:
    device = DotArrayDevice.double_dot(cross_coupling=(0.25, 0.22))
    backend = DeviceBackend(
        device,
        x_voltages=np.linspace(0.0, 0.05, shape[1]),
        y_voltages=np.linspace(0.0, 0.05, shape[0]),
        noise=standard_lab_noise(),
        seed=seed,
    )
    backend.current(0, 0)  # force noise-field generation
    return backend._noise_field


class TestChildStreamIndependence:
    def test_array_pairs_use_independent_noise(self):
        # Two neighbouring pairs of the same run see unrelated noise fields.
        seed_a, seed_b = spawn_seeds(21, 2)
        field_a = _noise_field(seed_a)
        field_b = _noise_field(seed_b)
        assert not np.array_equal(field_a, field_b)

    def test_neighbouring_runs_use_independent_noise(self):
        # Pair 1 of run seed=21 must not reuse pair 0 of run seed=22 (the
        # old seed + pair_index overlap).
        field_21_1 = _noise_field(spawn_seeds(21, 2)[1])
        field_22_0 = _noise_field(spawn_seeds(22, 1)[0])
        assert not np.array_equal(field_21_1, field_22_0)

    def test_array_extraction_reproducible(self):
        device = DotArrayDevice.linear_array(n_dots=3)
        first = ArrayVirtualGateExtractor(
            resolution=63, seed=21, noise=standard_lab_noise()
        ).extract(device)
        second = ArrayVirtualGateExtractor(
            resolution=63, seed=21, noise=standard_lab_noise()
        ).extract(device)
        assert np.array_equal(
            first.virtualization.matrix, second.virtualization.matrix
        )
        assert first.total_probes == second.total_probes
