"""Tests of the public package surface (imports, __all__, version)."""

from __future__ import annotations

import importlib

import pytest

import repro


SUBPACKAGES = [
    "repro.physics",
    "repro.instrument",
    "repro.datasets",
    "repro.core",
    "repro.baseline",
    "repro.analysis",
    "repro.visualization",
]


class TestTopLevelApi:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    def test_headline_classes_exported(self):
        assert repro.FastVirtualGateExtractor is not None
        assert repro.HoughBaselineExtractor is not None
        assert repro.DotArrayDevice is not None
        assert repro.ExperimentSession is not None

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"

    def test_exceptions_form_one_hierarchy(self):
        from repro import exceptions

        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
                assert issubclass(obj, exceptions.ReproError)

    def test_docstring_example_runs(self):
        # The usage sketched in the package docstring must actually work.
        device = repro.DotArrayDevice.double_dot(cross_coupling=(0.25, 0.22))
        csd = repro.CSDSimulator(device).simulate(resolution=48, seed=1)
        session = repro.ExperimentSession.from_csd(csd)
        result = repro.FastVirtualGateExtractor().extract(session)
        assert result.success
        assert 0 < result.probe_stats.probe_fraction < 1
