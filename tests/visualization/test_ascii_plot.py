"""Tests for ASCII rendering of diagrams and probe maps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.visualization import (
    DEFAULT_RAMP,
    ascii_csd,
    ascii_heatmap,
    ascii_probe_map,
    side_by_side,
)


class TestAsciiHeatmap:
    def test_dimensions_respect_limits(self):
        data = np.random.default_rng(0).uniform(size=(100, 200))
        text = ascii_heatmap(data, max_rows=25, max_cols=60)
        lines = text.split("\n")
        assert len(lines) <= 25
        assert all(len(line) <= 60 for line in lines)

    def test_bright_maps_to_last_ramp_char(self):
        data = np.zeros((10, 10))
        data[0, 0] = 1.0  # row 0 is printed last (bottom)
        text = ascii_heatmap(data, max_rows=10, max_cols=10)
        lines = text.split("\n")
        assert lines[-1][0] == DEFAULT_RAMP[-1]
        assert lines[0][-1] == DEFAULT_RAMP[0]

    def test_constant_image_renders(self):
        text = ascii_heatmap(np.full((5, 5), 2.0))
        assert len(text.split("\n")) == 5

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            ascii_heatmap(np.zeros(10))
        with pytest.raises(ConfigurationError):
            ascii_heatmap(np.zeros((5, 5)), max_rows=0)
        with pytest.raises(ConfigurationError):
            ascii_heatmap(np.zeros((5, 5)), ramp="x")


class TestProbeMap:
    def test_marks_probed_pixels(self):
        text = ascii_probe_map((10, 10), [(0, 0), (9, 9)], max_rows=10, max_cols=10)
        lines = text.split("\n")
        assert lines[-1][0] == "o"  # row 0 at the bottom
        assert lines[0][9] == "o"
        assert lines[5][5] == "."

    def test_accepts_boolean_mask(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[3, 4] = True
        text = ascii_probe_map((10, 10), mask, max_rows=10, max_cols=10)
        assert text.split("\n")[10 - 1 - 3][4] == "o"

    def test_out_of_range_points_ignored(self):
        text = ascii_probe_map((5, 5), [(99, 99)], max_rows=5, max_cols=5)
        assert "o" not in text


class TestAsciiCsd:
    def test_renders_and_overlays_points(self, clean_csd):
        text = ascii_csd(clean_csd, max_rows=30, max_cols=60, overlay_points=[(5, 5), (40, 40)])
        assert "+" in text
        assert len(text.split("\n")) <= 30

    def test_without_overlay(self, clean_csd):
        assert "+" not in ascii_csd(clean_csd, max_rows=20, max_cols=40)


class TestSideBySide:
    def test_concatenates_blocks(self):
        left = "aa\nbb"
        right = "cc\ndd\nee"
        combined = side_by_side(left, right, gap=2, titles=("L", "R"))
        lines = combined.split("\n")
        assert lines[0].startswith("L")
        assert "R" in lines[0]
        assert len(lines) == 4  # title + 3 content rows
        assert "cc" in lines[1]
