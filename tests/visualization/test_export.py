"""Tests for CSV / NPZ export helpers."""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.visualization import export_points_csv, export_probe_map, export_table_csv


class TestTableCsv:
    def test_writes_header_and_rows(self, tmp_path):
        path = export_table_csv(tmp_path / "t.csv", ["a", "b"], [[1, 2], [3, 4]])
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2"]
        assert len(rows) == 3

    def test_creates_directories(self, tmp_path):
        path = export_table_csv(tmp_path / "x" / "y" / "t.csv", ["a"], [[1]])
        assert path.exists()

    def test_row_length_mismatch_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            export_table_csv(tmp_path / "t.csv", ["a", "b"], [[1]])

    def test_empty_headers_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            export_table_csv(tmp_path / "t.csv", [], [])


class TestPointsCsv:
    def test_round_trip(self, tmp_path):
        path = export_points_csv(tmp_path / "p.csv", [(1, 2), (3, 4)])
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows == [["row", "col"], ["1", "2"], ["3", "4"]]


class TestProbeMapNpz:
    def test_round_trip(self, clean_csd, tmp_path):
        mask = np.zeros(clean_csd.shape, dtype=bool)
        mask[10, 10] = True
        path = export_probe_map(tmp_path / "probe.npz", clean_csd, mask)
        with np.load(path) as archive:
            assert np.array_equal(archive["probe_mask"], mask)
            assert np.array_equal(archive["data"], clean_csd.data)
            assert archive["x_voltages"].shape == clean_csd.x_voltages.shape

    def test_shape_mismatch_rejected(self, clean_csd, tmp_path):
        with pytest.raises(ConfigurationError):
            export_probe_map(tmp_path / "probe.npz", clean_csd, np.zeros((2, 2), dtype=bool))
