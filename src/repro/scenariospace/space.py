"""Parametric scenario spaces and their deterministic sampling.

A :class:`ScenarioSpace` is a distribution over
:class:`~repro.scenarios.catalog.LabScenario` objects, factored along the
axes the tuner is known to be sensitive to: which device is bonded in, how
loud the sensor noise is, how fast the device drifts, and how often probes
fault.  A draw is a complete, runnable scenario plus the parameter vector
that produced it — the vector is what the miner perturbs and the distiller
shrinks, the scenario is what a campaign executes.

Sampling discipline mirrors the campaign grid: the caller's seed becomes a
:class:`~numpy.random.SeedSequence` root, every draw gets its own spawned
child, and each child splits again into a parameter stream and a session
seed.  ``sample(n, seed)`` is therefore a pure function of ``(space, n,
seed)`` — bit-identical across calls, processes, and machines — and two
different draws never share randomness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

import numpy as np

from ..campaign.engine import TuningCampaign
from ..campaign.grid import CampaignJob, noise_for_scale
from ..campaign.results import CampaignResult
from ..exceptions import ConfigurationError
from ..instrument.resilience import ProbeRetryPolicy
from ..faults.models import TransientReadFault
from ..physics.drift import DeviceDrift
from ..scenarios.catalog import LabScenario, temporary_scenarios
from ..scenarios.devices import DeviceSpec
from ..seeding import spawn_seeds
from .distributions import Choice, Fixed, LogUniform, Sampler, Uniform

#: The numeric axes the adversarial miner may stress and the distiller
#: shrinks, in the deterministic order both walk them.
SEVERITY_AXES: tuple[str, ...] = ("noise_scale", "drift_mv_per_hour", "fault_rate")

#: Hard cap on a sampled/stressed per-probe fault rate.  Fault models
#: require rates in [0, 1], and a rate of 1 deadlocks every retry budget;
#: capping (rather than rejecting) keeps aggressively-stressed spaces
#: drawable while still representing "almost every probe faults".
MAX_FAULT_RATE = 0.9


@dataclass(frozen=True)
class ScenarioParams:
    """The parameter vector behind one sampled scenario.

    This is the miner's and distiller's unit of currency: small enough to
    mutate and bisect axis-by-axis, complete enough to rebuild the exact
    scenario via :func:`scenario_from_params`.  Round-trips through strict
    JSON so mined reproducers can live in golden fixtures.
    """

    device: DeviceSpec = field(default_factory=DeviceSpec)
    noise_scale: float = 1.0
    drift_mv_per_hour: float = 0.0
    fault_rate: float = 0.0
    time_dependent: bool = True

    def __post_init__(self) -> None:
        for name in ("noise_scale", "drift_mv_per_hour", "fault_rate"):
            value = getattr(self, name)
            if not math.isfinite(value) or value < 0:
                raise ConfigurationError(
                    f"{name} must be finite and non-negative, got {value!r}"
                )
        if self.fault_rate > 1.0:
            raise ConfigurationError(
                f"fault_rate must lie in [0, 1], got {self.fault_rate!r}"
            )

    def with_axis(self, axis: str, value: float) -> "ScenarioParams":
        """A copy with one severity axis replaced (distiller primitive)."""
        if axis not in SEVERITY_AXES:
            raise ConfigurationError(
                f"unknown severity axis {axis!r}; known: {SEVERITY_AXES}"
            )
        return replace(self, **{axis: float(value)})

    def as_dict(self) -> dict:
        """JSON-native view (see :meth:`from_dict`)."""
        return {
            "device": {
                "factory": self.device.factory,
                "kwargs": [[name, value] for name, value in self.device.kwargs],
            },
            "noise_scale": self.noise_scale,
            "drift_mv_per_hour": self.drift_mv_per_hour,
            "fault_rate": self.fault_rate,
            "time_dependent": self.time_dependent,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioParams":
        """Rebuild a parameter vector from :meth:`as_dict` output."""
        device = data["device"]
        return cls(
            device=DeviceSpec(
                factory=device["factory"],
                kwargs=tuple((name, value) for name, value in device["kwargs"]),
            ),
            noise_scale=float(data["noise_scale"]),
            drift_mv_per_hour=float(data["drift_mv_per_hour"]),
            fault_rate=float(data["fault_rate"]),
            time_dependent=bool(data["time_dependent"]),
        )


def scenario_from_params(name: str, params: ScenarioParams) -> LabScenario:
    """Materialise the :class:`LabScenario` a parameter vector describes.

    The mapping is intentionally boring — the same standard lab noise mix
    the campaign noise axis uses, scaled; operating-point drift at the
    requested rate; independent per-probe read faults under the default
    retry policy — so a parameter vector's severity is comparable across
    spaces, miners, and fixture vintages.
    """
    noise = noise_for_scale(params.noise_scale)
    drift = (
        DeviceDrift(operating_point_mv_per_hour=params.drift_mv_per_hour)
        if params.drift_mv_per_hour > 0
        else None
    )
    faults = (
        TransientReadFault(rate=min(params.fault_rate, MAX_FAULT_RATE))
        if params.fault_rate > 0
        else None
    )
    return LabScenario(
        name=name,
        story=(
            f"sampled: noise x{params.noise_scale:g}, "
            f"drift {params.drift_mv_per_hour:g} mV/h, "
            f"fault rate {params.fault_rate:g}"
        ),
        device=params.device,
        noise=noise,
        drift=drift,
        time_dependent_noise=params.time_dependent and noise is not None,
        faults=faults,
        probe_retry=ProbeRetryPolicy() if faults is not None else None,
    )


@dataclass(frozen=True)
class ScenarioDraw:
    """One sample from a space: parameters, scenario, and session seed."""

    index: int
    space: str
    params: ScenarioParams
    scenario: LabScenario
    seed: np.random.SeedSequence

    @property
    def seed_entropy(self) -> tuple:
        """The seed's ``(entropy, spawn_key)`` identity, for fixtures."""
        return (self.seed.entropy, tuple(self.seed.spawn_key))


@dataclass(frozen=True)
class ScenarioSpace:
    """A seeded distribution over lab scenarios.

    Attributes
    ----------
    name:
        Short identifier; drawn scenarios are named ``{name}-{index:04d}``.
    device:
        Sampler yielding :class:`~repro.scenarios.devices.DeviceSpec`
        recipes — typically a :class:`~repro.scenariospace.distributions.Choice`
        spanning small doubles up to 6–8 dot chains and 2-D lattices.
    noise_scale:
        Sampler over multiples of the standard lab noise mix (the campaign
        noise axis); 0 silences the sensor.
    drift_mv_per_hour:
        Sampler over operating-point drift rates.
    fault_rate:
        Sampler over per-probe transient-read fault probabilities.
    time_dependent:
        Whether drawn scenarios evaluate noise at per-probe timestamps.
    """

    name: str
    device: Sampler = Fixed(DeviceSpec())
    noise_scale: Sampler = LogUniform(0.25, 4.0)
    drift_mv_per_hour: Sampler = Uniform(0.0, 30.0)
    fault_rate: Sampler = Fixed(0.0)
    time_dependent: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a scenario space needs a non-empty name")
        for axis in SEVERITY_AXES:
            sampler = getattr(self, axis)
            low, high = sampler.support  # raises for categorical samplers
            if low < 0:
                raise ConfigurationError(
                    f"{axis} sampler must have non-negative support, "
                    f"got [{low}, {high}]"
                )

    # ------------------------------------------------------------------
    def draw_params(self, rng: np.random.Generator) -> ScenarioParams:
        """One parameter vector; axes are drawn in fixed declaration order."""
        device = self.device.draw(rng)
        if not isinstance(device, DeviceSpec):
            raise ConfigurationError(
                f"the device sampler must draw DeviceSpec values, "
                f"got {type(device).__name__}"
            )
        return ScenarioParams(
            device=device,
            noise_scale=self.noise_scale.draw(rng),
            drift_mv_per_hour=self.drift_mv_per_hour.draw(rng),
            fault_rate=min(self.fault_rate.draw(rng), MAX_FAULT_RATE),
            time_dependent=self.time_dependent,
        )

    def sample(
        self, n: int, seed: int | np.random.SeedSequence = 0
    ) -> tuple[ScenarioDraw, ...]:
        """Draw ``n`` scenarios, bit-reproducibly.

        The seed is rebuilt into a root :class:`~numpy.random.SeedSequence`
        and every draw gets its own spawned child (so draws are pairwise
        independent and the sequence is prefix-stable: draw ``i`` of
        ``sample(10, s)`` equals draw ``i`` of ``sample(100, s)``).  Each
        child splits into a parameter stream and a session seed, keeping
        "which conditions" independent of "which noise realisation".
        """
        if n < 0:
            raise ConfigurationError("n must be non-negative")
        children = spawn_seeds(seed, n)
        draws = []
        for index, child in enumerate(children):
            params_seed, session_seed = spawn_seeds(child, 2)
            params = self.draw_params(np.random.default_rng(params_seed))
            draws.append(
                ScenarioDraw(
                    index=index,
                    space=self.name,
                    params=params,
                    scenario=scenario_from_params(
                        f"{self.name}-{index:04d}", params
                    ),
                    seed=session_seed,
                )
            )
        return tuple(draws)

    def stressed(self, multipliers: Mapping[str, float]) -> "ScenarioSpace":
        """This space with named severity axes rescaled (miner primitive)."""
        updates = {}
        for axis, factor in multipliers.items():
            if axis not in SEVERITY_AXES:
                raise ConfigurationError(
                    f"unknown severity axis {axis!r}; known: {SEVERITY_AXES}"
                )
            if factor != 1.0:
                updates[axis] = getattr(self, axis).scaled(factor)
        return replace(self, **updates) if updates else self


# ---------------------------------------------------------------------------
# Running draws through the campaign machinery
# ---------------------------------------------------------------------------


def jobs_for_draws(
    draws: Sequence[ScenarioDraw],
    resolution: int = 24,
    method: str = "fast",
    pairs: str = "first",
) -> tuple[CampaignJob, ...]:
    """Expand sampled draws into concrete campaign jobs.

    ``pairs="first"`` tunes one neighbouring gate pair per draw (the cheap
    default for surfaces and mining); ``pairs="all"`` tunes every
    neighbour bond of each draw's device, with per-pair seeds spawned from
    the draw's session seed so pair counts never reshuffle randomness.
    """
    if pairs not in ("first", "all"):
        raise ConfigurationError(f"pairs must be 'first' or 'all', got {pairs!r}")
    jobs: list[CampaignJob] = []
    for draw in draws:
        device_pairs = draw.params.device.build().neighbour_pairs()
        selected = device_pairs[:1] if pairs == "first" else device_pairs
        seeds = spawn_seeds(draw.seed, len(selected)) if pairs == "all" else (draw.seed,)
        for (dot_a, dot_b, gate_x, gate_y), pair_seed in zip(selected, seeds):
            jobs.append(
                CampaignJob(
                    job_id=len(jobs),
                    device=draw.params.device,
                    gate_x=gate_x,
                    gate_y=gate_y,
                    dot_a=dot_a,
                    dot_b=dot_b,
                    resolution=resolution,
                    # The scenario already bakes in its sampled severity;
                    # the job's own noise axis stays at identity.
                    noise_scale=1.0,
                    method=method,
                    repeat=0,
                    seed=pair_seed,
                    scenario=draw.scenario.name,
                    fault=None,
                )
            )
    return tuple(jobs)


def run_draws(
    draws: Sequence[ScenarioDraw],
    resolution: int = 24,
    method: str = "fast",
    pairs: str = "first",
    n_workers: int = 1,
    backend=None,
    criterion=None,
    checkpoint=None,
) -> CampaignResult:
    """Run sampled draws as a campaign; records come back in job-id order.

    The draws' scenarios are registered for exactly the duration of the
    run (:func:`~repro.scenarios.catalog.temporary_scenarios`), which is
    all the campaign engine needs — it resolves names in the parent and
    ships the objects to workers, so spawned pools see them too.
    """
    jobs = jobs_for_draws(draws, resolution=resolution, method=method, pairs=pairs)
    with temporary_scenarios(*[draw.scenario for draw in draws]):
        campaign = TuningCampaign(
            jobs, n_workers=n_workers, backend=backend, criterion=criterion
        )
        return campaign.run(checkpoint=checkpoint)
