"""Seeded samplers for scenario-space axes.

Each sampler is a small frozen dataclass — hashable, picklable, with a
content-based repr — that turns a :class:`numpy.random.Generator` into one
drawn value.  A :class:`~repro.scenariospace.space.ScenarioSpace` holds one
sampler per axis; the adversarial miner perturbs spaces by *rescaling*
samplers (:meth:`Sampler.scaled`), so the numeric families implement that
hook and the categorical one rejects it loudly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError


def _require_finite(name: str, value: float) -> None:
    if not math.isfinite(value):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")


@dataclass(frozen=True)
class Sampler:
    """Base class for one scenario-space axis."""

    def draw(self, rng: np.random.Generator):
        """One value from this sampler's distribution."""
        raise NotImplementedError

    @property
    def support(self) -> tuple[float, float]:
        """``(low, high)`` bounds of the values :meth:`draw` can return.

        Used by the success-surface binner to lay out deterministic bin
        edges without inspecting the drawn values.  Categorical samplers
        have no numeric support and raise.
        """
        raise NotImplementedError

    def scaled(self, factor: float) -> "Sampler":
        """This sampler with its numeric range scaled by ``factor``.

        The miner's mutation primitive: stretching an axis's range toward
        higher severity.  Categorical samplers reject scaling — a mined
        multiplier has no meaning over unordered options.
        """
        raise ConfigurationError(
            f"{type(self).__name__} cannot be scaled; only numeric samplers "
            "participate in severity mutation"
        )


def _require_scalable(factor: float) -> None:
    if not math.isfinite(factor) or factor <= 0:
        raise ConfigurationError(
            f"sampler scale factor must be finite and positive, got {factor!r}"
        )


@dataclass(frozen=True)
class Fixed(Sampler):
    """Degenerate sampler: always the same value (numeric or not)."""

    value: object = 0.0

    def draw(self, rng: np.random.Generator):
        return self.value

    @property
    def support(self) -> tuple[float, float]:
        if not isinstance(self.value, (int, float)):
            raise ConfigurationError(
                f"Fixed({self.value!r}) has no numeric support"
            )
        return (float(self.value), float(self.value))

    def scaled(self, factor: float) -> "Sampler":
        _require_scalable(factor)
        if not isinstance(self.value, (int, float)):
            return super().scaled(factor)  # raises the categorical error
        return Fixed(value=float(self.value) * factor)


@dataclass(frozen=True)
class Uniform(Sampler):
    """Continuous uniform draw over ``[low, high]``."""

    low: float = 0.0
    high: float = 1.0

    def __post_init__(self) -> None:
        _require_finite("low", self.low)
        _require_finite("high", self.high)
        if self.high < self.low:
            raise ConfigurationError(
                f"Uniform needs low <= high, got [{self.low}, {self.high}]"
            )

    def draw(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    @property
    def support(self) -> tuple[float, float]:
        return (self.low, self.high)

    def scaled(self, factor: float) -> "Sampler":
        _require_scalable(factor)
        return Uniform(low=self.low * factor, high=self.high * factor)


@dataclass(frozen=True)
class LogUniform(Sampler):
    """Log-uniform draw over ``[low, high]`` (both strictly positive).

    The natural family for severity knobs spanning decades — a noise scale
    swept from 0.1x to 10x should visit each decade equally often, which a
    linear uniform would not.
    """

    low: float = 0.1
    high: float = 10.0

    def __post_init__(self) -> None:
        _require_finite("low", self.low)
        _require_finite("high", self.high)
        if self.low <= 0:
            raise ConfigurationError("LogUniform needs low > 0")
        if self.high < self.low:
            raise ConfigurationError(
                f"LogUniform needs low <= high, got [{self.low}, {self.high}]"
            )

    def draw(self, rng: np.random.Generator) -> float:
        return float(
            math.exp(rng.uniform(math.log(self.low), math.log(self.high)))
        )

    @property
    def support(self) -> tuple[float, float]:
        return (self.low, self.high)

    def scaled(self, factor: float) -> "Sampler":
        _require_scalable(factor)
        return LogUniform(low=self.low * factor, high=self.high * factor)


@dataclass(frozen=True)
class Choice(Sampler):
    """Uniform draw over a fixed tuple of options (device recipes, names)."""

    options: tuple = ()

    def __post_init__(self) -> None:
        if not self.options:
            raise ConfigurationError("Choice needs at least one option")

    def draw(self, rng: np.random.Generator):
        return self.options[int(rng.integers(0, len(self.options)))]

    @property
    def support(self) -> tuple[float, float]:
        raise ConfigurationError(
            "Choice is categorical; it has no numeric support"
        )
