"""The distilled-failure corpus: mined regressions, registered forever.

Every entry below was found by :func:`~repro.scenariospace.mining.mine_failures`
against the default scenario space and shrunk by
:func:`~repro.scenariospace.distill.distill_failure` to the minimal
parameter vector that still reproduces the failure on its recorded seed.
Each is registered as a permanent named scenario at import, so the lint
contract audit walks it like any catalogue entry, and
``tests/scenarios/test_mined_regressions.py`` replays it against the
golden expectations in ``tests/golden/mined_regressions.json``.

``status`` is the ledger: ``"open"`` entries are still-broken — the suite
asserts the failure *still reproduces* (and flags the happy day it stops);
``"fixed"`` entries assert the once-failing job now succeeds, pinning the
fix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..scenarios.catalog import LabScenario, register_scenario
from ..scenarios.devices import DeviceSpec
from .distill import replay_failure
from .space import ScenarioParams, scenario_from_params


@dataclass(frozen=True)
class MinedRegression:
    """One distilled failure, committed as a permanent regression."""

    name: str
    story: str
    params: ScenarioParams
    seed_entropy: int
    seed_spawn_key: tuple[int, ...]
    method: str
    resolution: int
    failure_category: str
    status: str = "open"

    def __post_init__(self) -> None:
        if self.status not in ("open", "fixed"):
            raise ConfigurationError(
                f"regression status must be 'open' or 'fixed', got {self.status!r}"
            )

    @property
    def seed(self) -> np.random.SeedSequence:
        """The session seed the failure was mined under."""
        return np.random.SeedSequence(
            entropy=self.seed_entropy, spawn_key=self.seed_spawn_key
        )

    def scenario(self) -> LabScenario:
        """The regression's lab scenario (as registered)."""
        return scenario_from_params(self.name, self.params)


def regression_record(regression: MinedRegression, criterion=None):
    """Replay a regression's job; the suite asserts on the returned record."""
    return replay_failure(
        regression.params,
        regression.seed,
        method=regression.method,
        resolution=regression.resolution,
        criterion=criterion,
        name=regression.name,
    )


#: The corpus.  Append-only by convention: a fixed failure flips its
#: ``status`` rather than vanishing, so the suite keeps pinning the fix.
#: All three were mined from the ``stress`` space (seed 11, step 1.6) and
#: distilled to minimal parameter vectors; note how distillation zeroed
#: every axis the failure did not actually need.
MINED_REGRESSIONS: tuple[MinedRegression, ...] = (
    MinedRegression(
        name="mined_transient_flood",
        story=(
            "Mined: a clean, drift-free double dot where a 22% transient "
            "read-fault rate alone exhausts the probe retry budget."
        ),
        params=ScenarioParams(
            device=DeviceSpec(factory="double_dot"),
            noise_scale=0.0,
            drift_mv_per_hour=0.0,
            fault_rate=0.21940166970281652,
            time_dependent=True,
        ),
        seed_entropy=11,
        seed_spawn_key=(0, 0, 1),
        method="fast",
        resolution=24,
        failure_category="instrument-fault",
    ),
    MinedRegression(
        name="mined_drifting_octet",
        story=(
            "Mined: an 8-dot chain under 4.3x lab noise and 19.5 mV/h "
            "operating-point drift extracts coefficients that no longer "
            "match the ground truth."
        ),
        params=ScenarioParams(
            device=DeviceSpec(factory="linear_array", kwargs=(("n_dots", 8),)),
            noise_scale=4.348569891713092,
            drift_mv_per_hour=19.524518710169584,
            fault_rate=0.0,
            time_dependent=True,
        ),
        seed_entropy=11,
        seed_spawn_key=(1, 0, 1),
        method="fast",
        resolution=24,
        failure_category="truth-mismatch",
    ),
    MinedRegression(
        name="mined_noisy_quad",
        story=(
            "Mined: a quadruple dot where 2.9x time-dependent lab noise by "
            "itself — no drift, no faults — silently corrupts the fit."
        ),
        params=ScenarioParams(
            device=DeviceSpec(factory="quadruple_dot"),
            noise_scale=2.9284980299530443,
            drift_mv_per_hour=0.0,
            fault_rate=0.0,
            time_dependent=True,
        ),
        seed_entropy=11,
        seed_spawn_key=(3, 7, 1),
        method="fast",
        resolution=24,
        failure_category="truth-mismatch",
    ),
)


for _regression in MINED_REGRESSIONS:
    register_scenario(_regression.scenario())
