"""Scenario spaces: parametric distributions over lab conditions.

Where :mod:`repro.scenarios` names *individual* lab conditions, this package
describes *populations* of them: a :class:`ScenarioSpace` draws whole
:class:`~repro.scenarios.catalog.LabScenario` objects from seeded samplers
over device recipes, noise amplitude, device drift, and instrument-fault
rates.  Everything downstream is built on that one primitive:

* :func:`success_surface` fans sampled scenarios through a
  :class:`~repro.campaign.engine.TuningCampaign` and aggregates per-region
  success rates with Wilson confidence intervals — the tuner's operating
  envelope as a table instead of an anecdote.
* :func:`mine_failures` hill-climbs the space's severity axes toward tuner
  breakage, harvesting every failed draw along the way.
* :func:`distill_failure` shrinks a mined failure to a minimal reproducer
  (severity axes zeroed where irrelevant, bisected where not), ready to be
  committed as a named regression scenario with a golden fixture.
* :mod:`repro.scenariospace.regressions` is that commitment: the corpus of
  distilled failures, registered as permanent scenarios so the contract
  audit and the regression suite walk them forever.

Determinism is the load-bearing property: ``space.sample(n, seed)`` is a
pure function of the space and the seed — every draw gets its own
:class:`~numpy.random.SeedSequence.spawn` child, so the same call yields
bit-identical scenarios in any process, and campaign runs over the draws
are bit-identical across execution backends and worker counts.
"""

from .distributions import Choice, Fixed, LogUniform, Sampler, Uniform
from .mining import MinedFailure, MiningResult, MiningRoundRecord, mine_failures
from .distill import DistilledFailure, distill_failure
from .regressions import MINED_REGRESSIONS, MinedRegression, regression_record
from .space import (
    SEVERITY_AXES,
    ScenarioDraw,
    ScenarioParams,
    ScenarioSpace,
    jobs_for_draws,
    run_draws,
    scenario_from_params,
)
from .surface import SurfaceCell, SurfaceReport, success_surface

__all__ = [
    "Choice",
    "DistilledFailure",
    "Fixed",
    "LogUniform",
    "MINED_REGRESSIONS",
    "MinedFailure",
    "MinedRegression",
    "MiningResult",
    "MiningRoundRecord",
    "Sampler",
    "ScenarioDraw",
    "ScenarioParams",
    "ScenarioSpace",
    "SEVERITY_AXES",
    "SurfaceCell",
    "SurfaceReport",
    "distill_failure",
    "jobs_for_draws",
    "mine_failures",
    "regression_record",
    "run_draws",
    "scenario_from_params",
    "success_surface",
]
