"""Failure distillation: shrink a mined failure to a minimal reproducer.

A raw mined failure typically has every severity axis loud at once, which
makes a terrible regression test — when it breaks again nobody knows which
physics mattered.  The distiller minimises the parameter vector while the
failure keeps reproducing, axis by axis in the fixed
:data:`~repro.scenariospace.space.SEVERITY_AXES` order:

1. **Zero first**: set the axis to 0; if the job still fails, the axis was
   irrelevant — keep it at 0.
2. **Bisect otherwise**: the failure needs this axis, so binary-search the
   smallest value (between the passing 0 and the failing original) that
   still fails, within a fixed evaluation budget.

Every evaluation replays the *same session seed* as the original failure,
so the search is deterministic and the minimised vector provably fails on
the recorded seed.  The result feeds a golden fixture plus a registered
regression scenario (:mod:`repro.scenariospace.regressions`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..campaign.grid import CampaignJob
from ..campaign.worker import run_campaign_job
from ..exceptions import ConfigurationError
from ..scenarios.catalog import temporary_scenarios
from .mining import MinedFailure
from .space import SEVERITY_AXES, ScenarioParams, scenario_from_params


@dataclass(frozen=True)
class DistilledFailure:
    """A mined failure reduced to its minimal reproducing parameters."""

    space: str
    original: ScenarioParams
    minimal: ScenarioParams
    seed_entropy: int
    seed_spawn_key: tuple[int, ...]
    method: str
    resolution: int
    failure_category: str
    failure_reason: str
    n_evaluations: int

    def zeroed_axes(self) -> tuple[str, ...]:
        """Severity axes the distiller proved irrelevant to the failure."""
        return tuple(
            axis
            for axis in SEVERITY_AXES
            if getattr(self.original, axis) > 0 and getattr(self.minimal, axis) == 0
        )


def replay_failure(
    params: ScenarioParams,
    seed: np.random.SeedSequence,
    method: str = "fast",
    resolution: int = 24,
    criterion=None,
    name: str = "distill-probe",
):
    """Run the single job a parameter vector + seed describes.

    Returns the :class:`~repro.campaign.results.CampaignJobRecord` — the
    shared evaluation primitive of the distiller and the regression suite,
    so both judge "does it still fail?" identically.
    """
    scenario = scenario_from_params(name, params)
    dot_a, dot_b, gate_x, gate_y = params.device.build().neighbour_pairs()[0]
    job = CampaignJob(
        job_id=0,
        device=params.device,
        gate_x=gate_x,
        gate_y=gate_y,
        dot_a=dot_a,
        dot_b=dot_b,
        resolution=resolution,
        noise_scale=1.0,
        method=method,
        repeat=0,
        seed=seed,
        scenario=name,
        fault=None,
    )
    with temporary_scenarios(scenario):
        kwargs = {"scenarios": {name: scenario}}
        if criterion is not None:
            kwargs["criterion"] = criterion
        return run_campaign_job(job, **kwargs)


def distill_failure(
    failure: MinedFailure,
    max_bisections: int = 6,
    criterion=None,
) -> DistilledFailure:
    """Minimise a mined failure's severity axes while it keeps failing.

    Raises :class:`~repro.exceptions.ConfigurationError` when the recorded
    failure does not reproduce at all — a fixture built from it would
    assert nothing.
    """
    if max_bisections < 1:
        raise ConfigurationError("max_bisections must be at least 1")
    seed = failure.seed
    evaluations = 0

    def fails(params: ScenarioParams):
        nonlocal evaluations
        evaluations += 1
        record = replay_failure(
            params,
            seed,
            method=failure.method,
            resolution=failure.resolution,
            criterion=criterion,
        )
        return (not record.success), record

    failed, record = fails(failure.params)
    if not failed:
        raise ConfigurationError(
            f"mined failure does not reproduce (params {failure.params!r}, "
            f"seed entropy {failure.seed_entropy}); refusing to distil a "
            "passing job into a regression fixture"
        )

    params = failure.params
    for axis in SEVERITY_AXES:
        value = getattr(params, axis)
        if value == 0:
            continue
        zeroed = params.with_axis(axis, 0.0)
        failed, zero_record = fails(zeroed)
        if failed:
            params, record = zeroed, zero_record
            continue
        # The axis is load-bearing: bisect down to the smallest failing
        # value.  Invariant: `value` fails, `passing` passes.
        passing = 0.0
        for _ in range(max_bisections):
            mid = (passing + value) / 2.0
            failed, mid_record = fails(params.with_axis(axis, mid))
            if failed:
                value, record = mid, mid_record
            else:
                passing = mid
        params = params.with_axis(axis, value)

    return DistilledFailure(
        space=failure.space,
        original=failure.params,
        minimal=params,
        seed_entropy=failure.seed_entropy,
        seed_spawn_key=failure.seed_spawn_key,
        method=failure.method,
        resolution=failure.resolution,
        failure_category=record.failure_category,
        failure_reason=record.failure_reason,
        n_evaluations=evaluations,
    )
