"""Success-rate surfaces over a scenario space's severity axes.

A surface answers "where does the tuner stop working?" quantitatively:
sample the space, run every draw through the campaign machinery, then bin
the outcomes over two severity axes and attach a Wilson confidence
interval to each cell's success rate.  Cells are laid out on the samplers'
declared support (not the observed draws), so two surfaces over the same
space bin identically regardless of seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.metrics import wilson_interval
from ..analysis.reporting import format_surface_table
from ..exceptions import ConfigurationError
from .space import SEVERITY_AXES, ScenarioSpace, run_draws


@dataclass(frozen=True)
class SurfaceCell:
    """One region of the surface: bounds, counts, and the Wilson interval."""

    x_low: float
    x_high: float
    y_low: float
    y_high: float
    n_jobs: int
    n_succeeded: int
    ci_low: float
    ci_high: float

    @property
    def success_rate(self) -> float:
        """Fraction of the cell's jobs that succeeded (nan when empty)."""
        if self.n_jobs == 0:
            return float("nan")
        return self.n_succeeded / self.n_jobs

    def as_dict(self) -> dict:
        """JSON-native view (all fields finite by construction)."""
        return {
            "x_low": self.x_low,
            "x_high": self.x_high,
            "y_low": self.y_low,
            "y_high": self.y_high,
            "n_jobs": self.n_jobs,
            "n_succeeded": self.n_succeeded,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SurfaceCell":
        """Rebuild a cell from :meth:`as_dict` output."""
        return cls(
            x_low=float(data["x_low"]),
            x_high=float(data["x_high"]),
            y_low=float(data["y_low"]),
            y_high=float(data["y_high"]),
            n_jobs=int(data["n_jobs"]),
            n_succeeded=int(data["n_succeeded"]),
            ci_low=float(data["ci_low"]),
            ci_high=float(data["ci_high"]),
        )


@dataclass(frozen=True)
class SurfaceReport:
    """A binned success surface over two severity axes."""

    space: str
    x_axis: str
    y_axis: str
    n_draws: int
    seed: int
    cells: tuple[SurfaceCell, ...]

    @property
    def n_jobs(self) -> int:
        """Total jobs across all cells."""
        return sum(cell.n_jobs for cell in self.cells)

    @property
    def n_succeeded(self) -> int:
        """Total successes across all cells."""
        return sum(cell.n_succeeded for cell in self.cells)

    def worst_cell(self) -> SurfaceCell | None:
        """The populated cell with the lowest success rate (ties: first)."""
        populated = [cell for cell in self.cells if cell.n_jobs > 0]
        if not populated:
            return None
        return min(populated, key=lambda cell: cell.success_rate)

    def format(self) -> str:
        """Aligned plain-text table of the surface."""
        return format_surface_table(
            self.x_axis,
            self.y_axis,
            [cell.as_dict() for cell in self.cells],
            title=(
                f"Success surface: {self.space} "
                f"({self.n_succeeded}/{self.n_jobs} over {self.n_draws} draws, "
                f"seed {self.seed})"
            ),
        )

    def as_dict(self) -> dict:
        """JSON-native view of the whole surface."""
        return {
            "space": self.space,
            "x_axis": self.x_axis,
            "y_axis": self.y_axis,
            "n_draws": self.n_draws,
            "seed": self.seed,
            "cells": [cell.as_dict() for cell in self.cells],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SurfaceReport":
        """Rebuild a surface report from :meth:`as_dict` output."""
        return cls(
            space=str(data["space"]),
            x_axis=str(data["x_axis"]),
            y_axis=str(data["y_axis"]),
            n_draws=int(data["n_draws"]),
            seed=int(data["seed"]),
            cells=tuple(SurfaceCell.from_dict(entry) for entry in data["cells"]),
        )


def _bin_edges(space: ScenarioSpace, axis: str, bins: int) -> np.ndarray:
    """Deterministic equal-width edges over a severity sampler's support."""
    low, high = getattr(space, axis).support
    if high == low:
        # Degenerate axis (a Fixed sampler): one cell holds everything.
        return np.array([low, low])
    return np.linspace(low, high, bins + 1)


def _bin_index(edges: np.ndarray, value: float) -> int:
    """The cell index of ``value``; the top edge belongs to the last cell."""
    if len(edges) == 2 and edges[0] == edges[1]:
        return 0
    index = int(np.searchsorted(edges, value, side="right")) - 1
    return min(max(index, 0), len(edges) - 2)


def success_surface(
    space: ScenarioSpace,
    n_draws: int = 48,
    seed: int = 0,
    axes: tuple[str, str] = ("noise_scale", "fault_rate"),
    bins: int = 3,
    resolution: int = 24,
    method: str = "fast",
    pairs: str = "first",
    n_workers: int = 1,
    backend=None,
    criterion=None,
    checkpoint=None,
    z: float = 1.96,
) -> SurfaceReport:
    """Sample the space, run every draw, and bin success over two axes.

    Each draw contributes its jobs (one per tuned gate pair) to the cell
    its *parameters* fall in; a cell's confidence interval is the Wilson
    score interval at the given ``z``.  With ``checkpoint`` set the
    underlying campaign journals per-job records, so an interrupted
    surface resumes without re-running completed jobs.
    """
    x_axis, y_axis = axes
    for axis in axes:
        if axis not in SEVERITY_AXES:
            raise ConfigurationError(
                f"unknown surface axis {axis!r}; known: {SEVERITY_AXES}"
            )
    if x_axis == y_axis:
        raise ConfigurationError("surface axes must differ")
    if bins < 1:
        raise ConfigurationError("bins must be at least 1")
    draws = space.sample(n_draws, seed=seed)
    result = run_draws(
        draws,
        resolution=resolution,
        method=method,
        pairs=pairs,
        n_workers=n_workers,
        backend=backend,
        criterion=criterion,
        checkpoint=checkpoint,
    )
    by_scenario = {draw.scenario.name: draw for draw in draws}
    x_edges = _bin_edges(space, x_axis, bins)
    y_edges = _bin_edges(space, y_axis, bins)
    n_x, n_y = len(x_edges) - 1, len(y_edges) - 1
    counts = np.zeros((n_x, n_y, 2), dtype=int)  # [..., (jobs, successes)]
    for record in result.records:
        draw = by_scenario[record.scenario]
        ix = _bin_index(x_edges, getattr(draw.params, x_axis))
        iy = _bin_index(y_edges, getattr(draw.params, y_axis))
        counts[ix, iy, 0] += 1
        counts[ix, iy, 1] += int(record.success)
    cells = []
    for ix in range(n_x):
        for iy in range(n_y):
            n_jobs, n_succeeded = int(counts[ix, iy, 0]), int(counts[ix, iy, 1])
            ci_low, ci_high = wilson_interval(n_succeeded, n_jobs, z=z)
            cells.append(
                SurfaceCell(
                    x_low=float(x_edges[ix]),
                    x_high=float(x_edges[ix + 1]),
                    y_low=float(y_edges[iy]),
                    y_high=float(y_edges[iy + 1]),
                    n_jobs=n_jobs,
                    n_succeeded=n_succeeded,
                    ci_low=ci_low,
                    ci_high=ci_high,
                )
            )
    return SurfaceReport(
        space=space.name,
        x_axis=x_axis,
        y_axis=y_axis,
        n_draws=n_draws,
        seed=int(seed),
        cells=tuple(cells),
    )
