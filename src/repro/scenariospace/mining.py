"""Adversarial failure mining: push a scenario space toward tuner breakage.

The miner is a deterministic hill-climb over severity multipliers.  Each
round proposes stretching one severity axis up or down by a fixed step,
evaluates every proposal with a small seeded campaign over the stressed
space, and moves to the proposal with the highest failure rate when it
beats the incumbent.  Every failed job encountered anywhere along the
search — accepted or not — is harvested as a :class:`MinedFailure` carrying
the exact parameter vector and seed that reproduce it, which is what the
distiller (:mod:`repro.scenariospace.distill`) shrinks into regression
scenarios.

Determinism and resumability come from the campaign stack: round ``r``,
proposal ``c`` always evaluates the same draws with the same seeds, so
with ``checkpoint_dir`` set each evaluation journals its records and an
interrupted mine re-runs only the jobs that never finished.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..exceptions import ConfigurationError
from .space import SEVERITY_AXES, ScenarioParams, ScenarioSpace, run_draws
from ..seeding import spawn_seeds

#: Bounds on any single axis's cumulative severity multiplier.  The climb
#: must not wander to absurdity (a 10^6x noise scale "finds" failures that
#: say nothing about the tuner) nor collapse an axis to zero.
MULTIPLIER_RANGE = (1.0 / 16.0, 16.0)


@dataclass(frozen=True)
class MinedFailure:
    """One failed job found during mining, with everything to replay it."""

    space: str
    round_index: int
    params: ScenarioParams
    seed_entropy: int
    seed_spawn_key: tuple[int, ...]
    method: str
    resolution: int
    failure_category: str
    failure_reason: str

    @property
    def seed(self) -> np.random.SeedSequence:
        """The session seed that realises this failure."""
        return np.random.SeedSequence(
            entropy=self.seed_entropy, spawn_key=self.seed_spawn_key
        )


@dataclass(frozen=True)
class MiningRoundRecord:
    """Aggregate outcome of one hill-climb round."""

    round_index: int
    multipliers: tuple[tuple[str, float], ...]
    n_jobs: int
    n_failures: int
    accepted: bool

    @property
    def failure_rate(self) -> float:
        """Fraction of the round's best-proposal jobs that failed."""
        if self.n_jobs == 0:
            return float("nan")
        return self.n_failures / self.n_jobs


@dataclass(frozen=True)
class MiningResult:
    """Everything a finished mine produced."""

    space: str
    rounds: tuple[MiningRoundRecord, ...]
    failures: tuple[MinedFailure, ...]
    best_multipliers: tuple[tuple[str, float], ...]

    @property
    def n_failures(self) -> int:
        """Distinct failed jobs harvested across the whole search."""
        return len(self.failures)


def _clamp_multiplier(value: float) -> float:
    low, high = MULTIPLIER_RANGE
    return min(max(value, low), high)


def _evaluate(
    space: ScenarioSpace,
    multipliers: dict[str, float],
    draws_seed: np.random.SeedSequence,
    draws_per_round: int,
    resolution: int,
    method: str,
    criterion,
    checkpoint: Path | None,
):
    """Failure rate of a stressed space over one seeded batch of draws."""
    stressed = space.stressed(multipliers)
    draws = stressed.sample(draws_per_round, seed=draws_seed)
    result = run_draws(
        draws,
        resolution=resolution,
        method=method,
        criterion=criterion,
        checkpoint=checkpoint,
    )
    by_scenario = {draw.scenario.name: draw for draw in draws}
    failures = [
        (by_scenario[record.scenario], record)
        for record in result.records
        if not record.success
    ]
    rate = (
        len(failures) / len(result.records) if result.records else 0.0
    )
    return rate, failures, len(result.records)


def mine_failures(
    space: ScenarioSpace,
    n_rounds: int = 5,
    draws_per_round: int = 12,
    seed: int = 0,
    step: float = 1.6,
    resolution: int = 24,
    method: str = "fast",
    axes: tuple[str, ...] = SEVERITY_AXES,
    criterion=None,
    checkpoint_dir: str | Path | None = None,
    stop_at_failure_rate: float = 1.0,
) -> MiningResult:
    """Hill-climb the space's severity multipliers toward failure.

    Parameters are conventional: ``step`` is the per-round stretch factor
    applied up and down to each axis in ``axes``; ``stop_at_failure_rate``
    ends the search early once the incumbent's failure rate reaches it (1.0
    never stops early).  The result collects *every* failure seen — from
    rejected proposals too, since a failure reproduces from its parameter
    vector and seed regardless of where the climb went afterwards.
    """
    if n_rounds < 1:
        raise ConfigurationError("n_rounds must be at least 1")
    if draws_per_round < 1:
        raise ConfigurationError("draws_per_round must be at least 1")
    if step <= 1.0:
        raise ConfigurationError("step must be greater than 1")
    for axis in axes:
        if axis not in SEVERITY_AXES:
            raise ConfigurationError(
                f"unknown severity axis {axis!r}; known: {SEVERITY_AXES}"
            )
    journal_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None

    def journal_for(round_index: int, proposal: int) -> Path | None:
        if journal_dir is None:
            return None
        return journal_dir / f"round{round_index:02d}_prop{proposal:02d}.jsonl"

    # One spawned seed per round; each round's proposals share the round's
    # draw seed so proposals differ only by their multipliers, making the
    # comparison a paired one (same devices, same noise realisations).
    round_seeds = spawn_seeds(seed, n_rounds + 1)

    current = {axis: 1.0 for axis in axes}
    failures: dict[tuple, MinedFailure] = {}
    rounds: list[MiningRoundRecord] = []

    def harvest(round_index: int, found) -> None:
        for draw, record in found:
            key = (repr(draw.params), draw.seed_entropy)
            if key in failures:
                continue
            entropy, spawn_key = draw.seed_entropy
            failures[key] = MinedFailure(
                space=space.name,
                round_index=round_index,
                params=draw.params,
                seed_entropy=entropy,
                seed_spawn_key=spawn_key,
                method=method,
                resolution=resolution,
                failure_category=record.failure_category,
                failure_reason=record.failure_reason,
            )

    current_rate, found, n_jobs = _evaluate(
        space, current, round_seeds[0], draws_per_round,
        resolution, method, criterion, journal_for(0, 0),
    )
    harvest(0, found)
    rounds.append(
        MiningRoundRecord(
            round_index=0,
            multipliers=tuple(sorted(current.items())),
            n_jobs=n_jobs,
            n_failures=len(found),
            accepted=True,
        )
    )

    for round_index in range(1, n_rounds + 1):
        if current_rate >= stop_at_failure_rate:
            break
        proposals = []
        for axis in axes:
            for factor in (step, 1.0 / step):
                candidate = dict(current)
                candidate[axis] = _clamp_multiplier(candidate[axis] * factor)
                if candidate != current:
                    proposals.append(candidate)
        best = None  # (rate, order, candidate, found, n_jobs)
        for order, candidate in enumerate(proposals):
            rate, found, n_jobs = _evaluate(
                space, candidate, round_seeds[round_index], draws_per_round,
                resolution, method, criterion,
                journal_for(round_index, order),
            )
            harvest(round_index, found)
            # Ties break on proposal order, keeping the climb deterministic.
            if best is None or rate > best[0]:
                best = (rate, order, candidate, found, n_jobs)
        if best is None:  # every proposal clamped back onto the incumbent
            break
        accepted = best[0] > current_rate
        rounds.append(
            MiningRoundRecord(
                round_index=round_index,
                multipliers=tuple(sorted(best[2].items())),
                n_jobs=best[4],
                n_failures=len(best[3]),
                accepted=accepted,
            )
        )
        if accepted:
            current_rate, _, current, _, _ = best

    return MiningResult(
        space=space.name,
        rounds=tuple(rounds),
        failures=tuple(failures.values()),
        best_multipliers=tuple(sorted(current.items())),
    )
