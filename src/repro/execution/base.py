"""The execution-backend seam: *how* jobs run, separated from *what* runs.

A :class:`~repro.campaign.engine.TuningCampaign` (or any other batch
orchestrator) owns the job list and the semantics of one job; an
:class:`ExecutionBackend` owns nothing but execution policy — worker count,
dispatch granularity, scheduling.  The contract is deliberately tiny:

``submit(jobs, run_one)`` returns an **iterator of** ``(job_id, record)``
**pairs in completion order**.  Streaming is the load-bearing part: records
become available one at a time as jobs finish, which is what lets the
:class:`~repro.execution.controller.RunController` journal each record to a
checkpoint, fire progress callbacks, and keep a partial result when the
process dies mid-run.  Backends make no ordering promise — callers that
need job-id order sort after draining the iterator.

Backends are generic over the job and record types: a job only needs a
``job_id`` attribute, and ``run_one`` must be a plain callable (picklable
for process-based backends).  Nothing in this package imports the campaign
layer, so new orchestrators can reuse the backends wholesale.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, ClassVar, Iterable, Iterator, Protocol, runtime_checkable

from ..exceptions import ConfigurationError
from ..reprs import ContentRepr

__all__ = [
    "ExecutionBackend",
    "ProgressCallback",
    "SupportsJobId",
    "WorkerCrash",
    "backend_from_spec",
    "backend_names",
    "crash_message",
    "register_backend",
]

#: Progress callbacks receive ``(n_done, n_total, record)`` after every
#: completed job, in completion order, from the parent process.
ProgressCallback = Callable[[int, int, Any], None]


@runtime_checkable
class SupportsJobId(Protocol):
    """Anything a backend can schedule: a spec with a stable integer id."""

    job_id: int


def crash_message(job_id: int) -> str:
    """Canonical description of a job whose worker died.

    One string shared by every path that reports a worker death — the
    process pool's broken-pool recovery here, and the in-process crash
    injection in :mod:`repro.faults` — so a crashed job condenses into the
    same error record no matter which backend ran it.
    """
    return f"worker crash while executing job {int(job_id)}"


@dataclass(frozen=True)
class WorkerCrash:
    """Marker record: the worker executing this job died mid-run.

    A backend that can *observe* worker death without being able to get a
    real record out of the corpse (the process pool after a hard ``os._exit``
    or OOM kill) yields ``(job_id, WorkerCrash(job_id))`` instead of raising
    and abandoning the batch.  The
    :class:`~repro.execution.controller.RunController` converts the marker
    through its ``on_error`` hook into an ordinary failure record (or raises
    :class:`~repro.exceptions.WorkerCrashError` when no hook is set), so
    crashes journal and resume exactly like any other failed job.
    """

    job_id: int

    @property
    def message(self) -> str:
        """The canonical crash description for this job."""
        return crash_message(self.job_id)


class ExecutionBackend(ContentRepr, abc.ABC):
    """Execution policy for a batch of independent jobs.

    Subclasses implement :meth:`submit`; everything else (retries, fault
    isolation, journaling, progress) lives in
    :class:`~repro.execution.controller.RunController` so each backend stays
    a few dozen lines of pure scheduling.
    """

    #: Stable name used by :func:`backend_from_spec` and result metadata.
    name: ClassVar[str] = "abstract"

    @abc.abstractmethod
    def submit(
        self,
        jobs: Iterable[SupportsJobId],
        run_one: Callable[[Any], Any],
    ) -> Iterator[tuple[int, Any]]:
        """Run every job, yielding ``(job_id, record)`` in completion order.

        Implementations must tolerate an empty job list (yield nothing) and
        must not reorder, drop, or duplicate job ids.  Exceptions raised by
        ``run_one`` propagate to the consumer; callers that want per-job
        fault isolation wrap ``run_one`` first (see
        :func:`~repro.execution.controller.guarded_runner`).
        """


#: Registered backend factories: name -> ``factory(n_workers, chunk_size)``.
_BACKEND_FACTORIES: dict[str, Callable[[int, int | None], ExecutionBackend]] = {}

#: Parameterised-spec factories: name -> ``factory(arg, n_workers, chunk_size)``
#: where ``arg`` is everything after the first colon of a ``"name:arg"`` spec
#: (e.g. ``"8"`` for ``"process:8"``, ``"local:4"`` for ``"cluster:local:4"``).
_SPEC_FACTORIES: dict[str, Callable[[str, int, int | None], ExecutionBackend]] = {}


def register_backend(
    name: str,
    factory: Callable[[int, int | None], ExecutionBackend],
    spec_factory: Callable[[str, int, int | None], ExecutionBackend] | None = None,
) -> None:
    """Register a backend factory under ``name`` for :func:`backend_from_spec`.

    The factory is called as ``factory(n_workers, chunk_size)``; backends
    that ignore one of the knobs simply drop it.  ``spec_factory``, when
    given, additionally accepts parameterised specs (``"name:arg"``) and is
    called as ``spec_factory(arg, n_workers, chunk_size)``; it must raise
    :class:`~repro.exceptions.ConfigurationError` on a malformed ``arg``.
    """
    _BACKEND_FACTORIES[str(name)] = factory
    if spec_factory is not None:
        _SPEC_FACTORIES[str(name)] = spec_factory
    else:
        _SPEC_FACTORIES.pop(str(name), None)


def backend_names() -> tuple[str, ...]:
    """Names accepted by :func:`backend_from_spec`, sorted."""
    return tuple(sorted(_BACKEND_FACTORIES))


def backend_from_spec(
    spec: str | ExecutionBackend | None,
    n_workers: int = 1,
    chunk_size: int | None = None,
) -> ExecutionBackend:
    """Resolve a backend from a name, a spec string, an instance, or ``None``.

    ``None`` keeps the historical campaign behaviour: one worker runs
    serially in-process, more workers fan out over a process pool.  A
    string selects a registered backend by name — either a bare name
    (``"process"``) configured by the ``n_workers``/``chunk_size``
    arguments, or a parameterised spec (``"process:8"``,
    ``"cluster:HOST:PORT"``, ``"cluster:local:4"``) whose argument is
    parsed by the backend's own spec factory.  Malformed specs and
    parameters on a backend that takes none raise
    :class:`~repro.exceptions.ConfigurationError` loudly rather than
    falling back to a default.  An :class:`ExecutionBackend` instance
    passes through untouched (its own worker configuration wins over
    ``n_workers``).
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None:
        spec = "serial" if n_workers == 1 else "process"
    name, sep, arg = spec.partition(":")
    if name not in _BACKEND_FACTORIES:
        raise ConfigurationError(
            f"unknown execution backend {spec!r}; known backends: "
            f"{', '.join(backend_names())}"
        )
    if not sep:
        return _BACKEND_FACTORIES[name](n_workers, chunk_size)
    spec_factory = _SPEC_FACTORIES.get(name)
    if spec_factory is None:
        raise ConfigurationError(
            f"backend {name!r} does not take spec parameters "
            f"(got {spec!r}); use the bare name"
        )
    if not arg:
        raise ConfigurationError(
            f"malformed backend spec {spec!r}: empty parameter after ':'"
        )
    return spec_factory(arg, n_workers, chunk_size)
