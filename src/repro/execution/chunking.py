"""Chunk-size policies shared by the pool and cluster dispatchers.

A dispatcher that ships jobs in chunks trades two costs against each other:
per-dispatch overhead (pickling, frame round-trips) is amortised by *large*
chunks, while tail load-balancing and prompt streaming want *small* ones.
The static policy — the process pool's historical default — resolves the
tension with a fixed cap (:func:`static_chunk_size`); the adaptive policy
(:class:`AdaptiveChunkPolicy`) resolves it with a target *lease duration*:
observe how long one job actually takes, then size the next chunk so a
worker stays busy for roughly ``target_lease_s`` before it has to come back
for more.  Cheap jobs get big chunks, expensive jobs get leased one at a
time, and a grid that mixes both converges per observation.

Both the :class:`~repro.execution.backends.ProcessPoolBackend` (opt-in via
``chunking="adaptive"``) and the :class:`~repro.cluster.ClusterBackend`
coordinator (always) size their dispatches through this module, so the two
schedulers cannot drift apart.  Chunking never affects *results* — jobs are
seeded before dispatch, so records are bit-identical under any policy.
"""

from __future__ import annotations

from ..exceptions import ConfigurationError
from ..reprs import ContentRepr

__all__ = ["AdaptiveChunkPolicy", "static_chunk_size"]

#: Ceiling on the static default chunk size (see
#: :data:`~repro.execution.backends.DEFAULT_CHUNK_CAP`, re-exported there
#: for backwards compatibility).
STATIC_CHUNK_CAP = 4


def static_chunk_size(n_jobs: int, n_workers: int, cap: int = STATIC_CHUNK_CAP) -> int:
    """The historical fixed-cap chunk size: ``len // (4 * workers)``, capped.

    The cap keeps dispatch granularity fine enough that heterogeneous grids
    stay load-balanced and records stream promptly, while still amortising
    pickling for tiny jobs.  This is the process pool's default policy and
    must stay bit-identical to it.
    """
    workers = min(max(n_workers, 1), max(n_jobs, 1))
    return max(1, min(cap, n_jobs // (4 * workers)))


class AdaptiveChunkPolicy(ContentRepr):
    """Size chunks so one lease keeps a worker busy ``target_lease_s``.

    The policy starts conservatively at ``initial_chunk`` (one job by
    default — nothing is known yet, and a wrong big first lease starves the
    tail), then tracks an exponentially weighted moving average of observed
    per-job wall seconds and sizes every subsequent chunk as
    ``target_lease_s / per_job_s``, clamped to ``[min_chunk, max_chunk]``.

    The policy is deliberately *stateful but result-free*: it only decides
    how many jobs travel per dispatch, never which jobs or with what seeds,
    so any sequence of observations produces bit-identical records.

    Parameters
    ----------
    target_lease_s:
        Wall seconds one chunk should occupy a worker.  Small enough that
        stealing and re-leasing stay responsive, large enough to amortise
        dispatch overhead.
    min_chunk / max_chunk:
        Hard clamps on the computed size.
    initial_chunk:
        Size used before the first observation.
    smoothing:
        EWMA weight of the newest observation (``1`` = only the latest,
        ``0 <`` small values smooth heavily).
    """

    def __init__(
        self,
        target_lease_s: float = 0.25,
        min_chunk: int = 1,
        max_chunk: int = 64,
        initial_chunk: int = 1,
        smoothing: float = 0.5,
    ) -> None:
        if target_lease_s <= 0:
            raise ConfigurationError("target_lease_s must be positive")
        if min_chunk < 1:
            raise ConfigurationError("min_chunk must be at least 1")
        if max_chunk < min_chunk:
            raise ConfigurationError("max_chunk must be >= min_chunk")
        if not min_chunk <= initial_chunk <= max_chunk:
            raise ConfigurationError(
                "initial_chunk must lie within [min_chunk, max_chunk]"
            )
        if not 0 < smoothing <= 1:
            raise ConfigurationError("smoothing must be in (0, 1]")
        self._target_lease_s = float(target_lease_s)
        self._min_chunk = int(min_chunk)
        self._max_chunk = int(max_chunk)
        self._initial_chunk = int(initial_chunk)
        self._smoothing = float(smoothing)
        self._per_job_s: float | None = None

    @property
    def target_lease_s(self) -> float:
        """Wall seconds one chunk should occupy a worker."""
        return self._target_lease_s

    @property
    def per_job_s(self) -> float | None:
        """Smoothed per-job wall seconds, ``None`` before any observation."""
        return self._per_job_s

    def observe(self, n_jobs: int, elapsed_s: float) -> None:
        """Fold one completed dispatch (``n_jobs`` over ``elapsed_s``) in.

        Non-positive observations are ignored rather than folded in as
        zero: a sub-resolution timer reading would otherwise drive the
        estimate to "jobs are free" and the chunk size to its ceiling.
        """
        if n_jobs < 1 or elapsed_s <= 0:
            return
        observed = elapsed_s / n_jobs
        if self._per_job_s is None:
            self._per_job_s = observed
        else:
            self._per_job_s += self._smoothing * (observed - self._per_job_s)

    def chunk_size(self) -> int:
        """Jobs the next dispatch should carry."""
        if self._per_job_s is None:
            return self._initial_chunk
        ideal = int(self._target_lease_s / self._per_job_s)
        return max(self._min_chunk, min(self._max_chunk, ideal))

    def fresh(self) -> "AdaptiveChunkPolicy":
        """An unobserved copy with the same configuration.

        Dispatchers take a policy as *configuration* and call this per
        submission, so one backend instance reused across campaigns does
        not leak timing state from one job population into the next.
        """
        return AdaptiveChunkPolicy(
            target_lease_s=self._target_lease_s,
            min_chunk=self._min_chunk,
            max_chunk=self._max_chunk,
            initial_chunk=self._initial_chunk,
            smoothing=self._smoothing,
        )
