"""The three stock execution backends: serial, process pool, asyncio.

All three satisfy the same streaming contract
(:meth:`~repro.execution.base.ExecutionBackend.submit` yields
``(job_id, record)`` pairs as jobs finish) and, because seeds are bound to
jobs before anything runs, all three produce bit-identical records for the
same job list at any worker count — the orchestrator sorts by job id after
draining, so completion order never leaks into results.

* :class:`SerialBackend` runs jobs in submission order in-process: the
  reference implementation every other backend is tested against, and the
  right choice under a debugger.
* :class:`ProcessPoolBackend` fans chunks of jobs out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` (the extraction pipeline
  is CPU-bound pure Python, so processes beat threads) and yields each
  chunk's records the moment its future completes, rather than blocking on
  a pool-wide ``map``.
* :class:`AsyncioBackend` drives jobs through an event loop over a small
  thread pool — the shape a future remote-hardware backend will take, where
  ``run_one`` is I/O-bound (network calls to instruments) rather than
  CPU-bound.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from typing import Any, AsyncIterator, Callable, Iterable, Iterator

from ..exceptions import ConfigurationError
from .base import ExecutionBackend, SupportsJobId, WorkerCrash, register_backend
from .chunking import STATIC_CHUNK_CAP, AdaptiveChunkPolicy, static_chunk_size
from .shm import (
    DEFAULT_MIN_SHM_BYTES,
    decode_payload,
    encode_chunk,
    ensure_tracker,
    release_payload,
)

__all__ = [
    "AsyncioBackend",
    "CHUNKINGS",
    "DEFAULT_CHUNK_CAP",
    "ProcessPoolBackend",
    "SerialBackend",
    "TRANSPORTS",
]

#: Record transports a :class:`ProcessPoolBackend` can ship chunks with.
#: ``auto`` uses shared memory for columnar payloads above the size floor
#: and pickle otherwise; ``shared-memory`` forces shared memory whenever the
#: payload is columnar at all; ``pickle`` is the classic pipe.
TRANSPORTS = ("auto", "pickle", "shared-memory")

#: Chunk-size policies a :class:`ProcessPoolBackend` can dispatch with.
#: ``static`` is the historical fixed-cap default (bit-identical behaviour);
#: ``adaptive`` opts into the cluster coordinator's target-lease-duration
#: policy (:class:`~repro.execution.chunking.AdaptiveChunkPolicy`).
CHUNKINGS = ("static", "adaptive")

#: Ceiling on the default process-pool chunk size.  The old campaign default
#: (``len(jobs) // (4 * workers)``) grows with the grid, so a 1000-job grid
#: on 2 workers shipped 125-job chunks — one chunk of expensive scenario
#: jobs could starve the pool tail while every other worker sat idle, and
#: nothing streamed back until a whole chunk finished.  Capping the chunk
#: keeps dispatch granularity fine enough that heterogeneous grids stay
#: load-balanced and records stream promptly, while still amortising
#: pickling for tiny jobs.  (The policy itself now lives in
#: :func:`~repro.execution.chunking.static_chunk_size`, shared with the
#: cluster scheduler.)
DEFAULT_CHUNK_CAP = STATIC_CHUNK_CAP


class SerialBackend(ExecutionBackend):
    """Run jobs one after another in the calling process."""

    name = "serial"

    def submit(
        self,
        jobs: Iterable[SupportsJobId],
        run_one: Callable[[Any], Any],
    ) -> Iterator[tuple[int, Any]]:
        for job in jobs:
            yield job.job_id, run_one(job)


def _run_chunk(
    run_one: Callable[[Any], Any],
    chunk: tuple[SupportsJobId, ...],
    transport: str = "pickle",
    shm_min_bytes: int = DEFAULT_MIN_SHM_BYTES,
) -> Any:
    """Worker-side body: run one chunk of jobs, pairing records with ids.

    Returns either the plain ``[(job_id, record), ...]`` list (pickled back
    through the result pipe) or a :class:`~repro.execution.shm.ShmChunk`
    descriptor when the transport settings elect shared memory; the parent
    normalises both through :func:`~repro.execution.shm.decode_payload`.
    """
    results = [(job.job_id, run_one(job)) for job in chunk]
    if transport == "pickle":
        return results
    encoded = encode_chunk(
        results, min_bytes=0 if transport == "shared-memory" else shm_min_bytes
    )
    return results if encoded is None else encoded


class ProcessPoolBackend(ExecutionBackend):
    """Fan jobs out over a process pool, streaming records per finished chunk.

    Parameters
    ----------
    max_workers:
        Pool size; clamped to the job count at submit time.
    chunk_size:
        Jobs shipped to a worker per dispatch.  Defaults to roughly four
        chunks per worker capped at :data:`DEFAULT_CHUNK_CAP`, so large
        grids keep fine-grained dispatch (tail load-balancing) and small
        grids still amortise pickling.
    transport:
        How finished records travel back from the workers — one of
        :data:`TRANSPORTS`.  The default ``"auto"`` ships columnar payloads
        (numpy arrays, dicts of numpy columns) above ``shm_min_bytes``
        through :mod:`multiprocessing.shared_memory` and everything else
        through the classic pickle pipe; records are value-identical either
        way.
    shm_min_bytes:
        Payload-size floor (bytes per chunk) below which ``"auto"`` sticks
        with pickle — tiny payloads lose more to segment syscalls than they
        save in copies.
    chunking:
        Dispatch-size policy — one of :data:`CHUNKINGS`, or an
        :class:`~repro.execution.chunking.AdaptiveChunkPolicy` instance
        used as configuration.  The default ``"static"`` keeps the
        historical fixed-cap behaviour bit-identically; ``"adaptive"`` opts
        into target-lease-duration sizing (observed per-job wall time
        decides how many jobs travel per dispatch), the same policy the
        cluster coordinator leases with.  Ignored when ``chunk_size`` is
        explicit — a fixed size *is* a policy.  Records are bit-identical
        under every policy.
    """

    name = "process"

    def __init__(
        self,
        max_workers: int,
        chunk_size: int | None = None,
        transport: str = "auto",
        shm_min_bytes: int = DEFAULT_MIN_SHM_BYTES,
        chunking: str | AdaptiveChunkPolicy = "static",
    ) -> None:
        if max_workers < 1:
            raise ConfigurationError("max_workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError("chunk_size must be at least 1")
        if transport not in TRANSPORTS:
            raise ConfigurationError(
                f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
            )
        if shm_min_bytes < 0:
            raise ConfigurationError("shm_min_bytes must be non-negative")
        if not isinstance(chunking, AdaptiveChunkPolicy) and chunking not in CHUNKINGS:
            raise ConfigurationError(
                f"unknown chunking {chunking!r}; expected one of {CHUNKINGS} "
                "or an AdaptiveChunkPolicy instance"
            )
        self._max_workers = int(max_workers)
        self._chunk_size = chunk_size
        self._transport = transport
        self._shm_min_bytes = int(shm_min_bytes)
        self._chunking = chunking

    @property
    def max_workers(self) -> int:
        """Configured pool size."""
        return self._max_workers

    @property
    def transport(self) -> str:
        """Configured record transport (see :data:`TRANSPORTS`)."""
        return self._transport

    @property
    def chunking(self) -> str | AdaptiveChunkPolicy:
        """Configured dispatch-size policy (see :data:`CHUNKINGS`)."""
        return self._chunking

    def effective_chunk_size(self, n_jobs: int) -> int:
        """The chunk size a grid of ``n_jobs`` would be dispatched with.

        For the adaptive policy this is the *initial* dispatch size; later
        dispatches resize as per-job wall times are observed.
        """
        if self._chunk_size is not None:
            return self._chunk_size
        if self._chunking != "static":
            return self._adaptive_policy().chunk_size()
        return static_chunk_size(n_jobs, self._max_workers)

    def _adaptive_policy(self) -> AdaptiveChunkPolicy:
        """A fresh, unobserved policy for one submission."""
        if isinstance(self._chunking, AdaptiveChunkPolicy):
            return self._chunking.fresh()
        return AdaptiveChunkPolicy()

    def submit(
        self,
        jobs: Iterable[SupportsJobId],
        run_one: Callable[[Any], Any],
    ) -> Iterator[tuple[int, Any]]:
        """Stream records per finished chunk, surviving worker death.

        A worker that hard-exits (``os._exit``, OOM kill, an injected
        :class:`~repro.faults.WorkerCrashFault`) breaks the whole
        :class:`~concurrent.futures.ProcessPoolExecutor`: the chunk it was
        running *and* every chunk still pending raise
        :class:`~concurrent.futures.process.BrokenProcessPool`, and before
        this backend handled it the records of already-completed chunks were
        abandoned with the raise.  Now completed chunks have already been
        streamed by the time the break surfaces, and the affected jobs are
        retried one at a time, each in a fresh single-worker pool: a job
        that breaks *that* pool is unambiguously the culprit and yields a
        :class:`~repro.execution.base.WorkerCrash` marker, while innocent
        collateral jobs re-run (deterministically seeded, so to identical
        records).  Crash attribution is exact at the cost of running the
        post-break remainder serially — the failure path trades throughput
        for never misblaming a job.
        """
        jobs = tuple(jobs)
        if not jobs:
            return
        if self._transport != "pickle":
            ensure_tracker()
        if self._chunk_size is None and self._chunking != "static":
            yield from self._submit_adaptive(jobs, run_one)
            return
        chunk = self.effective_chunk_size(len(jobs))
        suspects: list[SupportsJobId] = []
        consumed: set = set()
        futures: dict = {}
        try:
            with ProcessPoolExecutor(
                max_workers=min(self._max_workers, len(jobs))
            ) as pool:
                futures = {
                    pool.submit(
                        _run_chunk,
                        run_one,
                        jobs[start : start + chunk],
                        self._transport,
                        self._shm_min_bytes,
                    ): jobs[start : start + chunk]
                    for start in range(0, len(jobs), chunk)
                }
                try:
                    for future in as_completed(futures):
                        consumed.add(future)
                        try:
                            payload = future.result()
                        except BrokenProcessPool:
                            suspects.extend(futures[future])
                            continue
                        yield from decode_payload(payload)
                finally:
                    # When the consumer abandons the stream (an interrupting
                    # progress hook, a raising chunk) cancel every not-yet-
                    # started chunk so teardown waits only for the chunks
                    # already running, not the whole remaining grid.
                    for future in futures:
                        future.cancel()
        finally:
            self._release_undecoded(futures, consumed)
        yield from self._rescue_suspects(jobs, suspects, run_one)

    def _submit_adaptive(
        self,
        jobs: tuple[SupportsJobId, ...],
        run_one: Callable[[Any], Any],
    ) -> Iterator[tuple[int, Any]]:
        """Incremental dispatch under the adaptive chunk-size policy.

        Unlike the static path (every chunk submitted up front), this keeps
        a bounded window of chunks in flight — two per worker, enough to
        hide dispatch latency without committing the whole tail to sizes
        chosen before anything was observed — and sizes each new chunk from
        the policy's running per-job wall-time estimate.  Same streaming
        semantics, same broken-pool recovery, bit-identical records.
        """
        policy = self._adaptive_policy()
        workers = min(self._max_workers, len(jobs))
        window = 2 * workers
        suspects: list[SupportsJobId] = []
        consumed: set = set()
        inflight: dict = {}
        seen: dict = {}
        position = 0
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                try:
                    broken = False
                    while position < len(jobs) or inflight:
                        while (
                            not broken
                            and position < len(jobs)
                            and len(inflight) < window
                        ):
                            size = min(policy.chunk_size(), len(jobs) - position)
                            chunk = jobs[position : position + size]
                            position += size
                            future = pool.submit(
                                _run_chunk,
                                run_one,
                                chunk,
                                self._transport,
                                self._shm_min_bytes,
                            )
                            inflight[future] = (chunk, time.perf_counter())
                            seen[future] = chunk
                        if not inflight:
                            break
                        done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                        for future in done:
                            chunk, started = inflight.pop(future)
                            consumed.add(future)
                            try:
                                payload = future.result()
                            except BrokenProcessPool:
                                # The pool is unusable from here on: the
                                # in-flight chunks all raise, and the
                                # undispatched tail joins the suspects for
                                # the one-per-fresh-pool recovery pass.
                                suspects.extend(chunk)
                                broken = True
                                continue
                            policy.observe(
                                len(chunk), time.perf_counter() - started
                            )
                            yield from decode_payload(payload)
                    if broken:
                        suspects.extend(jobs[position:])
                        position = len(jobs)
                finally:
                    for future in seen:
                        future.cancel()
        finally:
            self._release_undecoded(seen, consumed)
        yield from self._rescue_suspects(jobs, suspects, run_one)

    def _release_undecoded(self, futures: dict, consumed: set) -> None:
        """Free shared-memory payloads of settled-but-never-decoded chunks.

        Called after pool shutdown, so every future is settled.  Any
        completed-but-never-decoded chunk may hold a shared-memory segment;
        release it so abandoned streams cannot leak.
        """
        for future in futures:
            if future in consumed or future.cancelled():
                continue
            try:
                release_payload(future.result())
            except Exception:
                continue

    def _rescue_suspects(
        self,
        jobs: tuple[SupportsJobId, ...],
        suspects: list,
        run_one: Callable[[Any], Any],
    ) -> Iterator[tuple[int, Any]]:
        """Re-run each broken-pool suspect alone in a fresh single-worker pool.

        Submission order keeps the recovery pass deterministic regardless
        of which chunk happened to break first; a job that breaks its own
        private pool is unambiguously the culprit and yields a
        :class:`~repro.execution.base.WorkerCrash` marker.
        """
        order = {id(job): i for i, job in enumerate(jobs)}
        for job in sorted(suspects, key=lambda job: order[id(job)]):
            with ProcessPoolExecutor(max_workers=1) as rescue:
                try:
                    payload = rescue.submit(
                        _run_chunk,
                        run_one,
                        (job,),
                        self._transport,
                        self._shm_min_bytes,
                    ).result()
                    yield from decode_payload(payload)
                except BrokenProcessPool:
                    yield job.job_id, WorkerCrash(job_id=job.job_id)


class AsyncioBackend(ExecutionBackend):
    """Drive jobs through an asyncio event loop over a small thread pool.

    Jobs run in threads (``loop.run_in_executor``), so CPU-bound pure-Python
    work serialises on the GIL — the value of this backend is the execution
    *shape*: completion-order streaming through an event loop, which is what
    an I/O-bound backend (remote instruments, network services) looks like.
    Correctness and determinism are identical to the other backends.
    """

    name = "asyncio"

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ConfigurationError("max_workers must be at least 1")
        self._max_workers = int(max_workers)

    @property
    def max_workers(self) -> int:
        """Thread-pool size serving the event loop."""
        return self._max_workers

    async def _stream(
        self,
        jobs: tuple[SupportsJobId, ...],
        run_one: Callable[[Any], Any],
    ) -> AsyncIterator[tuple[int, Any]]:
        loop = asyncio.get_running_loop()
        with ThreadPoolExecutor(max_workers=min(self._max_workers, len(jobs))) as pool:

            async def one(job: SupportsJobId) -> tuple[int, Any]:
                return job.job_id, await loop.run_in_executor(pool, run_one, job)

            tasks = [asyncio.ensure_future(one(job)) for job in jobs]
            try:
                for future in asyncio.as_completed(tasks):
                    yield await future
            finally:
                # On early exit (a raising runner, an abandoned consumer)
                # cancel the stragglers and retrieve every outcome so no
                # task dies with an unobserved exception.
                for task in tasks:
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)

    def submit(
        self,
        jobs: Iterable[SupportsJobId],
        run_one: Callable[[Any], Any],
    ) -> Iterator[tuple[int, Any]]:
        jobs = tuple(jobs)
        if not jobs:
            return
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            pass
        else:
            # A nested run_until_complete would raise a bare "another loop
            # is running" mid-campaign (Jupyter/ipykernel executes user code
            # inside its own loop); fail up front with the workaround.
            raise ConfigurationError(
                "AsyncioBackend cannot run inside an already-running event "
                "loop (e.g. a Jupyter cell); use the serial or process "
                "backend there, or run the campaign from a plain thread"
            )
        # Bridge the async generator into the synchronous streaming contract:
        # drive the loop one record at a time so the consumer sees records as
        # they complete, and close the generator (cancelling stragglers) if
        # the consumer abandons iteration early.
        loop = asyncio.new_event_loop()
        stream = self._stream(jobs, run_one)
        try:
            while True:
                try:
                    yield loop.run_until_complete(stream.__anext__())
                except StopAsyncIteration:
                    break
        finally:
            try:
                loop.run_until_complete(stream.aclose())
            finally:
                loop.close()


def _process_spec(
    arg: str, n_workers: int, chunk_size: int | None
) -> ProcessPoolBackend:
    """Build from a ``"process:N"`` spec: ``N`` workers, overriding the knob."""
    try:
        workers = int(arg)
    except ValueError:
        raise ConfigurationError(
            f"malformed backend spec 'process:{arg}': expected an integer "
            "worker count, e.g. 'process:8'"
        ) from None
    if workers < 1:
        raise ConfigurationError(
            f"malformed backend spec 'process:{arg}': worker count must be "
            "at least 1"
        )
    return ProcessPoolBackend(workers, chunk_size)


register_backend("serial", lambda n_workers, chunk_size: SerialBackend())
register_backend(
    "process",
    lambda n_workers, chunk_size: ProcessPoolBackend(n_workers, chunk_size),
    spec_factory=_process_spec,
)
register_backend("asyncio", lambda n_workers, chunk_size: AsyncioBackend(n_workers))
