"""The run controller: everything around execution that is not scheduling.

:class:`RunController` sits between an orchestrator (the campaign engine)
and an :class:`~repro.execution.base.ExecutionBackend` and owns the four
concerns every backend would otherwise duplicate:

* **fault isolation** — ``run_one`` is wrapped by :func:`guarded_runner`
  *before* it ships to workers, so a raising job turns into an ``on_error``
  record inside the worker instead of an exception that aborts the batch
  and discards every completed record;
* **retry policy** — a :class:`RetryPolicy` re-runs a raising job up to
  ``max_attempts`` times before conceding the error record (jobs are
  seeded deterministically, so a retry re-runs the identical computation —
  retries exist for transient infrastructure faults, not flaky physics);
* **checkpoint journaling** — each record streams into a
  :class:`~repro.execution.checkpoint.CheckpointJournal` the moment it
  arrives, and journaled job ids are skipped on the next run;
* **progress callbacks** — fired in the parent, in completion order, with
  ``(n_done, n_total, record)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Iterable

from ..exceptions import ConfigurationError, WorkerCrashError
from .base import ExecutionBackend, ProgressCallback, SupportsJobId, WorkerCrash, crash_message
from .checkpoint import CheckpointJournal

__all__ = ["RetryPolicy", "RunController", "guarded_runner"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a raising job is re-attempted before it becomes a record.

    This is *runner-level* retry: the whole ``run_one(job)`` call is
    repeated inside the worker, and — unlike the simulated-clock probe
    retries of :class:`~repro.instrument.resilience.ProbeRetryPolicy` —
    its backoff and elapsed budget are genuine **wall-clock** waits,
    because the faults it targets (flaky I/O in a future remote backend, a
    custom runner's network call) live in real time.  The defaults (no
    backoff, no budget) keep behaviour bit-identical to a bare retry loop.

    ``max_attempts=1`` (the default) means no retries: the first exception
    is final.  Retries re-run the same deterministically seeded job, so
    they never help against deterministic failures.  Faults that destroy
    the worker itself (an OOM kill or injected crash breaking the process
    pool) cannot be retried from within it — the backend surfaces them as
    :class:`~repro.execution.base.WorkerCrash` markers, and the checkpoint
    journal plus resume is the recovery path.

    Attributes
    ----------
    max_attempts:
        Total attempts per job, including the first.
    backoff_s:
        Wall-clock sleep before the first retry, doubling on each further
        retry.  ``0`` (default) retries immediately.
    max_elapsed_s:
        Wall-clock budget across all of a job's attempts: once exceeded,
        no further retry is started (the attempt in progress is never
        interrupted — in-process code cannot safely preempt a runner).
        ``0`` (default) means unlimited.
    """

    max_attempts: int = 1
    backoff_s: float = 0.0
    max_elapsed_s: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if self.backoff_s < 0:
            raise ConfigurationError("backoff_s must be non-negative")
        if self.max_elapsed_s < 0:
            raise ConfigurationError("max_elapsed_s must be non-negative")


def _guarded_run(
    run_one: Callable[[Any], Any],
    on_error: Callable[[Any, BaseException], Any] | None,
    retry: RetryPolicy,
    job: SupportsJobId,
) -> Any:
    """Run one job, converting a (repeatedly) raising job into a record.

    Module-level so :func:`functools.partial` bindings of it stay picklable
    for process-based backends; the wrapper runs *inside* the worker, so
    with ``on_error`` set no exception ever crosses the process boundary.
    Without ``on_error`` the retry budget still applies, but the last
    attempt's exception propagates.
    """
    started = time.monotonic() if retry.max_elapsed_s else 0.0
    backoff = retry.backoff_s
    last_error: BaseException | None = None
    for attempt in range(retry.max_attempts):
        if attempt:
            if (
                retry.max_elapsed_s
                and time.monotonic() - started >= retry.max_elapsed_s
            ):
                break
            if backoff > 0:
                time.sleep(backoff)
                backoff *= 2.0
        try:
            return run_one(job)
        except Exception as exc:
            last_error = exc
    if on_error is None:
        raise last_error
    return on_error(job, last_error)


def guarded_runner(
    run_one: Callable[[Any], Any],
    on_error: Callable[[Any, BaseException], Any] | None,
    retry: RetryPolicy | None = None,
) -> Callable[[SupportsJobId], Any]:
    """A picklable wrapper of ``run_one`` applying retries and isolation.

    ``on_error(job, exception)`` builds the failure record once
    ``retry.max_attempts`` attempts have all raised (or the policy's
    wall-clock budget ran out first); it must itself be picklable for
    process-based backends (a module-level function).  With
    ``on_error=None`` the wrapper only retries — the final exception
    propagates to the caller.
    """
    return partial(_guarded_run, run_one, on_error, retry or RetryPolicy())


class RunController:
    """Drive a job batch through a backend with isolation, journal, progress.

    Parameters
    ----------
    backend:
        The :class:`~repro.execution.base.ExecutionBackend` that owns
        scheduling.
    retry:
        Attempts per job before ``on_error`` is consulted; default one.
        This retry is **runner-level** — the whole ``run_one(job)`` call
        repeats inside the worker — and its ``backoff_s`` /
        ``max_elapsed_s`` are **wall-clock** waits, unlike the
        simulated-time probe retries inside a session
        (:class:`~repro.instrument.resilience.ProbeRetryPolicy`).  Note
        that in-process code cannot preempt a truly hung runner; the
        worker-death path (crash markers plus journal resume) is the
        recovery story there.
    progress:
        Optional ``(n_done, n_total, record)`` callback fired in the parent
        after every completed job.  Jobs preloaded from the journal count
        toward ``n_done`` but do not fire the callback.
    journal:
        Optional :class:`~repro.execution.checkpoint.CheckpointJournal`.
        Existing entries are treated as completed work and skipped; new
        records are appended as they stream in.
    adopt:
        Optional predicate over journal-loaded records; entries it rejects
        are dropped and their jobs re-run (and re-journaled — a later
        journal line supersedes the earlier one).  The escape hatch for
        records a resume should *not* trust, e.g. failures from transient
        infrastructure faults.
    """

    def __init__(
        self,
        backend: ExecutionBackend,
        retry: RetryPolicy | None = None,
        progress: ProgressCallback | None = None,
        journal: CheckpointJournal | None = None,
        adopt: Callable[[Any], bool] | None = None,
    ) -> None:
        self._backend = backend
        self._retry = retry or RetryPolicy()
        self._progress = progress
        self._journal = journal
        self._adopt = adopt

    @property
    def backend(self) -> ExecutionBackend:
        """The scheduling backend this controller drives."""
        return self._backend

    def run(
        self,
        jobs: Iterable[SupportsJobId],
        run_one: Callable[[Any], Any],
        on_error: Callable[[Any, BaseException], Any] | None = None,
    ) -> dict[int, Any]:
        """Run every job not already journaled; return records by job id.

        With ``on_error`` set, a job whose ``run_one`` raises (after
        retries) contributes ``on_error(job, exc)`` as its record; without
        it, the retry budget still applies but the final exception
        propagates and aborts the run (the journal still holds every
        record that completed first).

        A :class:`~repro.execution.base.WorkerCrash` marker yielded by the
        backend (a pool worker died and took its job with it) is converted
        here the same way: ``on_error(job, WorkerCrashError(...))`` becomes
        the job's record — journaled, counted, and resumable like any other
        failure — or, without ``on_error``, the
        :class:`~repro.exceptions.WorkerCrashError` propagates.
        """
        jobs = tuple(jobs)
        wanted = {job.job_id for job in jobs}
        completed: dict[int, Any] = {}
        if self._journal is not None:
            completed = {
                job_id: record
                for job_id, record in self._journal.load().items()
                if job_id in wanted
                and (self._adopt is None or self._adopt(record))
            }
        pending = tuple(job for job in jobs if job.job_id not in completed)
        by_id = {job.job_id: job for job in pending}
        if on_error is not None or self._retry.max_attempts > 1:
            safe = guarded_runner(run_one, on_error, self._retry)
        else:
            safe = run_one
        n_done = len(completed)
        for job_id, record in self._backend.submit(pending, safe):
            if isinstance(record, WorkerCrash):
                error = WorkerCrashError(crash_message(job_id))
                if on_error is None:
                    raise error
                record = on_error(by_id[job_id], error)
            completed[job_id] = record
            if self._journal is not None:
                self._journal.append(job_id, record)
            n_done += 1
            if self._progress is not None:
                self._progress(n_done, len(jobs), record)
        return completed
