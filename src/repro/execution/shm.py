"""Zero-copy columnar record transport over ``multiprocessing.shared_memory``.

:class:`~repro.execution.backends.ProcessPoolBackend` normally ships each
finished chunk's records back to the parent by pickling them through the
result pipe.  For columnar payloads — a numpy array, or a dict of numpy
columns such as :meth:`repro.instrument.measurement.ProbeLog.as_arrays` — the
pickle round-trip copies every byte twice (serialise + deserialise) through
a pipe whose bandwidth is far below memcpy.  This module instead writes the
raw array bytes into one :class:`~multiprocessing.shared_memory.SharedMemory`
segment per chunk and sends only a tiny picklable descriptor
(:class:`ShmChunk`) across the pipe; the parent copies the arrays out and
unlinks the segment.

The protocol is strictly value-preserving: arrays come back with the same
dtype, shape, and bytes.  Anything non-columnar — campaign record
dataclasses, scalars, arrays with object dtype — is left to the ordinary
pickle path (:func:`encode_chunk` returns ``None``), so enabling the
transport never changes what a backend can carry, only how fast the
columnar payloads travel.

Lifecycle: the *worker* creates the segment and closes its mapping; the
*parent* attaches, copies out, closes, and unlinks.  On fork-started pools
(the Linux default) parent and workers share one resource tracker, so the
create/unlink pair balances and nothing leaks or warns.  A descriptor that
is never decoded (a consumer abandoning the stream mid-iteration) is
released by :func:`release_payload`, which the pool backend calls on every
undecoded completed future during teardown.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any

import numpy as np

__all__ = [
    "DEFAULT_MIN_SHM_BYTES",
    "ShmChunk",
    "decode_chunk",
    "decode_columnar_bytes",
    "decode_payload",
    "encode_chunk",
    "encode_columnar_bytes",
    "ensure_tracker",
    "release_payload",
]


def ensure_tracker() -> None:
    """Start the multiprocessing resource tracker in *this* process.

    Must run before a fork-started pool is created: the tracker is spawned
    lazily on first use, so if the first segment is created inside a forked
    worker, every worker spins up its own tracker and the parent's
    ``unlink()`` can never balance the worker-side registration — each
    worker tracker then warns about an "leaked" segment the parent already
    freed.  Pre-starting the tracker here makes all forked workers inherit
    the one instance, so create/unlink pairs balance cleanly.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:  # repro: allow[silent-fallback] -- platform without a resource tracker: the transport still works, cleanup just loses its safety net
        pass

#: Below this many payload bytes per chunk the pickle pipe wins: the segment
#: create/attach/unlink syscalls cost more than the copy they avoid.
DEFAULT_MIN_SHM_BYTES = 1 << 16

#: Array offsets inside the segment are padded to this alignment so every
#: reconstructed view is safely aligned for any numpy dtype.
_ALIGN = 64


@dataclass(frozen=True)
class _ArraySpec:
    """Placement of one array inside the shared segment."""

    key: str
    dtype: np.dtype
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class _RecordSpec:
    """One ``(job_id, record)`` pair: a bare array or a dict of columns."""

    job_id: int
    is_mapping: bool
    arrays: tuple[_ArraySpec, ...]


@dataclass(frozen=True)
class ShmChunk:
    """Picklable descriptor of one chunk's records in a shared segment."""

    shm_name: str
    total_bytes: int
    records: tuple[_RecordSpec, ...]


def _columnar_arrays(record: Any) -> dict[str, np.ndarray] | None:
    """The record's arrays keyed by column name, or ``None`` if not columnar."""
    if isinstance(record, np.ndarray):
        arrays: dict[str, Any] = {"": record}
    elif isinstance(record, dict) and record:
        arrays = record
    else:
        return None
    out: dict[str, np.ndarray] = {}
    for key, value in arrays.items():
        if not isinstance(key, str) or not isinstance(value, np.ndarray):
            return None
        if value.dtype.hasobject:
            return None
        out[key] = value
    return out


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def encode_chunk(
    results: list[tuple[int, Any]], min_bytes: int = DEFAULT_MIN_SHM_BYTES
) -> ShmChunk | None:
    """Pack a chunk's records into a fresh shared segment (worker side).

    Returns ``None`` — meaning "use pickle" — when any record is
    non-columnar or the total payload is below ``min_bytes``.  On success
    the segment stays allocated for the parent to decode; the caller must
    guarantee the returned descriptor reaches :func:`decode_chunk` or
    :func:`release_payload`.
    """
    per_record: list[tuple[int, bool, dict[str, np.ndarray]]] = []
    total = 0
    for job_id, record in results:
        arrays = _columnar_arrays(record)
        if arrays is None:
            return None
        per_record.append((job_id, not isinstance(record, np.ndarray), arrays))
        for value in arrays.values():
            total = _aligned(total) + value.nbytes
    if total < min_bytes:
        return None
    segment = shared_memory.SharedMemory(create=True, size=max(total, 1))
    try:
        offset = 0
        specs: list[_RecordSpec] = []
        for job_id, is_mapping, arrays in per_record:
            placed: list[_ArraySpec] = []
            for key, value in arrays.items():
                offset = _aligned(offset)
                view = np.ndarray(
                    value.shape, dtype=value.dtype, buffer=segment.buf, offset=offset
                )
                view[...] = value
                placed.append(_ArraySpec(key, value.dtype, value.shape, offset))
                offset += value.nbytes
            specs.append(_RecordSpec(job_id, is_mapping, tuple(placed)))
        chunk = ShmChunk(
            shm_name=segment.name, total_bytes=total, records=tuple(specs)
        )
    except BaseException:
        segment.close()
        segment.unlink()
        raise
    segment.close()
    return chunk


def decode_chunk(chunk: ShmChunk) -> list[tuple[int, Any]]:
    """Rebuild the records from a descriptor and free the segment (parent).

    Every array is copied out of the segment, so the returned records own
    their memory and the segment can be unlinked immediately.
    """
    segment = shared_memory.SharedMemory(name=chunk.shm_name)
    try:
        results: list[tuple[int, Any]] = []
        for spec in chunk.records:
            arrays = {
                placed.key: np.ndarray(
                    placed.shape,
                    dtype=placed.dtype,
                    buffer=segment.buf,
                    offset=placed.offset,
                ).copy()
                for placed in spec.arrays
            }
            record: Any = arrays if spec.is_mapping else arrays[""]
            results.append((spec.job_id, record))
        return results
    finally:
        segment.close()
        segment.unlink()


def encode_columnar_bytes(record: Any) -> bytes | None:
    """Pack one columnar record into a self-describing byte string.

    The TCP sibling of :func:`encode_chunk`: same columnar detection, same
    aligned raw-bytes layout, but the destination is a plain ``bytes``
    payload (for the :mod:`repro.cluster` wire) rather than a shared-memory
    segment.  Returns ``None`` for non-columnar records — the caller falls
    back to another encoding, exactly like the pool's pickle fallback.

    Layout: 4-byte big-endian header length, a strict-JSON header listing
    each array's key, dtype, shape, and offset, then the raw array bytes at
    64-byte-aligned offsets (relative to the end of the header).
    """
    arrays = _columnar_arrays(record)
    if arrays is None:
        return None
    placed: list[tuple[str, str, tuple[int, ...], int]] = []
    offset = 0
    for key, value in arrays.items():
        offset = _aligned(offset)
        placed.append((key, value.dtype.str, value.shape, offset))
        offset += value.nbytes
    header = json.dumps(
        {
            "is_mapping": not isinstance(record, np.ndarray),
            "arrays": [
                [key, dtype, list(shape), start] for key, dtype, shape, start in placed
            ],
        },
        allow_nan=False,
    ).encode("utf-8")
    body = bytearray(offset)
    for (key, _, _, start), value in zip(placed, arrays.values()):
        raw = np.ascontiguousarray(value)
        body[start : start + raw.nbytes] = raw.tobytes()
    return struct.pack(">I", len(header)) + header + bytes(body)


def decode_columnar_bytes(blob: bytes) -> Any:
    """Rebuild the record packed by :func:`encode_columnar_bytes`."""
    (header_len,) = struct.unpack_from(">I", blob, 0)
    header = json.loads(blob[4 : 4 + header_len].decode("utf-8"))
    body = memoryview(blob)[4 + header_len :]
    arrays: dict[str, np.ndarray] = {}
    for key, dtype_str, shape, start in header["arrays"]:
        dtype = np.dtype(dtype_str)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        arrays[key] = (
            np.frombuffer(body, dtype=dtype, count=count, offset=start)
            .reshape(tuple(shape))
            .copy()
        )
    if header["is_mapping"]:
        return arrays
    return arrays[""]


def decode_payload(payload: Any) -> list[tuple[int, Any]]:
    """Normalise a worker result: decode a :class:`ShmChunk`, pass lists through."""
    if isinstance(payload, ShmChunk):
        return decode_chunk(payload)
    return payload


def release_payload(payload: Any) -> None:
    """Free a payload that will never be decoded (abandoned stream teardown).

    Safe to call on any worker result; already-freed or non-shm payloads
    are ignored.
    """
    if not isinstance(payload, ShmChunk):
        return
    try:
        segment = shared_memory.SharedMemory(name=payload.shm_name)
    except FileNotFoundError:
        return
    segment.close()
    segment.unlink()
