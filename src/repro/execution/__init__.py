"""Pluggable execution backends for batch workloads.

This package is the execution-policy layer promised by the campaign
engine's original contract: *new execution backends slot in behind*
:class:`~repro.campaign.engine.TuningCampaign` *without touching the job or
result schema*.  It knows nothing about tuning — jobs are anything with a
``job_id``, records are whatever ``run_one`` returns — so the same layer
can later serve sharded extraction, dataset generation, or remote-hardware
drivers.

* :class:`~repro.execution.base.ExecutionBackend` — the streaming protocol:
  ``submit(jobs, run_one)`` yields ``(job_id, record)`` in completion order.
* :class:`~repro.execution.backends.SerialBackend`,
  :class:`~repro.execution.backends.ProcessPoolBackend`,
  :class:`~repro.execution.backends.AsyncioBackend` — the stock
  implementations, bit-identical per job at any worker count.
* :class:`~repro.execution.controller.RunController` — retry policy,
  per-job fault isolation, progress callbacks, and incremental JSONL
  checkpointing via
  :class:`~repro.execution.checkpoint.CheckpointJournal`, shared by every
  backend.

Typical direct use (the campaign engine wires all of this up for you)::

    from repro.execution import ProcessPoolBackend, RunController

    controller = RunController(ProcessPoolBackend(max_workers=4))
    records = controller.run(jobs, run_one, on_error=make_error_record)
"""

from .backends import (
    CHUNKINGS,
    DEFAULT_CHUNK_CAP,
    TRANSPORTS,
    AsyncioBackend,
    ProcessPoolBackend,
    SerialBackend,
)
from .base import (
    ExecutionBackend,
    ProgressCallback,
    SupportsJobId,
    WorkerCrash,
    backend_from_spec,
    backend_names,
    crash_message,
    register_backend,
)
from .checkpoint import CheckpointJournal
from .chunking import AdaptiveChunkPolicy, static_chunk_size
from .controller import RetryPolicy, RunController, guarded_runner
from .shm import (
    DEFAULT_MIN_SHM_BYTES,
    ShmChunk,
    decode_chunk,
    decode_columnar_bytes,
    encode_chunk,
    encode_columnar_bytes,
)

# Imported for its registration side effect: loading the execution layer
# must always make the "cluster" spec resolvable, exactly like the three
# stock backends above.  Deferred to the bottom so the cluster package can
# import .base/.chunking/.shm without a cycle.
from ..cluster import backend as _cluster_backend  # noqa: E402,F401

__all__ = [
    "AdaptiveChunkPolicy",
    "AsyncioBackend",
    "CHUNKINGS",
    "CheckpointJournal",
    "DEFAULT_CHUNK_CAP",
    "DEFAULT_MIN_SHM_BYTES",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "ProgressCallback",
    "RetryPolicy",
    "RunController",
    "SerialBackend",
    "ShmChunk",
    "SupportsJobId",
    "TRANSPORTS",
    "WorkerCrash",
    "backend_from_spec",
    "backend_names",
    "crash_message",
    "decode_chunk",
    "decode_columnar_bytes",
    "encode_chunk",
    "encode_columnar_bytes",
    "guarded_runner",
    "register_backend",
    "static_chunk_size",
]
