"""Durable JSONL checkpoint journal for streaming batch runs.

A journal is the crash-safety half of the streaming contract: as records
arrive from an :class:`~repro.execution.base.ExecutionBackend`, the
:class:`~repro.execution.controller.RunController` appends one JSON line per
record.  Each append is written and flushed atomically enough that a killed
run leaves a *strict prefix* of complete lines plus at most one truncated
tail line, which :meth:`CheckpointJournal.load` tolerates by stopping at the
first unparsable line.  The next :meth:`append` then truncates the file back
to that valid prefix before writing, so a journal heals across any number of
kill/resume cycles — later loads never lose records that were appended after
a mangled tail.  Resuming is then just "load the journal, skip those job
ids, run the rest, append" — and because records round-trip through JSON
exactly (Python serialises floats by shortest-repr), a resumed run merges
bit-identically with the records the dead run already produced.

A journal may carry a ``fingerprint``: an opaque caller-supplied string
written as a header line on first append and checked on load, so resuming a
campaign against a journal written by a *different* campaign (same file
path, different grid/seed) fails loudly instead of silently adopting the
wrong records.

The journal is generic: it stores whatever ``serialize(record)`` returns
(any JSON-serialisable dict) and rebuilds records with ``deserialize``.
The campaign layer plugs in
:meth:`~repro.campaign.results.CampaignJobRecord.as_dict` /
:meth:`~repro.campaign.results.CampaignJobRecord.from_dict`.  All file I/O
is binary so the healing offsets are exact byte positions.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable

from ..exceptions import ConfigurationError
from ..strictjson import decode_tree
from ..strictjson import dumps as _strict_dumps

__all__ = ["CheckpointJournal"]


def _identity(value: Any) -> Any:
    return value


class CheckpointJournal:
    """Append-only JSONL record journal keyed by job id.

    Parameters
    ----------
    path:
        The journal file.  Created (with parents) on first append; a
        missing file loads as empty.
    serialize / deserialize:
        Record <-> JSON-dict converters; identity by default, so plain
        dict records need no configuration.
    fingerprint:
        Optional identity of the run this journal belongs to.  Written as
        a header line when the journal is first created and compared on
        :meth:`load`: a mismatch raises
        :class:`~repro.exceptions.ConfigurationError` rather than letting
        a resume adopt another run's records.  A journal without a header
        (or a journal opened without a fingerprint) is accepted as-is.
    """

    def __init__(
        self,
        path: str | Path,
        serialize: Callable[[Any], dict] | None = None,
        deserialize: Callable[[dict], Any] | None = None,
        fingerprint: str | None = None,
    ) -> None:
        self._path = Path(path)
        self._serialize = serialize or _identity
        self._deserialize = deserialize or _identity
        self._fingerprint = fingerprint
        # Byte length of the valid line prefix found by the last load();
        # None until a load has scanned the file.  append() truncates back
        # to this before writing when the last load found trailing junk.
        self._valid_bytes: int | None = None

    @property
    def path(self) -> Path:
        """Where the journal lives."""
        return self._path

    def load(self) -> dict[int, Any]:
        """Completed records keyed by job id; ``{}`` for a missing journal.

        Reading stops at the first unparsable or incomplete line: a run
        killed mid-append leaves at most one truncated tail line, so
        everything before it is a trustworthy prefix (the next
        :meth:`append` truncates the junk away).  Later duplicates of a
        job id win (a retried-and-rejournaled job supersedes itself).

        Raises
        ------
        ConfigurationError
            When both the journal's header line and this instance carry a
            fingerprint and they disagree — the file belongs to a
            different run.
        """
        if not self._path.exists():
            self._valid_bytes = None
            return {}
        completed: dict[int, Any] = {}
        valid_bytes = 0
        expect_header = True
        lines = self._path.read_bytes().splitlines(keepends=True)
        for index, line in enumerate(lines):
            if not line.endswith(b"\n"):
                # A complete line always carries its newline (written in the
                # same append).  A newline-less tail is a line cut mid-write
                # — even when the cut happens to leave parsable JSON, which
                # would otherwise let the next append glue onto it and
                # corrupt the file for every later load.
                self._require_final(lines, index)
                break
            stripped = line.strip()
            if not stripped:
                valid_bytes += len(line)
                continue
            try:
                entry = json.loads(stripped)
                if expect_header and isinstance(entry, dict) and "fingerprint" in entry:
                    found = entry["fingerprint"]
                    if self._fingerprint is not None and found != self._fingerprint:
                        raise ConfigurationError(
                            f"checkpoint journal {self._path} belongs to a "
                            f"different run (journal fingerprint {found!r}, "
                            f"expected {self._fingerprint!r}); use a fresh "
                            "journal path or delete the stale file"
                        )
                    expect_header = False
                    valid_bytes += len(line)
                    continue
                job_id = int(entry["job_id"])
                record = self._deserialize(decode_tree(entry["record"]))
            except ConfigurationError:
                raise
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                # A truncated tail from a killed run: keep the prefix.  Only
                # the FINAL line can be a kill artefact — an unparsable line
                # *followed by* records means mid-file corruption (bit rot,
                # an incompatible writer), and healing would silently delete
                # the valid records after it.
                self._require_final(lines, index)
                break
            expect_header = False
            completed[job_id] = record
            valid_bytes += len(line)
        self._valid_bytes = valid_bytes
        return completed

    def _require_final(self, lines: list[bytes], index: int) -> None:
        """Raise unless every line after ``index`` is blank."""
        if any(line.strip() for line in lines[index + 1 :]):
            raise ConfigurationError(
                f"checkpoint journal {self._path} is corrupt mid-file "
                f"(unreadable line {index + 1} is followed by more records); "
                "refusing to heal — that would silently discard the records "
                "after it"
            )

    def append(self, job_id: int, record: Any) -> None:
        """Durably append one completed record as a single JSON line.

        If the last :meth:`load` found a truncated tail (a line killed
        mid-write), the file is first cut back to the valid prefix so the
        mangled bytes never shadow the records appended after them.  A
        brand-new (or fully truncated) journal with a configured
        fingerprint gets the header line written first.
        """
        line = self._encode({"job_id": int(job_id), "record": self._serialize(record)})
        self._path.parent.mkdir(parents=True, exist_ok=True)
        if (
            self._valid_bytes is None
            and self._path.exists()
            and self._path.stat().st_size > 0
        ):
            # First touch of an existing file on this instance: scan it so
            # the healing guarantee holds even for append-without-load use
            # (also surfaces a fingerprint mismatch before we write).
            self.load()
        with open(self._path, "ab") as handle:
            size = handle.tell()  # binary append mode positions at EOF
            if self._valid_bytes is not None and size > self._valid_bytes:
                # Bytes appeared past the prefix this instance last saw.
                # Re-verify before cutting: complete parsable lines are
                # another writer's durable records (adopt them); only
                # genuine junk — a killed run's torn tail — is truncated.
                keep = self._valid_bytes + self._tail_extension(self._valid_bytes)
                if size > keep:
                    handle.truncate(keep)
                self._valid_bytes = keep
                size = keep
            if size == 0 and self._fingerprint is not None:
                header = self._encode({"fingerprint": self._fingerprint})
                handle.write(header)
                self._note_written(len(header))
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())  # survive power loss, not just SIGKILL
            self._note_written(len(line))

    def _tail_extension(self, start: int) -> int:
        """Bytes of complete, parsable lines sitting after ``start``.

        Applies the same refuse-to-heal policy as :meth:`load`: an
        unparsable line with records after it is mid-file corruption and
        raises, rather than letting the caller truncate valid data away.
        """
        extension = 0
        lines = self._path.read_bytes()[start:].splitlines(keepends=True)
        for index, line in enumerate(lines):
            parsable = line.endswith(b"\n")
            stripped = line.strip()
            if parsable and stripped:
                try:
                    entry = json.loads(stripped)
                    int(entry["job_id"])
                    self._deserialize(decode_tree(entry["record"]))
                except Exception:
                    parsable = False
            if not parsable:
                self._require_final(lines, index)
                break
            extension += len(line)
        return extension

    @staticmethod
    def _encode(entry: dict) -> bytes:
        # Tagged strict JSON: a record's raw non-finite floats are written
        # as {"__nonfinite__": ...} dicts (untagged again by load) instead
        # of the invalid NaN/Infinity tokens, so the journal stays readable
        # by any JSON parser while float("inf") records still round-trip.
        return (_strict_dumps(entry) + "\n").encode("utf-8")

    def _note_written(self, n_bytes: int) -> None:
        if self._valid_bytes is not None:
            self._valid_bytes += n_bytes
