"""Deterministic seed derivation for independent child runs.

Several layers of the library launch *multiple* seeded simulations from one
user-supplied seed: the array extractor runs ``n - 1`` pairwise sessions, the
auto-tuning workflow runs a coarse window search followed by a fine
extraction, and a tuning campaign fans out a whole grid of jobs.  Deriving
the child seeds arithmetically (``seed + i``) makes neighbouring runs share
overlapping noise streams — run ``seed=7`` and run ``seed=8`` would reuse
each other's noise fields wholesale.  The numpy-recommended fix is
:meth:`numpy.random.SeedSequence.spawn`, which hashes the parent entropy with
the child index so every child stream is statistically independent of every
other child *and* of the children of any other root seed.

All seed-accepting entry points in this library take
``int | numpy.random.SeedSequence | None`` and pass the value straight to
:func:`numpy.random.default_rng`, so spawned children flow through the
existing plumbing unchanged.
"""

from __future__ import annotations

import numpy as np


def as_seed_sequence(seed: int | np.random.SeedSequence) -> np.random.SeedSequence:
    """Wrap an integer seed into a :class:`~numpy.random.SeedSequence`."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(int(seed))


def spawn_seeds(
    seed: int | np.random.SeedSequence | None, n_children: int
) -> tuple[np.random.SeedSequence | None, ...]:
    """Derive ``n_children`` independent child seeds from one root seed.

    ``None`` stays ``None`` for every child: an unseeded run draws fresh OS
    entropy per child anyway, so there is nothing to derive.  The function is
    deterministic for *every* root type: integer roots are re-wrapped on each
    call, and :class:`~numpy.random.SeedSequence` roots are rebuilt from
    their ``(entropy, spawn_key)`` identity so the caller's spawn counter is
    neither consulted nor advanced — ``spawn_seeds(root, 3)`` always returns
    the same three children, which is what lets sequential and parallel runs
    of the same campaign stay bit-identical.
    """
    if n_children < 0:
        raise ValueError("n_children must be non-negative")
    if seed is None:
        return (None,) * n_children
    root = as_seed_sequence(seed)
    root = np.random.SeedSequence(entropy=root.entropy, spawn_key=root.spawn_key)
    return tuple(root.spawn(n_children))
