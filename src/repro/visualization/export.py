"""Exporting figure data as CSV / NPZ files.

The benchmark harness writes the data behind every reproduced figure to disk
so it can be plotted later with any tool; these helpers keep the formats
consistent (CSV with a header row for tabular data, compressed NPZ for pixel
arrays).
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..exceptions import ConfigurationError
from ..physics.csd import ChargeStabilityDiagram


def export_table_csv(
    path: str | Path, headers: list[str], rows: list[list[object]]
) -> Path:
    """Write a table (headers + rows) to a CSV file, creating parent dirs."""
    if not headers:
        raise ConfigurationError("headers must not be empty")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            if len(row) != len(headers):
                raise ConfigurationError(
                    f"row length {len(row)} does not match header length {len(headers)}"
                )
            writer.writerow(row)
    return path


def export_probe_map(
    path: str | Path,
    csd: ChargeStabilityDiagram,
    probe_mask: np.ndarray,
) -> Path:
    """Write a diagram and its probed-pixel mask to a compressed NPZ file."""
    probe_mask = np.asarray(probe_mask, dtype=bool)
    if probe_mask.shape != csd.shape:
        raise ConfigurationError(
            f"probe mask shape {probe_mask.shape} does not match CSD shape {csd.shape}"
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        data=csd.data,
        x_voltages=csd.x_voltages,
        y_voltages=csd.y_voltages,
        probe_mask=probe_mask,
    )
    return path


def export_points_csv(path: str | Path, points: list[tuple[int, int]]) -> Path:
    """Write a list of ``(row, col)`` points to CSV."""
    return export_table_csv(path, ["row", "col"], [[row, col] for row, col in points])
