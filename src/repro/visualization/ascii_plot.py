"""Text-mode rendering of charge-stability diagrams and probe maps.

The evaluation environment has no plotting library, so every "figure" of the
paper is reproduced either as exported arrays (:mod:`repro.visualization.export`)
or as ASCII art: a grey-scale heat map of the sensor current, optionally with
probed pixels or transition points overlaid.  Rows are printed top-down so the
highest ``V_P2`` appears at the top, like a conventional CSD plot.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..physics.csd import ChargeStabilityDiagram

#: Characters from dark to bright used for the heat map.  The ``+`` character
#: is deliberately absent so overlaid transition points stay distinguishable.
DEFAULT_RAMP = " .,:;=*#%@"


def _downsample(data: np.ndarray, max_rows: int, max_cols: int) -> tuple[np.ndarray, int, int]:
    rows, cols = data.shape
    row_bin = max(1, int(np.ceil(rows / max_rows)))
    col_bin = max(1, int(np.ceil(cols / max_cols)))
    trimmed = data[: (rows // row_bin) * row_bin, : (cols // col_bin) * col_bin]
    reshaped = trimmed.reshape(
        trimmed.shape[0] // row_bin, row_bin, trimmed.shape[1] // col_bin, col_bin
    )
    return reshaped.mean(axis=(1, 3)), row_bin, col_bin


def ascii_heatmap(
    data: np.ndarray,
    max_rows: int = 40,
    max_cols: int = 80,
    ramp: str = DEFAULT_RAMP,
) -> str:
    """Render a 2-D array as an ASCII heat map (row 0 printed at the bottom)."""
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ConfigurationError("ascii_heatmap expects a 2-D array")
    if max_rows < 1 or max_cols < 1:
        raise ConfigurationError("max_rows and max_cols must be positive")
    if len(ramp) < 2:
        raise ConfigurationError("ramp must contain at least two characters")
    binned, _, _ = _downsample(data, max_rows, max_cols)
    lo, hi = float(np.nanmin(binned)), float(np.nanmax(binned))
    span = hi - lo if hi > lo else 1.0
    normalised = (binned - lo) / span
    indices = np.clip((normalised * (len(ramp) - 1)).round().astype(int), 0, len(ramp) - 1)
    lines = []
    for row in indices[::-1]:  # highest V_P2 first
        lines.append("".join(ramp[i] for i in row))
    return "\n".join(lines)


def ascii_probe_map(
    shape: tuple[int, int],
    probed_pixels: list[tuple[int, int]] | np.ndarray,
    max_rows: int = 40,
    max_cols: int = 80,
    mark: str = "o",
    background: str = ".",
) -> str:
    """Render which pixels were probed (the paper's Figure 7 as text)."""
    rows, cols = shape
    mask = np.zeros((rows, cols), dtype=float)
    if isinstance(probed_pixels, np.ndarray) and probed_pixels.dtype == bool:
        mask[probed_pixels] = 1.0
    else:
        for row, col in probed_pixels:
            if 0 <= row < rows and 0 <= col < cols:
                mask[row, col] = 1.0
    binned, _, _ = _downsample(mask, max_rows, max_cols)
    lines = []
    for row in binned[::-1]:
        lines.append("".join(mark if value > 0 else background for value in row))
    return "\n".join(lines)


def ascii_csd(
    csd: ChargeStabilityDiagram,
    max_rows: int = 40,
    max_cols: int = 80,
    overlay_points: list[tuple[int, int]] | None = None,
) -> str:
    """Heat map of a diagram with optional transition points overlaid as ``+``."""
    rendering = ascii_heatmap(csd.data, max_rows=max_rows, max_cols=max_cols)
    if not overlay_points:
        return rendering
    lines = [list(line) for line in rendering.split("\n")]
    n_lines = len(lines)
    n_chars = len(lines[0]) if lines else 0
    rows, cols = csd.shape
    for row, col in overlay_points:
        if not (0 <= row < rows and 0 <= col < cols):
            continue
        line_index = n_lines - 1 - int(row * n_lines / rows)
        char_index = int(col * n_chars / cols)
        if 0 <= line_index < n_lines and 0 <= char_index < n_chars:
            lines[line_index][char_index] = "+"
    return "\n".join("".join(line) for line in lines)


def side_by_side(left: str, right: str, gap: int = 4, titles: tuple[str, str] | None = None) -> str:
    """Lay two ASCII blocks side by side (used for original vs virtualized CSDs)."""
    left_lines = left.split("\n")
    right_lines = right.split("\n")
    width = max(len(line) for line in left_lines)
    height = max(len(left_lines), len(right_lines))
    left_lines += [""] * (height - len(left_lines))
    right_lines += [""] * (height - len(right_lines))
    lines = []
    if titles is not None:
        lines.append(titles[0].ljust(width + gap) + titles[1])
    for l_line, r_line in zip(left_lines, right_lines):
        lines.append(l_line.ljust(width + gap) + r_line)
    return "\n".join(lines)
