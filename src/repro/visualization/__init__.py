"""Text-mode figure rendering and data export (no plotting dependencies)."""

from .ascii_plot import (
    DEFAULT_RAMP,
    ascii_csd,
    ascii_heatmap,
    ascii_probe_map,
    side_by_side,
)
from .export import export_points_csv, export_probe_map, export_table_csv

__all__ = [
    "DEFAULT_RAMP",
    "ascii_csd",
    "ascii_heatmap",
    "ascii_probe_map",
    "side_by_side",
    "export_points_csv",
    "export_probe_map",
    "export_table_csv",
]
