"""Fault-injecting measurement backend wrapper.

:class:`FaultyBackend` sits between a :class:`~repro.instrument.measurement.ChargeSensorMeter`
and any inner :class:`~repro.instrument.measurement.MeasurementBackend`,
applying probe-scope fault models to every read.  Draws are keyed by the
probe timestamp (see :mod:`repro.faults.models`), so the wrapper is
stateless between calls and scalar/batched probe paths fault identically.

The meter's resilient path does not call ``currents`` directly; it asks for
a :class:`BatchPlan` via :meth:`FaultyBackend.plan_batch` — the corrupted
values for a whole candidate batch plus the first *disruption* (a stall or
a raising error), if any.  That lets the meter commit the fault-free prefix
in one vectorised step and handle only the disrupted probe through its
retry loop, keeping chaos runs close to clean-path speed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..instrument.measurement import MeasurementBackend
from .models import FaultModel

__all__ = ["BatchPlan", "FaultyBackend", "ProbeDisruption", "probe_fault_models"]

#: Spawn-key branch for fault streams.  DeviceBackend derives its temporal
#: noise and drift children at (2**31, 0) and (2**31, 1) off the same root,
#: so fault keys start at (2**31, 2): sharing one seed between the inner
#: backend and its fault wrapper never collides streams.
_FAULT_SPAWN_OFFSET = 2


@dataclass(frozen=True)
class ProbeDisruption:
    """The first probe of a planned batch that does not read cleanly.

    Exactly one of the two effects is set: ``error`` for a raising fault,
    a positive ``stall_s`` for a hang.
    """

    index: int
    stall_s: float = 0.0
    error: Exception | None = None


@dataclass(frozen=True)
class BatchPlan:
    """What a candidate batch of probes would return.

    ``values`` covers every planned probe (corruptions applied);
    ``disruption`` is the first stall/error, or ``None`` for a clean batch.
    Probes after the disruption index carry values too, but the meter must
    not commit them — the disruption shifts the clock, which shifts their
    timestamps and therefore their draws.
    """

    values: np.ndarray
    disruption: ProbeDisruption | None = None


def probe_fault_models(models) -> tuple[FaultModel, ...]:
    """The probe-scope subset of a fault model collection."""
    return tuple(m for m in models if m.scope == "probe")


class FaultyBackend(MeasurementBackend):
    """Apply probe-scope fault models on top of any measurement backend.

    Parameters
    ----------
    inner:
        The backend producing clean values.
    models:
        Probe-scope fault models, applied in order (corruptions compose;
        the first stall or error at a probe wins).
    seed:
        Seed for the per-model fault keys.  May be the *same* seed object
        the inner backend uses: children are derived by extending the spawn
        key at a reserved branch, never by ``spawn()``, so the caller's and
        the inner backend's streams are untouched.
    """

    def __init__(
        self,
        inner: MeasurementBackend,
        models,
        seed: int | np.random.SeedSequence | None = None,
    ) -> None:
        self._inner = inner
        self._models = tuple(models)
        if any(m.scope != "probe" for m in self._models):
            bad = next(m for m in self._models if m.scope != "probe")
            raise ValueError(
                f"{type(bad).__name__} is {bad.scope}-scope; FaultyBackend "
                "applies probe-scope models only (worker-scope models are "
                "applied by the campaign layer)"
            )
        self._seed = seed
        self._keys_cache: tuple[np.uint64, ...] | None = None

    # ------------------------------------------------------------------
    @property
    def inner(self) -> MeasurementBackend:
        """The wrapped backend."""
        return self._inner

    @property
    def models(self) -> tuple[FaultModel, ...]:
        """The applied fault models."""
        return self._models

    @property
    def x_voltages(self) -> np.ndarray:
        return self._inner.x_voltages

    @property
    def y_voltages(self) -> np.ndarray:
        return self._inner.y_voltages

    @property
    def is_time_dependent(self) -> bool:
        """Always true: fault draws are keyed by the probe timestamp."""
        return True

    def __getattr__(self, name: str):
        # Reached only when normal lookup fails: forward the inner
        # backend's extra surface (``gate_x_name``/``gate_y_name``, a
        # DatasetBackend's ``csd``) so wrapping stays invisible to
        # consumers that sniff backend attributes.  Private names are not
        # forwarded — during unpickling ``_inner`` itself is briefly
        # missing, and forwarding would recurse.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._inner, name)

    def _keys(self) -> tuple[np.uint64, ...]:
        if self._keys_cache is None:
            root = (
                self._seed
                if isinstance(self._seed, np.random.SeedSequence)
                else np.random.SeedSequence(self._seed)
            )
            self._keys_cache = tuple(
                np.random.SeedSequence(
                    entropy=root.entropy,
                    spawn_key=root.spawn_key + (2**31, _FAULT_SPAWN_OFFSET + i),
                ).generate_state(1, dtype=np.uint64)[0]
                for i in range(len(self._models))
            )
        return self._keys_cache

    # ------------------------------------------------------------------
    def plan_batch(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        times_s: np.ndarray,
    ) -> BatchPlan:
        """Plan a candidate batch scheduled at the given timestamps.

        Returns the corrupted values and the first disruption.  Pure: the
        same ``(rows, cols, times)`` always yield the same plan, which is
        what lets the meter re-plan a disrupted probe after committing the
        prefix and get the identical outcome.
        """
        rows, cols = self._inner.validate_pixels(rows, cols)
        times = np.ascontiguousarray(np.asarray(times_s, dtype=float)).ravel()
        if times.size != rows.size:
            raise ValueError(
                f"expected {rows.size} probe timestamps, got {times.size}"
            )
        inner_times = times if self._inner.is_time_dependent else None
        values = np.asarray(
            self._inner.currents(rows, cols, times_s=inner_times), dtype=float
        )
        keys = self._keys()
        stalls = np.zeros(times.shape, dtype=float)
        erroring = np.zeros(times.shape, dtype=bool)
        error_model = np.full(times.shape, -1, dtype=np.int64)
        for i, model in enumerate(self._models):
            values = model.corrupt(values, times, keys[i])
            stalls = stalls + model.stall_s(times, keys[i])
            mask = model.error_mask(times, keys[i]) & ~erroring
            erroring |= mask
            error_model[mask] = i
        disrupted = np.flatnonzero(erroring | (stalls > 0))
        if disrupted.size == 0:
            return BatchPlan(values=values)
        first = int(disrupted[0])
        if erroring[first]:
            model = self._models[int(error_model[first])]
            disruption = ProbeDisruption(
                index=first, error=model.error_at(float(times[first]))
            )
        else:
            disruption = ProbeDisruption(index=first, stall_s=float(stalls[first]))
        return BatchPlan(values=values, disruption=disruption)

    # ------------------------------------------------------------------
    # MeasurementBackend surface for direct (meter-less) use.  Stalls are
    # meaningful only under a virtual clock, so bare reads apply the value
    # corruptions and raise the first injected error; the meter's resilient
    # path goes through plan_batch instead and honours stalls.
    def current(self, row: int, col: int, time_s: float | None = None) -> float:
        return float(
            self.currents(np.array([row]), np.array([col]), self._single_time(time_s))[0]
        )

    def _single_time(self, time_s: float | None) -> np.ndarray:
        if time_s is None:
            self.validate_times(None, 1)  # raises: fault draws need timestamps
        return np.array([float(time_s)])

    def currents(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        times_s: np.ndarray | None = None,
    ) -> np.ndarray:
        rows, cols = self._inner.validate_pixels(rows, cols)
        times = self.validate_times(times_s, rows.size)
        plan = self.plan_batch(rows, cols, times)
        disruption = plan.disruption
        if disruption is not None and disruption.error is not None:
            raise disruption.error
        return plan.values
