"""Named fault-model catalogue, mirroring the scenario/pipeline registries.

Campaign grids and CLI flags refer to fault conditions by name
(``faults="flaky-lab"``); the registry maps each name to a tuple of
:class:`~repro.faults.models.FaultModel` instances.  Entries are frozen
dataclasses — picklable, content-repr'd — so they ship to spawn-start
workers and participate in checkpoint fingerprints, and the lint contract
audit (:func:`repro.lint.contracts.audit_registry_contracts`) walks this
registry exactly as it walks the other three.
"""

from __future__ import annotations

from .models import (
    DropoutFault,
    FaultModel,
    ProbeHangFault,
    StuckSensorFault,
    TransientReadFault,
    WorkerCrashFault,
)

__all__ = [
    "all_faults",
    "fault_names",
    "get_fault",
    "models_for",
    "register_fault",
]

_REGISTRY: dict[str, tuple[FaultModel, ...]] = {}


def register_fault(name: str, models) -> None:
    """Register a named fault condition (a tuple of fault models)."""
    models = (models,) if isinstance(models, FaultModel) else tuple(models)
    if not models:
        raise ValueError(f"fault condition {name!r} must contain at least one model")
    for model in models:
        if not isinstance(model, FaultModel):
            raise TypeError(
                f"fault condition {name!r} contains a non-FaultModel entry: "
                f"{model!r}"
            )
    if name in _REGISTRY:
        raise ValueError(f"fault condition {name!r} is already registered")
    _REGISTRY[name] = models


def get_fault(name: str) -> tuple[FaultModel, ...]:
    """Look up a registered fault condition by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise KeyError(
            f"unknown fault condition {name!r}; registered: {known}"
        ) from None


def fault_names() -> tuple[str, ...]:
    """Registered fault-condition names, sorted."""
    return tuple(sorted(_REGISTRY))


def all_faults() -> dict[str, tuple[FaultModel, ...]]:
    """Copy of the whole registry (name -> models)."""
    return dict(_REGISTRY)


def models_for(spec) -> tuple[FaultModel, ...]:
    """Normalise any fault specification into a tuple of models.

    Accepts ``None`` (no faults), a registered name, a single model, or an
    iterable of models — the shapes ``LabScenario.faults`` / session
    ``faults=`` arguments may take.
    """
    if spec is None:
        return ()
    if isinstance(spec, str):
        return get_fault(spec)
    if isinstance(spec, FaultModel):
        return (spec,)
    models: list[FaultModel] = []
    for entry in spec:
        models.extend(models_for(entry))
    return tuple(models)


# ---------------------------------------------------------------------------
# Built-in conditions.  Rates are chosen so a ~1000-probe extraction sees a
# handful of events: frequent enough to exercise every retry path, rare
# enough that a default ProbeRetryPolicy still completes the tuning run.
# ---------------------------------------------------------------------------

register_fault("transient-reads", (TransientReadFault(rate=0.05),))
register_fault("probe-hangs", (ProbeHangFault(rate=0.01, hang_s=5.0),))
register_fault("stuck-sensor", (StuckSensorFault(rate=0.05, window_s=10.0),))
register_fault("dropout-bursts", (DropoutFault(rate=0.02, burst_s=2.0, within_rate=0.9),))
register_fault("worker-crashes", (WorkerCrashFault(rate=0.25),))
register_fault(
    "flaky-lab",
    (
        TransientReadFault(rate=0.02),
        ProbeHangFault(rate=0.005, hang_s=2.0),
        DropoutFault(rate=0.01, burst_s=2.0, within_rate=0.75),
    ),
)
