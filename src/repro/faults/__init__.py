"""Deterministic fault injection: seeded chaos for the simulated lab.

The ROADMAP's next tier (campaign server, actor fleet, remote instrument
drivers) assumes the stack survives a misbehaving lab.  This subpackage
supplies the misbehaviour — reproducibly:

* :mod:`repro.faults.models` defines :class:`FaultModel` and the seeded
  built-ins (transient read errors, probe hangs, stuck/railed sensors,
  burst-correlated dropouts, worker crashes).  Draws are pure functions of
  the probe timestamp and a :class:`numpy.random.SeedSequence`-derived key,
  so scalar and batched probe paths fail identically and every chaos run is
  bit-reproducible.
* :class:`FaultyBackend` wraps any measurement backend with probe-scope
  models; the meter's retry/backoff/circuit-breaker machinery
  (:class:`~repro.instrument.resilience.ProbeRetryPolicy`) tolerates them.
* :mod:`repro.faults.registry` names fault conditions for campaign grids
  (``faults=("flaky-lab",)``), mirroring the scenario/pipeline/backend
  registries and audited by the same lint contracts.

Typical use::

    from repro.faults import models_for
    from repro.instrument import ExperimentSession, ProbeRetryPolicy

    session = ExperimentSession.from_device(
        device,
        seed=7,
        faults="flaky-lab",
        probe_retry=ProbeRetryPolicy(max_attempts=4, backoff_s=0.1),
    )
"""

from .backend import BatchPlan, FaultyBackend, ProbeDisruption, probe_fault_models
from .injection import crash_message, inject_worker_faults, worker_fault_models
from .models import (
    DropoutFault,
    FaultModel,
    ProbeHangFault,
    StuckSensorFault,
    TransientReadFault,
    WorkerCrashFault,
    fault_uniforms,
)
from .registry import all_faults, fault_names, get_fault, models_for, register_fault

__all__ = [
    "BatchPlan",
    "DropoutFault",
    "FaultModel",
    "FaultyBackend",
    "ProbeDisruption",
    "ProbeHangFault",
    "StuckSensorFault",
    "TransientReadFault",
    "WorkerCrashFault",
    "all_faults",
    "crash_message",
    "fault_names",
    "fault_uniforms",
    "inject_worker_faults",
    "worker_fault_models",
    "get_fault",
    "models_for",
    "probe_fault_models",
    "register_fault",
]
