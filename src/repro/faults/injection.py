"""Worker-scope fault application: deterministic execution-worker death.

Probe-scope models act through :class:`~repro.faults.backend.FaultyBackend`;
worker-scope models act here, at the start of a campaign job.  The crash
decision is drawn from the job's own spawned seed (reserved branch, no
``spawn()`` mutation), so the *same jobs* die under every execution backend
and worker count — which is what lets a chaos campaign's records stay
comparable across serial, process-pool, and asyncio runs.

How death is delivered depends on where the job runs:

* inside a spawned pool worker, ``os._exit`` kills the process mid-job —
  the real thing, exercising :class:`~repro.execution.backends.ProcessPoolBackend`'s
  broken-pool recovery;
* in-process (serial/asyncio backends), killing the interpreter would take
  the caller's session down with it, so the injection raises
  :class:`~repro.exceptions.WorkerCrashError` with the same canonical
  message the pool recovery synthesises — both paths condense into
  identical ``worker_error`` records.
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np

from ..exceptions import WorkerCrashError
from ..execution.base import crash_message
from .models import FaultModel

__all__ = ["crash_message", "inject_worker_faults", "worker_fault_models"]

#: Spawn-key branch for the per-job crash draw; clear of DeviceBackend's
#: (2**31, 0..1) and FaultyBackend's (2**31, 2..) children.
_CRASH_SPAWN_INDEX = 2**31 - 1

#: Exit code of an injected hard crash (distinguishable from signal deaths).
CRASH_EXIT_CODE = 113


def worker_fault_models(models) -> tuple[FaultModel, ...]:
    """The worker-scope subset of a fault model collection."""
    return tuple(m for m in models if m.scope == "worker")


def _crash_key(seed: np.random.SeedSequence) -> np.uint64:
    child = np.random.SeedSequence(
        entropy=seed.entropy, spawn_key=seed.spawn_key + (2**31, _CRASH_SPAWN_INDEX)
    )
    return child.generate_state(1, dtype=np.uint64)[0]


def inject_worker_faults(
    job_id: int,
    models,
    seed: np.random.SeedSequence | int | None,
) -> None:
    """Apply worker-scope models for one job; returns normally if it survives.

    When a crash fires: hard process exit inside a spawned worker,
    :class:`~repro.exceptions.WorkerCrashError` otherwise.
    """
    crashers = worker_fault_models(models)
    if not crashers:
        return
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    key = _crash_key(root)
    if not any(model.crashes(int(job_id), key) for model in crashers):
        return
    if multiprocessing.parent_process() is not None:
        os._exit(CRASH_EXIT_CODE)
    raise WorkerCrashError(crash_message(int(job_id)))
