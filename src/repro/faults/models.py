"""Deterministic fault models: seeded, timestamp-keyed lab misbehaviour.

Each model is a frozen dataclass describing one failure mode of a simulated
lab.  Models never hold random state; every draw is a pure function of
``(probe timestamp, key)`` where the key is a ``uint64`` derived from a
:class:`numpy.random.SeedSequence` child by the
:class:`~repro.faults.backend.FaultyBackend` that applies the model.  Hashing
the timestamp (SplitMix64, the same construction the time-dependent noise
samplers use) instead of consuming a generator stream is what makes scalar
and batched probe paths fail identically: the n-th probe faults based on
*when* it happens, not on how many draws preceded it.

Probe-scope models act through three hooks, all vectorised over a batch:

``corrupt(values, times, key)``
    Rewrite measured values (stuck/railed sensors).
``stall_s(times, key)``
    Per-probe extra latency in simulated seconds (hangs).  The meter
    charges the stall to the virtual clock — or gives up after its
    timeout budget.
``error_at(times, key)``
    Per-probe boolean mask of raising faults plus an exception factory
    (transient read errors, dropout bursts).

Worker-scope models (:class:`WorkerCrashFault`) instead decide per *job*
whether the executing worker dies; the campaign layer applies them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from ..exceptions import ConfigurationError, TransientReadError
from ..physics.noise import _mix_bits

__all__ = [
    "FaultModel",
    "TransientReadFault",
    "ProbeHangFault",
    "StuckSensorFault",
    "DropoutFault",
    "WorkerCrashFault",
    "fault_uniforms",
]

#: Salt mixed into a model's key when it needs a second independent draw
#: stream (e.g. burst occurrence vs. within-burst dropouts).
_SECOND_STREAM_SALT = np.uint64(0x9E3779B97F4A7C15)


def _as_times(times_s: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(times_s, dtype=float))


def fault_uniforms(bits: np.ndarray, key: np.uint64) -> np.ndarray:
    """Uniform (0, 1) variates from uint64 identifiers, keyed by ``key``.

    The identifiers are timestamp float bits (probe-scope draws) or window /
    job indices; identical identifiers under the same key always map to the
    same variate, which is the whole determinism story of this package.
    """
    mixed = _mix_bits(np.atleast_1d(bits).astype(np.uint64) ^ key)
    return (np.right_shift(mixed, np.uint64(11)) + 0.5) * 2.0**-53


def _time_uniforms(times_s: np.ndarray, key: np.uint64) -> np.ndarray:
    times = _as_times(times_s)
    return fault_uniforms(times.view(np.uint64), key)


@dataclass(frozen=True)
class FaultModel:
    """Base fault model: a no-op for every hook.

    Subclasses override the hooks for their scope; the base implementations
    mean a model only has to define the behaviour it injects.
    """

    #: "probe" models act on individual measurements through FaultyBackend;
    #: "worker" models act on whole execution jobs through the campaign layer.
    scope: ClassVar[str] = "probe"

    # -- probe-scope hooks ------------------------------------------------
    def corrupt(
        self, values: np.ndarray, times_s: np.ndarray, key: np.uint64
    ) -> np.ndarray:
        """Return (possibly rewritten) measured values."""
        return values

    def stall_s(self, times_s: np.ndarray, key: np.uint64) -> np.ndarray:
        """Per-probe extra latency in simulated seconds (0 = none)."""
        return np.zeros(_as_times(times_s).shape, dtype=float)

    def error_mask(self, times_s: np.ndarray, key: np.uint64) -> np.ndarray:
        """Per-probe mask of probes whose read raises."""
        return np.zeros(_as_times(times_s).shape, dtype=bool)

    def error_at(self, time_s: float) -> Exception:
        """Exception for a probe flagged by :meth:`error_mask`."""
        return TransientReadError(f"injected read fault at t={time_s:.3f}s")

    # -- worker-scope hook ------------------------------------------------
    def crashes(self, token: int, key: np.uint64) -> bool:
        """Whether the worker executing job ``token`` dies."""
        return False


def _validate_rate(rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(f"fault rate must lie in [0, 1], got {rate!r}")


@dataclass(frozen=True)
class TransientReadFault(FaultModel):
    """Independent per-probe read failures, retryable.

    Each probe fails with probability ``rate``, independently of its
    neighbours — the ADC-glitch / serial-bus-hiccup failure mode.
    """

    rate: float = 0.05

    def __post_init__(self) -> None:
        _validate_rate(self.rate)

    def error_mask(self, times_s: np.ndarray, key: np.uint64) -> np.ndarray:
        if self.rate == 0.0:
            return super().error_mask(times_s, key)
        return _time_uniforms(times_s, key) < self.rate

    def error_at(self, time_s: float) -> Exception:
        return TransientReadError(
            f"injected transient read failure at t={time_s:.3f}s"
        )


@dataclass(frozen=True)
class ProbeHangFault(FaultModel):
    """Probes that hang: the read eventually returns, ``stall_s`` late.

    With probability ``rate`` a probe takes ``hang_s`` extra simulated
    seconds.  Under a :class:`~repro.instrument.resilience.ProbeRetryPolicy`
    timeout budget shorter than ``hang_s`` the meter abandons the read
    instead of waiting it out.
    """

    rate: float = 0.01
    hang_s: float = 5.0

    def __post_init__(self) -> None:
        _validate_rate(self.rate)
        if self.hang_s <= 0:
            raise ConfigurationError("hang_s must be positive")

    def stall_s(self, times_s: np.ndarray, key: np.uint64) -> np.ndarray:
        times = _as_times(times_s)
        if self.rate == 0.0:
            return np.zeros(times.shape, dtype=float)
        hung = _time_uniforms(times, key) < self.rate
        return np.where(hung, self.hang_s, 0.0)


@dataclass(frozen=True)
class StuckSensorFault(FaultModel):
    """The sensor rails to a constant for whole windows of simulated time.

    Time is divided into ``window_s``-second windows; each window is stuck
    with probability ``rate`` (drawn from the *window index*, so every probe
    inside an afflicted window — scalar or batched — reads the rail value).
    """

    rate: float = 0.05
    window_s: float = 10.0
    rail_na: float = 0.0

    def __post_init__(self) -> None:
        _validate_rate(self.rate)
        if self.window_s <= 0:
            raise ConfigurationError("window_s must be positive")

    def _stuck(self, times_s: np.ndarray, key: np.uint64) -> np.ndarray:
        windows = np.floor(_as_times(times_s) / self.window_s).astype(np.uint64)
        return fault_uniforms(windows, key) < self.rate

    def corrupt(
        self, values: np.ndarray, times_s: np.ndarray, key: np.uint64
    ) -> np.ndarray:
        if self.rate == 0.0:
            return values
        return np.where(self._stuck(times_s, key), self.rail_na, values)


@dataclass(frozen=True)
class DropoutFault(FaultModel):
    """Burst-correlated read dropouts.

    Time is divided into ``burst_s``-second windows; each window is a
    dropout burst with probability ``rate``, and *within* an active burst
    each probe fails with probability ``within_rate``.  Unlike
    :class:`TransientReadFault`, failures cluster — the failure mode of a
    flaky cable or an interfering pump cycle — so retry policies tuned on
    independent errors get exercised against correlated ones.
    """

    rate: float = 0.02
    burst_s: float = 2.0
    within_rate: float = 0.9

    def __post_init__(self) -> None:
        _validate_rate(self.rate)
        _validate_rate(self.within_rate)
        if self.burst_s <= 0:
            raise ConfigurationError("burst_s must be positive")

    def error_mask(self, times_s: np.ndarray, key: np.uint64) -> np.ndarray:
        times = _as_times(times_s)
        if self.rate == 0.0 or self.within_rate == 0.0:
            return np.zeros(times.shape, dtype=bool)
        windows = np.floor(times / self.burst_s).astype(np.uint64)
        in_burst = fault_uniforms(windows, key) < self.rate
        within_key = _mix_bits(np.atleast_1d(key ^ _SECOND_STREAM_SALT))[0]
        dropped = _time_uniforms(times, within_key) < self.within_rate
        return in_burst & dropped

    def error_at(self, time_s: float) -> Exception:
        return TransientReadError(
            f"injected dropout burst swallowed the read at t={time_s:.3f}s"
        )


@dataclass(frozen=True)
class WorkerCrashFault(FaultModel):
    """Deterministic worker death, keyed by job identity.

    A worker-scope model: the campaign layer evaluates :meth:`crashes` per
    job (the token is the job id) and, when it fires, hard-exits the worker
    process (spawned pools) or raises
    :class:`~repro.exceptions.WorkerCrashError` (in-process backends) —
    either way the run controller turns the job into a ``worker_error``
    record rather than aborting the campaign.
    """

    scope: ClassVar[str] = "worker"
    rate: float = 0.25

    def __post_init__(self) -> None:
        _validate_rate(self.rate)

    def crashes(self, token: int, key: np.uint64) -> bool:
        if self.rate == 0.0:
            return False
        uniform = fault_uniforms(np.array([np.uint64(token)]), key)[0]
        return bool(uniform < self.rate)
