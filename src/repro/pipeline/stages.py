"""Built-in stages: the paper's extraction steps as composable units.

Each stage wraps one of the existing probe-spending (or compute-only)
steps — anchor preprocessing, shrinking-triangle sweeps, point filtering,
the two-piece fit, validation, the coarse window search — behind the
:class:`~repro.pipeline.context.Stage` protocol, so named pipelines and
ablation variants are compositions instead of hand-written sequences.  The
stage bodies are the *same code paths* the monolithic extractors ran: a
seeded run through ``fast-extraction`` probes the device in exactly the
same order, and produces bit-identical results, as the pre-pipeline
``FastVirtualGateExtractor.extract``.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..core.anchors import AnchorFinder
from ..core.fitting import TransitionLineFitter
from ..core.postprocess import build_point_set
from ..core.region import PixelPoint
from ..core.result import AnchorSearchResult
from ..core.sweeps import TransitionLineSweeper
from ..core.virtualization import VirtualizationMatrix
from ..core.window_search import TransitionWindowFinder, WindowSearchConfig
from ..exceptions import ExtractionError
from ..instrument.measurement import ChargeSensorMeter
from ..instrument.session import ExperimentSession
from ..instrument.timing import TimingModel
from ..reprs import ContentRepr
from .context import StageOutcome, TuneContext

__all__ = [
    "AnchorStage",
    "FilterStage",
    "FitStage",
    "FixedCornerAnchorStage",
    "OpenSessionStage",
    "StalenessCheckStage",
    "SweepStage",
    "ValidateStage",
    "WindowSearchStage",
]


def _require_meter(ctx: TuneContext, stage: str) -> ChargeSensorMeter:
    if ctx.meter is None:
        raise ExtractionError(
            f"stage {stage!r} needs a measurement meter in the context; "
            "run it on a session, or compose an open-session stage first"
        )
    return ctx.meter


class AnchorStage(ContentRepr):
    """Anchor-point preprocessing (paper §4.4): diagonal probe + mask sweeps."""

    name = "anchors"

    def run(self, ctx: TuneContext) -> StageOutcome:
        meter = _require_meter(ctx, self.name)
        ctx.anchors = AnchorFinder(meter, ctx.config.anchors).find()
        return StageOutcome()


class FixedCornerAnchorStage(ContentRepr):
    """Ablation replacement for :class:`AnchorStage`: anchors without probing.

    Places the steep-line anchor at the right grid edge of the starting row
    and the shallow-line anchor at the top grid edge of the starting column
    (both at the configured margin), spanning the largest triangle the grid
    allows.  No probes are spent, but the sweeps start from an unshrunk
    triangle — this is the ``no-anchors`` variant that quantifies what the
    anchor preprocessing actually buys.
    """

    name = "anchors"

    def run(self, ctx: TuneContext) -> StageOutcome:
        meter = _require_meter(ctx, self.name)
        rows, cols = meter.shape
        cfg = ctx.config.anchors
        margin_row = int(round(cfg.start_margin_fraction * (rows - 1)))
        margin_col = int(round(cfg.start_margin_fraction * (cols - 1)))
        steep = PixelPoint(row=margin_row, col=cols - 2)
        shallow = PixelPoint(row=rows - 2, col=margin_col)
        if steep.col <= shallow.col or shallow.row <= steep.row:
            raise ExtractionError(
                f"grid {rows}x{cols} is too small for fixed-corner anchors"
            )
        ctx.anchors = AnchorSearchResult(
            steep_anchor=steep,
            shallow_anchor=shallow,
            start_point=PixelPoint(row=margin_row, col=margin_col),
            diagonal_pixels=(),
            mask_x_responses=np.zeros(0),
            mask_y_responses=np.zeros(0),
        )
        return StageOutcome(detail="fixed-corner anchors (no probes spent)")


class SweepStage(ContentRepr):
    """Shrinking-triangle row- and column-major sweeps (paper §4.3.2).

    ``run_row`` / ``run_column`` override the corresponding
    :class:`~repro.core.config.SweepConfig` flags, so single-sweep ablation
    pipelines do not need a whole separate configuration object.
    """

    name = "sweeps"

    def __init__(
        self, run_row: bool | None = None, run_column: bool | None = None
    ) -> None:
        self._run_row = run_row
        self._run_column = run_column

    def run(self, ctx: TuneContext) -> StageOutcome:
        meter = _require_meter(ctx, self.name)
        if ctx.anchors is None:
            raise ExtractionError(
                "sweeps stage needs anchor points; compose an anchor stage first"
            )
        config = ctx.config.sweeps
        overrides = {}
        if self._run_row is not None:
            overrides["run_row_sweep"] = self._run_row
        if self._run_column is not None:
            overrides["run_column_sweep"] = self._run_column
        if overrides:
            config = replace(config, **overrides)
        sweeper = TransitionLineSweeper(meter, config)
        row_trace, column_trace = sweeper.run(
            ctx.anchors.steep_anchor, ctx.anchors.shallow_anchor
        )
        ctx.extras["sweep_traces"] = (row_trace, column_trace)
        return StageOutcome()


class FilterStage(ContentRepr):
    """Erroneous-point filtering: combine traces into the fit's point set.

    Compute-only (no probes).  ``apply_filter`` overrides
    ``SweepConfig.apply_postprocess``; the ``no-filter`` ablation passes
    ``False`` to measure what the post-processing filter contributes.
    """

    name = "filter"

    def __init__(self, apply_filter: bool | None = None) -> None:
        self._apply_filter = apply_filter

    def run(self, ctx: TuneContext) -> StageOutcome:
        traces = ctx.extras.get("sweep_traces")
        if traces is None:
            raise ExtractionError(
                "filter stage needs sweep traces; compose a sweep stage first"
            )
        apply_filter = (
            ctx.config.sweeps.apply_postprocess
            if self._apply_filter is None
            else self._apply_filter
        )
        ctx.points = build_point_set(traces[0], traces[1], apply_filter=apply_filter)
        return StageOutcome()


class FitStage(ContentRepr):
    """Two-piece-wise linear fit and slope → matrix conversion (§4.3.3, §2.3)."""

    name = "fit"

    def run(self, ctx: TuneContext) -> StageOutcome:
        meter = _require_meter(ctx, self.name)
        if ctx.anchors is None or ctx.points is None:
            raise ExtractionError(
                "fit stage needs anchors and a transition point set; "
                "compose anchor and sweep stages first"
            )
        if ctx.gate_x is None or ctx.gate_y is None:
            raise ExtractionError(
                "fit stage needs the context's gate names; the composer "
                "resolves them from the meter backend when unset"
            )
        xs = meter.x_voltages
        ys = meter.y_voltages
        filtered = ctx.points.filtered_points
        voltage_points = np.array(
            [[xs[col], ys[row]] for row, col in filtered], dtype=float
        )
        steep_anchor_v = (
            float(xs[ctx.anchors.steep_anchor.col]),
            float(ys[ctx.anchors.steep_anchor.row]),
        )
        shallow_anchor_v = (
            float(xs[ctx.anchors.shallow_anchor.col]),
            float(ys[ctx.anchors.shallow_anchor.row]),
        )
        fitter = TransitionLineFitter(ctx.config.fit)
        # The fit lands in the context *before* the matrix conversion, so a
        # conversion failure still leaves the fit visible for diagnosis
        # (mirroring the monolithic extractor's assignment order).
        ctx.fit = fitter.fit(voltage_points, steep_anchor_v, shallow_anchor_v)
        ctx.slopes = (ctx.fit.slope_steep, ctx.fit.slope_shallow)
        ctx.matrix = VirtualizationMatrix.from_slopes(
            slope_steep=ctx.fit.slope_steep,
            slope_shallow=ctx.fit.slope_shallow,
            gate_x=ctx.gate_x,
            gate_y=ctx.gate_y,
        )
        return StageOutcome()


def slope_bounds_reject_reason(
    slope_steep: float,
    slope_shallow: float,
    matrix,
    min_steep_slope_magnitude: float,
    max_shallow_slope_magnitude: float,
    max_alpha: float,
) -> str | None:
    """The physical-bounds checks shared by both methods' validators.

    Steep minimum, shallow maximum, and the alpha ranges are the same
    physics for the fast extraction and the dense-grid baseline — one
    implementation keeps their bounds and messages from diverging.  The
    steep check is skipped for a non-finite steep slope (a truly vertical
    Hough line), matching the baseline's historical behaviour; the fast
    validator rejects non-finite slopes before calling this.
    """
    if np.isfinite(slope_steep) and abs(slope_steep) < min_steep_slope_magnitude:
        return (
            f"steep slope magnitude {abs(slope_steep):.3f} below the physical "
            f"minimum {min_steep_slope_magnitude}"
        )
    if abs(slope_shallow) > max_shallow_slope_magnitude:
        return (
            f"shallow slope magnitude {abs(slope_shallow):.3f} above the physical "
            f"maximum {max_shallow_slope_magnitude}"
        )
    if not (0.0 <= matrix.alpha_12 <= max_alpha):
        return f"alpha_12 = {matrix.alpha_12:.3f} outside [0, {max_alpha}]"
    if not (0.0 <= matrix.alpha_21 <= max_alpha):
        return f"alpha_21 = {matrix.alpha_21:.3f} outside [0, {max_alpha}]"
    return None


class ValidateStage(ContentRepr):
    """Physical-plausibility validation of the fitted slopes and matrix.

    Completes with ``status="failed"`` (rather than raising) when the run
    is rejected, so the rejected matrix stays in the result for diagnosis —
    callers of a failed run need to see *what* was extracted alongside the
    reason it was rejected.
    """

    name = "validate"

    def run(self, ctx: TuneContext) -> StageOutcome:
        reason = self._reject_reason(ctx)
        if reason is not None:
            return StageOutcome(status="failed", detail=reason)
        return StageOutcome()

    @staticmethod
    def _reject_reason(ctx: TuneContext) -> str | None:
        fit, matrix = ctx.fit, ctx.matrix
        if fit is None or matrix is None:
            return "pipeline did not produce a fit"
        cfg = ctx.config.fit
        if not fit.converged:
            return "slope fit did not converge"
        if not (np.isfinite(fit.slope_steep) and np.isfinite(fit.slope_shallow)):
            return "fitted slopes are not finite"
        if fit.slope_steep >= 0 or fit.slope_shallow >= 0:
            return (
                "fitted slopes must both be negative (device physics); got "
                f"steep={fit.slope_steep:.3f}, shallow={fit.slope_shallow:.3f}"
            )
        return slope_bounds_reject_reason(
            fit.slope_steep,
            fit.slope_shallow,
            matrix,
            min_steep_slope_magnitude=cfg.min_steep_slope_magnitude,
            max_shallow_slope_magnitude=cfg.max_shallow_slope_magnitude,
            max_alpha=cfg.max_alpha,
        )


# ---------------------------------------------------------------------------
# Workflow setup stages
# ---------------------------------------------------------------------------


class WindowSearchStage(ContentRepr):
    """Coarse transition-window search over the full safe gate range.

    Probes through a private coarse meter (the window search owns its own
    grid), so the stage reports its cost explicitly instead of relying on
    the composer's ``ctx.meter`` snapshot.  Sets ``ctx.window``.
    """

    name = "window-search"

    def __init__(
        self,
        device,
        gate_x: int | str = "P1",
        gate_y: int | str = "P2",
        x_range: tuple[float, float] | None = None,
        y_range: tuple[float, float] | None = None,
        noise=None,
        seed=None,
        timing: TimingModel | None = None,
        config: WindowSearchConfig | None = None,
        drift=None,
        time_dependent_noise: bool = False,
    ) -> None:
        self._finder = TransitionWindowFinder(
            device,
            gate_x=gate_x,
            gate_y=gate_y,
            x_range=x_range,
            y_range=y_range,
            noise=noise,
            seed=seed,
            timing=timing,
            config=config,
            drift=drift,
            time_dependent_noise=time_dependent_noise,
        )

    def run(self, ctx: TuneContext) -> StageOutcome:
        result = self._finder.find()
        ctx.window = result
        return StageOutcome(
            n_probes=result.n_probes,
            n_requests=result.n_probes,
            cache_hits=0,
            sim_elapsed_s=result.elapsed_s,
        )


class OpenSessionStage(ContentRepr):
    """Open the fine measurement session inside the found window.

    Cost-free (the session is opened, nothing is probed); installs the
    session, its meter, and its clock into the context so the extraction
    stages that follow probe the right grid.
    """

    name = "open-session"

    def __init__(
        self,
        device,
        resolution: int,
        gate_x: int | str = "P1",
        gate_y: int | str = "P2",
        dot_a: int = 0,
        dot_b: int = 1,
        noise=None,
        seed=None,
        timing: TimingModel | None = None,
        drift=None,
        time_dependent_noise: bool = False,
        label: str | None = None,
    ) -> None:
        self._device = device
        self._resolution = resolution
        self._gate_x = gate_x
        self._gate_y = gate_y
        self._dot_a = dot_a
        self._dot_b = dot_b
        self._noise = noise
        self._seed = seed
        self._timing = timing
        self._drift = drift
        self._time_dependent_noise = time_dependent_noise
        self._label = label

    def run(self, ctx: TuneContext) -> StageOutcome:
        if ctx.window is None:
            raise ExtractionError(
                "open-session stage needs a transition window; compose a "
                "window-search stage first (or set ctx.window directly)"
            )
        session = ExperimentSession.from_device(
            self._device,
            resolution=self._resolution,
            window=ctx.window.window,
            gate_x=self._gate_x,
            gate_y=self._gate_y,
            dot_a=self._dot_a,
            dot_b=self._dot_b,
            noise=self._noise,
            seed=self._seed,
            timing=self._timing,
            drift=self._drift,
            time_dependent_noise=self._time_dependent_noise,
            label=self._label or f"{self._device.name}:autotune",
        )
        ctx.session = session
        ctx.meter = session.meter
        ctx.clock = session.meter.clock
        if ctx.gate_x is None or ctx.gate_y is None:
            from ..core.extraction import gate_names_for

            ctx.gate_x, ctx.gate_y = gate_names_for(session.meter)
        return StageOutcome()


class StalenessCheckStage(ContentRepr):
    """Re-probe reference pixels at the device's current age (retuning mode).

    Probes through a fresh cache-off meter on the shared timeline clock —
    the whole point is paying for fresh values — and reports the outcome as
    a :class:`~repro.core.workflow.StalenessCheck` in
    ``ctx.extras["staleness_check"]``.  Costs are reported explicitly
    because the probe goes through the stage's private meter.
    """

    name = "staleness-check"

    def __init__(
        self,
        backend,
        clock,
        rows: np.ndarray,
        cols: np.ndarray,
        reference: np.ndarray,
        threshold_na: float,
    ) -> None:
        self._backend = backend
        self._clock = clock
        self._rows = rows
        self._cols = cols
        self._reference = reference
        self._threshold_na = threshold_na

    def run(self, ctx: TuneContext) -> StageOutcome:
        from ..core.workflow import StalenessCheck

        started_s = self._clock.elapsed_s
        check_meter = ChargeSensorMeter(self._backend, clock=self._clock, cache=False)
        fresh = check_meter.get_currents(self._rows, self._cols)
        deviation = float(np.max(np.abs(fresh - self._reference)))
        check = StalenessCheck(
            checked_at_s=self._clock.elapsed_s,
            max_deviation_na=deviation,
            threshold_na=self._threshold_na,
            n_check_pixels=int(self._rows.size),
        )
        ctx.extras["staleness_check"] = check
        return StageOutcome(
            detail="stale" if check.stale else "fresh",
            n_probes=check_meter.n_probes,
            n_requests=check_meter.n_requests,
            cache_hits=0,
            sim_elapsed_s=self._clock.elapsed_s - started_s,
        )
