"""CLI entry point: list the registered tuning pipelines.

``python -m repro.pipeline --list`` (or with no arguments) prints every
registered pipeline with its stage sequence, so campaign configs and
benchmark scripts can reference methods by name without reading source.
``--stages NAME`` prints just one pipeline's stages, one per line.
"""

from __future__ import annotations

import argparse

from ..exceptions import ConfigurationError
from .registry import METHOD_ALIASES, get_pipeline, pipeline_catalogue


def main(argv: list[str] | None = None) -> int:
    """Run the CLI; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.pipeline",
        description="Inspect the registered tuning pipelines.",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list every registered pipeline and its stages (the default)",
    )
    parser.add_argument(
        "--stages",
        metavar="NAME",
        help="print one pipeline's stages, one per line (aliases accepted)",
    )
    args = parser.parse_args(argv)
    if args.stages:
        try:
            pipeline = get_pipeline(args.stages)
        except ConfigurationError as exc:
            parser.error(str(exc))
        print(f"{pipeline.name} (method {pipeline.method_name})")
        for name in pipeline.stage_names:
            print(f"  {name}")
        return 0
    print(pipeline_catalogue())
    aliases = ", ".join(f"{k} -> {v}" for k, v in METHOD_ALIASES.items())
    print(f"\nCampaign method aliases: {aliases}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
