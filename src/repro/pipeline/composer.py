"""The pipeline composer: run stages in order, charging each for its cost.

:func:`run_stage` is the accounting primitive — it wraps one
:class:`~repro.pipeline.context.Stage` with a meter snapshot/diff
(:meth:`~repro.instrument.measurement.ChargeSensorMeter.snapshot`) and a
wall-clock timer, and converts the outcome into one
:class:`~repro.core.result.StageTelemetry` row.  :class:`TuningPipeline`
strings stages together over a shared :class:`~repro.pipeline.context.TuneContext`
and assembles the final :class:`~repro.core.result.ExtractionResult`,
reproducing the pre-pipeline extractors' semantics exactly:

* a stage raising :class:`~repro.exceptions.ExtractionError` — or an
  :class:`~repro.exceptions.InstrumentFault`, when an injected fault
  exhausts the meter's retry budget — yields an *unsuccessful* result
  carrying every artifact and telemetry row produced before the failure
  (an extraction that fails on a device is an expected, counted outcome —
  two of the paper's twelve benchmarks fail);
* a stage returning ``status="failed"`` (validation) also yields an
  unsuccessful result but keeps the rejected matrix visible for diagnosis;
* probe statistics come from the meter's totals, so per-stage telemetry
  sums to the result's :class:`~repro.core.result.ProbeStatistics` by
  construction.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

from ..core.result import ExtractionResult, ProbeStatistics, StageTelemetry
from ..exceptions import ExtractionError, InstrumentFault
from ..instrument.measurement import ChargeSensorMeter
from ..instrument.session import ExperimentSession
from .context import Stage, StageOutcome, TuneContext

__all__ = ["TuningPipeline", "run_stage"]


def run_stage(
    stage: Stage, ctx: TuneContext, telemetry: list[StageTelemetry]
) -> StageOutcome:
    """Run one stage with cost accounting; append its telemetry row.

    Costs come from diffing ``ctx.meter`` snapshots around the stage unless
    the stage's outcome carries explicit overrides (stages probing through a
    private meter).  A stage that raises :class:`ExtractionError` — or an
    :class:`~repro.exceptions.InstrumentFault`, the typed surface of an
    injected fault that exhausted the meter's retry budget — still gets its
    telemetry row (outcome ``"failed"``, costs up to the raise) before the
    exception propagates to the caller.
    """
    meter_before = ctx.meter
    before = meter_before.snapshot() if meter_before is not None else None
    started_wall = time.perf_counter()  # repro: allow[wall-clock] -- StageTelemetry.wall_s profiling timer; normalized() pins it for determinism checks
    try:
        outcome = stage.run(ctx) or StageOutcome()
    except (ExtractionError, InstrumentFault) as exc:
        telemetry.append(
            _telemetry_row(
                stage,
                StageOutcome(status="failed", detail=str(exc)),
                before,
                meter_before,
                ctx,
                time.perf_counter() - started_wall,  # repro: allow[wall-clock] -- telemetry-only wall duration
            )
        )
        raise
    telemetry.append(
        _telemetry_row(
            stage, outcome, before, meter_before, ctx,
            time.perf_counter() - started_wall,  # repro: allow[wall-clock] -- telemetry-only wall duration
        )
    )
    return outcome


def _telemetry_row(
    stage: Stage,
    outcome: StageOutcome,
    before,
    meter_before: ChargeSensorMeter | None,
    ctx: TuneContext,
    wall_s: float,
) -> StageTelemetry:
    """Build one telemetry row from snapshots and/or outcome overrides."""
    if outcome.has_cost_override:
        n_probes = outcome.n_probes or 0
        n_requests = outcome.n_requests or 0
        cache_hits = outcome.cache_hits or 0
        sim_s = outcome.sim_elapsed_s or 0.0
    elif before is not None and ctx.meter is meter_before:
        delta = before.delta(ctx.meter.snapshot())
        n_probes = delta.n_probes
        n_requests = delta.n_requests
        cache_hits = delta.n_cache_hits
        sim_s = delta.elapsed_s
    else:
        # No meter existed around the stage (or the stage swapped it out):
        # without overrides there is nothing to charge.
        n_probes = n_requests = cache_hits = 0
        sim_s = 0.0
    return StageTelemetry(
        stage=stage.name,
        outcome=outcome.status,
        n_probes=n_probes,
        n_requests=n_requests,
        cache_hits=cache_hits,
        sim_elapsed_s=sim_s,
        wall_s=wall_s,
        detail=outcome.detail,
    )


class TuningPipeline:
    """A named, ordered composition of tuning stages.

    Parameters
    ----------
    name:
        Registry/display name of the composition (``"fast-extraction"``).
    stages:
        The ordered :class:`~repro.pipeline.context.Stage` instances.
    method_name:
        The ``method`` string stamped into results; defaults to ``name``.
        The dense-grid baseline keeps its historical ``"hough-baseline"``
        method label under the registry name ``"dense-grid-baseline"``.
    default_config:
        Zero-argument factory for the configuration used when a run does
        not supply one (``ExtractionConfig.paper_defaults`` for the fast
        pipelines, ``BaselineConfig`` for the dense-grid baseline).
    description:
        One-line summary for the registry listing and the CLI.
    """

    def __init__(
        self,
        name: str,
        stages: Iterable[Stage],
        method_name: str | None = None,
        default_config: Callable[[], object] | None = None,
        description: str = "",
    ) -> None:
        self._name = str(name)
        self._stages = tuple(stages)
        if not self._stages:
            raise ExtractionError(f"pipeline {name!r} needs at least one stage")
        self._method_name = method_name or self._name
        self._default_config = default_config
        self._description = description

    def __repr__(self) -> str:
        # Content-based (address-free) on purpose: pipelines ship to spawn
        # workers and feed checkpoint fingerprints, so the repr must be
        # stable across processes.  The config factory renders by qualified
        # name — a function object's default repr embeds its address.
        config = (
            getattr(self._default_config, "__qualname__", None)
            if self._default_config is not None
            else None
        )
        return (
            f"TuningPipeline(name={self._name!r}, method={self._method_name!r}, "
            f"stages={list(self._stages)!r}, default_config={config})"
        )

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Registry name of the composition."""
        return self._name

    @property
    def method_name(self) -> str:
        """The ``method`` string stamped into extraction results."""
        return self._method_name

    @property
    def stages(self) -> tuple[Stage, ...]:
        """The ordered stage instances."""
        return self._stages

    @property
    def stage_names(self) -> tuple[str, ...]:
        """The stage names, in execution order."""
        return tuple(stage.name for stage in self._stages)

    @property
    def description(self) -> str:
        """One-line summary of the composition."""
        return self._description

    def default_config(self):
        """A fresh default configuration object (or ``None``)."""
        return self._default_config() if self._default_config is not None else None

    # ------------------------------------------------------------------
    def run(
        self,
        target: ExperimentSession | ChargeSensorMeter,
        config: object | None = None,
    ) -> ExtractionResult:
        """Run the full composition against a session (or bare meter)."""
        from ..core.extraction import gate_names_for, resolve_meter

        meter = resolve_meter(target)
        gate_x, gate_y = gate_names_for(target)
        ctx = TuneContext(
            meter=meter,
            session=target if isinstance(target, ExperimentSession) else None,
            config=config if config is not None else self.default_config(),
            gate_x=gate_x,
            gate_y=gate_y,
            clock=meter.clock,
        )
        result, _ = self.execute(ctx)
        return result

    def execute(self, ctx: TuneContext) -> tuple[ExtractionResult, TuneContext]:
        """Run the stages over a caller-built context.

        This is the composition seam the workflow layer uses: the caller
        owns the context (and may have run setup stages like the window
        search against it already); only the telemetry of *this* pipeline's
        stages lands in the returned result.  Gate names left unset are
        resolved from the meter's backend — loudly, so a custom backend
        without name attributes cannot produce a mislabeled matrix.
        """
        from ..core.extraction import gate_names_for

        if ctx.config is None:
            ctx.config = self.default_config()
        if ctx.meter is not None and (ctx.gate_x is None or ctx.gate_y is None):
            ctx.gate_x, ctx.gate_y = gate_names_for(ctx.meter)
        telemetry: list[StageTelemetry] = []
        failure: str | None = None
        failure_exc: Exception | None = None
        for stage in self._stages:
            try:
                outcome = run_stage(stage, ctx, telemetry)
            except (ExtractionError, InstrumentFault) as exc:
                # InstrumentFault: an injected fault outlived the meter's
                # retry budget (or tripped its breaker) mid-stage.  Like an
                # extraction failure it is an expected, counted outcome —
                # the run degrades to an unsuccessful result with telemetry
                # intact instead of aborting the caller's campaign job.
                failure = str(exc)
                failure_exc = exc
                break
            if outcome.status == "failed":
                failure = outcome.detail or f"stage {stage.name!r} failed"
                break
        if ctx.meter is None:
            # Without a meter there are no probe statistics to report, so a
            # failure-as-result cannot be assembled — but a real stage
            # failure must not be masked by the missing-meter message.
            if failure_exc is not None:
                raise failure_exc
            raise ExtractionError(
                f"pipeline {self._name!r} finished without a measurement "
                "meter in its context; a setup stage must provide one"
                + (f" (stage failure: {failure})" if failure else "")
            )
        return (
            ExtractionResult(
                success=failure is None,
                method=self._method_name,
                matrix=ctx.matrix,
                slopes=ctx.slopes,
                probe_stats=ProbeStatistics(
                    n_probes=ctx.meter.n_probes,
                    n_requests=ctx.meter.n_requests,
                    n_pixels=ctx.meter.backend.n_pixels,
                    elapsed_s=ctx.meter.elapsed_s,
                ),
                anchors=ctx.anchors,
                points=ctx.points,
                fit=ctx.fit,
                failure_reason=failure or "",
                metadata=dict(ctx.metadata),
                stage_telemetry=tuple(telemetry),
            ),
            ctx,
        )
