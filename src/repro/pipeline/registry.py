"""Named tuning pipelines, mirroring the scenario and backend registries.

Campaign configs, benchmarks, and the CLI reference extraction methods by
name; the registry maps each name to a factory that builds a fresh
:class:`~repro.pipeline.composer.TuningPipeline`.  Fresh instances (rather
than shared singletons) keep stage objects free to hold per-run state
without leaking it across concurrent runs.

Built-ins:

``fast-extraction``
    The paper's four-stage method (anchors → sweeps → filter → fit →
    validate), bit-identical to the historical monolithic extractor.
``dense-grid-baseline``
    The conventional full-scan Canny+Hough baseline (method label stays
    ``"hough-baseline"`` for continuity with existing records and tables).
``no-anchors`` / ``no-filter`` / ``row-sweep-only`` / ``column-sweep-only``
    Ablation variants quantifying what each stage of the fast method buys.
"""

from __future__ import annotations

from typing import Callable

from ..core.config import ExtractionConfig
from ..exceptions import ConfigurationError
from .baseline_stages import (
    BaselineValidateStage,
    EdgeDetectStage,
    FullScanStage,
    LineFitStage,
)
from .composer import TuningPipeline
from .stages import (
    AnchorStage,
    FilterStage,
    FitStage,
    FixedCornerAnchorStage,
    SweepStage,
    ValidateStage,
)

__all__ = [
    "all_pipelines",
    "get_pipeline",
    "pipeline_catalogue",
    "pipeline_names",
    "register_pipeline",
    "resolve_method",
]

#: Registered pipeline factories, in registration order.
_REGISTRY: dict[str, Callable[[], TuningPipeline]] = {}

#: Campaign-grid shorthand for the two methods PR 1 shipped with.
METHOD_ALIASES: dict[str, str] = {
    "fast": "fast-extraction",
    "baseline": "dense-grid-baseline",
}


def register_pipeline(
    name: str, factory: Callable[[], TuningPipeline], overwrite: bool = False
) -> Callable[[], TuningPipeline]:
    """Register a pipeline factory under ``name`` (returns it, so it chains)."""
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"pipeline {name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _REGISTRY[str(name)] = factory
    return factory


def get_pipeline(name: str) -> TuningPipeline:
    """Build a fresh pipeline registered under ``name`` (aliases accepted)."""
    resolved = METHOD_ALIASES.get(name, name)
    try:
        factory = _REGISTRY[resolved]
    except KeyError:
        raise ConfigurationError(
            f"unknown pipeline {name!r}; known: {', '.join(pipeline_names())}"
        ) from None
    return factory()


def resolve_method(method: str) -> str:
    """Canonical registry name for a campaign method string.

    Raises :class:`ConfigurationError` for names that are neither an alias
    (``"fast"``, ``"baseline"``) nor a registered pipeline.
    """
    resolved = METHOD_ALIASES.get(method, method)
    if resolved not in _REGISTRY:
        raise ConfigurationError(
            f"unknown extraction method {method!r}; known: "
            f"{', '.join(sorted(set(METHOD_ALIASES) | set(_REGISTRY)))}"
        )
    return resolved


def pipeline_names() -> tuple[str, ...]:
    """Registered pipeline names, in registration order."""
    return tuple(_REGISTRY)


def all_pipelines() -> tuple[TuningPipeline, ...]:
    """A fresh instance of every registered pipeline, in registration order."""
    return tuple(factory() for factory in _REGISTRY.values())


def pipeline_catalogue() -> str:
    """Plain-text listing of every registered pipeline and its stages."""
    lines = ["Pipeline catalogue", "=" * 18]
    pipelines = all_pipelines()
    width = max((len(p.name) for p in pipelines), default=0)
    for pipeline in pipelines:
        stages = " -> ".join(pipeline.stage_names)
        lines.append(f"{pipeline.name:<{width}}  {stages}")
        detail = pipeline.description or f"method={pipeline.method_name}"
        if pipeline.method_name != pipeline.name:
            detail += f" [method={pipeline.method_name}]"
        lines.append(f"{'':<{width}}  {detail}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Built-in catalogue
# ---------------------------------------------------------------------------


def _baseline_config():
    # Imported here: repro.baseline is loaded lazily so the registry module
    # stays importable from either package first.
    from ..baseline.extraction import BaselineConfig

    return BaselineConfig()


register_pipeline(
    "fast-extraction",
    lambda: TuningPipeline(
        "fast-extraction",
        [AnchorStage(), SweepStage(), FilterStage(), FitStage(), ValidateStage()],
        default_config=ExtractionConfig.paper_defaults,
        description="The paper's probe-efficient four-stage method (§4).",
    ),
)

register_pipeline(
    "dense-grid-baseline",
    lambda: TuningPipeline(
        "dense-grid-baseline",
        [FullScanStage(), EdgeDetectStage(), LineFitStage(), BaselineValidateStage()],
        method_name="hough-baseline",
        default_config=_baseline_config,
        description="Conventional full-scan Canny+Hough baseline (§3).",
    ),
)

register_pipeline(
    "no-anchors",
    lambda: TuningPipeline(
        "no-anchors",
        [
            FixedCornerAnchorStage(),
            SweepStage(),
            FilterStage(),
            FitStage(),
            ValidateStage(),
        ],
        default_config=ExtractionConfig.paper_defaults,
        description="Ablation: sweeps start from fixed grid-corner anchors.",
    ),
)

register_pipeline(
    "no-filter",
    lambda: TuningPipeline(
        "no-filter",
        [
            AnchorStage(),
            SweepStage(),
            FilterStage(apply_filter=False),
            FitStage(),
            ValidateStage(),
        ],
        default_config=ExtractionConfig.paper_defaults,
        description="Ablation: raw sweep points go to the fit unfiltered.",
    ),
)

register_pipeline(
    "row-sweep-only",
    lambda: TuningPipeline(
        "row-sweep-only",
        [
            AnchorStage(),
            SweepStage(run_column=False),
            FilterStage(),
            FitStage(),
            ValidateStage(),
        ],
        default_config=ExtractionConfig.paper_defaults,
        description="Ablation: only the row-major (steep-line) sweep runs.",
    ),
)

register_pipeline(
    "column-sweep-only",
    lambda: TuningPipeline(
        "column-sweep-only",
        [
            AnchorStage(),
            SweepStage(run_row=False),
            FilterStage(),
            FitStage(),
            ValidateStage(),
        ],
        default_config=ExtractionConfig.paper_defaults,
        description="Ablation: only the column-major (shallow-line) sweep runs.",
    ),
)
