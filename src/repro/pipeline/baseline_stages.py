"""The Canny+Hough dense-grid baseline as a stage composition.

The conventional method the paper compares against (§3, §5.1) is also a
pipeline — acquire every pixel, detect edges, fit the two dominant lines,
validate — so it registers under the same machinery (``dense-grid-baseline``)
and produces the same per-stage telemetry as the fast method.  That is what
lets a campaign report answer "where did the probes go" *per method*: for
the baseline, essentially all of them land in the ``full-scan`` stage.
"""

from __future__ import annotations

import numpy as np

from ..baseline.canny import CannyEdgeDetector
from ..baseline.hough import HoughTransform
from ..core.virtualization import VirtualizationMatrix
from ..exceptions import BaselineError
from ..reprs import ContentRepr
from .context import StageOutcome, TuneContext
from .stages import _require_meter, slope_bounds_reject_reason

__all__ = [
    "BaselineValidateStage",
    "EdgeDetectStage",
    "FullScanStage",
    "LineFitStage",
]


class FullScanStage(ContentRepr):
    """Acquire the complete charge-stability diagram (every pixel).

    This is where essentially all of the baseline's simulated runtime goes:
    each pixel costs a dwell time.
    """

    name = "full-scan"

    def run(self, ctx: TuneContext) -> StageOutcome:
        meter = _require_meter(ctx, self.name)
        # Mirrors the monolithic baseline's failure contract: a run that
        # dies before the line fit reports an unknown edge count.
        ctx.metadata["n_edge_pixels"] = None
        ctx.extras["image"] = meter.acquire_full_grid()
        return StageOutcome()


class EdgeDetectStage(ContentRepr):
    """Canny edge detection over the acquired image (compute-only)."""

    name = "edge-detect"

    def run(self, ctx: TuneContext) -> StageOutcome:
        image = ctx.extras.get("image")
        if image is None:
            raise BaselineError(
                "edge-detect stage needs an acquired image; compose a "
                "full-scan stage first"
            )
        edges = CannyEdgeDetector(ctx.config.canny).detect(image)
        n_edges = int(np.count_nonzero(edges))
        if n_edges < ctx.config.min_edge_pixels:
            raise BaselineError(
                f"Canny found only {n_edges} edge pixels "
                f"(need at least {ctx.config.min_edge_pixels}) — cannot establish the lines"
            )
        ctx.extras["edges"] = edges
        return StageOutcome()


class LineFitStage(ContentRepr):
    """Hough transform, steep/shallow classification, slope → matrix."""

    name = "line-fit"

    def run(self, ctx: TuneContext) -> StageOutcome:
        meter = _require_meter(ctx, self.name)
        edges = ctx.extras.get("edges")
        if edges is None:
            raise BaselineError(
                "line-fit stage needs detected edges; compose an edge-detect "
                "stage first"
            )
        cfg = ctx.config
        lines = HoughTransform(cfg.hough).find_lines(edges)
        if not lines:
            raise BaselineError("Hough transform found no significant lines")
        x_step = float(meter.x_voltages[1] - meter.x_voltages[0])
        y_step = float(meter.y_voltages[1] - meter.y_voltages[0])
        steep_candidates = []
        shallow_candidates = []
        for line in lines:
            theta = line.theta_deg
            # Negative-slope lines have normal angles strictly inside (0, 90).
            if not 0.0 < theta < 90.0:
                continue
            if theta <= cfg.steep_theta_max_deg:
                steep_candidates.append(line)
            else:
                shallow_candidates.append(line)
        if not steep_candidates:
            raise BaselineError(
                "no steep (nearly vertical, negative-slope) transition line detected"
            )
        if not shallow_candidates:
            raise BaselineError(
                "no shallow (nearly horizontal, negative-slope) transition line detected"
            )
        if ctx.gate_x is None or ctx.gate_y is None:
            raise BaselineError(
                "line-fit stage needs the context's gate names; the composer "
                "resolves them from the meter backend when unset"
            )
        steep = max(steep_candidates, key=lambda line: line.votes)
        shallow = max(shallow_candidates, key=lambda line: line.votes)
        slope_steep = steep.slope_voltage(x_step, y_step)
        slope_shallow = shallow.slope_voltage(x_step, y_step)
        ctx.slopes = (slope_steep, slope_shallow)
        ctx.matrix = VirtualizationMatrix.from_slopes(
            slope_steep=slope_steep,
            slope_shallow=slope_shallow,
            gate_x=ctx.gate_x,
            gate_y=ctx.gate_y,
        )
        ctx.metadata["n_edge_pixels"] = int(np.count_nonzero(edges))
        ctx.metadata["n_hough_lines"] = len(lines)
        return StageOutcome()


class BaselineValidateStage(ContentRepr):
    """Physical-plausibility validation of the Hough-detected slopes."""

    name = "validate"

    def run(self, ctx: TuneContext) -> StageOutcome:
        reason = self._reject_reason(ctx)
        if reason is not None:
            return StageOutcome(status="failed", detail=reason)
        return StageOutcome()

    @staticmethod
    def _reject_reason(ctx: TuneContext) -> str | None:
        if ctx.matrix is None or ctx.slopes is None:
            return "pipeline did not produce a line fit"
        cfg = ctx.config
        slope_steep, slope_shallow = ctx.slopes
        if not np.isfinite(slope_shallow):
            return "shallow slope is not finite"
        if slope_steep >= 0 or slope_shallow >= 0:
            return (
                "detected slopes must both be negative; got "
                f"steep={slope_steep:.3f}, shallow={slope_shallow:.3f}"
            )
        return slope_bounds_reject_reason(
            slope_steep,
            slope_shallow,
            ctx.matrix,
            min_steep_slope_magnitude=cfg.min_steep_slope_magnitude,
            max_shallow_slope_magnitude=cfg.max_shallow_slope_magnitude,
            max_alpha=cfg.max_alpha,
        )
