"""Composable tuning pipelines with per-stage telemetry.

The tuning path — the paper's four-stage extraction, the dense-grid
baseline, the auto-tuning workflow around them — is expressed as named
compositions of :class:`~repro.pipeline.context.Stage` objects over a
shared :class:`~repro.pipeline.context.TuneContext`.  The composer charges
every stage for exactly what it probed (meter snapshot/diff), and the
resulting :class:`~repro.core.result.StageTelemetry` rows ride the result
objects all the way into campaign records and report tables.

Quick tour::

    from repro.pipeline import get_pipeline, pipeline_names

    pipeline = get_pipeline("fast-extraction")
    result = pipeline.run(session)          # ExtractionResult, as before
    for t in result.stage_telemetry:        # ...now with per-stage costs
        print(t.stage, t.n_probes, t.sim_elapsed_s)

``python -m repro.pipeline --list`` prints the registered catalogue.
"""

from ..core.result import StageTelemetry
from .baseline_stages import (
    BaselineValidateStage,
    EdgeDetectStage,
    FullScanStage,
    LineFitStage,
)
from .composer import TuningPipeline, run_stage
from .context import Stage, StageOutcome, TuneContext
from .registry import (
    METHOD_ALIASES,
    all_pipelines,
    get_pipeline,
    pipeline_catalogue,
    pipeline_names,
    register_pipeline,
    resolve_method,
)
from .stages import (
    AnchorStage,
    FilterStage,
    FitStage,
    FixedCornerAnchorStage,
    OpenSessionStage,
    StalenessCheckStage,
    SweepStage,
    ValidateStage,
    WindowSearchStage,
)

__all__ = [
    "METHOD_ALIASES",
    "AnchorStage",
    "BaselineValidateStage",
    "EdgeDetectStage",
    "FilterStage",
    "FitStage",
    "FixedCornerAnchorStage",
    "FullScanStage",
    "LineFitStage",
    "OpenSessionStage",
    "Stage",
    "StageOutcome",
    "StageTelemetry",
    "StalenessCheckStage",
    "SweepStage",
    "TuneContext",
    "TuningPipeline",
    "ValidateStage",
    "WindowSearchStage",
    "all_pipelines",
    "format_stage_costs",
    "get_pipeline",
    "pipeline_catalogue",
    "pipeline_names",
    "register_pipeline",
    "resolve_method",
    "run_stage",
]


def format_stage_costs(stage_telemetry) -> str:
    """Per-stage cost table of one run's telemetry (plain text).

    Accepts any iterable of :class:`~repro.core.result.StageTelemetry`
    (``result.stage_telemetry``, ``auto_tune_result.stage_telemetry``).
    """
    from ..analysis.reporting import format_table

    rows = [
        [
            t.stage,
            t.outcome,
            str(t.n_probes),
            str(t.cache_hits),
            f"{t.sim_elapsed_s:.2f}s",
            f"{1e3 * t.wall_s:.1f}ms",
        ]
        for t in stage_telemetry
    ]
    return format_table(
        ["Stage", "Outcome", "Probes", "Cache hits", "Sim time", "Wall"],
        rows,
        title="Per-stage cost",
    )
