"""The tuning-pipeline contract: stages, outcomes, and the shared context.

The paper's extraction is a *sequence* of probe-spending steps; this module
gives that sequence an explicit shape so ablations, method variants, and
per-stage cost accounting stop requiring copy-paste:

* a :class:`Stage` is one step — it reads and writes the shared
  :class:`TuneContext` and reports a :class:`StageOutcome`;
* a :class:`TuneContext` carries everything stages exchange: the measurement
  meter/session, the configuration, and the accumulated artifacts (anchors,
  transition points, fit, matrix);
* the composer (:mod:`repro.pipeline.composer`) wraps every stage with
  meter snapshot/diff accounting, producing one
  :class:`~repro.core.result.StageTelemetry` row per stage.

Stages signal an unrecoverable failure by raising
:class:`~repro.exceptions.ExtractionError` (or a subclass); the composer
converts that into an unsuccessful result with the telemetry of every
completed stage intact.  A stage that *completes* but rejects the run (the
validation stage) returns ``StageOutcome(status="failed", detail=...)``
instead, which preserves the artifacts extracted so far.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

from ..core.result import (
    AnchorSearchResult,
    SlopeFitResult,
    TransitionPointSet,
)
from ..core.virtualization import VirtualizationMatrix
from ..core.window_search import WindowSearchResult
from ..instrument.measurement import ChargeSensorMeter
from ..instrument.session import ExperimentSession
from ..instrument.timing import VirtualClock

__all__ = ["Stage", "StageOutcome", "TuneContext"]


@dataclass(frozen=True)
class StageOutcome:
    """What a stage reports back to the composer.

    ``status`` is ``"ok"``, ``"failed"`` (the stage completed but rejects
    the run — artifacts are kept), or ``"skipped"`` (the stage decided it
    had nothing to do).  The optional cost fields override the composer's
    meter snapshot/diff accounting — only stages that probe through a
    *private* meter (the coarse window search, the staleness re-probe) need
    them; ordinary stages probe through ``ctx.meter`` and leave them unset.
    """

    status: str = "ok"
    detail: str = ""
    n_probes: int | None = None
    n_requests: int | None = None
    cache_hits: int | None = None
    sim_elapsed_s: float | None = None

    def __post_init__(self) -> None:
        if self.status not in ("ok", "failed", "skipped"):
            raise ValueError(
                f"stage outcome status must be 'ok', 'failed', or 'skipped'; "
                f"got {self.status!r}"
            )

    @property
    def has_cost_override(self) -> bool:
        """Whether the stage supplied its own cost accounting."""
        return any(
            value is not None
            for value in (
                self.n_probes,
                self.n_requests,
                self.cache_hits,
                self.sim_elapsed_s,
            )
        )


@runtime_checkable
class Stage(Protocol):
    """One step of a tuning pipeline.

    Implementations need a stable ``name`` (used in telemetry and reports)
    and a ``run`` that mutates the shared context and returns a
    :class:`StageOutcome` (or ``None``, shorthand for success).
    """

    @property
    def name(self) -> str:
        """Stable stage name used in telemetry rows and report tables."""
        ...

    def run(self, ctx: "TuneContext") -> StageOutcome | None:
        """Execute the stage against the shared context."""
        ...


@dataclass
class TuneContext:
    """Mutable state shared by the stages of one pipeline run.

    The fixed slots cover the artifacts the built-in stages exchange; the
    ``extras`` dict is the open extension point for custom stages (keyed by
    convention on the producing stage's name).  ``metadata`` is copied into
    the final :class:`~repro.core.result.ExtractionResult.metadata`.
    """

    meter: ChargeSensorMeter | None = None
    session: ExperimentSession | None = None
    config: Any = None
    # Resolved from the meter's backend by the composer when left unset;
    # an unset pair is *not* defaulted to ("P1", "P2") — that would silently
    # mislabel matrices from custom backends (see gate_names_for).
    gate_x: str | None = None
    gate_y: str | None = None
    clock: VirtualClock | None = None
    seed: Any = None
    # Accumulated artifacts ------------------------------------------------
    window: WindowSearchResult | None = None
    anchors: AnchorSearchResult | None = None
    points: TransitionPointSet | None = None
    fit: SlopeFitResult | None = None
    matrix: VirtualizationMatrix | None = None
    slopes: tuple[float, float] | None = None
    metadata: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)
