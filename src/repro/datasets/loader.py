"""Saving, loading, and registering charge-stability diagrams.

Benchmarks are normally regenerated from code (:mod:`repro.datasets.qflow`),
but users who want to run the extraction on their own measured diagrams — or
cache the synthetic suite on disk — can round-trip
:class:`~repro.physics.csd.ChargeStabilityDiagram` objects through ``.npz``
files with this module.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..exceptions import DatasetError
from ..physics.csd import ChargeStabilityDiagram, TransitionLineGeometry
from ..strictjson import dumps as strict_dumps
from ..strictjson import loads as strict_loads


def save_csd(csd: ChargeStabilityDiagram, path: str | Path) -> Path:
    """Serialise a diagram (data, axes, geometry, metadata) to an ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    geometry = csd.geometry
    geometry_array = (
        np.array(
            [
                geometry.slope_steep,
                geometry.slope_shallow,
                geometry.crossing_x,
                geometry.crossing_y,
                geometry.alpha_12,
                geometry.alpha_21,
            ]
        )
        if geometry is not None
        else np.zeros(0)
    )
    occupations = csd.occupations if csd.occupations is not None else np.zeros(0)
    np.savez_compressed(
        path,
        data=csd.data,
        x_voltages=csd.x_voltages,
        y_voltages=csd.y_voltages,
        gate_x=np.array(csd.gate_x),
        gate_y=np.array(csd.gate_y),
        geometry=geometry_array,
        occupations=occupations,
        # Tagged strict JSON: a NaN in user metadata must survive the
        # round-trip instead of being written as the invalid literal `NaN`.
        metadata=np.array(strict_dumps(csd.metadata, default=str)),
    )
    return path


def load_csd(path: str | Path) -> ChargeStabilityDiagram:
    """Load a diagram previously written by :func:`save_csd`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"dataset file not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        geometry_array = archive["geometry"]
        geometry = None
        if geometry_array.size == 6:
            geometry = TransitionLineGeometry(
                slope_steep=float(geometry_array[0]),
                slope_shallow=float(geometry_array[1]),
                crossing_x=float(geometry_array[2]),
                crossing_y=float(geometry_array[3]),
                alpha_12=float(geometry_array[4]),
                alpha_21=float(geometry_array[5]),
            )
        occupations = archive["occupations"]
        metadata = strict_loads(str(archive["metadata"]))
        return ChargeStabilityDiagram(
            data=archive["data"],
            x_voltages=archive["x_voltages"],
            y_voltages=archive["y_voltages"],
            gate_x=str(archive["gate_x"]),
            gate_y=str(archive["gate_y"]),
            geometry=geometry,
            occupations=occupations if occupations.size else None,
            metadata=metadata,
        )


def save_suite(csds: list[ChargeStabilityDiagram], directory: str | Path) -> list[Path]:
    """Save a list of diagrams as ``benchmark_01.npz`` ... in a directory."""
    directory = Path(directory)
    paths = []
    for index, csd in enumerate(csds, start=1):
        paths.append(save_csd(csd, directory / f"benchmark_{index:02d}.npz"))
    return paths


def load_suite_from(directory: str | Path) -> list[ChargeStabilityDiagram]:
    """Load every ``benchmark_*.npz`` file from a directory, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        raise DatasetError(f"dataset directory not found: {directory}")
    paths = sorted(directory.glob("benchmark_*.npz"))
    if not paths:
        raise DatasetError(f"no benchmark_*.npz files found in {directory}")
    return [load_csd(path) for path in paths]
