"""Parameterised synthetic charge-stability-diagram generation.

:class:`SyntheticCSDConfig` bundles everything needed to build one benchmark
diagram — device electrostatics, sensor settings, noise recipe, pixel
resolution, window size, and seed — so the benchmark suite in
:mod:`repro.datasets.qflow` is just a list of these configurations, fully
reproducible from the code alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import DatasetError
from ..physics.csd import ChargeStabilityDiagram, CSDSimulator
from ..physics.dot_array import DotArrayDevice
from ..physics.noise import (
    CompositeNoise,
    DriftNoise,
    NoiseModel,
    PinkNoise,
    TelegraphNoise,
    WhiteNoise,
)
from ..physics.sensor import ChargeSensorConfig


@dataclass(frozen=True)
class NoiseRecipe:
    """Noise amplitudes of one synthetic diagram (all in nanoamperes)."""

    white_sigma_na: float = 0.012
    pink_sigma_na: float = 0.015
    telegraph_amplitude_na: float = 0.0
    telegraph_dwell_pixels: float = 300.0
    drift_na: float = 0.02

    def build(self) -> NoiseModel:
        """Assemble the composite noise model."""
        components: list[NoiseModel] = []
        if self.white_sigma_na > 0:
            components.append(WhiteNoise(sigma_na=self.white_sigma_na))
        if self.pink_sigma_na > 0:
            components.append(PinkNoise(sigma_na=self.pink_sigma_na))
        if self.telegraph_amplitude_na > 0:
            components.append(
                TelegraphNoise(
                    amplitude_na=self.telegraph_amplitude_na,
                    mean_dwell_pixels=self.telegraph_dwell_pixels,
                )
            )
        if self.drift_na != 0:
            components.append(DriftNoise(ramp_na=self.drift_na))
        if not components:
            components.append(WhiteNoise(sigma_na=0.0))
        return CompositeNoise(components)


@dataclass(frozen=True)
class SyntheticCSDConfig:
    """Full recipe for one synthetic benchmark diagram."""

    name: str
    resolution: int
    cross_coupling: tuple[float, float] = (0.25, 0.22)
    charging_energy_mev: tuple[float, float] = (3.2, 2.9)
    mutual_fraction: float = 0.15
    plunger_lever_arms: tuple[float, float] = (0.10, 0.11)
    sensor_peak_current_na: float = 1.0
    sensor_peak_width_mv: float = 0.9
    sensor_operating_point_mv: float = 1.0
    sensor_dot_shifts_mv: tuple[float, float] = (0.9, 0.55)
    noise: NoiseRecipe = field(default_factory=NoiseRecipe)
    window_span_fraction: float = 0.75
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if self.resolution < 16:
            raise DatasetError("resolution must be at least 16 pixels")
        if not 0 < self.window_span_fraction <= 1.5:
            raise DatasetError("window_span_fraction must lie in (0, 1.5]")

    # ------------------------------------------------------------------
    def build_device(self) -> DotArrayDevice:
        """Instantiate the double-dot device described by this config."""
        sensor_config = ChargeSensorConfig(
            peak_current_na=self.sensor_peak_current_na,
            peak_width_mv=self.sensor_peak_width_mv,
            operating_point_mv=self.sensor_operating_point_mv,
            dot_shift_mv=self.sensor_dot_shifts_mv,
            gate_crosstalk_mv_per_v=(6.0, 4.0),
        )
        return DotArrayDevice.double_dot(
            cross_coupling=self.cross_coupling,
            charging_energy_mev=self.charging_energy_mev,
            mutual_fraction=self.mutual_fraction,
            plunger_lever_arms=self.plunger_lever_arms,
            sensor_config=sensor_config,
            name=self.name,
        )

    def build_csd(self) -> ChargeStabilityDiagram:
        """Simulate the diagram described by this config."""
        device = self.build_device()
        simulator = CSDSimulator(device)
        window = simulator.default_window(span_fraction=self.window_span_fraction)
        csd = simulator.simulate(
            resolution=self.resolution,
            window=window,
            noise=self.noise.build(),
            seed=self.seed,
        )
        csd.metadata.update(
            {
                "name": self.name,
                "resolution": self.resolution,
                "cross_coupling": self.cross_coupling,
                "seed": self.seed,
                "description": self.description,
            }
        )
        return csd
