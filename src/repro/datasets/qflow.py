"""QFlow-like benchmark suite: the twelve diagrams of the paper's Table 1.

The paper evaluates on the twelve experimentally measured charge-stability
diagrams of the qflow v2 dataset (Zwolak et al. [35]), cropped to the 50%
window containing the lowest four charge states, with final resolutions
between 63x63 and 200x200 pixels.  That dataset is not redistributable here,
so this module provides the substitution documented in DESIGN.md §3: twelve
synthetic diagrams with

* the **same per-index pixel resolution** as Table 1,
* per-benchmark device parameters (cross couplings between 0.15 and 0.42,
  different charging energies and lever arms, different seeds) so the twelve
  cases are genuinely distinct devices rather than noise replicas,
* noise levels chosen so the suite reproduces the qualitative structure of
  Table 1: benchmarks 1 and 2 are swamped by noise and defeat *both* methods,
  benchmark 7 has a low-contrast sensor that starves the Canny/Hough baseline
  of edge points while the sweep-based method still succeeds, and the
  remaining nine are ordinary working devices.

Every benchmark is generated deterministically from its configuration; the
suite is cached in-process because several tests and benchmarks iterate over
it.
"""

from __future__ import annotations

from functools import lru_cache

from ..exceptions import DatasetError
from ..physics.csd import ChargeStabilityDiagram
from .synthetic import NoiseRecipe, SyntheticCSDConfig

#: Pixel resolutions of the twelve Table 1 benchmarks, indexed 1..12.
TABLE1_RESOLUTIONS: tuple[int, ...] = (200, 200, 63, 63, 63, 100, 100, 100, 100, 100, 100, 200)

#: Benchmarks (1-based) that are expected to defeat both methods (heavy noise).
EXPECTED_HARD_FAILURES: tuple[int, ...] = (1, 2)

#: Benchmark (1-based) designed so the Hough baseline fails but the fast
#: extraction still succeeds (mirrors the paper's CSD 7).
EXPECTED_BASELINE_ONLY_FAILURE: int = 7


def _benchmark_configs() -> tuple[SyntheticCSDConfig, ...]:
    """The twelve benchmark recipes."""
    standard_noise = NoiseRecipe(white_sigma_na=0.012, pink_sigma_na=0.015, drift_na=0.02)
    quiet_noise = NoiseRecipe(white_sigma_na=0.008, pink_sigma_na=0.010, drift_na=0.015)
    pathological_noise = NoiseRecipe(
        white_sigma_na=0.28,
        pink_sigma_na=0.35,
        telegraph_amplitude_na=0.30,
        telegraph_dwell_pixels=120.0,
        drift_na=0.10,
    )
    low_contrast_noise = NoiseRecipe(
        white_sigma_na=0.035,
        pink_sigma_na=0.030,
        telegraph_amplitude_na=0.0,
        drift_na=0.03,
    )
    configs = (
        # 1, 2: 200x200 devices drowned in charge noise -> both methods fail.
        SyntheticCSDConfig(
            name="qflow-like-01",
            resolution=200,
            cross_coupling=(0.24, 0.20),
            charging_energy_mev=(3.1, 2.8),
            noise=pathological_noise,
            seed=101,
            description="200x200, pathological noise floor (expected: both methods fail)",
        ),
        SyntheticCSDConfig(
            name="qflow-like-02",
            resolution=200,
            cross_coupling=(0.30, 0.26),
            charging_energy_mev=(2.9, 3.2),
            noise=pathological_noise,
            seed=102,
            description="200x200, pathological noise floor (expected: both methods fail)",
        ),
        # 3-5: small 63x63 scans of well-behaved devices.
        SyntheticCSDConfig(
            name="qflow-like-03",
            resolution=63,
            cross_coupling=(0.22, 0.19),
            charging_energy_mev=(3.3, 3.0),
            plunger_lever_arms=(0.10, 0.10),
            noise=standard_noise,
            seed=103,
            description="63x63, moderate cross coupling",
        ),
        SyntheticCSDConfig(
            name="qflow-like-04",
            resolution=63,
            cross_coupling=(0.30, 0.24),
            charging_energy_mev=(3.0, 2.7),
            plunger_lever_arms=(0.11, 0.10),
            noise=standard_noise,
            seed=104,
            description="63x63, stronger cross coupling",
        ),
        SyntheticCSDConfig(
            name="qflow-like-05",
            resolution=63,
            cross_coupling=(0.17, 0.15),
            charging_energy_mev=(3.4, 3.3),
            plunger_lever_arms=(0.09, 0.10),
            noise=quiet_noise,
            seed=105,
            description="63x63, weak cross coupling, quiet sensor",
        ),
        # 6-11: 100x100 scans, the bulk of the suite.
        SyntheticCSDConfig(
            name="qflow-like-06",
            resolution=100,
            cross_coupling=(0.26, 0.23),
            charging_energy_mev=(3.2, 2.9),
            noise=standard_noise,
            seed=106,
            description="100x100, typical device",
        ),
        SyntheticCSDConfig(
            name="qflow-like-07",
            resolution=100,
            cross_coupling=(0.28, 0.22),
            charging_energy_mev=(3.1, 3.0),
            sensor_peak_current_na=0.45,
            sensor_peak_width_mv=1.6,
            sensor_operating_point_mv=1.3,
            sensor_dot_shifts_mv=(0.50, 0.30),
            noise=low_contrast_noise,
            seed=107,
            description=(
                "100x100, low-contrast sensor and elevated noise "
                "(expected: baseline fails, fast extraction succeeds)"
            ),
        ),
        SyntheticCSDConfig(
            name="qflow-like-08",
            resolution=100,
            cross_coupling=(0.35, 0.30),
            charging_energy_mev=(2.8, 2.6),
            plunger_lever_arms=(0.12, 0.11),
            noise=standard_noise,
            seed=108,
            description="100x100, strong cross coupling",
        ),
        SyntheticCSDConfig(
            name="qflow-like-09",
            resolution=100,
            cross_coupling=(0.20, 0.17),
            charging_energy_mev=(3.5, 3.1),
            noise=quiet_noise,
            seed=109,
            description="100x100, weak cross coupling",
        ),
        SyntheticCSDConfig(
            name="qflow-like-10",
            resolution=100,
            cross_coupling=(0.25, 0.28),
            charging_energy_mev=(3.0, 3.2),
            plunger_lever_arms=(0.10, 0.12),
            noise=standard_noise,
            seed=110,
            description="100x100, asymmetric coupling (dot 2 more exposed)",
        ),
        SyntheticCSDConfig(
            name="qflow-like-11",
            resolution=100,
            cross_coupling=(0.32, 0.18),
            charging_energy_mev=(3.3, 2.8),
            noise=standard_noise,
            seed=111,
            description="100x100, strongly asymmetric coupling",
        ),
        # 12: a large, clean 200x200 scan (the paper's best speedup case).
        SyntheticCSDConfig(
            name="qflow-like-12",
            resolution=200,
            cross_coupling=(0.27, 0.24),
            charging_energy_mev=(3.2, 3.0),
            noise=quiet_noise,
            seed=112,
            description="200x200, quiet device (largest expected speedup)",
        ),
    )
    return configs


#: The twelve benchmark configurations (index 0 is benchmark 1).
QFLOW_BENCHMARKS: tuple[SyntheticCSDConfig, ...] = _benchmark_configs()


def n_benchmarks() -> int:
    """Number of benchmarks in the suite (twelve, as in Table 1)."""
    return len(QFLOW_BENCHMARKS)


def benchmark_config(index: int) -> SyntheticCSDConfig:
    """Configuration of benchmark ``index`` (1-based, as in Table 1)."""
    if not 1 <= index <= len(QFLOW_BENCHMARKS):
        raise DatasetError(
            f"benchmark index must be in 1..{len(QFLOW_BENCHMARKS)}, got {index}"
        )
    return QFLOW_BENCHMARKS[index - 1]


@lru_cache(maxsize=None)
def load_benchmark(index: int) -> ChargeStabilityDiagram:
    """Generate (and cache) benchmark ``index`` (1-based, as in Table 1)."""
    return benchmark_config(index).build_csd()


def load_suite() -> list[ChargeStabilityDiagram]:
    """Generate (and cache) the full twelve-benchmark suite in Table 1 order."""
    return [load_benchmark(index) for index in range(1, len(QFLOW_BENCHMARKS) + 1)]


def clear_cache() -> None:
    """Drop the cached benchmark diagrams (used by tests)."""
    load_benchmark.cache_clear()
