"""Benchmark datasets: the qflow-like twelve-diagram suite and I/O helpers."""

from .loader import load_csd, load_suite_from, save_csd, save_suite
from .qflow import (
    EXPECTED_BASELINE_ONLY_FAILURE,
    EXPECTED_HARD_FAILURES,
    QFLOW_BENCHMARKS,
    TABLE1_RESOLUTIONS,
    benchmark_config,
    clear_cache,
    load_benchmark,
    load_suite,
    n_benchmarks,
)
from .synthetic import NoiseRecipe, SyntheticCSDConfig

__all__ = [
    "load_csd",
    "load_suite_from",
    "save_csd",
    "save_suite",
    "EXPECTED_BASELINE_ONLY_FAILURE",
    "EXPECTED_HARD_FAILURES",
    "QFLOW_BENCHMARKS",
    "TABLE1_RESOLUTIONS",
    "benchmark_config",
    "clear_cache",
    "load_benchmark",
    "load_suite",
    "n_benchmarks",
    "NoiseRecipe",
    "SyntheticCSDConfig",
]
