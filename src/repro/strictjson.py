"""Strict JSON with tagged non-finite floats.

Every persisted artifact in this repo — campaign journals, result files,
dataset metadata, lint reports — is written with ``allow_nan=False`` so a
``NaN`` can never silently become the *invalid* JSON literal ``NaN`` (which
``json.loads`` happens to accept but no other tool does).  Fields that
legitimately carry non-finite sentinels (``max_alpha_error`` is NaN when a
session has no ground-truth geometry) round-trip through a tagged dict
instead::

    float("nan")  <->  {"__nonfinite__": "nan"}

:func:`encode_value`/:func:`decode_value` are the element-level pair used by
record ``as_dict``/``from_dict`` methods that visit fields one by one;
:func:`encode_tree`/:func:`decode_tree` walk nested dicts and lists for
free-form payloads like dataset metadata; :func:`dumps`/:func:`loads` bundle
the tree walk with the strict serialiser.
"""

from __future__ import annotations

import json
import math

__all__ = [
    "NONFINITE_TAG",
    "decode_tree",
    "decode_value",
    "dumps",
    "encode_tree",
    "encode_value",
    "loads",
]

#: Key marking a tagged non-finite float in strict-JSON output.
NONFINITE_TAG = "__nonfinite__"


def encode_value(value):
    """JSON-strict encoding of one scalar: non-finite floats become tagged dicts."""
    if isinstance(value, float) and not math.isfinite(value):
        return {NONFINITE_TAG: repr(value)}
    return value


def decode_value(value):
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict) and set(value) == {NONFINITE_TAG}:
        return float(value[NONFINITE_TAG])
    return value


def encode_tree(value):
    """Recursively tag non-finite floats inside nested dicts/lists/tuples."""
    if isinstance(value, dict):
        return {key: encode_tree(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_tree(item) for item in value]
    return encode_value(value)


def decode_tree(value):
    """Inverse of :func:`encode_tree`."""
    if isinstance(value, dict):
        decoded = decode_value(value)
        if decoded is not value:
            return decoded
        return {key: decode_tree(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_tree(item) for item in value]
    return value


def dumps(obj, **kwargs) -> str:
    """``json.dumps`` with non-finite floats tagged and ``allow_nan=False``."""
    return json.dumps(encode_tree(obj), allow_nan=False, **kwargs)


def loads(text: str):
    """Inverse of :func:`dumps`: parse, then untag non-finite floats."""
    return decode_tree(json.loads(text))
