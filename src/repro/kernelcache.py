"""Cross-job memoisation of noise-free CSD kernels.

Campaign repeats, ablation variants, and array-extraction gate-pair sweeps
rasterise the *same* noise-free physics over and over: the pure sensor-current
grid depends only on the device electrostatics, the sensor configuration, the
solver bound, and the voltage window — not on the seed, the noise model, the
timing model, or which pipeline is asking.  This module caches exactly that
pure layer, keyed by a content fingerprint of everything the values depend on.

What is — and is not — cached
-----------------------------

Only the noise-free, time-independent sensor currents are memoised.  The
seeded noise field, time-dependent noise draws, and drift trajectories are
*never* cached: :class:`~repro.instrument.measurement.DeviceBackend` adds its
own seeded noise on top of the cached kernel, and bypasses the cache entirely
whenever it is time-dependent (active drift or time-dependent noise), because
those values depend on the probe timestamp and would otherwise go stale.
Cached values are produced by the same batched physics kernel a cache miss
would run, so cache on/off is bit-identical by construction.

Entries fill lazily, pixel by pixel, so probe-efficient algorithms that only
touch a fraction of the grid never pay for a full rasterisation.

The default process-wide cache (:func:`default_kernel_cache`) is what
``DeviceBackend`` uses unless told otherwise; campaign workers each hold one
per process, so repeats landing on the same worker stop re-solving identical
physics.  :func:`configure_kernel_cache` tunes or disables it globally.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = [
    "DEFAULT_MAX_ENTRIES",
    "KernelCache",
    "KernelCacheEntry",
    "KernelCacheStats",
    "clear_kernel_cache",
    "configure_kernel_cache",
    "default_kernel_cache",
    "kernel_fingerprint",
]

#: Default bound on cached kernels; one 100x100 entry is ~90 KB, so the
#: default cache tops out at a few MB even with full-grid workloads.
DEFAULT_MAX_ENTRIES = 32


def _array_bytes(values: np.ndarray | list) -> bytes:
    arr = np.ascontiguousarray(np.asarray(values, dtype=float))
    return repr(arr.shape).encode() + arr.tobytes()


def kernel_fingerprint(
    device,
    x_voltages: np.ndarray,
    y_voltages: np.ndarray,
    gate_x: int,
    gate_y: int,
    fixed_voltages: np.ndarray,
) -> str:
    """Content fingerprint of one noise-free CSD rasterisation.

    Covers everything the pure pixel values depend on — capacitance matrices,
    gate names and specs, sensor configuration, the solver's occupation bound,
    the swept-gate indices, both voltage axes, and the fixed voltages of the
    unswept gates.  Deliberately excludes seeds, noise models, timing, drift,
    and solver pruning flags: none of them change the noise-free values
    (pruning is bit-identical by proof, the rest enter downstream of the
    kernel), so jobs differing only in those share one entry.
    """
    model = device.capacitance
    h = hashlib.sha256()
    parts = [
        b"kernel-v1",
        _array_bytes(model.dot_dot),
        _array_bytes(model.dot_gate),
        ",".join(model.gate_names).encode(),
        repr(tuple(device.gate_specs)).encode(),
        repr(device.sensor.config).encode(),
        str(int(device.solver.max_electrons_per_dot)).encode(),
        str(int(gate_x)).encode(),
        str(int(gate_y)).encode(),
        _array_bytes(x_voltages),
        _array_bytes(y_voltages),
        _array_bytes(fixed_voltages),
    ]
    for part in parts:
        h.update(part)
        h.update(b"\x1f")
    return h.hexdigest()


@dataclass(frozen=True)
class KernelCacheStats:
    """Counters of a :class:`KernelCache` (strict-JSON round-trippable).

    ``pixel_hits`` / ``pixel_solves`` count individual pixel values served
    from memory vs solved fresh; ``entry_hits`` / ``entry_misses`` count
    whole-kernel lookups; ``evictions`` counts LRU drops.
    """

    n_entries: int
    pixel_hits: int
    pixel_solves: int
    entry_hits: int
    entry_misses: int
    evictions: int

    def as_dict(self) -> dict:
        """Plain-dict view with JSON-safe scalar values."""
        return {
            "n_entries": int(self.n_entries),
            "pixel_hits": int(self.pixel_hits),
            "pixel_solves": int(self.pixel_solves),
            "entry_hits": int(self.entry_hits),
            "entry_misses": int(self.entry_misses),
            "evictions": int(self.evictions),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "KernelCacheStats":
        """Rebuild from :meth:`as_dict` output."""
        return cls(
            n_entries=int(payload["n_entries"]),
            pixel_hits=int(payload["pixel_hits"]),
            pixel_solves=int(payload["pixel_solves"]),
            entry_hits=int(payload["entry_hits"]),
            entry_misses=int(payload["entry_misses"]),
            evictions=int(payload["evictions"]),
        )


class KernelCacheEntry:
    """Lazily filled noise-free current grid for one kernel fingerprint."""

    def __init__(self, fingerprint: str, shape: tuple[int, int]) -> None:
        self.fingerprint = fingerprint
        self.values = np.zeros(shape, dtype=float)
        self.solved = np.zeros(shape, dtype=bool)
        self.n_pixel_hits = 0
        self.n_pixel_solves = 0

    def __repr__(self) -> str:
        return (
            f"KernelCacheEntry(fingerprint={self.fingerprint[:12]!r}, "
            f"shape={self.values.shape}, solved={int(self.solved.sum())})"
        )

    @property
    def n_solved(self) -> int:
        """Number of pixels whose pure value has been computed."""
        return int(np.count_nonzero(self.solved))

    def fetch(self, rows: np.ndarray, cols: np.ndarray, solve) -> np.ndarray:
        """Values for the requested pixels, solving the missing ones once.

        ``solve(indices)`` must return the pure values of
        ``(rows[indices], cols[indices])``; it is called with the first
        in-request-order occurrence of each not-yet-solved pixel.  Because
        the physics kernel is batch-size independent, values are identical
        whether pixels are solved here, in a different grouping, or without
        any cache at all.
        """
        missing = np.flatnonzero(~self.solved[rows, cols])
        if missing.size:
            keys = rows[missing] * self.values.shape[1] + cols[missing]
            _, first_seen = np.unique(keys, return_index=True)
            idx = missing[np.sort(first_seen)]
            fresh = np.asarray(solve(idx), dtype=float)
            self.values[rows[idx], cols[idx]] = fresh
            self.solved[rows[idx], cols[idx]] = True
            self.n_pixel_solves += int(idx.size)
            self.n_pixel_hits += int(rows.size - idx.size)
        else:
            self.n_pixel_hits += int(rows.size)
        return self.values[rows, cols]


class KernelCache:
    """LRU cache of :class:`KernelCacheEntry` objects, keyed by fingerprint."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES, enabled: bool = True):
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = int(max_entries)
        self.enabled = bool(enabled)
        self._entries: OrderedDict[str, KernelCacheEntry] = OrderedDict()
        self._entry_hits = 0
        self._entry_misses = 0
        self._evictions = 0
        self._retired_pixel_hits = 0
        self._retired_pixel_solves = 0

    def __repr__(self) -> str:
        return (
            f"KernelCache(enabled={self.enabled}, "
            f"max_entries={self.max_entries}, n_entries={len(self._entries)})"
        )

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, fingerprint: str, shape: tuple[int, int]) -> KernelCacheEntry | None:
        """The (possibly fresh) entry for a fingerprint; ``None`` if disabled."""
        if not self.enabled:
            return None
        found = self._entries.get(fingerprint)
        if found is not None:
            self._entries.move_to_end(fingerprint)
            self._entry_hits += 1
            return found
        self._entry_misses += 1
        fresh = KernelCacheEntry(fingerprint, shape)
        self._entries[fingerprint] = fresh
        self._shrink()
        return fresh

    def _shrink(self) -> None:
        while len(self._entries) > self.max_entries:
            _, evicted = self._entries.popitem(last=False)
            self._retired_pixel_hits += evicted.n_pixel_hits
            self._retired_pixel_solves += evicted.n_pixel_solves
            self._evictions += 1

    @property
    def stats(self) -> KernelCacheStats:
        """Cumulative counters, including work done by evicted entries."""
        return KernelCacheStats(
            n_entries=len(self._entries),
            pixel_hits=self._retired_pixel_hits
            + sum(e.n_pixel_hits for e in self._entries.values()),
            pixel_solves=self._retired_pixel_solves
            + sum(e.n_pixel_solves for e in self._entries.values()),
            entry_hits=self._entry_hits,
            entry_misses=self._entry_misses,
            evictions=self._evictions,
        )

    def clear(self) -> None:
        """Drop every entry and zero all counters."""
        self._entries.clear()
        self._entry_hits = 0
        self._entry_misses = 0
        self._evictions = 0
        self._retired_pixel_hits = 0
        self._retired_pixel_solves = 0


_default_cache = KernelCache()


def default_kernel_cache() -> KernelCache:
    """The process-wide cache ``DeviceBackend`` uses by default."""
    return _default_cache


def configure_kernel_cache(
    *, enabled: bool | None = None, max_entries: int | None = None
) -> KernelCache:
    """Tune the process-wide cache in place; returns it for inspection.

    ``enabled=False`` turns kernel caching off globally (existing entries are
    kept but not served until re-enabled); ``max_entries`` resizes the LRU
    bound, evicting oldest entries immediately if already over it.
    """
    cache = _default_cache
    if enabled is not None:
        cache.enabled = bool(enabled)
    if max_entries is not None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        cache.max_entries = int(max_entries)
        cache._shrink()
    return cache


def clear_kernel_cache() -> None:
    """Drop every entry of the process-wide cache and zero its counters."""
    _default_cache.clear()
