"""Fast virtual gate extraction for silicon quantum dot devices.

A from-scratch reproduction of *"Fast Virtual Gate Extraction For Silicon
Quantum Dot Devices"* (Che et al., DAC 2024): the probe-efficient extraction
algorithm itself, the full-scan Canny+Hough baseline it is compared against,
and every substrate the evaluation needs — a constant-interaction device
simulator, a charge-sensor model, measurement-noise models, dwell-time
instrument accounting, and a qflow-like twelve-benchmark suite.

Typical use::

    from repro import (
        DotArrayDevice, CSDSimulator, ExperimentSession, FastVirtualGateExtractor,
    )

    device = DotArrayDevice.double_dot(cross_coupling=(0.25, 0.22))
    csd = CSDSimulator(device).simulate(resolution=100, seed=1)
    session = ExperimentSession.from_csd(csd)
    result = FastVirtualGateExtractor().extract(session)
    print(result.matrix.matrix, result.probe_stats.probe_fraction)
"""

from .baseline import BaselineConfig, HoughBaselineExtractor
from .campaign import (
    CampaignGrid,
    CampaignJob,
    CampaignResult,
    DeviceSpec,
    TuningCampaign,
)
from .cluster import ClusterBackend, ClusterStats, LocalCluster
from .core import (
    ArrayVirtualGateExtractor,
    ArrayVirtualization,
    ExtractionConfig,
    ExtractionResult,
    FastVirtualGateExtractor,
    VirtualizationMatrix,
)
from .exceptions import ReproError
from .execution import (
    AsyncioBackend,
    CheckpointJournal,
    ExecutionBackend,
    ProcessPoolBackend,
    RetryPolicy,
    RunController,
    SerialBackend,
)
from .faults import (
    FaultModel,
    FaultyBackend,
    fault_names,
    get_fault,
    register_fault,
)
from .instrument import (
    ChargeSensorMeter,
    ExperimentSession,
    MeterSnapshot,
    ProbeRetryPolicy,
    SessionFactory,
    TimingModel,
    VirtualClock,
)
from .kernelcache import (
    KernelCache,
    KernelCacheStats,
    clear_kernel_cache,
    configure_kernel_cache,
    default_kernel_cache,
    kernel_fingerprint,
)
from .physics import (
    CapacitanceModel,
    ChargeSensor,
    ChargeStabilityDiagram,
    CSDSimulator,
    DeviceDrift,
    DotArrayDevice,
    SolverStats,
    standard_lab_noise,
)
from .pipeline import (
    StageTelemetry,
    TuneContext,
    TuningPipeline,
    get_pipeline,
    pipeline_names,
    register_pipeline,
)
from .scenarios import (
    LabScenario,
    get_scenario,
    register_scenario,
    scenario_names,
    temporary_scenarios,
)
from .scenariospace import (
    MinedRegression,
    ScenarioParams,
    ScenarioSpace,
    SurfaceReport,
    distill_failure,
    mine_failures,
    success_surface,
)
from .seeding import spawn_seeds

__version__ = "1.0.0"

__all__ = [
    "BaselineConfig",
    "HoughBaselineExtractor",
    "CampaignGrid",
    "CampaignJob",
    "CampaignResult",
    "DeviceSpec",
    "TuningCampaign",
    "ArrayVirtualGateExtractor",
    "ArrayVirtualization",
    "ExtractionConfig",
    "ExtractionResult",
    "FastVirtualGateExtractor",
    "VirtualizationMatrix",
    "ReproError",
    "AsyncioBackend",
    "CheckpointJournal",
    "ClusterBackend",
    "ClusterStats",
    "ExecutionBackend",
    "LocalCluster",
    "ProcessPoolBackend",
    "RetryPolicy",
    "RunController",
    "SerialBackend",
    "FaultModel",
    "FaultyBackend",
    "fault_names",
    "get_fault",
    "register_fault",
    "ChargeSensorMeter",
    "ExperimentSession",
    "MeterSnapshot",
    "ProbeRetryPolicy",
    "KernelCache",
    "KernelCacheStats",
    "clear_kernel_cache",
    "configure_kernel_cache",
    "default_kernel_cache",
    "kernel_fingerprint",
    "StageTelemetry",
    "TuneContext",
    "TuningPipeline",
    "get_pipeline",
    "pipeline_names",
    "register_pipeline",
    "SessionFactory",
    "TimingModel",
    "VirtualClock",
    "spawn_seeds",
    "CapacitanceModel",
    "ChargeSensor",
    "ChargeStabilityDiagram",
    "CSDSimulator",
    "DeviceDrift",
    "DotArrayDevice",
    "SolverStats",
    "standard_lab_noise",
    "LabScenario",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "temporary_scenarios",
    "MinedRegression",
    "ScenarioParams",
    "ScenarioSpace",
    "SurfaceReport",
    "distill_failure",
    "mine_failures",
    "success_surface",
    "__version__",
]
