"""Execution of a single campaign job, isolated and picklable.

:func:`run_campaign_job` is the unit of work a :class:`~repro.campaign.engine.TuningCampaign`
dispatches: build the device and session from the declarative spec, run the
requested extraction method, score it against the session's ground truth,
and condense everything into a flat :class:`~repro.campaign.results.CampaignJobRecord`.
It is a module-level function of picklable arguments so a
:class:`~concurrent.futures.ProcessPoolExecutor` can ship it to workers, and
it never raises: an unexpected exception becomes a failed record with the
``"crash"`` category, so one broken job cannot take down a 1000-job campaign.
"""

from __future__ import annotations

import time
from dataclasses import replace

from ..analysis.metrics import SuccessCriterion, accuracy_metrics
from ..core.result import ExtractionResult
from ..faults import (
    FaultModel,
    get_fault,
    inject_worker_faults,
    models_for,
    probe_fault_models,
)
from ..instrument.resilience import ProbeRetryPolicy
from ..instrument.session import SessionFactory
from ..pipeline.registry import get_pipeline
from ..scenarios.catalog import LabScenario, get_scenario
from .grid import CampaignJob, noise_for_scale
from .results import CampaignJobRecord

#: Probe retry policy a fault-axis job runs under when neither the scenario
#: nor the factory sets one: a few bounded attempts with the breaker armed,
#: so the built-in fault conditions are survivable out of the box while a
#: genuinely dead instrument still fails loudly.
DEFAULT_FAULT_RETRY = ProbeRetryPolicy()

#: Ordered (pattern, category) rules matched against lower-cased failure
#: reasons.  First hit wins; the patterns mirror the messages raised by the
#: extraction pipeline and its validators.
_FAILURE_RULES: tuple[tuple[str, str], ...] = (
    # Instrument-fault rules come first: their messages can contain words
    # the generic extraction rules also match ("budget" in the probe
    # timeout message), and first hit wins.
    ("circuit breaker", "circuit-breaker"),
    ("timeout budget", "probe-timeout"),
    ("injected", "instrument-fault"),
    ("did not converge", "fit-divergence"),
    ("did not produce a fit", "no-fit"),
    ("not finite", "non-finite-slopes"),
    ("must both be negative", "slope-sign"),
    ("slope magnitude", "slope-bounds"),
    ("alpha_", "alpha-range"),
    ("too few", "too-few-points"),
    ("need at least", "too-few-points"),
    ("anchor", "anchor-search"),
    ("transition", "no-transition"),
    ("budget", "probe-budget"),
)


def classify_failure(reason: str, extractor_success: bool, matched_truth: bool) -> str:
    """Map a failure reason onto a small stable taxonomy for aggregation."""
    if extractor_success and matched_truth:
        return "ok"
    if extractor_success and not matched_truth:
        return "truth-mismatch"
    lowered = reason.lower()
    for pattern, category in _FAILURE_RULES:
        if pattern in lowered:
            return category
    return "other"


def _pipeline_for(method: str, pipelines: dict | None = None):
    """The tuning pipeline behind a job's method string.

    ``"fast"`` and ``"baseline"`` stay as shorthand for the two methods the
    campaign engine shipped with; any other registered pipeline name
    (``"no-anchors"``, a user-registered composition) works directly, which
    is how campaign configs sweep ablation variants as a method axis.

    ``pipelines`` maps method strings to parent-resolved
    :class:`~repro.pipeline.composer.TuningPipeline` instances — the same
    ship-the-objects treatment scenarios get, because a pipeline registered
    by the user exists only in the parent's registry and a spawn-start
    worker process would re-import the built-ins and miss it.  The
    per-process registry is the fallback for direct in-process calls.
    """
    if pipelines is not None and method in pipelines:
        return pipelines[method]
    return get_pipeline(method)


def _base_record_fields(job: CampaignJob) -> dict:
    """Record fields that come straight from the job spec."""
    return {
        "job_id": job.job_id,
        "label": job.label,
        "device": job.device.label,
        "method": job.method,
        "resolution": job.resolution,
        "noise_scale": job.noise_scale,
        "repeat": job.repeat,
        "gate_x": job.gate_x,
        "gate_y": job.gate_y,
        "scenario": job.scenario,
        # getattr: hand-crafted job specs predating the fault axis (and
        # custom runners' job types) may not carry the field.
        "fault": getattr(job, "fault", None),
    }


def _fault_models_for(
    name: str, faults: dict[str, tuple[FaultModel, ...]] | None
) -> tuple[FaultModel, ...]:
    """The fault models behind a job's fault-condition name.

    ``faults`` maps names to parent-resolved model tuples — the same
    ship-the-objects treatment scenarios and pipelines get, because a
    condition registered by the user exists only in the parent's registry.
    The per-process registry is the fallback for direct in-process calls.
    """
    if faults is not None and name in faults:
        return faults[name]
    return get_fault(name)


def run_campaign_job(
    job: CampaignJob,
    criterion: SuccessCriterion | None = None,
    scenarios: dict[str, LabScenario] | None = None,
    pipelines: dict | None = None,
    faults: dict[str, tuple[FaultModel, ...]] | None = None,
) -> CampaignJobRecord:
    """Run one campaign job and return its condensed, picklable record.

    ``scenarios`` maps scenario names to resolved :class:`LabScenario`
    objects, ``pipelines`` maps method strings to resolved
    :class:`~repro.pipeline.composer.TuningPipeline` instances, and
    ``faults`` maps fault-condition names to resolved model tuples.  The
    engine fills all three in the parent process and ships them with the
    job, because a scenario, pipeline, or fault condition registered by the
    user exists only in the parent's registry — a spawn-start worker
    process would re-import the built-ins and miss it.  The per-process
    registries are only a fallback for direct in-process calls.

    A job with a ``fault`` condition runs its worker-scope models *before*
    the never-raise envelope below: an injected crash must escape this
    function (hard process exit in a pool worker,
    :class:`~repro.exceptions.WorkerCrashError` in-process) so every
    backend condenses it into the same ``"worker_error"`` record, rather
    than the in-process paths downgrading it to a ``"crash"`` record.
    Probe-scope models wrap the session's measurement backend, and the
    session runs under :data:`DEFAULT_FAULT_RETRY` unless the scenario
    already sets a probe-retry policy.
    """
    criterion = criterion or SuccessCriterion()
    fault_name = getattr(job, "fault", None)
    job_fault_models: tuple[FaultModel, ...] = ()
    if fault_name is not None:
        job_fault_models = _fault_models_for(fault_name, faults)
        inject_worker_faults(job.job_id, job_fault_models, job.seed)
    started = time.perf_counter()
    try:
        device = job.device.build()
        if job.scenario is not None:
            # The scenario supplies the environment (noise, drift, timing,
            # time-dependence); the grid supplies the device under test.
            # Grid-expanded scenario jobs carry noise_scale 1 (the scenario
            # as registered); hand-crafted jobs may scale the scenario noise.
            scenario = (
                scenarios[job.scenario]
                if scenarios is not None and job.scenario in scenarios
                else get_scenario(job.scenario)
            )
            factory = scenario.scaled(job.noise_scale).session_factory(
                device=device, resolution=job.resolution
            )
        else:
            factory = SessionFactory(
                device=device,
                resolution=job.resolution,
                noise=noise_for_scale(job.noise_scale),
            )
        probe_models = probe_fault_models(job_fault_models)
        if probe_models:
            # Compose with (not replace) any faults the scenario itself
            # bakes in; the scenario's own retry policy wins when set.
            factory = replace(
                factory,
                faults=models_for(factory.faults) + probe_models,
                probe_retry=factory.probe_retry or DEFAULT_FAULT_RETRY,
            )
        session = factory.make(
            gate_x=job.gate_x,
            gate_y=job.gate_y,
            dot_a=job.dot_a,
            dot_b=job.dot_b,
            seed=job.seed,
            label=job.label,
        )
        result: ExtractionResult = _pipeline_for(job.method, pipelines).run(session)
        geometry = session.geometry
        matched = criterion.evaluate(result, geometry)
        max_alpha_error = float("nan")  # repro: allow[nan-record-field] -- documented sentinel: no ground-truth geometry => error undefined; tagged-JSON + NaN-aware equality handle it
        true_alpha_12 = true_alpha_21 = None
        if geometry is not None:
            true_alpha_12 = geometry.alpha_12
            true_alpha_21 = geometry.alpha_21
            max_alpha_error = accuracy_metrics(result, geometry).max_alpha_error
        category = classify_failure(result.failure_reason, result.success, matched)
        return CampaignJobRecord(
            **_base_record_fields(job),
            success=matched,
            extractor_success=result.success,
            alpha_12=result.alpha_12,
            alpha_21=result.alpha_21,
            true_alpha_12=true_alpha_12,
            true_alpha_21=true_alpha_21,
            max_alpha_error=max_alpha_error,
            n_probes=result.probe_stats.n_probes,
            probe_fraction=result.probe_stats.probe_fraction,
            sim_elapsed_s=result.probe_stats.elapsed_s,
            wall_elapsed_s=time.perf_counter() - started,
            failure_category=category,
            failure_reason=result.failure_reason if not matched else "",
            n_probe_retries=int(getattr(session.meter, "n_probe_retries", 0)),
            stage_telemetry=result.stage_telemetry,
        )
    except Exception as exc:  # a crashed job must not sink the campaign
        return _failure_record(
            job,
            category="crash",
            exc=exc,
            wall_elapsed_s=time.perf_counter() - started,
        )


def _failure_record(
    job: CampaignJob,
    category: str,
    exc: BaseException,
    wall_elapsed_s: float = 0.0,
) -> CampaignJobRecord:
    """A condensed record for a job that produced an exception, not a result."""
    return CampaignJobRecord(
        **_base_record_fields(job),
        success=False,
        extractor_success=False,
        alpha_12=None,
        alpha_21=None,
        true_alpha_12=None,
        true_alpha_21=None,
        max_alpha_error=float("inf"),  # repro: allow[nan-record-field] -- documented sentinel: crashed job = unbounded error; tagged-JSON keeps the journal strict
        n_probes=0,
        probe_fraction=0.0,
        sim_elapsed_s=0.0,
        wall_elapsed_s=wall_elapsed_s,
        failure_category=category,
        failure_reason=f"{type(exc).__name__}: {exc}",
    )


def worker_error_record(job: CampaignJob, exc: BaseException) -> CampaignJobRecord:
    """The ``"worker_error"`` failure record for a job whose *runner* raised.

    :func:`run_campaign_job` already converts exceptions from inside the
    extraction pipeline into ``"crash"`` records; this covers the layer
    *around* it — any exception a (custom) job runner raises in the
    worker.  The :class:`~repro.execution.controller.RunController`
    installs it as the ``on_error`` hook, so one broken job yields a
    failure record and the campaign keeps every other result instead of
    aborting wholesale.  Faults that escape the worker entirely (a record
    that cannot pickle back, a worker killed by the OS breaking the pool)
    still propagate and abort the run — there the checkpoint journal plus
    :meth:`~repro.campaign.engine.TuningCampaign.resume` is the recovery
    path.
    """
    return _failure_record(job, category="worker_error", exc=exc)
