"""Aggregated outcomes of a batch-tuning campaign.

A campaign's product is not one matrix but a *population* of runs, so the
result object is organised around aggregate questions: what fraction
succeeded, what did the fleet cost in probes and simulated time, and — for
the runs that failed — *how* did they fail (the failure taxonomy).  Per-job
records stay available for drill-down, and the whole object renders through
the same plain-text table machinery as the paper's reproduced tables
(:mod:`repro.analysis.reporting`).
"""

from __future__ import annotations

import json
import math
from collections import Counter
from dataclasses import dataclass, field, fields, replace
from pathlib import Path

import numpy as np

from ..analysis.reporting import (
    aggregate_stage_costs,
    format_campaign_summary,
    format_campaign_table,
    format_fault_resilience,
    format_stage_breakdown,
)
from ..core.result import StageTelemetry
from ..execution.checkpoint import CheckpointJournal
from ..strictjson import decode_value as _decode_value
from ..strictjson import encode_value as _encode_value


@dataclass(frozen=True, eq=False)
class CampaignJobRecord:
    """Condensed, picklable outcome of one campaign job.

    Equality is field-by-field with NaN comparing equal to NaN: a record
    with an undefined ground truth (``max_alpha_error`` is NaN when the
    session has no geometry) must still satisfy the bit-for-bit
    round-trip and resume-equality contracts, which IEEE ``nan != nan``
    would break.
    """

    job_id: int
    label: str
    device: str
    method: str
    resolution: int
    noise_scale: float
    repeat: int
    gate_x: str
    gate_y: str
    success: bool
    extractor_success: bool
    alpha_12: float | None
    alpha_21: float | None
    true_alpha_12: float | None
    true_alpha_21: float | None
    max_alpha_error: float
    n_probes: int
    probe_fraction: float
    sim_elapsed_s: float
    wall_elapsed_s: float
    failure_category: str
    failure_reason: str
    scenario: str | None = None
    #: Injected fault condition the job ran under (``None`` = fault-free).
    #: Defaults keep journals written before the fault axis loadable.
    fault: str | None = None
    #: Probe-level retry attempts the session's meter spent riding out
    #: injected faults (0 for fault-free jobs and pre-fault journals).
    n_probe_retries: int = 0
    stage_telemetry: tuple[StageTelemetry, ...] = ()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CampaignJobRecord):
            return NotImplemented
        for f in fields(self):
            mine, theirs = getattr(self, f.name), getattr(other, f.name)
            if (
                isinstance(mine, float)
                and isinstance(theirs, float)
                and math.isnan(mine)
                and math.isnan(theirs)
            ):
                continue
            if mine != theirs:
                return False
        return True

    def __hash__(self) -> int:
        # Custom __eq__ suppresses the dataclass-generated hash; restore
        # hashability, normalising NaN so equal records hash equally.
        def norm(value):
            if isinstance(value, float) and math.isnan(value):
                return "nan"
            return value

        return hash(tuple(norm(getattr(self, f.name)) for f in fields(self)))

    def as_dict(self) -> dict:
        """Full-fidelity plain-dict view (every field, JSON-native values).

        This is the round-trip serialisation used by the checkpoint journal
        and :meth:`CampaignResult.save` — :meth:`from_dict` rebuilds an
        equal record, bit-for-bit (JSON serialises floats by shortest repr,
        which round-trips exactly).  Non-finite floats (a failure record's
        infinite ``max_alpha_error``) are encoded as tagged dicts so the
        output stays *strict* JSON — ``json.dump``'s default ``Infinity``
        token would be rejected by non-Python tooling.  The report tables
        do **not** consume this encoding; they take the plain-value dicts
        of :meth:`CampaignResult.job_rows`.
        """
        payload = {f.name: _encode_value(getattr(self, f.name)) for f in fields(self)}
        payload["stage_telemetry"] = [t.as_dict() for t in self.stage_telemetry]
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignJobRecord":
        """Rebuild a record from :meth:`as_dict` output (extra keys ignored)."""
        known = {f.name for f in fields(cls)}
        decoded = {
            key: _decode_value(value)
            for key, value in data.items()
            if key in known
        }
        decoded["stage_telemetry"] = tuple(
            StageTelemetry.from_dict(entry)
            for entry in data.get("stage_telemetry") or ()
        )
        return cls(**decoded)


@dataclass(frozen=True)
class CampaignResult:
    """Everything a finished campaign produced, ordered by job id."""

    records: tuple[CampaignJobRecord, ...]
    n_workers: int
    wall_time_s: float
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def n_jobs(self) -> int:
        """Total number of jobs that ran."""
        return len(self.records)

    @property
    def n_succeeded(self) -> int:
        """Jobs whose extraction matched the ground truth."""
        return sum(1 for r in self.records if r.success)

    @property
    def success_rate(self) -> float:
        """Fraction of jobs that succeeded (``nan`` for an empty campaign)."""
        if not self.records:
            return float("nan")
        return self.n_succeeded / float(self.n_jobs)

    @property
    def total_probes(self) -> int:
        """Physical probes spent across the whole campaign."""
        return sum(r.n_probes for r in self.records)

    @property
    def total_sim_elapsed_s(self) -> float:
        """Simulated experiment time summed over all jobs."""
        return float(sum(r.sim_elapsed_s for r in self.records))

    def failure_taxonomy(self) -> dict[str, int]:
        """Failure-category counts over the non-successful jobs."""
        return dict(
            Counter(r.failure_category for r in self.records if not r.success)
        )

    def failed_records(self) -> tuple[CampaignJobRecord, ...]:
        """The jobs that did not succeed."""
        return tuple(r for r in self.records if not r.success)

    def records_for(
        self,
        method: str | None = None,
        noise_scale: float | None = None,
        scenario: str | None = None,
    ) -> tuple[CampaignJobRecord, ...]:
        """Filter records by method, noise scale, and/or scenario name."""
        out = self.records
        if method is not None:
            out = tuple(r for r in out if r.method == method)
        if noise_scale is not None:
            out = tuple(r for r in out if r.noise_scale == noise_scale)
        if scenario is not None:
            out = tuple(r for r in out if r.scenario == scenario)
        return out

    def success_by_scenario(self) -> dict[str, tuple[int, int]]:
        """``{scenario_label: (n_succeeded, n_jobs)}`` over the campaign.

        Scenario-less jobs are grouped under ``"static"``.
        """
        grouped: dict[str, list[bool]] = {}
        for record in self.records:
            grouped.setdefault(record.scenario or "static", []).append(record.success)
        return {
            label: (sum(outcomes), len(outcomes))
            for label, outcomes in grouped.items()
        }

    def mean_probe_fraction(self) -> float:
        """Average probe fraction over the successful jobs."""
        fractions = [r.probe_fraction for r in self.records if r.success]
        return float(np.mean(fractions)) if fractions else float("nan")

    @property
    def n_expected(self) -> int:
        """Jobs the campaign was *supposed* to run (``n_jobs`` when unknown).

        A result reconstructed from a partial checkpoint journal, or an
        interrupted run, can hold fewer records than the grid expanded
        into; the expected total travels in ``metadata["n_jobs"]``.
        """
        return int(self.metadata.get("n_jobs", self.n_jobs))

    @property
    def is_partial(self) -> bool:
        """Whether this result covers fewer jobs than the campaign expected."""
        return self.n_jobs < self.n_expected

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Aggregate numbers as a plain dict."""
        return {
            "n_jobs": self.n_jobs,
            "n_expected": self.n_expected,
            "n_succeeded": self.n_succeeded,
            "success_rate": self.success_rate,
            "total_probes": self.total_probes,
            "total_sim_elapsed_s": self.total_sim_elapsed_s,
            "mean_probe_fraction": self.mean_probe_fraction(),
            "n_workers": self.n_workers,
            "wall_time_s": self.wall_time_s,
            "failure_taxonomy": self.failure_taxonomy(),
        }

    def job_rows(self) -> list[dict]:
        """Per-job dict rows in job-id order, for the report tables.

        Unlike :meth:`CampaignJobRecord.as_dict` these carry the plain
        Python values (infinities stay floats, not JSON-safe tags) — they
        feed formatters, not serialisers.
        """
        return [
            {f.name: getattr(record, f.name) for f in fields(CampaignJobRecord)}
            for record in self.records
        ]

    def stage_breakdown(self) -> dict[tuple[str, str], dict]:
        """Per-(method, stage) cost aggregates over the whole campaign.

        Maps ``(method, stage)`` to ``{"n_runs", "n_probes",
        "sim_elapsed_s", "wall_s"}`` totals — the "where did the probes go"
        view the per-stage telemetry exists for.  Records without telemetry
        (failure records, pre-pipeline journals) simply contribute nothing.
        """
        return aggregate_stage_costs(self.job_rows())

    def format_report(self, max_rows: int | None = None) -> str:
        """Full plain-text report: per-job table, aggregates, stage costs.

        Renders partial results (an interrupted run's journal, a truncated
        resume) exactly like complete ones, with the summary flagging how
        many of the expected jobs have records.  The per-stage breakdown
        appears whenever any record carries stage telemetry, and the fault
        resilience section whenever any job ran under an injected fault
        condition (or spent probe retries).
        """
        rows = self.job_rows()
        table = format_campaign_table(rows, max_rows=max_rows)
        report = table + "\n\n" + format_campaign_summary(self.summary())
        breakdown = format_stage_breakdown(rows)
        if breakdown:
            report += "\n\n" + breakdown
        resilience = format_fault_resilience(rows)
        if resilience:
            report += "\n\n" + resilience
        return report

    # ------------------------------------------------------------------
    def normalized(self, wall_time_s: float = 0.0) -> "CampaignResult":
        """The execution-agnostic content view, for determinism comparisons.

        Pins every wall-clock measurement (``wall_time_s``, each record's
        ``wall_elapsed_s``, and each stage-telemetry row's ``wall_s``) and
        strips execution policy — ``n_workers`` and the
        ``backend``/``backend_spec``/``source`` metadata keys — which
        legitimately differ between runs of the same campaign.
        Everything left is deterministic, so
        ``a.normalized() == b.normalized()`` asserts bit-identical results
        across backends, worker counts, and interrupt/resume cycles.
        """
        records = tuple(
            replace(
                r,
                wall_elapsed_s=wall_time_s,
                stage_telemetry=tuple(
                    t.normalized(wall_time_s) for t in r.stage_telemetry
                ),
            )
            for r in self.records
        )
        metadata = {
            key: value
            for key, value in self.metadata.items()
            if key not in ("backend", "backend_spec", "source")
        }
        return replace(
            self,
            records=records,
            wall_time_s=wall_time_s,
            n_workers=0,
            metadata=metadata,
        )

    def as_dict(self) -> dict:
        """JSON-native dict: records plus run metadata."""
        return {
            "records": [record.as_dict() for record in self.records],
            "n_workers": self.n_workers,
            "wall_time_s": self.wall_time_s,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignResult":
        """Rebuild a result from :meth:`as_dict` output."""
        return cls(
            records=tuple(
                CampaignJobRecord.from_dict(entry) for entry in data["records"]
            ),
            n_workers=int(data["n_workers"]),
            wall_time_s=float(data["wall_time_s"]),
            metadata=dict(data.get("metadata") or {}),
        )

    def save(self, path: str | Path) -> Path:
        """Write the whole result as one JSON document; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as handle:
            # allow_nan=False guards the strict-JSON contract: a non-finite
            # float that slipped past the record encoding fails loudly here
            # instead of emitting an Infinity token no other tool can parse.
            json.dump(self.as_dict(), handle, indent=2, allow_nan=False)
            handle.write("\n")
        return target

    @classmethod
    def load(cls, path: str | Path) -> "CampaignResult":
        """Read a result previously written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    @classmethod
    def from_journal(
        cls, path: str | Path, n_expected: int | None = None
    ) -> "CampaignResult":
        """A (possibly partial) result from a checkpoint journal's records.

        This is the drill-down view onto a live, interrupted, or dead run:
        whatever the journal holds renders through the same tables and
        summaries as a finished campaign.  ``n_expected`` marks the total
        the campaign was meant to run so reports can flag partiality;
        ``n_workers`` is 0 because a journal does not record who ran it.
        """
        journal = CheckpointJournal(path, deserialize=CampaignJobRecord.from_dict)
        completed = journal.load()
        records = tuple(
            completed[job_id] for job_id in sorted(completed)
        )
        return cls(
            records=records,
            n_workers=0,
            wall_time_s=0.0,
            metadata={
                "n_jobs": int(n_expected) if n_expected is not None else len(records),
                "source": "journal",
            },
        )
