"""Aggregated outcomes of a batch-tuning campaign.

A campaign's product is not one matrix but a *population* of runs, so the
result object is organised around aggregate questions: what fraction
succeeded, what did the fleet cost in probes and simulated time, and — for
the runs that failed — *how* did they fail (the failure taxonomy).  Per-job
records stay available for drill-down, and the whole object renders through
the same plain-text table machinery as the paper's reproduced tables
(:mod:`repro.analysis.reporting`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..analysis.reporting import format_campaign_summary, format_campaign_table


@dataclass(frozen=True)
class CampaignJobRecord:
    """Condensed, picklable outcome of one campaign job."""

    job_id: int
    label: str
    device: str
    method: str
    resolution: int
    noise_scale: float
    repeat: int
    gate_x: str
    gate_y: str
    success: bool
    extractor_success: bool
    alpha_12: float | None
    alpha_21: float | None
    true_alpha_12: float | None
    true_alpha_21: float | None
    max_alpha_error: float
    n_probes: int
    probe_fraction: float
    sim_elapsed_s: float
    wall_elapsed_s: float
    failure_category: str
    failure_reason: str
    scenario: str | None = None

    def as_dict(self) -> dict:
        """Plain-dict view used by the report tables."""
        return {
            "job_id": self.job_id,
            "device": self.device,
            "gates": f"{self.gate_x}-{self.gate_y}",
            "method": self.method,
            "resolution": self.resolution,
            "noise_scale": self.noise_scale,
            "scenario": self.scenario,
            "repeat": self.repeat,
            "success": self.success,
            "max_alpha_error": self.max_alpha_error,
            "n_probes": self.n_probes,
            "probe_fraction": self.probe_fraction,
            "sim_elapsed_s": self.sim_elapsed_s,
            "failure_category": self.failure_category,
        }


@dataclass(frozen=True)
class CampaignResult:
    """Everything a finished campaign produced, ordered by job id."""

    records: tuple[CampaignJobRecord, ...]
    n_workers: int
    wall_time_s: float
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def n_jobs(self) -> int:
        """Total number of jobs that ran."""
        return len(self.records)

    @property
    def n_succeeded(self) -> int:
        """Jobs whose extraction matched the ground truth."""
        return sum(1 for r in self.records if r.success)

    @property
    def success_rate(self) -> float:
        """Fraction of jobs that succeeded (``nan`` for an empty campaign)."""
        if not self.records:
            return float("nan")
        return self.n_succeeded / float(self.n_jobs)

    @property
    def total_probes(self) -> int:
        """Physical probes spent across the whole campaign."""
        return sum(r.n_probes for r in self.records)

    @property
    def total_sim_elapsed_s(self) -> float:
        """Simulated experiment time summed over all jobs."""
        return float(sum(r.sim_elapsed_s for r in self.records))

    def failure_taxonomy(self) -> dict[str, int]:
        """Failure-category counts over the non-successful jobs."""
        return dict(
            Counter(r.failure_category for r in self.records if not r.success)
        )

    def failed_records(self) -> tuple[CampaignJobRecord, ...]:
        """The jobs that did not succeed."""
        return tuple(r for r in self.records if not r.success)

    def records_for(
        self,
        method: str | None = None,
        noise_scale: float | None = None,
        scenario: str | None = None,
    ) -> tuple[CampaignJobRecord, ...]:
        """Filter records by method, noise scale, and/or scenario name."""
        out = self.records
        if method is not None:
            out = tuple(r for r in out if r.method == method)
        if noise_scale is not None:
            out = tuple(r for r in out if r.noise_scale == noise_scale)
        if scenario is not None:
            out = tuple(r for r in out if r.scenario == scenario)
        return out

    def success_by_scenario(self) -> dict[str, tuple[int, int]]:
        """``{scenario_label: (n_succeeded, n_jobs)}`` over the campaign.

        Scenario-less jobs are grouped under ``"static"``.
        """
        grouped: dict[str, list[bool]] = {}
        for record in self.records:
            grouped.setdefault(record.scenario or "static", []).append(record.success)
        return {
            label: (sum(outcomes), len(outcomes))
            for label, outcomes in grouped.items()
        }

    def mean_probe_fraction(self) -> float:
        """Average probe fraction over the successful jobs."""
        fractions = [r.probe_fraction for r in self.records if r.success]
        return float(np.mean(fractions)) if fractions else float("nan")

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Aggregate numbers as a plain dict."""
        return {
            "n_jobs": self.n_jobs,
            "n_succeeded": self.n_succeeded,
            "success_rate": self.success_rate,
            "total_probes": self.total_probes,
            "total_sim_elapsed_s": self.total_sim_elapsed_s,
            "mean_probe_fraction": self.mean_probe_fraction(),
            "n_workers": self.n_workers,
            "wall_time_s": self.wall_time_s,
            "failure_taxonomy": self.failure_taxonomy(),
        }

    def job_rows(self) -> list[dict]:
        """Per-job dict rows in job-id order, for the report tables."""
        return [r.as_dict() for r in self.records]

    def format_report(self, max_rows: int | None = None) -> str:
        """Full plain-text report: per-job table plus the aggregate block."""
        table = format_campaign_table(self.job_rows(), max_rows=max_rows)
        return table + "\n\n" + format_campaign_summary(self.summary())
