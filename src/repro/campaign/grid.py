"""Declarative job grids for batch-tuning campaigns.

A campaign is declared, not scripted: a :class:`CampaignGrid` names the
devices, resolutions, noise amplitudes, lab scenarios, methods, and repeat
count, and :meth:`CampaignGrid.expand` turns the cross product into a flat
tuple of :class:`CampaignJob` specs.  Expansion is where determinism is
fixed:

* jobs are enumerated in a stable order (device → gate pair → resolution →
  noise → scenario → fault → method → repeat), and
* every job gets its own child of the grid's root seed via
  :func:`repro.seeding.spawn_seeds`, assigned by job index *before* anything
  runs.

The scenario axis sweeps named :class:`~repro.scenarios.catalog.LabScenario`
*environments* — noise, device drift, timing, time-dependence — across the
grid's own devices.  A ``None`` entry is the classic static environment and
is crossed with every ``noise_scales`` amplitude; a named entry runs the
scenario as registered (recorded at noise scale 1) and is *not* crossed with
the noise axis — that would only duplicate jobs whose noise the scenario
already fixes.  Hand-crafted jobs may still combine the two: the worker
scales a scenario's noise by the job's ``noise_scale`` through
:func:`repro.scenarios.catalog.scaled_scenario`.

Because the seeds are bound to job identity rather than execution order, a
campaign produces bit-identical per-job results whether it runs on one
worker or many.  Jobs are small frozen dataclasses built from plain values,
so they pickle cheaply into worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cache

import numpy as np

from ..exceptions import ConfigurationError
from ..faults.registry import get_fault
from ..physics.noise import NoiseModel, standard_lab_noise
from ..pipeline.registry import resolve_method
from ..scenarios.catalog import get_scenario
from ..scenarios.devices import DEVICE_FACTORIES, DeviceSpec
from ..seeding import spawn_seeds

#: Historical shorthand methods (any registered pipeline name also works).
KNOWN_METHODS: tuple[str, ...] = ("fast", "baseline")

__all__ = [
    "CampaignGrid",
    "CampaignJob",
    "DeviceSpec",
    "DEVICE_FACTORIES",
    "KNOWN_METHODS",
    "noise_for_scale",
]


def noise_for_scale(scale: float) -> NoiseModel | None:
    """The campaign noise axis: ``scale`` multiples of the standard lab mix."""
    if scale < 0:
        raise ConfigurationError("noise scale must be non-negative")
    if scale == 0:
        return None
    return standard_lab_noise(
        white_sigma_na=0.012 * scale,
        pink_sigma_na=0.015 * scale,
        drift_na=0.02 * scale,
    )


@dataclass(frozen=True)
class CampaignJob:
    """One fully specified tuning job within a campaign.

    ``scenario`` names a registered :class:`~repro.scenarios.catalog.LabScenario`
    whose environment (noise, drift, timing, time-dependence) the job runs
    under, or ``None`` for the classic static noise-axis environment.
    ``fault`` names a registered fault condition
    (:func:`repro.faults.get_fault`) injected into the job — probe-scope
    models wrap the session's backend, worker-scope models may kill the
    executing worker — or ``None`` for a fault-free run.
    """

    job_id: int
    device: DeviceSpec
    gate_x: str
    gate_y: str
    dot_a: int
    dot_b: int
    resolution: int
    noise_scale: float
    method: str
    repeat: int
    seed: np.random.SeedSequence | None
    scenario: str | None = None
    fault: str | None = None

    @property
    def label(self) -> str:
        """Stable identifier used in reports and failure listings."""
        environment = (
            f"n{self.noise_scale:g}"
            if self.scenario is None
            else f"{self.scenario} n{self.noise_scale:g}"
        )
        if self.fault is not None:
            environment += f" !{self.fault}"
        return (
            f"#{self.job_id} {self.device.factory}:{self.gate_x}-{self.gate_y}"
            f" r{self.resolution} {environment} {self.method} x{self.repeat}"
        )


@dataclass(frozen=True)
class CampaignGrid:
    """Cross product of campaign axes, expandable into concrete jobs.

    Every neighbouring plunger-gate pair of every device is tuned at every
    ``resolution`` × *environment* × ``method`` combination, ``n_repeats``
    times with independent seeds.  The environments are the ``None`` entry
    of ``scenarios`` crossed with every ``noise_scales`` amplitude (the
    classic static sweep), plus each named
    :class:`~repro.scenarios.catalog.LabScenario` once, as registered —
    named scenarios fix their own noise, so crossing them with the noise
    axis would only clone jobs.

    The ``faults`` axis crosses every environment with each named fault
    condition (``None`` = fault-free); it is a full axis — unlike scenarios
    it *is* crossed with everything — because fault resilience is exactly
    the question "the same tuning problem, with and without injected
    misbehaviour".
    """

    devices: tuple[DeviceSpec, ...] = (DeviceSpec(),)
    resolutions: tuple[int, ...] = (100,)
    noise_scales: tuple[float, ...] = (0.0,)
    scenarios: tuple[str | None, ...] = (None,)
    faults: tuple[str | None, ...] = (None,)
    methods: tuple[str, ...] = ("fast",)
    n_repeats: int = 1
    seed: int | None = 0

    def __post_init__(self) -> None:
        if not self.devices:
            raise ConfigurationError("a campaign grid needs at least one device")
        if not self.resolutions or any(r < 16 for r in self.resolutions):
            raise ConfigurationError("resolutions must all be at least 16")
        if not self.noise_scales or any(s < 0 for s in self.noise_scales):
            raise ConfigurationError("noise scales must be non-negative")
        if not self.scenarios:
            raise ConfigurationError(
                "the scenario axis must be non-empty; use (None,) for the "
                "classic static environment"
            )
        if len(set(self.scenarios)) != len(self.scenarios):
            raise ConfigurationError("the scenario axis must not repeat entries")
        for name in self.scenarios:
            if name is not None:
                get_scenario(name)  # raises ConfigurationError when unknown
        if not self.faults:
            raise ConfigurationError(
                "the fault axis must be non-empty; use (None,) for "
                "fault-free runs"
            )
        if len(set(self.faults)) != len(self.faults):
            raise ConfigurationError("the fault axis must not repeat entries")
        for name in self.faults:
            if name is not None:
                try:
                    get_fault(name)
                except KeyError as exc:
                    raise ConfigurationError(str(exc)) from None
        if not self.methods:
            raise ConfigurationError("a campaign grid needs at least one method")
        for method in self.methods:
            # Any registered tuning pipeline is a valid method axis entry;
            # resolve_method raises ConfigurationError naming the known set.
            resolve_method(method)
        if self.n_repeats < 1:
            raise ConfigurationError("n_repeats must be at least 1")

    # ------------------------------------------------------------------
    @cache
    def _device_pairs(self) -> list[tuple[DeviceSpec, tuple[tuple[int, int, str, str], ...]]]:
        # Cached (the grid is frozen and hashable) so n_jobs + expand() do
        # not rebuild every device just to re-enumerate its gate pairs.
        pairs_per_device = []
        for spec in self.devices:
            pairs = spec.build().neighbour_pairs()
            if not pairs:
                raise ConfigurationError(
                    f"device {spec.label!r} has fewer than two dots"
                )
            pairs_per_device.append((spec, pairs))
        return pairs_per_device

    def _environments(self) -> list[tuple[str | None, float]]:
        """``(scenario, noise_scale)`` combinations, in deterministic order.

        The static (``None``) environment sweeps the noise axis; each named
        scenario appears once, recorded at scale 1 (its registered noise).
        """
        environments: list[tuple[str | None, float]] = []
        if None in self.scenarios:
            environments.extend((None, scale) for scale in self.noise_scales)
        environments.extend(
            (name, 1.0) for name in self.scenarios if name is not None
        )
        return environments

    @property
    def n_jobs(self) -> int:
        """Number of jobs the grid expands into."""
        n_pairs = sum(len(pairs) for _, pairs in self._device_pairs())
        return (
            n_pairs
            * len(self.resolutions)
            * len(self._environments())
            * len(self.faults)
            * len(self.methods)
            * self.n_repeats
        )

    def expand(self) -> tuple[CampaignJob, ...]:
        """Expand the grid into jobs with per-job spawned seeds."""
        combos = []
        for spec, pairs in self._device_pairs():
            for dot_a, dot_b, gate_x, gate_y in pairs:
                for resolution in self.resolutions:
                    for scenario, noise_scale in self._environments():
                        for fault in self.faults:
                            for method in self.methods:
                                for repeat in range(self.n_repeats):
                                    combos.append(
                                        (
                                            spec,
                                            dot_a,
                                            dot_b,
                                            gate_x,
                                            gate_y,
                                            resolution,
                                            noise_scale,
                                            scenario,
                                            fault,
                                            method,
                                            repeat,
                                        )
                                    )
        seeds = spawn_seeds(self.seed, len(combos))
        return tuple(
            CampaignJob(
                job_id=job_id,
                device=spec,
                gate_x=gate_x,
                gate_y=gate_y,
                dot_a=dot_a,
                dot_b=dot_b,
                resolution=resolution,
                noise_scale=noise_scale,
                method=method,
                repeat=repeat,
                seed=seeds[job_id],
                scenario=scenario,
                fault=fault,
            )
            for job_id, (
                spec,
                dot_a,
                dot_b,
                gate_x,
                gate_y,
                resolution,
                noise_scale,
                scenario,
                fault,
                method,
                repeat,
            ) in enumerate(combos)
        )
