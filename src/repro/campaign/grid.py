"""Declarative job grids for batch-tuning campaigns.

A campaign is declared, not scripted: a :class:`CampaignGrid` names the
devices, resolutions, noise amplitudes, methods, and repeat count, and
:meth:`CampaignGrid.expand` turns the cross product into a flat tuple of
:class:`CampaignJob` specs.  Expansion is where determinism is fixed:

* jobs are enumerated in a stable order
  (device → gate pair → resolution → noise → method → repeat), and
* every job gets its own child of the grid's root seed via
  :func:`repro.seeding.spawn_seeds`, assigned by job index *before* anything
  runs.

Because the seeds are bound to job identity rather than execution order, a
campaign produces bit-identical per-job results whether it runs on one
worker or many.  Jobs are small frozen dataclasses built from plain values,
so they pickle cheaply into worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cache

import numpy as np

from ..exceptions import ConfigurationError
from ..physics.dot_array import DotArrayDevice
from ..physics.noise import NoiseModel, standard_lab_noise
from ..seeding import spawn_seeds

#: Extraction methods a campaign job can name.
KNOWN_METHODS: tuple[str, ...] = ("fast", "baseline")

#: Device factory registry: every entry is a classmethod of
#: :class:`~repro.physics.dot_array.DotArrayDevice` that builds a device from
#: keyword arguments.  Registering by name keeps job specs declarative and
#: trivially picklable.
DEVICE_FACTORIES: dict[str, str] = {
    "double_dot": "double_dot",
    "linear_array": "linear_array",
    "quadruple_dot": "quadruple_dot",
}


@dataclass(frozen=True)
class DeviceSpec:
    """Declarative recipe for building one simulated device.

    ``kwargs`` is stored as a sorted tuple of ``(name, value)`` pairs so the
    spec stays hashable and picklable; use :meth:`DeviceSpec.of` to build one
    from ordinary keyword arguments.
    """

    factory: str = "double_dot"
    kwargs: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.factory not in DEVICE_FACTORIES:
            raise ConfigurationError(
                f"unknown device factory {self.factory!r}; "
                f"known: {sorted(DEVICE_FACTORIES)}"
            )

    @classmethod
    def of(cls, factory: str = "double_dot", **kwargs) -> "DeviceSpec":
        """Build a spec from keyword arguments."""
        return cls(factory=factory, kwargs=tuple(sorted(kwargs.items())))

    def build(self) -> DotArrayDevice:
        """Construct the device."""
        builder = getattr(DotArrayDevice, DEVICE_FACTORIES[self.factory])
        return builder(**dict(self.kwargs))

    @property
    def label(self) -> str:
        """Short human-readable identifier."""
        parts = [f"{k}={v}" for k, v in self.kwargs]
        return self.factory if not parts else f"{self.factory}({', '.join(parts)})"


def noise_for_scale(scale: float) -> NoiseModel | None:
    """The campaign noise axis: ``scale`` multiples of the standard lab mix."""
    if scale < 0:
        raise ConfigurationError("noise scale must be non-negative")
    if scale == 0:
        return None
    return standard_lab_noise(
        white_sigma_na=0.012 * scale,
        pink_sigma_na=0.015 * scale,
        drift_na=0.02 * scale,
    )


@dataclass(frozen=True)
class CampaignJob:
    """One fully specified tuning job within a campaign."""

    job_id: int
    device: DeviceSpec
    gate_x: str
    gate_y: str
    dot_a: int
    dot_b: int
    resolution: int
    noise_scale: float
    method: str
    repeat: int
    seed: np.random.SeedSequence | None

    @property
    def label(self) -> str:
        """Stable identifier used in reports and failure listings."""
        return (
            f"#{self.job_id} {self.device.factory}:{self.gate_x}-{self.gate_y}"
            f" r{self.resolution} n{self.noise_scale:g} {self.method} x{self.repeat}"
        )


@dataclass(frozen=True)
class CampaignGrid:
    """Cross product of campaign axes, expandable into concrete jobs.

    Every neighbouring plunger-gate pair of every device is tuned at every
    ``resolution`` × ``noise_scale`` × ``method`` combination, ``n_repeats``
    times with independent seeds.
    """

    devices: tuple[DeviceSpec, ...] = (DeviceSpec(),)
    resolutions: tuple[int, ...] = (100,)
    noise_scales: tuple[float, ...] = (0.0,)
    methods: tuple[str, ...] = ("fast",)
    n_repeats: int = 1
    seed: int | None = 0

    def __post_init__(self) -> None:
        if not self.devices:
            raise ConfigurationError("a campaign grid needs at least one device")
        if not self.resolutions or any(r < 16 for r in self.resolutions):
            raise ConfigurationError("resolutions must all be at least 16")
        if not self.noise_scales or any(s < 0 for s in self.noise_scales):
            raise ConfigurationError("noise scales must be non-negative")
        unknown = set(self.methods) - set(KNOWN_METHODS)
        if not self.methods or unknown:
            raise ConfigurationError(
                f"methods must be a non-empty subset of {KNOWN_METHODS}; "
                f"got unknown {sorted(unknown)}"
            )
        if self.n_repeats < 1:
            raise ConfigurationError("n_repeats must be at least 1")

    # ------------------------------------------------------------------
    @cache
    def _device_pairs(self) -> list[tuple[DeviceSpec, tuple[tuple[int, int, str, str], ...]]]:
        # Cached (the grid is frozen and hashable) so n_jobs + expand() do
        # not rebuild every device just to re-enumerate its gate pairs.
        pairs_per_device = []
        for spec in self.devices:
            pairs = spec.build().neighbour_pairs()
            if not pairs:
                raise ConfigurationError(
                    f"device {spec.label!r} has fewer than two dots"
                )
            pairs_per_device.append((spec, pairs))
        return pairs_per_device

    @property
    def n_jobs(self) -> int:
        """Number of jobs the grid expands into."""
        n_pairs = sum(len(pairs) for _, pairs in self._device_pairs())
        return (
            n_pairs
            * len(self.resolutions)
            * len(self.noise_scales)
            * len(self.methods)
            * self.n_repeats
        )

    def expand(self) -> tuple[CampaignJob, ...]:
        """Expand the grid into jobs with per-job spawned seeds."""
        combos = []
        for spec, pairs in self._device_pairs():
            for dot_a, dot_b, gate_x, gate_y in pairs:
                for resolution in self.resolutions:
                    for noise_scale in self.noise_scales:
                        for method in self.methods:
                            for repeat in range(self.n_repeats):
                                combos.append(
                                    (
                                        spec,
                                        dot_a,
                                        dot_b,
                                        gate_x,
                                        gate_y,
                                        resolution,
                                        noise_scale,
                                        method,
                                        repeat,
                                    )
                                )
        seeds = spawn_seeds(self.seed, len(combos))
        return tuple(
            CampaignJob(
                job_id=job_id,
                device=spec,
                gate_x=gate_x,
                gate_y=gate_y,
                dot_a=dot_a,
                dot_b=dot_b,
                resolution=resolution,
                noise_scale=noise_scale,
                method=method,
                repeat=repeat,
                seed=seeds[job_id],
            )
            for job_id, (
                spec,
                dot_a,
                dot_b,
                gate_x,
                gate_y,
                resolution,
                noise_scale,
                method,
                repeat,
            ) in enumerate(combos)
        )
