"""The campaign engine: fan a job grid out over an execution backend.

:class:`TuningCampaign` owns *what* runs — the expanded job list, scenario
resolution, the success criterion — and delegates *how* it runs to the
:mod:`repro.execution` layer: an
:class:`~repro.execution.base.ExecutionBackend` schedules jobs and streams
``(job_id, record)`` pairs back in completion order, while a
:class:`~repro.execution.controller.RunController` wraps the runner with
per-job fault isolation (a raising job becomes a ``"worker_error"`` record
instead of aborting the campaign), applies the retry policy, journals each
record to an optional JSONL checkpoint, and fires progress callbacks.

Seeds are bound to jobs at grid expansion and records are reassembled in
job-id order, so every backend at every worker count returns bit-identical
results; :meth:`TuningCampaign.resume` extends the same guarantee across
process death — journaled job ids are skipped and the merged result equals
an uninterrupted run.
"""

from __future__ import annotations

import hashlib
import inspect
import time
from functools import partial
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ..analysis.metrics import SuccessCriterion
from ..exceptions import ConfigurationError
from ..faults import get_fault
from ..execution import (
    CheckpointJournal,
    ExecutionBackend,
    ProgressCallback,
    RetryPolicy,
    RunController,
    SerialBackend,
    backend_from_spec,
)
from ..pipeline.registry import get_pipeline
from ..reprs import ADDRESS_REPR as _ADDRESS_REPR
from ..scenarios.catalog import get_scenario
from .grid import CampaignGrid, CampaignJob
from .results import CampaignJobRecord, CampaignResult
from .worker import run_campaign_job, worker_error_record


def campaign_fingerprint(
    jobs: Sequence[CampaignJob],
    criterion: SuccessCriterion,
    scenarios: dict[str, object] | None = None,
    faults: dict[str, tuple] | None = None,
) -> str:
    """A stable identity for "this job list scored this way".

    Stamped into checkpoint journals so a resume against a journal written
    by a *different* campaign (same file path, different grid, seed, or
    criterion — whose records would be silently wrong) fails loudly.  Built
    from each job's label (device spec, gates, resolution, environment,
    fault condition, method, repeat), its seed identity, the criterion's
    repr, and the repr of every resolved scenario and fault-condition
    *definition* — a scenario or condition re-registered with different
    physics under the same name changes the fingerprint, because the name
    alone would let stale records slip through.
    """
    criterion_part = repr(criterion)
    if _ADDRESS_REPR.search(criterion_part):
        raise ConfigurationError(
            "the success criterion's repr embeds a memory address, so its "
            "checkpoint fingerprint would not survive a process restart; "
            "give the criterion class a content-based __repr__ (or make it "
            "a dataclass) to use checkpointing"
        )
    parts = [criterion_part]
    for name in sorted(scenarios or {}):
        part = f"{name}={scenarios[name]!r}"
        if _ADDRESS_REPR.search(part):
            # A default object repr embeds a memory address, which differs
            # every process — the journal would reject every cross-process
            # resume as "a different run".  Fail at checkpoint time with
            # the actual fix instead.
            raise ConfigurationError(
                f"scenario {name!r} contains an object whose repr embeds a "
                "memory address, so its checkpoint fingerprint would not "
                "survive a process restart; give that class a content-based "
                "__repr__ (or make it a dataclass) to use checkpointing"
            )
        parts.append(part)
    for name in sorted(faults or {}):
        part = f"fault:{name}={faults[name]!r}"
        if _ADDRESS_REPR.search(part):
            raise ConfigurationError(
                f"fault condition {name!r} contains an object whose repr "
                "embeds a memory address, so its checkpoint fingerprint "
                "would not survive a process restart; give that class a "
                "content-based __repr__ (or make it a dataclass) to use "
                "checkpointing"
            )
        parts.append(part)
    for job in jobs:
        seed = job.seed
        seed_key = (
            None if seed is None else (seed.entropy, tuple(seed.spawn_key))
        )
        # dot_a/dot_b are spelled out because job.label omits them: two
        # hand-crafted job lists can share gates and seeds while targeting
        # different dot pairs.
        parts.append(
            f"{job.label}|{job.device.label}|d{job.dot_a}-{job.dot_b}|{seed_key}"
        )
    payload = "\n".join(parts)
    if _ADDRESS_REPR.search(payload):
        # Criterion and scenarios were checked above with targeted errors;
        # anything left comes from a job's device-spec kwargs.
        raise ConfigurationError(
            "a campaign job's device spec contains an object whose repr "
            "embeds a memory address, so its checkpoint fingerprint would "
            "not survive a process restart; give that class a content-based "
            "__repr__ (or make it a dataclass) to use checkpointing"
        )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class TuningCampaign:
    """Run a batch-tuning campaign over a declarative job grid.

    Parameters
    ----------
    grid:
        A :class:`~repro.campaign.grid.CampaignGrid` to expand, or an
        already-expanded sequence of :class:`~repro.campaign.grid.CampaignJob`.
    n_workers:
        ``1`` runs jobs sequentially in-process (bit-identical to, and the
        reference for, every parallel run); larger values use a process
        pool of that size.  Ignored when ``backend`` is an instance.
    criterion:
        Ground-truth success criterion applied to every job; the paper
        defaults when omitted.
    chunk_size:
        Jobs handed to a process-pool worker per dispatch; the backend's
        capped default balances pickling overhead against tail
        load-balancing when omitted.
    backend:
        Execution policy: a registered backend name (``"serial"``,
        ``"process"``, ``"asyncio"``), an
        :class:`~repro.execution.base.ExecutionBackend` instance, or
        ``None`` to choose serial/process from ``n_workers``.
    retry:
        A :class:`~repro.execution.controller.RetryPolicy`, or an int
        shorthand for ``RetryPolicy(max_attempts=...)``; attempts per job
        before a raising runner becomes a ``"worker_error"`` record.  Only
        a *raising* runner retries: the default
        :func:`~repro.campaign.worker.run_campaign_job` converts pipeline
        exceptions into ``"crash"`` records itself (deterministic failures
        that a re-run would only repeat), so the budget matters for custom
        runners and infrastructure-level faults.
    progress:
        Optional ``(n_done, n_total, record)`` callback fired in the parent
        process after every completed job, in completion order.
    job_runner:
        The per-job work function; :func:`~repro.campaign.worker.run_campaign_job`
        by default.  A replacement must accept
        ``(job, criterion=..., scenarios=...)``, return a
        :class:`~repro.campaign.results.CampaignJobRecord`, and be
        picklable for process-based backends.  A runner that also declares
        a ``pipelines=`` keyword receives the parent-resolved
        :class:`~repro.pipeline.composer.TuningPipeline` objects for the
        grid's methods, and one declaring ``faults=`` receives the
        parent-resolved fault-model tuples for the grid's fault conditions
        (both needed for user-registered entries under spawn-start pools).
    """

    def __init__(
        self,
        grid: CampaignGrid | Sequence[CampaignJob] | Iterable[CampaignJob],
        n_workers: int = 1,
        criterion: SuccessCriterion | None = None,
        chunk_size: int | None = None,
        backend: str | ExecutionBackend | None = None,
        retry: RetryPolicy | int | None = None,
        progress: ProgressCallback | None = None,
        job_runner: Callable[..., CampaignJobRecord] = run_campaign_job,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError("n_workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError("chunk_size must be at least 1")
        if isinstance(grid, CampaignGrid):
            self._jobs = grid.expand()
        else:
            self._jobs = tuple(grid)
        ids = [job.job_id for job in self._jobs]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("campaign jobs must have unique job_ids")
        self._n_workers = int(n_workers)
        self._criterion = criterion or SuccessCriterion()
        # Auto-selection keeps the historical small-grid fallback: a grid of
        # at most one job never benefits from a pool, so it runs serially
        # in-process rather than paying process spawn + pickling for nothing.
        auto_workers = self._n_workers if len(self._jobs) > 1 else 1
        self._backend = backend_from_spec(
            backend, n_workers=auto_workers, chunk_size=chunk_size
        )
        # The spec string (or resolved name) travels into result metadata so
        # a saved result records how it was executed, parameters included.
        self._backend_spec = (
            backend if isinstance(backend, str) else self._backend.name
        )
        if (
            chunk_size is not None
            and backend is not None
            and not (
                isinstance(backend, str)
                and backend.partition(":")[0] == "process"
            )
        ):
            # With an explicit non-process backend the knob would be a
            # silent no-op (instances carry their own configuration; the
            # serial/asyncio backends have no chunks) — fail loudly in the
            # engine's usual style.  The auto spec keeps the historical
            # behaviour of ignoring chunk_size when it resolves to serial.
            raise ConfigurationError(
                "chunk_size only applies to the process backend; configure "
                "the backend instance directly or drop the argument"
            )
        if isinstance(retry, int):
            retry = RetryPolicy(max_attempts=retry)
        self._retry = retry or RetryPolicy()
        self._progress = progress
        self._job_runner = job_runner

    # ------------------------------------------------------------------
    @property
    def jobs(self) -> tuple[CampaignJob, ...]:
        """The expanded job list."""
        return self._jobs

    @property
    def n_workers(self) -> int:
        """Configured worker count."""
        return self._n_workers

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend this campaign dispatches through."""
        return self._backend

    def _runner_accepts(self, name: str) -> bool:
        """Whether the configured job runner takes a keyword argument.

        Keeps the historical ``(job, criterion=..., scenarios=...)`` runner
        contract working: newer engine-supplied kwargs (``pipelines``,
        ``faults``) are only passed to runners that declare them (or
        ``**kwargs``).
        """
        try:
            parameters = inspect.signature(self._job_runner).parameters
        except (TypeError, ValueError):  # builtins/C callables: be conservative
            return False
        if name in parameters:
            return True
        return any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
        )

    def _effective_workers(self) -> int:
        """Workers the backend will actually use — what the result reports.

        A supplied backend instance's own configuration (its
        ``max_workers``, when it exposes one — a custom backend that does
        not is reported as the configured ``n_workers``) wins over the
        ``n_workers`` argument, pools clamp to the job count at submit
        time, and the single-job serial fallback really runs on one
        worker however many were requested.
        """
        if isinstance(self._backend, SerialBackend):
            return 1
        configured = int(getattr(self._backend, "max_workers", self._n_workers))
        return max(1, min(configured, len(self._jobs)))

    # ------------------------------------------------------------------
    def run(
        self,
        checkpoint: str | Path | None = None,
        rerun_failures: bool | tuple[str, ...] = False,
    ) -> CampaignResult:
        """Execute every job and aggregate the records.

        With ``checkpoint`` set, every completed record is appended to a
        JSONL journal at that path as it streams in, and job ids already
        present in the journal are skipped — so ``run`` on an existing
        journal *is* a resume (see :meth:`resume` for the intent-revealing
        spelling).  ``rerun_failures`` names journaled failure categories
        to re-run instead of adopt: ``True`` means ``("worker_error",)``,
        a tuple selects specific categories.
        """
        if rerun_failures and checkpoint is None:
            raise ConfigurationError(
                "rerun_failures only makes sense with a checkpoint journal "
                "to re-run failures from; pass checkpoint= as well"
            )
        started = time.perf_counter()
        # Resolve scenario names, pipeline methods, and fault conditions in
        # this process and ship the objects to the workers: user-registered
        # entries live only in the parent's registry, which a spawn-start
        # worker would not have.
        scenarios = {
            name: get_scenario(name)
            for name in {job.scenario for job in self._jobs if job.scenario}
        }
        faults = {
            name: get_fault(name)
            for name in {
                getattr(job, "fault", None) for job in self._jobs
            }
            if name is not None
        }
        runner_kwargs = {"criterion": self._criterion, "scenarios": scenarios}
        if self._runner_accepts("pipelines"):
            runner_kwargs["pipelines"] = {
                method: get_pipeline(method)
                for method in {job.method for job in self._jobs}
            }
        if self._runner_accepts("faults"):
            runner_kwargs["faults"] = faults
        run_one = partial(self._job_runner, **runner_kwargs)
        journal = (
            CheckpointJournal(
                checkpoint,
                serialize=CampaignJobRecord.as_dict,
                deserialize=CampaignJobRecord.from_dict,
                fingerprint=campaign_fingerprint(
                    self._jobs, self._criterion, scenarios, faults
                ),
            )
            if checkpoint is not None
            else None
        )
        if rerun_failures:
            categories = (
                ("worker_error",)
                if rerun_failures is True
                else tuple(rerun_failures)
            )
            adopt = lambda record: record.failure_category not in categories  # noqa: E731
        else:
            adopt = None
        controller = RunController(
            self._backend,
            retry=self._retry,
            progress=self._progress,
            journal=journal,
            adopt=adopt,
        )
        completed = controller.run(self._jobs, run_one, on_error=worker_error_record)
        ordered: tuple[CampaignJobRecord, ...] = tuple(
            completed[job_id] for job_id in sorted(completed)
        )
        return CampaignResult(
            records=ordered,
            n_workers=self._effective_workers(),
            wall_time_s=time.perf_counter() - started,
            metadata={
                "n_jobs": len(self._jobs),
                "backend": self._backend.name,
                "backend_spec": self._backend_spec,
            },
        )

    def resume(
        self,
        checkpoint: str | Path,
        rerun_failures: bool | tuple[str, ...] = False,
    ) -> CampaignResult:
        """Resume an interrupted campaign from its checkpoint journal.

        Records already journaled are adopted verbatim (they round-trip
        through JSON bit-identically) and their job ids are skipped; only
        the remainder runs.  The merged result equals an uninterrupted run
        of the same campaign, modulo wall-clock timing — compare through
        :meth:`~repro.campaign.results.CampaignResult.normalized`.  A
        missing journal file simply starts the campaign fresh, journaling
        as it goes.

        One caveat to the equality claim: journaled failures are adopted
        too, including ``"worker_error"`` records born from *transient*
        faults (a custom runner's network blip) that an uninterrupted run
        might not have hit.  Pass ``rerun_failures=True`` to re-run
        journaled ``worker_error`` jobs instead of adopting them, or a
        tuple of failure categories to choose precisely; re-run outcomes
        supersede the old journal lines.
        """
        return self.run(checkpoint=checkpoint, rerun_failures=rerun_failures)
