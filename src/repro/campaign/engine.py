"""The campaign engine: fan a job grid out over a worker pool.

:class:`TuningCampaign` owns the execution policy and nothing else — what to
run comes from the grid, how one job runs lives in
:func:`~repro.campaign.worker.run_campaign_job`.  With ``n_workers=1`` jobs
run sequentially in-process; with more, they are dispatched over a
:class:`~concurrent.futures.ProcessPoolExecutor` (the extraction pipeline is
CPU-bound pure Python, so threads would serialise on the GIL).  Seeds are
bound to jobs at grid expansion, and records are reassembled in job-id
order, so the two modes return bit-identical results.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Iterable, Sequence

from ..analysis.metrics import SuccessCriterion
from ..exceptions import ConfigurationError
from ..scenarios.catalog import get_scenario
from .grid import CampaignGrid, CampaignJob
from .results import CampaignJobRecord, CampaignResult
from .worker import run_campaign_job


class TuningCampaign:
    """Run a batch-tuning campaign over a declarative job grid.

    Parameters
    ----------
    grid:
        A :class:`~repro.campaign.grid.CampaignGrid` to expand, or an
        already-expanded sequence of :class:`~repro.campaign.grid.CampaignJob`.
    n_workers:
        ``1`` runs jobs sequentially in-process (bit-identical to, and the
        reference for, every parallel run); larger values use a process pool
        of that size.
    criterion:
        Ground-truth success criterion applied to every job; the paper
        defaults when omitted.
    chunk_size:
        Jobs handed to a worker per dispatch.  Defaults to spreading the
        grid roughly four chunks per worker, which amortises pickling
        without starving the pool at the tail.
    """

    def __init__(
        self,
        grid: CampaignGrid | Sequence[CampaignJob] | Iterable[CampaignJob],
        n_workers: int = 1,
        criterion: SuccessCriterion | None = None,
        chunk_size: int | None = None,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError("n_workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError("chunk_size must be at least 1")
        if isinstance(grid, CampaignGrid):
            self._jobs = grid.expand()
        else:
            self._jobs = tuple(grid)
        ids = [job.job_id for job in self._jobs]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("campaign jobs must have unique job_ids")
        self._n_workers = int(n_workers)
        self._criterion = criterion or SuccessCriterion()
        self._chunk_size = chunk_size

    # ------------------------------------------------------------------
    @property
    def jobs(self) -> tuple[CampaignJob, ...]:
        """The expanded job list."""
        return self._jobs

    @property
    def n_workers(self) -> int:
        """Configured worker count."""
        return self._n_workers

    def run(self) -> CampaignResult:
        """Execute every job and aggregate the records."""
        started = time.perf_counter()
        # Resolve scenario names in this process and ship the objects to the
        # workers: user-registered scenarios live only in the parent's
        # registry, which a spawn-start worker would not have.
        scenarios = {
            name: get_scenario(name)
            for name in {job.scenario for job in self._jobs if job.scenario}
        }
        run_one = partial(
            run_campaign_job, criterion=self._criterion, scenarios=scenarios
        )
        if self._n_workers == 1 or len(self._jobs) <= 1:
            records = [run_one(job) for job in self._jobs]
        else:
            max_workers = min(self._n_workers, len(self._jobs))
            chunk = self._chunk_size or max(
                1, len(self._jobs) // (4 * max_workers)
            )
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                records = list(pool.map(run_one, self._jobs, chunksize=chunk))
        ordered: tuple[CampaignJobRecord, ...] = tuple(
            sorted(records, key=lambda record: record.job_id)
        )
        return CampaignResult(
            records=ordered,
            n_workers=self._n_workers,
            wall_time_s=time.perf_counter() - started,
            metadata={"n_jobs": len(self._jobs)},
        )
