"""Batch-tuning campaigns: declarative job grids fanned out over workers.

The paper's evaluation tunes one plunger-gate pair at a time; a production
bring-up tunes *fleets* — many devices, many gate pairs, many resolutions and
noise conditions, often comparing methods side by side.  This subpackage is
the managed layer for that workload:

* :class:`~repro.campaign.grid.CampaignGrid` declares the job grid
  (device × gate pair × resolution × noise × method × repeat) and expands it
  into :class:`~repro.campaign.grid.CampaignJob` specs with independent
  spawned seeds;
* :func:`~repro.campaign.worker.run_campaign_job` executes one job in
  isolation and condenses the outcome into a picklable record with a failure
  taxonomy;
* :class:`~repro.campaign.engine.TuningCampaign` dispatches the jobs
  through a pluggable :mod:`repro.execution` backend (serial, process
  pool, or asyncio — results are bit-identical at any worker count),
  journals records to an optional JSONL checkpoint it can
  :meth:`~repro.campaign.engine.TuningCampaign.resume` from, and
  aggregates everything into a
  :class:`~repro.campaign.results.CampaignResult` that renders through the
  :mod:`repro.analysis.reporting` tables and round-trips through JSON
  (:meth:`~repro.campaign.results.CampaignResult.save` /
  :meth:`~repro.campaign.results.CampaignResult.load`).

Typical use::

    from repro.campaign import CampaignGrid, DeviceSpec, TuningCampaign

    grid = CampaignGrid(
        devices=(DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)),),
        resolutions=(63, 100),
        noise_scales=(0.0, 1.0),
        n_repeats=5,
        seed=7,
    )
    campaign = TuningCampaign(grid, n_workers=4)
    result = campaign.run(checkpoint="campaign.jsonl")  # resumable
    print(result.format_report())
"""

from .engine import TuningCampaign, campaign_fingerprint
from .grid import KNOWN_METHODS, CampaignGrid, CampaignJob, DeviceSpec
from .results import CampaignJobRecord, CampaignResult
from .worker import (
    DEFAULT_FAULT_RETRY,
    classify_failure,
    run_campaign_job,
    worker_error_record,
)

__all__ = [
    "TuningCampaign",
    "CampaignGrid",
    "CampaignJob",
    "DEFAULT_FAULT_RETRY",
    "DeviceSpec",
    "KNOWN_METHODS",
    "CampaignJobRecord",
    "CampaignResult",
    "campaign_fingerprint",
    "classify_failure",
    "run_campaign_job",
    "worker_error_record",
]
