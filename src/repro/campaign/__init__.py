"""Batch-tuning campaigns: declarative job grids fanned out over workers.

The paper's evaluation tunes one plunger-gate pair at a time; a production
bring-up tunes *fleets* — many devices, many gate pairs, many resolutions and
noise conditions, often comparing methods side by side.  This subpackage is
the managed layer for that workload:

* :class:`~repro.campaign.grid.CampaignGrid` declares the job grid
  (device × gate pair × resolution × noise × method × repeat) and expands it
  into :class:`~repro.campaign.grid.CampaignJob` specs with independent
  spawned seeds;
* :func:`~repro.campaign.worker.run_campaign_job` executes one job in
  isolation and condenses the outcome into a picklable record with a failure
  taxonomy;
* :class:`~repro.campaign.engine.TuningCampaign` runs the jobs sequentially
  or over a :class:`~concurrent.futures.ProcessPoolExecutor` — results are
  bit-identical either way — and aggregates everything into a
  :class:`~repro.campaign.results.CampaignResult` that renders through the
  :mod:`repro.analysis.reporting` tables.

Typical use::

    from repro.campaign import CampaignGrid, DeviceSpec, TuningCampaign

    grid = CampaignGrid(
        devices=(DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22)),),
        resolutions=(63, 100),
        noise_scales=(0.0, 1.0),
        n_repeats=5,
        seed=7,
    )
    result = TuningCampaign(grid, n_workers=4).run()
    print(result.format_report())
"""

from .engine import TuningCampaign
from .grid import CampaignGrid, CampaignJob, DeviceSpec, KNOWN_METHODS
from .results import CampaignJobRecord, CampaignResult
from .worker import classify_failure, run_campaign_job

__all__ = [
    "TuningCampaign",
    "CampaignGrid",
    "CampaignJob",
    "DeviceSpec",
    "KNOWN_METHODS",
    "CampaignJobRecord",
    "CampaignResult",
    "classify_failure",
    "run_campaign_job",
]
