"""Exception hierarchy shared across the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated Python errors.
The hierarchy mirrors the package layout: physics/device construction errors,
instrument (measurement) errors, dataset errors, and extraction errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A configuration object contains invalid or inconsistent values."""


class DeviceModelError(ReproError):
    """A device physics model could not be constructed or is unphysical."""


class CapacitanceModelError(DeviceModelError):
    """A capacitance matrix is singular, asymmetric, or has wrong signs."""


class ChargeStateError(DeviceModelError):
    """A charge-state computation received an invalid occupation vector."""


class SensorModelError(DeviceModelError):
    """A charge-sensor model is misconfigured."""


class MeasurementError(ReproError):
    """A simulated measurement could not be performed."""


class VoltageRangeError(MeasurementError):
    """A requested gate voltage lies outside the instrument's limits."""


class ProbeBudgetExceededError(MeasurementError):
    """The experiment session exceeded its configured probe budget."""


class InstrumentFault(MeasurementError):
    """A probe failed for instrument reasons (as opposed to a bad request).

    This is the typed surface of the :mod:`repro.faults` injection layer and
    of the resilience machinery that tolerates it: exhausted retries, probe
    timeouts, and a tripped circuit breaker all raise a subclass, so callers
    can distinguish "the lab is misbehaving" from "the request was invalid"
    (:class:`VoltageRangeError`) or "the budget ran out"
    (:class:`ProbeBudgetExceededError`).
    """


class TransientReadError(InstrumentFault):
    """A probe read failed transiently; an immediate retry may succeed."""


class ProbeTimeoutError(InstrumentFault):
    """A probe stalled longer than the retry policy's timeout budget."""


class CircuitBreakerOpenError(InstrumentFault):
    """Too many consecutive probe failures; the meter stopped trying."""


class WorkerCrashError(ReproError):
    """An execution worker died (or was deterministically made to die).

    Raised in-process by serial/asyncio backends when a crash fault fires,
    and synthesised by :class:`~repro.execution.backends.ProcessPoolBackend`
    when a pool worker hard-exits; the run controller converts it into a
    ``worker_error`` record instead of aborting the campaign.
    """


class ClusterProtocolError(ReproError):
    """The cluster wire protocol was violated or a peer misbehaved.

    Raised by :mod:`repro.cluster` when a frame is malformed, a message
    arrives out of protocol order (e.g. work before registration), or no
    worker registers within the coordinator's timeout.  Worker *death* is
    not a protocol error — it is condensed into
    :class:`~repro.execution.base.WorkerCrash` markers and handled by
    re-leasing, exactly like a broken process pool.
    """


class DatasetError(ReproError):
    """A benchmark dataset could not be generated, loaded, or validated."""


class ExtractionError(ReproError):
    """Virtual gate extraction failed in a way that cannot be recovered."""


class AnchorSearchError(ExtractionError):
    """The anchor-point preprocessing step could not locate anchor points."""


class SweepError(ExtractionError):
    """A row- or column-major sweep could not locate any transition points."""


class FitError(ExtractionError):
    """The piece-wise linear fit of the transition lines did not converge."""


class BaselineError(ExtractionError):
    """The Canny/Hough baseline pipeline failed to produce transition lines."""
