"""Declarative device recipes shared by scenarios and campaigns.

A :class:`DeviceSpec` names a :class:`~repro.physics.dot_array.DotArrayDevice`
factory plus its keyword arguments, so a simulated device can be described by
plain values — hashable, picklable, and cheap to ship into worker processes —
and only *built* where it is needed.  Both the scenario catalogue
(:mod:`repro.scenarios.catalog`) and the campaign grid
(:mod:`repro.campaign.grid`) declare their devices this way.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError
from ..physics.dot_array import DotArrayDevice

#: Device factory registry: every entry is a classmethod of
#: :class:`~repro.physics.dot_array.DotArrayDevice` that builds a device from
#: keyword arguments.  Registering by name keeps specs declarative and
#: trivially picklable.
DEVICE_FACTORIES: dict[str, str] = {
    "double_dot": "double_dot",
    "linear_array": "linear_array",
    "quadruple_dot": "quadruple_dot",
    "grid_array": "grid_array",
}


@dataclass(frozen=True)
class DeviceSpec:
    """Declarative recipe for building one simulated device.

    ``kwargs`` is stored as a sorted tuple of ``(name, value)`` pairs so the
    spec stays hashable and picklable; use :meth:`DeviceSpec.of` to build one
    from ordinary keyword arguments.
    """

    factory: str = "double_dot"
    kwargs: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.factory not in DEVICE_FACTORIES:
            raise ConfigurationError(
                f"unknown device factory {self.factory!r}; "
                f"known: {sorted(DEVICE_FACTORIES)}"
            )

    @classmethod
    def of(cls, factory: str = "double_dot", **kwargs) -> "DeviceSpec":
        """Build a spec from keyword arguments."""
        return cls(factory=factory, kwargs=tuple(sorted(kwargs.items())))

    def build(self) -> DotArrayDevice:
        """Construct the device."""
        builder = getattr(DotArrayDevice, DEVICE_FACTORIES[self.factory])
        return builder(**dict(self.kwargs))

    @property
    def label(self) -> str:
        """Short human-readable identifier."""
        parts = [f"{k}={v}" for k, v in self.kwargs]
        return self.factory if not parts else f"{self.factory}({', '.join(parts)})"
