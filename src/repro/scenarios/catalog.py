"""Named laboratory scenarios: device + noise + drift + timing in one place.

A :class:`LabScenario` bundles everything that distinguishes one simulated
lab from another — which device is bonded in, what corrupts its sensor
signal, how the device itself evolves with time, and how long a probe takes —
behind a single constructor, so workloads can say ``open_session("charge_jumpy")``
instead of assembling five objects by hand.  The catalogue registered here is
the library's standing answer to "which conditions has this been tried
under?": every entry is constructible by name, sweepable as a campaign axis
(:class:`~repro.campaign.grid.CampaignGrid`), and exercised by the test
suite.

The registry is open: :func:`register_scenario` adds project-specific
entries, and the built-ins below double as examples of the vocabulary.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, replace

import numpy as np

from ..exceptions import ConfigurationError
from ..instrument.resilience import ProbeRetryPolicy
from ..instrument.session import ExperimentSession, SessionFactory
from ..instrument.timing import TimingModel
from ..physics.dot_array import DotArrayDevice
from ..physics.drift import DeviceDrift
from ..physics.noise import (
    CompositeNoise,
    NoiseModel,
    PinkNoise,
    TelegraphNoise,
    WhiteNoise,
    standard_lab_noise,
)
from .devices import DeviceSpec


@dataclass(frozen=True)
class LabScenario:
    """One named, fully specified simulated-lab condition.

    Attributes
    ----------
    name:
        Registry key; short snake_case.
    story:
        One-line physical story of the condition — what a lab notebook would
        say about this cooldown.
    device:
        Declarative recipe for the device under test.
    noise:
        Additive measurement noise, or ``None`` for a noise-free sensor.
    drift:
        Time evolution of the device itself, or ``None`` for a frozen device.
    timing:
        Per-probe cost model; its probe cost also converts pixel-unit noise
        parameters to seconds for time-dependent sampling.
    time_dependent_noise:
        When true, noise is evaluated at per-probe simulated timestamps
        (:meth:`~repro.physics.noise.NoiseModel.at_times`); when false, it is
        rendered as one static per-pixel field, the way the paper's
        replayed benchmarks bake noise into the image.
    faults:
        Deterministic instrument misbehaviour baked into the scenario: a
        registered fault-condition name, a :class:`~repro.faults.FaultModel`,
        or an iterable of either (see :func:`repro.faults.models_for`).
        ``None`` (the default, and every built-in) keeps the scenario
        fault-free.
    probe_retry:
        How sessions opened on this scenario ride out injected probe
        faults; ``None`` fails on the first fault.
    """

    name: str
    story: str
    device: DeviceSpec = field(default_factory=DeviceSpec)
    noise: NoiseModel | None = None
    drift: DeviceDrift | None = None
    timing: TimingModel = field(default_factory=TimingModel.paper_default)
    time_dependent_noise: bool = False
    faults: object | None = None
    probe_retry: ProbeRetryPolicy | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a scenario needs a non-empty name")

    # ------------------------------------------------------------------
    @property
    def is_time_dependent(self) -> bool:
        """Whether sessions opened on this scenario evolve with the clock."""
        drifting = self.drift is not None and not self.drift.is_static
        return drifting or self.time_dependent_noise

    def build_device(self) -> DotArrayDevice:
        """Construct the scenario's device."""
        return self.device.build()

    def session_factory(
        self,
        device: DotArrayDevice | None = None,
        resolution: int | tuple[int, int] = 100,
        cache: bool = True,
        max_probes: int | None = None,
    ) -> SessionFactory:
        """A :class:`~repro.instrument.session.SessionFactory` under this
        scenario's environment.

        ``device`` overrides the scenario's own device recipe — this is how a
        campaign applies one scenario's *conditions* across its whole device
        axis.
        """
        return SessionFactory(
            device=device if device is not None else self.build_device(),
            resolution=resolution,
            noise=self.noise,
            timing=self.timing,
            cache=cache,
            max_probes=max_probes,
            drift=self.drift,
            time_dependent_noise=self.time_dependent_noise,
            faults=self.faults,
            probe_retry=self.probe_retry,
        )

    def open_session(
        self,
        resolution: int | tuple[int, int] = 100,
        window: tuple[tuple[float, float], tuple[float, float]] | None = None,
        gate_x: int | str = "P1",
        gate_y: int | str = "P2",
        dot_a: int = 0,
        dot_b: int = 1,
        seed: int | np.random.SeedSequence | None = None,
        cache: bool = True,
        max_probes: int | None = None,
        label: str | None = None,
    ) -> ExperimentSession:
        """Open a measurement session on the scenario's device."""
        return self.session_factory(
            resolution=resolution, cache=cache, max_probes=max_probes
        ).make(
            gate_x=gate_x,
            gate_y=gate_y,
            dot_a=dot_a,
            dot_b=dot_b,
            window=window,
            seed=seed,
            label=label or f"{self.name}:{gate_x}-{gate_y}",
        )

    def scaled(self, noise_scale: float) -> "LabScenario":
        """This scenario with its noise amplitude scaled.

        Scale 1 is the scenario as-is; scale 0 keeps drift and timing but
        silences the additive noise.  Scaling is delegated to
        :meth:`~repro.physics.noise.NoiseModel.scaled`, so custom noise
        models participate by overriding that method, and the scaled
        scenario's time-dependent samples are exactly ``noise_scale`` times
        the originals at every probe timestamp.  Registry-free, so it works
        on scenario objects shipped into worker processes.
        """
        if noise_scale < 0 or not np.isfinite(noise_scale):
            raise ConfigurationError("noise_scale must be finite and non-negative")
        if noise_scale == 1.0 or self.noise is None:
            return self
        scaled = _scale_noise(self.noise, noise_scale)
        if scaled is None:
            # Silenced entirely: drop the time-dependence flag with the
            # noise it described, so the scaled scenario does not pay the
            # per-probe-timestamp sampling path to evaluate a zero field
            # (device drift keeps its own time-dependence independently).
            return replace(self, noise=None, time_dependent_noise=False)
        return replace(self, noise=scaled)

    def describe(self) -> str:
        """One-line summary used in reports and metadata."""
        noise = self.noise.describe() if self.noise is not None else "none"
        drift = self.drift.describe() if self.drift is not None else "drift(static)"
        mode = "time-dependent" if self.time_dependent_noise else "static-field"
        text = (
            f"{self.name}: noise={noise} [{mode}], {drift}, "
            f"probe={self.timing.cost_per_probe_s:g} s"
        )
        if self.faults is not None:
            injected = (
                self.faults
                if isinstance(self.faults, str)
                else ", ".join(type(m).__name__ for m in _fault_models(self.faults))
            )
            text += f", faults={injected}"
        return text


def _fault_models(spec) -> tuple:
    """Resolve a scenario's fault spec into model instances (for describe)."""
    # Imported lazily: repro.faults builds on the instrument layer this
    # module also imports, and keeping the import local avoids ordering
    # sensitivity during package import.
    from ..faults import models_for

    return models_for(spec)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, LabScenario] = {}


def register_scenario(scenario: LabScenario, overwrite: bool = False) -> LabScenario:
    """Add a scenario to the registry (returns it, so it chains)."""
    if scenario.name in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"scenario {scenario.name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> LabScenario:
    """Look a scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}"
        ) from None


def unregister_scenario(name: str) -> LabScenario:
    """Remove a scenario from the registry, returning it."""
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}"
        ) from None


@contextmanager
def temporary_scenarios(*scenarios: LabScenario):
    """Register scenarios for the duration of a ``with`` block.

    Campaign workers resolve scenarios by name, so anything sampled on the
    fly (scenario-space draws, miner candidates) must pass through the
    registry to run.  This keeps those entries from leaking into the
    catalogue: on exit each name is restored to whatever it mapped to
    before the block, whether that was absent or a registered scenario.
    """
    previous: dict[str, LabScenario | None] = {}
    try:
        for scenario in scenarios:
            if scenario.name not in previous:
                previous[scenario.name] = _REGISTRY.get(scenario.name)
            register_scenario(scenario, overwrite=True)
        yield scenarios
    finally:
        for name, original in previous.items():
            if original is None:
                _REGISTRY.pop(name, None)
            else:
                _REGISTRY[name] = original


def scenario_names() -> tuple[str, ...]:
    """Registered scenario names, in registration order."""
    return tuple(_REGISTRY)


def all_scenarios() -> tuple[LabScenario, ...]:
    """Every registered scenario, in registration order."""
    return tuple(_REGISTRY.values())


def scenario_catalogue() -> str:
    """Plain-text table of every registered scenario (name, story, physics)."""
    lines = ["Scenario catalogue", "=" * 18]
    width = max(len(name) for name in _REGISTRY) if _REGISTRY else 0
    for scenario in _REGISTRY.values():
        lines.append(f"{scenario.name:<{width}}  {scenario.story}")
        lines.append(f"{'':<{width}}  {scenario.describe()}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Built-in catalogue
# ---------------------------------------------------------------------------

#: The reference double dot used across the catalogue; scenarios are about
#: the *environment*, so they share a device unless the story says otherwise.
_REFERENCE_DOT = DeviceSpec.of("double_dot", cross_coupling=(0.25, 0.22))

register_scenario(
    LabScenario(
        name="quiet_lab",
        story="Shielded dilution fridge on a good day: no measurable noise, no drift.",
        device=_REFERENCE_DOT,
    )
)

register_scenario(
    LabScenario(
        name="standard_lab",
        story="Typical cooldown: white + 1/f + slow drift baked into each scan.",
        device=_REFERENCE_DOT,
        noise=standard_lab_noise(),
    )
)

register_scenario(
    LabScenario(
        name="hot_amplifier",
        story="Cryo-amp running warm: strong white noise, fresh at every probe.",
        device=_REFERENCE_DOT,
        noise=WhiteNoise(sigma_na=0.04),
        time_dependent_noise=True,
    )
)

register_scenario(
    LabScenario(
        name="flicker_forest",
        story="Charge-noise-dominated device: heavy 1/f wandering in real time.",
        device=_REFERENCE_DOT,
        noise=CompositeNoise(
            [WhiteNoise(sigma_na=0.008), PinkNoise(sigma_na=0.03, exponent=1.0)]
        ),
        time_dependent_noise=True,
    )
)

register_scenario(
    LabScenario(
        name="telegraph_storm",
        story="A strongly coupled two-level fluctuator switches the sensor every few seconds.",
        device=_REFERENCE_DOT,
        noise=CompositeNoise(
            [
                WhiteNoise(sigma_na=0.008),
                TelegraphNoise(amplitude_na=0.06, mean_dwell_pixels=120.0),
            ]
        ),
        time_dependent_noise=True,
    )
)

register_scenario(
    LabScenario(
        name="drifting_sensor",
        story="Sensor operating point creeps off its flank over the hour.",
        device=_REFERENCE_DOT,
        noise=WhiteNoise(sigma_na=0.01),
        drift=DeviceDrift(operating_point_mv_per_hour=30.0),
        time_dependent_noise=True,
    )
)

register_scenario(
    LabScenario(
        name="charge_jumpy",
        story="Background charges rearrange tens of times per hour, each jump shifting every transition.",
        device=_REFERENCE_DOT,
        noise=WhiteNoise(sigma_na=0.01),
        drift=DeviceDrift(charge_jumps_per_hour=40.0, charge_jump_mv=0.5),
        time_dependent_noise=True,
    )
)

register_scenario(
    LabScenario(
        name="mains_hum",
        story="Ground loop picks up line interference that beats against the probe rate.",
        device=_REFERENCE_DOT,
        noise=WhiteNoise(sigma_na=0.008),
        drift=DeviceDrift(interference_mv=0.3, interference_period_s=0.34),
        time_dependent_noise=True,
    )
)

register_scenario(
    LabScenario(
        name="overnight_run",
        story="Unattended overnight campaign: slow probes, gentle drift, the occasional charge jump.",
        device=_REFERENCE_DOT,
        noise=CompositeNoise(
            [WhiteNoise(sigma_na=0.01), PinkNoise(sigma_na=0.012, exponent=1.0)]
        ),
        drift=DeviceDrift(
            operating_point_mv_per_hour=8.0,
            charge_jumps_per_hour=4.0,
            charge_jump_mv=0.4,
            lever_arm_fraction_per_hour=0.002,
        ),
        timing=TimingModel(dwell_time_s=0.100),
        time_dependent_noise=True,
    )
)

register_scenario(
    LabScenario(
        name="cryostat_warming",
        story="Fridge slowly warming: lever arms creep and the operating point rides along.",
        device=_REFERENCE_DOT,
        noise=PinkNoise(sigma_na=0.015, exponent=1.2),
        drift=DeviceDrift(
            operating_point_mv_per_hour=15.0,
            lever_arm_fraction_per_hour=0.06,
        ),
        time_dependent_noise=True,
    )
)


def scaled_scenario(name: str, noise_scale: float) -> LabScenario:
    """A registered scenario with its noise amplitude scaled.

    Convenience wrapper over :meth:`LabScenario.scaled`: scale 1 is the
    scenario as registered, scale 0 keeps the scenario's drift and timing
    but silences the additive noise.
    """
    return get_scenario(name).scaled(noise_scale)


def _scale_noise(model: NoiseModel, factor: float) -> NoiseModel | None:
    """Scale a noise model's amplitude parameters by ``factor``.

    Scale 0 silences the model entirely (returns ``None``); any other scale
    delegates to :meth:`~repro.physics.noise.NoiseModel.scaled`, so custom
    subclasses participate by overriding that hook.
    """
    if factor == 0.0:
        return None
    return model.scaled(factor)
