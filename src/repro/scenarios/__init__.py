"""Time-dependent lab scenarios: named bundles of device, noise, and drift.

The physics layer can corrupt a measurement (:mod:`repro.physics.noise`) and
evolve the device underneath it (:mod:`repro.physics.drift`); the instrument
layer timestamps every probe (:class:`~repro.instrument.timing.VirtualClock`).
This subpackage ties the three together into *scenarios* — reproducible
simulated labs with a name and a physical story:

* :class:`~repro.scenarios.devices.DeviceSpec` — declarative device recipes
  (shared with the campaign grid);
* :class:`~repro.scenarios.catalog.LabScenario` — device + noise + drift +
  timing behind one constructor, with ``open_session`` /
  ``session_factory`` entry points;
* the registry (:func:`~repro.scenarios.catalog.get_scenario`,
  :func:`~repro.scenarios.catalog.register_scenario`,
  :func:`~repro.scenarios.catalog.scenario_names`) with ~10 built-in
  conditions from ``quiet_lab`` to ``overnight_run``.

Typical use::

    from repro.scenarios import get_scenario

    session = get_scenario("drifting_sensor").open_session(resolution=100, seed=7)
    result = FastVirtualGateExtractor().extract(session)
"""

from ..physics.drift import DeviceDrift, DeviceDriftState
from .catalog import (
    LabScenario,
    all_scenarios,
    get_scenario,
    register_scenario,
    scaled_scenario,
    scenario_catalogue,
    scenario_names,
    temporary_scenarios,
    unregister_scenario,
)
from .devices import DEVICE_FACTORIES, DeviceSpec

__all__ = [
    "DeviceDrift",
    "DeviceDriftState",
    "LabScenario",
    "all_scenarios",
    "get_scenario",
    "register_scenario",
    "scaled_scenario",
    "scenario_catalogue",
    "scenario_names",
    "temporary_scenarios",
    "unregister_scenario",
    "DEVICE_FACTORIES",
    "DeviceSpec",
]
