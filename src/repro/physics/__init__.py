"""Device-physics substrate: electrostatics, charge states, sensing, noise.

This subpackage simulates everything the paper's experiments take from a real
silicon quantum dot chip: the constant-interaction capacitance model, the
ground-state charge configuration at any gate-voltage point, the proximal
charge sensor that turns charge transitions into current steps, realistic
measurement noise, and the rasterisation of all of that into charge-stability
diagrams.
"""

from .capacitance import CapacitanceModel
from .charge_state import (
    ChargeState,
    ChargeStateSolver,
    SolverStats,
    format_charge_state,
)
from .csd import ChargeStabilityDiagram, CSDSimulator, TransitionLineGeometry
from .dot_array import DotArrayDevice, GateSpec
from .drift import DeviceDrift, DeviceDriftState
from .noise import (
    CompositeNoise,
    DriftNoise,
    NoiseModel,
    NoNoise,
    PinkNoise,
    TelegraphNoise,
    TimeDependentNoise,
    WhiteNoise,
    standard_lab_noise,
)
from .potential import ChannelPotential, GateElectrode, PotentialWell
from .sensor import ChargeSensor, ChargeSensorConfig

__all__ = [
    "CapacitanceModel",
    "ChargeState",
    "ChargeStateSolver",
    "SolverStats",
    "format_charge_state",
    "ChargeStabilityDiagram",
    "CSDSimulator",
    "TransitionLineGeometry",
    "DotArrayDevice",
    "GateSpec",
    "DeviceDrift",
    "DeviceDriftState",
    "NoiseModel",
    "NoNoise",
    "TimeDependentNoise",
    "WhiteNoise",
    "PinkNoise",
    "TelegraphNoise",
    "DriftNoise",
    "CompositeNoise",
    "standard_lab_noise",
    "ChannelPotential",
    "GateElectrode",
    "PotentialWell",
    "ChargeSensor",
    "ChargeSensorConfig",
]
