"""Measurement-noise models for simulated charge-sensor data.

Real charge-stability diagrams are corrupted by several noise mechanisms with
very different signatures, and the paper's two "Fail" benchmarks exist
precisely because of such noise.  This module provides seeded, composable
models of the dominant mechanisms:

* :class:`WhiteNoise` — Gaussian amplifier/shot noise, independent per pixel.
* :class:`PinkNoise` — 1/f charge noise, generated in the frequency domain
  over the pixel grid so that it is spatially correlated the way a slow
  raster scan renders temporal 1/f noise.
* :class:`TelegraphNoise` — random telegraph signal from a two-level
  fluctuator: the signal jumps between two offsets with exponentially
  distributed dwell lengths along the (row-major) measurement order.
* :class:`DriftNoise` — slow linear/periodic drift of the sensor operating
  point across the scan.
* :class:`CompositeNoise` — sum of any of the above.

All models expose two sampling surfaces:

* :meth:`NoiseModel.sample_grid` returns a *static* additive field for a
  ``(rows, cols)`` grid — measurement time is implicitly mapped onto pixel
  position, the way a raster scan renders temporal noise;
* :meth:`NoiseModel.at_times` builds a :class:`TimeDependentNoise` sampler
  that evaluates the same mechanism at explicit simulated timestamps (the
  per-probe clock readings of
  :class:`~repro.instrument.timing.VirtualClock`), so non-raster probe
  patterns — and anything that revisits a voltage point later in the run —
  see the device *evolve* between probes.

Both surfaces are deterministic given their seed, and every time-dependent
sampler is a pure function of the timestamp once constructed: splitting a
batch of probes into smaller batches (or down to single scalar probes) cannot
change a single bit of the sampled noise.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np
from scipy.special import ndtri

from ..exceptions import ConfigurationError
from .events import ExponentialEventStream, require_finite as _require_finite


def _require_scale_factor(factor: float) -> None:
    """Validate a noise scale factor (finite, non-negative)."""
    if not np.isfinite(factor) or factor < 0:
        raise ConfigurationError("noise scale factor must be finite and non-negative")


class TimeDependentNoise:
    """Protocol for noise evaluated at simulated probe timestamps.

    Instances are built by :meth:`NoiseModel.at_times` and hold whatever
    random structure the mechanism needs (hash keys, component phases,
    telegraph switching times), drawn once from the seeded generator at
    construction.  After that, :meth:`sample_at` is a deterministic function
    of the timestamps — the same probe time always yields the same noise, no
    matter how requests are batched or interleaved.
    """

    def sample_at(self, times_s: np.ndarray) -> np.ndarray:
        """Additive noise (nA) at each simulated timestamp (seconds)."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human readable description used in metadata."""
        return type(self).__name__


#: Amplitude parameters (all in nA) recognised by the default
#: :meth:`NoiseModel.scaled` implementation.  Structural parameters —
#: spectral exponents, dwell times, timescales — are deliberately absent:
#: scaling a model changes how *loud* the mechanism is, never its shape,
#: which is what keeps the scaled model's time-dependent samples exactly
#: ``factor`` times the unscaled ones at every timestamp.
AMPLITUDE_FIELDS: tuple[str, ...] = (
    "sigma_na",
    "amplitude_na",
    "ramp_na",
    "sine_amplitude_na",
)


class NoiseModel:
    """Base class for additive noise fields over a pixel grid."""

    def sample_grid(self, shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
        """Return an additive noise field of the requested shape (in nA)."""
        raise NotImplementedError

    def scaled(self, factor: float) -> "NoiseModel":
        """This mechanism with every amplitude multiplied by ``factor``.

        The contract — relied on by :meth:`repro.scenarios.catalog.LabScenario.scaled`
        and the campaign noise axis — is that for the same seed the scaled
        model samples exactly ``factor`` times the unscaled model's values,
        in both the static-grid and time-dependent surfaces: only amplitude
        parameters change, so every structural random draw (hash keys,
        phases, switching times) is consumed identically.

        The default implementation scales the :data:`AMPLITUDE_FIELDS` a
        dataclass subclass declares; models with other parameterisations
        (or non-dataclass models) override this method.
        """
        _require_scale_factor(factor)
        updates = {
            name: getattr(self, name) * factor
            for name in AMPLITUDE_FIELDS
            if hasattr(self, name)
        }
        if not updates:
            raise ConfigurationError(
                f"cannot scale noise model {type(self).__name__}: it exposes "
                f"no known amplitude field ({', '.join(AMPLITUDE_FIELDS)}); "
                "override NoiseModel.scaled to make it scalable"
            )
        return replace(self, **updates)

    def at_times(
        self, rng: np.random.Generator, probe_interval_s: float = 0.05
    ) -> TimeDependentNoise:
        """Build a time-dependent sampler of this mechanism.

        Parameters
        ----------
        rng:
            Seeded generator the sampler draws its random structure from,
            once, at construction.
        probe_interval_s:
            Nominal simulated cost of one probe.  It converts the grid
            models' per-pixel units into seconds (a telegraph dwell of 200
            pixels becomes ``200 * probe_interval_s``), exactly the mapping a
            slow raster scan applies implicitly.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement time-dependent sampling"
        )

    def describe(self) -> str:
        """One-line human readable description used in dataset metadata."""
        return type(self).__name__


@dataclass(frozen=True)
class NoNoise(NoiseModel):
    """The trivial noise model: a zero field."""

    def sample_grid(self, shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
        return np.zeros(shape, dtype=float)

    def at_times(
        self, rng: np.random.Generator, probe_interval_s: float = 0.05
    ) -> TimeDependentNoise:
        return _ZeroTemporal()

    def scaled(self, factor: float) -> "NoiseModel":
        _require_scale_factor(factor)
        return self

    def describe(self) -> str:
        return "none"


@dataclass(frozen=True)
class WhiteNoise(NoiseModel):
    """Independent Gaussian noise per pixel.

    Attributes
    ----------
    sigma_na:
        Standard deviation of the noise in nanoamperes.
    """

    sigma_na: float = 0.01

    def __post_init__(self) -> None:
        _require_finite("sigma_na", self.sigma_na)
        if self.sigma_na < 0:
            raise ConfigurationError("sigma_na must be non-negative")

    def sample_grid(self, shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
        return rng.normal(0.0, self.sigma_na, size=shape)

    def at_times(
        self, rng: np.random.Generator, probe_interval_s: float = 0.05
    ) -> TimeDependentNoise:
        return _WhiteTemporal(self.sigma_na, key=int(rng.integers(0, 2**63)))

    def describe(self) -> str:
        return f"white(sigma={self.sigma_na:g} nA)"


@dataclass(frozen=True)
class PinkNoise(NoiseModel):
    """Spatially correlated 1/f^exponent noise over the pixel grid.

    The field is generated by shaping white noise in the 2-D Fourier domain
    with an isotropic ``1/|k|^(exponent/2)`` filter and normalising to the
    requested r.m.s. amplitude.  Because slow scans map measurement time onto
    pixel position, temporal 1/f charge noise appears as exactly this kind of
    long-range-correlated field.

    Attributes
    ----------
    sigma_na:
        Target r.m.s. amplitude in nanoamperes.
    exponent:
        Spectral exponent; 1.0 gives classic 1/f, 2.0 gives Brownian-like
        drift.
    """

    sigma_na: float = 0.02
    exponent: float = 1.0

    def __post_init__(self) -> None:
        _require_finite("sigma_na", self.sigma_na)
        _require_finite("exponent", self.exponent)
        if self.sigma_na < 0:
            raise ConfigurationError("sigma_na must be non-negative")
        if self.exponent <= 0:
            raise ConfigurationError("exponent must be positive")

    def sample_grid(self, shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
        rows, cols = shape
        if self.sigma_na == 0 or rows * cols <= 1:
            # Degenerate grids — empty, or a single pixel whose spectrum has
            # no non-DC component to shape — carry no 1/f structure.
            return np.zeros(shape, dtype=float)
        white = rng.normal(0.0, 1.0, size=shape)
        fy = np.fft.fftfreq(rows)[:, None]
        fx = np.fft.fftfreq(cols)[None, :]
        radius = np.sqrt(fy * fy + fx * fx)
        radius[0, 0] = radius.flat[np.argsort(radius.flat)[1]]  # avoid divide by zero
        spectrum = np.fft.fft2(white) / np.power(radius, self.exponent / 2.0)
        spectrum[0, 0] = 0.0
        field = np.real(np.fft.ifft2(spectrum))
        rms = float(np.sqrt(np.mean(field**2)))
        if rms == 0:
            return np.zeros(shape, dtype=float)
        return field * (self.sigma_na / rms)

    def at_times(
        self, rng: np.random.Generator, probe_interval_s: float = 0.05
    ) -> TimeDependentNoise:
        return _PinkTemporal(self.sigma_na, self.exponent, rng, probe_interval_s)

    def describe(self) -> str:
        return f"pink(sigma={self.sigma_na:g} nA, exp={self.exponent:g})"


@dataclass(frozen=True)
class TelegraphNoise(NoiseModel):
    """Random telegraph noise from a single two-level fluctuator.

    The fluctuator toggles the sensor current by ``amplitude_na`` with dwell
    lengths (measured in pixels along the row-major scan order) drawn from an
    exponential distribution with mean ``mean_dwell_pixels``.

    Attributes
    ----------
    amplitude_na:
        Size of the current jump when the fluctuator switches state.
    mean_dwell_pixels:
        Average number of consecutively scanned pixels between switches.
    """

    amplitude_na: float = 0.05
    mean_dwell_pixels: float = 200.0

    def __post_init__(self) -> None:
        _require_finite("amplitude_na", self.amplitude_na)
        _require_finite("mean_dwell_pixels", self.mean_dwell_pixels)
        if self.amplitude_na < 0:
            raise ConfigurationError("amplitude_na must be non-negative")
        if self.mean_dwell_pixels <= 0:
            raise ConfigurationError("mean_dwell_pixels must be positive")

    def sample_grid(self, shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
        total = int(shape[0] * shape[1])
        if total == 0 or self.amplitude_na == 0:
            return np.zeros(shape, dtype=float)
        trace = np.zeros(total, dtype=float)
        state = bool(rng.integers(0, 2))
        position = 0
        while position < total:
            dwell = max(1, int(rng.exponential(self.mean_dwell_pixels)))
            end = min(total, position + dwell)
            trace[position:end] = self.amplitude_na if state else 0.0
            state = not state
            position = end
        trace -= float(np.mean(trace))
        return trace.reshape(shape)

    def at_times(
        self, rng: np.random.Generator, probe_interval_s: float = 0.05
    ) -> TimeDependentNoise:
        return _TelegraphTemporal(
            self.amplitude_na, self.mean_dwell_pixels * probe_interval_s, rng
        )

    def describe(self) -> str:
        return (
            f"telegraph(amp={self.amplitude_na:g} nA, "
            f"dwell={self.mean_dwell_pixels:g} px)"
        )


@dataclass(frozen=True)
class DriftNoise(NoiseModel):
    """Slow drift of the sensor operating point across the scan.

    Combines a linear ramp along the slow (row) axis with an optional
    sinusoidal modulation, both expressed in nanoamperes peak-to-peak.  In
    time-dependent sampling the ramp and modulation unfold over
    ``timescale_s`` of simulated time instead of over the rows of one scan
    (and the ramp keeps growing past it — real drift does not stop when a
    scan ends).
    """

    ramp_na: float = 0.03
    sine_amplitude_na: float = 0.0
    sine_periods: float = 1.5
    timescale_s: float = 300.0

    def __post_init__(self) -> None:
        _require_finite("ramp_na", self.ramp_na)
        _require_finite("sine_amplitude_na", self.sine_amplitude_na)
        _require_finite("sine_periods", self.sine_periods)
        _require_finite("timescale_s", self.timescale_s)
        if self.ramp_na < 0:
            raise ConfigurationError("ramp_na must be non-negative")
        if self.sine_amplitude_na < 0:
            raise ConfigurationError("sine_amplitude_na must be non-negative")
        if self.sine_periods <= 0:
            raise ConfigurationError("sine_periods must be positive")
        if self.timescale_s <= 0:
            raise ConfigurationError("timescale_s must be positive")

    def sample_grid(self, shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
        rows, cols = shape
        row_phase = np.linspace(0.0, 1.0, rows, endpoint=True)[:, None]
        field = self.ramp_na * (row_phase - 0.5) * np.ones((1, cols))
        if self.sine_amplitude_na:
            field = field + self.sine_amplitude_na * np.sin(
                2.0 * np.pi * self.sine_periods * row_phase
            )
        return np.broadcast_to(field, shape).copy()

    def at_times(
        self, rng: np.random.Generator, probe_interval_s: float = 0.05
    ) -> TimeDependentNoise:
        return _DriftTemporal(self)

    def describe(self) -> str:
        return f"drift(ramp={self.ramp_na:g} nA, sine={self.sine_amplitude_na:g} nA)"


class CompositeNoise(NoiseModel):
    """Sum of several independent noise models."""

    def __init__(self, components: Sequence[NoiseModel]) -> None:
        self._components = tuple(components)
        if not self._components:
            raise ConfigurationError("CompositeNoise requires at least one component")

    @property
    def components(self) -> tuple[NoiseModel, ...]:
        """The constituent noise models."""
        return self._components

    def __repr__(self) -> str:
        # Content-based (the default object repr embeds a memory address,
        # which would poison anything fingerprinting scenario definitions
        # by repr across processes — e.g. campaign checkpoint resume).
        return f"CompositeNoise(components={self._components!r})"

    def sample_grid(self, shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
        field = np.zeros(shape, dtype=float)
        for component in self._components:
            field = field + component.sample_grid(shape, rng)
        return field

    def scaled(self, factor: float) -> "NoiseModel":
        # Every component is scaled in place (never dropped): the component
        # count determines how at_times spawns child streams, so removing a
        # silenced component would reshuffle its siblings' randomness.
        _require_scale_factor(factor)
        return CompositeNoise(
            [component.scaled(factor) for component in self._components]
        )

    def at_times(
        self, rng: np.random.Generator, probe_interval_s: float = 0.05
    ) -> TimeDependentNoise:
        # Independent spawned streams per component, so adding or removing a
        # component does not reshuffle the randomness of the others.
        children = rng.spawn(len(self._components))
        return _CompositeTemporal(
            tuple(
                component.at_times(child, probe_interval_s)
                for component, child in zip(self._components, children)
            )
        )

    def describe(self) -> str:
        return " + ".join(component.describe() for component in self._components)


# ---------------------------------------------------------------------------
# Time-dependent samplers
# ---------------------------------------------------------------------------

class _ZeroTemporal(TimeDependentNoise):
    """Time-dependent view of :class:`NoNoise`."""

    def sample_at(self, times_s: np.ndarray) -> np.ndarray:
        return np.zeros(np.asarray(times_s, dtype=float).shape, dtype=float)

    def describe(self) -> str:
        return "none"


_MIX_MUL_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_MUL_2 = np.uint64(0x94D049BB133111EB)


def _mix_bits(bits: np.ndarray) -> np.ndarray:
    """SplitMix64 finaliser over a uint64 array (wrapping arithmetic)."""
    z = bits.copy()
    z ^= z >> np.uint64(30)
    z *= _MIX_MUL_1
    z ^= z >> np.uint64(27)
    z *= _MIX_MUL_2
    z ^= z >> np.uint64(31)
    return z


class _WhiteTemporal(TimeDependentNoise):
    """Gaussian noise as a deterministic function of the probe timestamp.

    The float bits of each timestamp are hashed (SplitMix64, keyed by one
    draw from the seeded generator) into a uniform variate and mapped through
    the normal inverse CDF.  Distinct probe times get independent-looking
    draws; the same time always gets the same draw, which is what makes the
    scalar and batched probe paths bit-identical by construction.
    """

    def __init__(self, sigma_na: float, key: int) -> None:
        self._sigma_na = float(sigma_na)
        self._key = np.uint64(key)

    def sample_at(self, times_s: np.ndarray) -> np.ndarray:
        times = np.ascontiguousarray(np.asarray(times_s, dtype=float))
        if times.size == 0 or self._sigma_na == 0:
            return np.zeros(times.shape, dtype=float)
        bits = times.view(np.uint64) ^ self._key
        # Map the hash to a uniform in (0, 1); the half-bit offset keeps the
        # inverse CDF away from its infinities at 0 and 1.
        uniform = (np.right_shift(_mix_bits(bits), np.uint64(11)) + 0.5) * 2.0**-53
        return self._sigma_na * ndtri(uniform)

    def describe(self) -> str:
        return f"white(sigma={self._sigma_na:g} nA)"


class _PinkTemporal(TimeDependentNoise):
    """1/f^exponent noise as a finite sum of random-phase sinusoids.

    Component frequencies are log-spaced from roughly one cycle per few
    thousand probes up to the per-probe Nyquist rate, with amplitudes shaped
    like the grid model's spectrum and normalised to the requested r.m.s.
    """

    _N_COMPONENTS = 48
    _LOW_FREQUENCY_PROBES = 4096.0

    def __init__(
        self,
        sigma_na: float,
        exponent: float,
        rng: np.random.Generator,
        probe_interval_s: float,
    ) -> None:
        if probe_interval_s <= 0 or not np.isfinite(probe_interval_s):
            raise ConfigurationError(
                "probe_interval_s must be positive for time-dependent 1/f noise"
            )
        self._sigma_na = float(sigma_na)
        self._exponent = float(exponent)
        low = 1.0 / (self._LOW_FREQUENCY_PROBES * probe_interval_s)
        high = 1.0 / (2.0 * probe_interval_s)
        self._frequencies = np.geomspace(low, high, self._N_COMPONENTS)
        self._phases = rng.uniform(0.0, 2.0 * np.pi, size=self._N_COMPONENTS)
        amplitudes = np.power(self._frequencies, -self._exponent / 2.0)
        rms = np.sqrt(0.5 * np.sum(amplitudes**2))
        self._amplitudes = amplitudes * (self._sigma_na / rms if rms > 0 else 0.0)

    def sample_at(self, times_s: np.ndarray) -> np.ndarray:
        times = np.asarray(times_s, dtype=float)
        if times.size == 0 or self._sigma_na == 0:
            return np.zeros(times.shape, dtype=float)
        angles = (
            2.0 * np.pi * times[..., None] * self._frequencies + self._phases
        )
        return np.einsum("...k,k->...", np.sin(angles), self._amplitudes)

    def describe(self) -> str:
        return f"pink(sigma={self._sigma_na:g} nA, exp={self._exponent:g})"


class _TelegraphTemporal(TimeDependentNoise):
    """Random telegraph signal with dwell times measured in seconds.

    The switching times form one fixed random sequence (an
    :class:`~repro.physics.events.ExponentialEventStream`), so the state at
    time ``t`` — the parity of the number of switches before ``t`` — is
    independent of how queries are batched or ordered.  The two levels are
    ``±amplitude/2``: analytically mean-centred, where the grid model can
    only centre empirically over the pixels it rendered.
    """

    def __init__(
        self, amplitude_na: float, mean_dwell_s: float, rng: np.random.Generator
    ) -> None:
        if mean_dwell_s <= 0 or not np.isfinite(mean_dwell_s):
            raise ConfigurationError(
                "telegraph dwell must be positive in seconds; "
                "probe_interval_s must be positive for time-dependent sampling"
            )
        self._amplitude_na = float(amplitude_na)
        self._mean_dwell_s = float(mean_dwell_s)
        self._initial_high = bool(rng.integers(0, 2))
        self._switches = ExponentialEventStream(rng, mean_dwell_s)

    def sample_at(self, times_s: np.ndarray) -> np.ndarray:
        times = np.asarray(times_s, dtype=float)
        if times.size == 0 or self._amplitude_na == 0:
            return np.zeros(times.shape, dtype=float)
        switches_before = self._switches.count_before(times)
        high = (switches_before % 2 == 0) == self._initial_high
        half = 0.5 * self._amplitude_na
        return np.where(high, half, -half)

    def describe(self) -> str:
        return (
            f"telegraph(amp={self._amplitude_na:g} nA, "
            f"dwell={self._mean_dwell_s:g} s)"
        )


class _DriftTemporal(TimeDependentNoise):
    """Deterministic sensor drift: a ramp plus sinusoid over ``timescale_s``."""

    def __init__(self, model: DriftNoise) -> None:
        self._model = model

    def sample_at(self, times_s: np.ndarray) -> np.ndarray:
        model = self._model
        phase = np.asarray(times_s, dtype=float) / model.timescale_s
        values = model.ramp_na * (phase - 0.5)
        if model.sine_amplitude_na:
            values = values + model.sine_amplitude_na * np.sin(
                2.0 * np.pi * model.sine_periods * phase
            )
        return values

    def describe(self) -> str:
        return self._model.describe()


class _CompositeTemporal(TimeDependentNoise):
    """Sum of several independent time-dependent samplers."""

    def __init__(self, components: tuple[TimeDependentNoise, ...]) -> None:
        self._components = components

    def sample_at(self, times_s: np.ndarray) -> np.ndarray:
        times = np.asarray(times_s, dtype=float)
        values = np.zeros(times.shape, dtype=float)
        for component in self._components:
            values = values + component.sample_at(times)
        return values

    def describe(self) -> str:
        return " + ".join(component.describe() for component in self._components)


def standard_lab_noise(
    white_sigma_na: float = 0.012,
    pink_sigma_na: float = 0.015,
    telegraph_amplitude_na: float = 0.0,
    drift_na: float = 0.02,
) -> NoiseModel:
    """A realistic default mix: white + 1/f + slow drift (+ optional RTS)."""
    components: list[NoiseModel] = [
        WhiteNoise(sigma_na=white_sigma_na),
        PinkNoise(sigma_na=pink_sigma_na),
        DriftNoise(ramp_na=drift_na),
    ]
    if telegraph_amplitude_na > 0:
        components.append(TelegraphNoise(amplitude_na=telegraph_amplitude_na))
    return CompositeNoise(components)
