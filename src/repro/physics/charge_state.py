"""Ground-state charge configuration search for the capacitance model.

A quantum dot array at zero bias relaxes to the integer occupation vector that
minimises the constant-interaction electrostatic energy.  This module finds
that ground state — either by brute-force enumeration over a bounded occupation
lattice (robust, used for small arrays and for tests) or by a local descent
from an initial guess (fast, used when sweeping dense voltage grids).

The public surface is the :class:`ChargeStateSolver`, plus a couple of small
helpers for naming charge states the way the paper does, e.g. ``(0, 1)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..exceptions import ChargeStateError
from .capacitance import CapacitanceModel


def format_charge_state(occupations: np.ndarray | tuple | list) -> str:
    """Format an occupation vector the way the paper labels CSD regions.

    >>> format_charge_state((0, 1))
    '(0, 1)'
    """
    values = [int(v) for v in np.asarray(occupations).ravel()]
    return "(" + ", ".join(str(v) for v in values) + ")"


@dataclass(frozen=True)
class ChargeState:
    """An integer occupation vector together with its electrostatic energy."""

    occupations: tuple[int, ...]
    energy_mev: float

    @property
    def total_electrons(self) -> int:
        """Total number of electrons across all dots."""
        return int(sum(self.occupations))

    @property
    def label(self) -> str:
        """Human-readable label such as ``(1, 0)``."""
        return format_charge_state(self.occupations)


@dataclass(frozen=True)
class SolverStats:
    """Work counters for one :class:`ChargeStateSolver` instance.

    ``n_state_scores`` counts (point, lattice-state) score evaluations — the
    quantity the pruned path exists to cut.  ``n_bound_scores`` counts the
    per-state (not per-point) lower-bound evaluations the pruned path spends
    instead, so the true cost trade is visible in benchmarks.
    """

    n_points: int
    n_state_scores: int
    n_bound_scores: int
    n_pruned_points: int
    n_full_points: int

    @property
    def scores_per_point(self) -> float:
        """Mean lattice evaluations per solved point (``nan`` if unused)."""
        if self.n_points == 0:
            return float("nan")
        return self.n_state_scores / self.n_points

    def as_dict(self) -> dict:
        """Plain-dict view (handy for benchmark payloads and reports)."""
        return {
            "n_points": self.n_points,
            "n_state_scores": self.n_state_scores,
            "n_bound_scores": self.n_bound_scores,
            "n_pruned_points": self.n_pruned_points,
            "n_full_points": self.n_full_points,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SolverStats":
        """Rebuild from :meth:`as_dict` output."""
        return cls(
            n_points=int(payload["n_points"]),
            n_state_scores=int(payload["n_state_scores"]),
            n_bound_scores=int(payload["n_bound_scores"]),
            n_pruned_points=int(payload["n_pruned_points"]),
            n_full_points=int(payload["n_full_points"]),
        )


class ChargeStateSolver:
    """Find ground-state occupations of a :class:`CapacitanceModel`.

    Parameters
    ----------
    model:
        The electrostatic model of the device.
    max_electrons_per_dot:
        Upper bound of the occupation search lattice.  The CSD windows used in
        the paper only cover the first one or two charge transitions, so a
        small bound (default 3) is both sufficient and fast.
    prune:
        ``True`` forces the bound-certified pruned batch path, ``False``
        forces full-lattice scoring, ``None`` (default) enables pruning
        automatically once the lattice is large enough to pay for the
        bookkeeping (``>= 512`` states, i.e. 5-dot arrays and up).  Either
        way results are bit-identical — pruning only skips states it has
        *proved* cannot win.
    """

    #: Points per chunk when scoring large batches, bounding the size of the
    #: ``(points, lattice)`` score matrix held in memory at once.
    _CHUNK = 32768

    #: Hard cap on score-matrix elements per chunk.  The 8-dot lattices from
    #: PR 8 have 65,536 states; an uncapped ``_CHUNK x lattice`` matrix would
    #: be 17 GB.  Scores are batch-size independent (einsum kernel), so
    #: shrinking the chunk never changes a result.
    _SCORE_BUDGET = 1 << 22

    #: Lattice size at which the pruned path starts paying for itself.
    _PRUNE_MIN_LATTICE = 512

    #: Points per pruning block: bounds are computed over the block's induced
    #: charge box, so smaller blocks give tighter bounds but more bookkeeping.
    _PRUNE_BLOCK = 256

    def __init__(
        self,
        model: CapacitanceModel,
        max_electrons_per_dot: int = 3,
        prune: bool | None = None,
    ) -> None:
        if max_electrons_per_dot < 1:
            raise ChargeStateError("max_electrons_per_dot must be at least 1")
        self._model = model
        self._max_n = int(max_electrons_per_dot)
        self._prune = prune
        self._lattice = self._build_lattice()
        self._lattice_int = self._lattice.astype(int)
        self._inverse_dot_dot = model.inverse_dot_dot
        # lattice @ Cdd^-1 and the occupation self-energy term, precomputed
        # once so every ground-state query reduces to one matmul + argmin.
        self._lattice_proj = self._lattice @ self._inverse_dot_dot
        self._self_term = 0.5 * np.einsum(
            "ki,ki->k", self._lattice_proj, self._lattice
        )
        # Mixed-radix weights mapping an occupation vector to its row index in
        # the itertools.product lattice (last dot varies fastest).
        self._lattice_radix = (self._max_n + 1) ** np.arange(
            self._model.n_dots - 1, -1, -1
        )
        # Single-electron moves (incl. "stay put") used to grow the candidate
        # neighbourhood around the previous block's winners.
        eye = np.eye(self._model.n_dots, dtype=int)
        self._neighbour_moves = np.concatenate(
            [np.zeros((1, self._model.n_dots), dtype=int), eye, -eye]
        )
        self._scratch: np.ndarray | None = None
        self.reset_stats()

    def __getstate__(self) -> dict:
        # The score scratch is a pure cache and can be tens of MB; drop it so
        # pickled solvers (spawn round-trips, campaign workers) stay small.
        state = dict(self.__dict__)
        state["_scratch"] = None
        return state

    @property
    def model(self) -> CapacitanceModel:
        """The underlying capacitance model."""
        return self._model

    @property
    def max_electrons_per_dot(self) -> int:
        """Largest occupation considered per dot."""
        return self._max_n

    @property
    def n_lattice_states(self) -> int:
        """Number of occupation states in the bounded search lattice."""
        return self._lattice.shape[0]

    @property
    def prune_enabled(self) -> bool:
        """Whether batch queries use the bound-certified pruned path."""
        if self._prune is None:
            return self.n_lattice_states >= self._PRUNE_MIN_LATTICE
        return bool(self._prune)

    @property
    def stats(self) -> SolverStats:
        """Cumulative work counters since construction / :meth:`reset_stats`."""
        return SolverStats(
            n_points=self._n_points,
            n_state_scores=self._n_state_scores,
            n_bound_scores=self._n_bound_scores,
            n_pruned_points=self._n_pruned_points,
            n_full_points=self._n_full_points,
        )

    def reset_stats(self) -> None:
        """Zero the work counters (see :class:`SolverStats`)."""
        self._n_points = 0
        self._n_state_scores = 0
        self._n_bound_scores = 0
        self._n_pruned_points = 0
        self._n_full_points = 0

    def _build_lattice(self) -> np.ndarray:
        per_dot = range(self._max_n + 1)
        combos = list(itertools.product(per_dot, repeat=self._model.n_dots))
        return np.array(combos, dtype=float)

    # ------------------------------------------------------------------
    # The shared scoring kernel
    # ------------------------------------------------------------------
    # Every ground-state query — scalar, batched, or whole-grid — runs through
    # the same three steps so results cannot diverge between code paths:
    #   1. project gate voltages to induced charges  q(Vg) = Cdg Vg / e,
    #   2. score every lattice occupation            s_k = E_self(k) - n_k.Cdd^-1.q,
    #   3. argmin over the lattice.
    # The per-point term 0.5 q.Cdd^-1.q is occupation-independent and dropped
    # from the scores; it is restored when an absolute energy is requested.

    def _induced_charges(self, points: np.ndarray) -> np.ndarray:
        """Induced dot charges (units of ``e``) for ``(n, n_gates)`` voltages.

        Evaluated with ``einsum`` rather than BLAS ``@``: einsum's summation
        per output element does not depend on the batch size, which keeps
        one-point and many-point evaluations bit-identical.
        """
        return np.einsum("ng,dg->nd", points, self._model.dot_gate) / _e_af_v()

    def _lattice_scores(self, induced: np.ndarray) -> np.ndarray:
        """Occupation ranking scores, shape ``(n_points, n_lattice)``."""
        return self._self_term[None, :] - np.einsum(
            "nd,kd->nk", induced, self._lattice_proj
        )

    def _scores_into(self, induced: np.ndarray) -> np.ndarray:
        """Full-lattice scores written into a reusable scratch buffer.

        Identical values to :meth:`_lattice_scores` (same einsum kernel, same
        elementwise subtraction) but without allocating a fresh
        ``(chunk, n_lattice)`` matrix per chunk — on fine grids that
        allocation dominated allocator churn.
        """
        n = induced.shape[0]
        k = self._lattice.shape[0]
        if self._scratch is None or self._scratch.shape[0] < n:
            self._scratch = np.empty((n, k), dtype=float)
        out = self._scratch[:n]
        np.einsum("nd,kd->nk", induced, self._lattice_proj, out=out)
        np.subtract(self._self_term[None, :], out, out=out)
        return out

    def _effective_chunk(self) -> int:
        """Points per batch chunk, capped so scores fit the score budget."""
        return max(1, min(self._CHUNK, self._SCORE_BUDGET // self._lattice.shape[0]))

    # ------------------------------------------------------------------
    # Bound-certified pruning
    # ------------------------------------------------------------------
    # Dense sweeps visit voltage points whose ground states barely move, so
    # most of the lattice can never win anywhere in a small block of points.
    # Rather than trusting a local descent (box-local optimality of the
    # constant-interaction energy over the *integer* lattice is not a theorem
    # we can lean on for bit-identity), the pruned path keeps a certificate:
    #
    #   1. candidates = previous block's winners + their single-electron
    #      neighbours; scoring them gives each point an upper bound u(x) on
    #      its ground-state score,
    #   2. every lattice state k gets a lower bound over the block's induced
    #      charge box [lo, hi]:  lb_k = c_k - sum_d max(p_kd lo_d, p_kd hi_d),
    #   3. states with lb_k > max_x u(x) + margin are *provably* beaten at
    #      every point in the block and are skipped; the survivors are scored
    #      exactly, through the same einsum kernel as the full path.
    #
    # The margin covers floating-point rounding of the bound arithmetic, so
    # every state that could tie the winner survives and ``argmin`` (which
    # breaks ties by lowest lattice index, survivors kept in ascending order)
    # returns exactly the full-enumeration answer.  Whenever the certificate
    # fails to shrink the work — or produces nothing (non-finite voltages) —
    # the block falls back to full enumeration.

    def _candidate_indices(self, seeds: np.ndarray) -> np.ndarray:
        """Lattice row indices of ``seeds`` plus their +-1 per-dot moves."""
        occ = self._lattice_int[seeds]
        grown = occ[:, None, :] + self._neighbour_moves[None, :, :]
        np.clip(grown, 0, self._max_n, out=grown)
        flat = grown.reshape(-1, self._model.n_dots)
        return np.unique(flat @ self._lattice_radix)

    def _bound_margin(self, absmax_induced: np.ndarray) -> float:
        """FP-safety slack for the lower-bound vs upper-bound comparison.

        A generous multiple of the worst-case rounding error of the score
        dot products; tiny against physical score gaps, so it costs almost
        no pruning power while guaranteeing no true winner is discarded.
        """
        scale = float(np.abs(self._self_term).max()) + float(
            (np.abs(self._lattice_proj) @ absmax_induced).max()
        )
        return 64.0 * np.finfo(float).eps * max(scale, 1.0)

    def _solve_block_pruned(
        self, induced: np.ndarray, seeds: np.ndarray
    ) -> np.ndarray | None:
        """Exact per-point argmin over the lattice, or ``None`` to go full."""
        n = induced.shape[0]
        n_lattice = self._lattice.shape[0]
        cands = self._candidate_indices(seeds)
        cand_scores = self._self_term[cands][None, :] - np.einsum(
            "nd,kd->nk", induced, self._lattice_proj[cands]
        )
        upper = cand_scores.min(axis=1)
        lo = induced.min(axis=0)
        hi = induced.max(axis=0)
        if not (np.isfinite(lo).all() and np.isfinite(hi).all()):
            return None
        # Lower bound of each state's score anywhere in the block's box.
        contrib = np.maximum(self._lattice_proj * lo, self._lattice_proj * hi)
        lower = self._self_term - contrib.sum(axis=1)
        margin = self._bound_margin(np.maximum(np.abs(lo), np.abs(hi)))
        survivors = np.flatnonzero(lower <= upper.max() + margin)
        self._n_bound_scores += n_lattice
        if survivors.size == 0 or (survivors.size + cands.size) * 2 >= n_lattice:
            return None
        scores = self._self_term[survivors][None, :] - np.einsum(
            "nd,kd->nk", induced, self._lattice_proj[survivors]
        )
        self._n_state_scores += n * (cands.size + survivors.size)
        self._n_pruned_points += n
        return survivors[np.argmin(scores, axis=1)]

    def _solve_chunk(
        self, induced: np.ndarray, carry: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Ground-state lattice indices for one chunk of induced charges.

        Returns the per-point argmin plus the carry (distinct winners of the
        last block) that seeds the next chunk's candidate neighbourhood.
        """
        n = induced.shape[0]
        self._n_points += n
        if not self.prune_enabled:
            best = np.argmin(self._scores_into(induced), axis=1)
            self._n_state_scores += n * self._lattice.shape[0]
            self._n_full_points += n
            return best, None
        best = np.empty(n, dtype=np.intp)
        for start in range(0, n, self._PRUNE_BLOCK):
            block = induced[start : start + self._PRUNE_BLOCK]
            solved = None
            if carry is not None:
                solved = self._solve_block_pruned(block, carry)
            if solved is None:
                solved = np.argmin(self._scores_into(block), axis=1)
                self._n_state_scores += block.shape[0] * self._lattice.shape[0]
                self._n_full_points += block.shape[0]
            best[start : start + block.shape[0]] = solved
            carry = np.unique(solved)
        return best, carry

    def _iter_solved(self, pts: np.ndarray):
        """Yield ``(induced, best)`` per chunk through the shared kernel."""
        chunk_size = self._effective_chunk()
        carry: np.ndarray | None = None
        for start in range(0, pts.shape[0], chunk_size):
            induced = self._induced_charges(pts[start : start + chunk_size])
            best, carry = self._solve_chunk(induced, carry)
            yield induced, best

    def _state_energies(self, best: np.ndarray, induced: np.ndarray) -> np.ndarray:
        """Absolute electrostatic energy (meV) of chosen lattice states.

        Two single-contraction einsums rather than one three-operand einsum:
        the latter dispatches to a batch-size-dependent dot path, and the
        batch kernel must match scalar evaluation bit-for-bit.
        """
        q = self._lattice[best] - induced
        projected = np.einsum("ni,ij->nj", q, self._inverse_dot_dot)
        energies = 0.5 * np.einsum("nj,nj->n", projected, q)
        return energies * _e2_over_af_mev()

    def _as_point_batch(self, points: np.ndarray | list) -> np.ndarray:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != self._model.n_gates:
            raise ChargeStateError(
                f"expected voltage points of shape (n, {self._model.n_gates}), "
                f"got {pts.shape}"
            )
        return pts

    # ------------------------------------------------------------------
    # Exact enumeration
    # ------------------------------------------------------------------
    def ground_state(self, gate_voltages: np.ndarray | list) -> ChargeState:
        """Exact ground state by enumerating the bounded occupation lattice."""
        vg = np.asarray(gate_voltages, dtype=float)
        induced = self._induced_charges(vg[None, :])
        best = np.argmin(self._lattice_scores(induced), axis=1)
        self._n_points += 1
        self._n_state_scores += self._lattice.shape[0]
        self._n_full_points += 1
        occupations = tuple(int(v) for v in self._lattice_int[best[0]])
        energy = float(self._state_energies(best, induced)[0])
        return ChargeState(occupations=occupations, energy_mev=energy)

    def occupations_at(self, points: np.ndarray | list) -> np.ndarray:
        """Ground-state occupations for an arbitrary batch of voltage points.

        The vectorised core of the batch probe path: one matmul against the
        occupation lattice scores all points at once instead of re-solving the
        ground state per pixel.

        Parameters
        ----------
        points:
            Gate-voltage points, shape ``(n_points, n_gates)``.

        Returns
        -------
        numpy.ndarray
            Integer occupations, shape ``(n_points, n_dots)``; identical to
            calling :meth:`ground_state` per point.
        """
        pts = self._as_point_batch(points)
        out = np.empty((pts.shape[0], self._model.n_dots), dtype=int)
        pos = 0
        for _, best in self._iter_solved(pts):
            out[pos : pos + best.shape[0]] = self._lattice_int[best]
            pos += best.shape[0]
        return out

    def ground_states_batch(self, points: np.ndarray | list) -> list[ChargeState]:
        """Batched :meth:`ground_state`: one :class:`ChargeState` per point.

        Equivalent to ``[self.ground_state(p) for p in points]`` — same
        occupations and energies — but scores all points through the shared
        vectorised kernel.
        """
        pts = self._as_point_batch(points)
        states: list[ChargeState] = []
        for induced, best in self._iter_solved(pts):
            energies = self._state_energies(best, induced)
            for index, energy in zip(best, energies):
                states.append(
                    ChargeState(
                        occupations=tuple(int(v) for v in self._lattice_int[index]),
                        energy_mev=float(energy),
                    )
                )
        return states

    # ------------------------------------------------------------------
    # Local descent (fast path for dense sweeps)
    # ------------------------------------------------------------------
    def ground_state_local(
        self,
        gate_voltages: np.ndarray | list,
        initial_guess: tuple[int, ...] | None = None,
        max_iterations: int = 64,
    ) -> ChargeState:
        """Ground state by greedy single-electron moves from an initial guess.

        The constant-interaction energy is convex in the (relaxed) occupation
        vector, so descending one electron at a time from a nearby guess finds
        the same minimum as enumeration while probing only a handful of
        configurations.  Used when rasterising large CSDs where neighbouring
        pixels have nearly identical ground states.
        """
        vg = np.asarray(gate_voltages, dtype=float)
        n_dots = self._model.n_dots
        if initial_guess is None:
            current = np.zeros(n_dots, dtype=int)
        else:
            current = np.asarray(initial_guess, dtype=int).copy()
            if current.shape != (n_dots,):
                raise ChargeStateError(
                    f"initial_guess must have shape ({n_dots},), got {current.shape}"
                )
            current = np.clip(current, 0, self._max_n)
        current_energy = self._model.electrostatic_energy(current, vg)
        for _ in range(max_iterations):
            best_move = None
            best_energy = current_energy
            for dot in range(n_dots):
                for delta in (-1, +1):
                    candidate = current.copy()
                    candidate[dot] += delta
                    if candidate[dot] < 0 or candidate[dot] > self._max_n:
                        continue
                    energy = self._model.electrostatic_energy(candidate, vg)
                    if energy < best_energy - 1e-12:
                        best_energy = energy
                        best_move = candidate
            if best_move is None:
                break
            current = best_move
            current_energy = best_energy
        return ChargeState(
            occupations=tuple(int(v) for v in current), energy_mev=float(current_energy)
        )

    # ------------------------------------------------------------------
    # Grid evaluation
    # ------------------------------------------------------------------
    def occupation_map(
        self,
        gate_x: int | str,
        gate_y: int | str,
        x_voltages: np.ndarray,
        y_voltages: np.ndarray,
        fixed_voltages: np.ndarray | list | None = None,
    ) -> np.ndarray:
        """Ground-state occupations over a 2-D voltage grid.

        Parameters
        ----------
        gate_x, gate_y:
            The two swept gates (index or name). ``gate_x`` varies along the
            column axis of the returned array, ``gate_y`` along the row axis.
        x_voltages, y_voltages:
            1-D arrays of voltages for the swept gates.
        fixed_voltages:
            Voltages of all gates that are not swept (length ``n_gates``);
            the swept entries of this vector are overwritten.  Defaults to 0 V.

        Returns
        -------
        numpy.ndarray
            Integer array of shape ``(len(y_voltages), len(x_voltages), n_dots)``.
        """
        model = self._model
        ix = model.gate_index(gate_x)
        iy = model.gate_index(gate_y)
        if ix == iy:
            raise ChargeStateError("gate_x and gate_y must be different gates")
        xs = np.asarray(x_voltages, dtype=float)
        ys = np.asarray(y_voltages, dtype=float)
        base = (
            np.zeros(model.n_gates)
            if fixed_voltages is None
            else np.asarray(fixed_voltages, dtype=float).copy()
        )
        if base.shape != (model.n_gates,):
            raise ChargeStateError(
                f"fixed_voltages must have shape ({model.n_gates},), got {base.shape}"
            )
        # Expand the grid to explicit voltage points and score them through
        # the shared batch kernel, so grid rasterisation, batched probes, and
        # scalar ground-state queries all run exactly one physics kernel.
        points = np.tile(base, (ys.size * xs.size, 1))
        points[:, ix] = np.tile(xs, ys.size)
        points[:, iy] = np.repeat(ys, xs.size)
        occupations = self.occupations_at(points)
        return occupations.reshape(ys.size, xs.size, model.n_dots)


def _e_af_v() -> float:
    from . import constants

    return constants.ELEMENTARY_CHARGE_AF_V


def _e2_over_af_mev() -> float:
    from . import constants

    return constants.E_SQUARED_OVER_AF_IN_MEV
