"""Ground-state charge configuration search for the capacitance model.

A quantum dot array at zero bias relaxes to the integer occupation vector that
minimises the constant-interaction electrostatic energy.  This module finds
that ground state — either by brute-force enumeration over a bounded occupation
lattice (robust, used for small arrays and for tests) or by a local descent
from an initial guess (fast, used when sweeping dense voltage grids).

The public surface is the :class:`ChargeStateSolver`, plus a couple of small
helpers for naming charge states the way the paper does, e.g. ``(0, 1)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..exceptions import ChargeStateError
from .capacitance import CapacitanceModel


def format_charge_state(occupations: np.ndarray | tuple | list) -> str:
    """Format an occupation vector the way the paper labels CSD regions.

    >>> format_charge_state((0, 1))
    '(0, 1)'
    """
    values = [int(v) for v in np.asarray(occupations).ravel()]
    return "(" + ", ".join(str(v) for v in values) + ")"


@dataclass(frozen=True)
class ChargeState:
    """An integer occupation vector together with its electrostatic energy."""

    occupations: tuple[int, ...]
    energy_mev: float

    @property
    def total_electrons(self) -> int:
        """Total number of electrons across all dots."""
        return int(sum(self.occupations))

    @property
    def label(self) -> str:
        """Human-readable label such as ``(1, 0)``."""
        return format_charge_state(self.occupations)


class ChargeStateSolver:
    """Find ground-state occupations of a :class:`CapacitanceModel`.

    Parameters
    ----------
    model:
        The electrostatic model of the device.
    max_electrons_per_dot:
        Upper bound of the occupation search lattice.  The CSD windows used in
        the paper only cover the first one or two charge transitions, so a
        small bound (default 3) is both sufficient and fast.
    """

    #: Points per chunk when scoring large batches, bounding the size of the
    #: ``(points, lattice)`` score matrix held in memory at once.
    _CHUNK = 32768

    def __init__(self, model: CapacitanceModel, max_electrons_per_dot: int = 3) -> None:
        if max_electrons_per_dot < 1:
            raise ChargeStateError("max_electrons_per_dot must be at least 1")
        self._model = model
        self._max_n = int(max_electrons_per_dot)
        self._lattice = self._build_lattice()
        self._lattice_int = self._lattice.astype(int)
        self._inverse_dot_dot = model.inverse_dot_dot
        # lattice @ Cdd^-1 and the occupation self-energy term, precomputed
        # once so every ground-state query reduces to one matmul + argmin.
        self._lattice_proj = self._lattice @ self._inverse_dot_dot
        self._self_term = 0.5 * np.einsum(
            "ki,ki->k", self._lattice_proj, self._lattice
        )

    @property
    def model(self) -> CapacitanceModel:
        """The underlying capacitance model."""
        return self._model

    @property
    def max_electrons_per_dot(self) -> int:
        """Largest occupation considered per dot."""
        return self._max_n

    def _build_lattice(self) -> np.ndarray:
        per_dot = range(self._max_n + 1)
        combos = list(itertools.product(per_dot, repeat=self._model.n_dots))
        return np.array(combos, dtype=float)

    # ------------------------------------------------------------------
    # The shared scoring kernel
    # ------------------------------------------------------------------
    # Every ground-state query — scalar, batched, or whole-grid — runs through
    # the same three steps so results cannot diverge between code paths:
    #   1. project gate voltages to induced charges  q(Vg) = Cdg Vg / e,
    #   2. score every lattice occupation            s_k = E_self(k) - n_k.Cdd^-1.q,
    #   3. argmin over the lattice.
    # The per-point term 0.5 q.Cdd^-1.q is occupation-independent and dropped
    # from the scores; it is restored when an absolute energy is requested.

    def _induced_charges(self, points: np.ndarray) -> np.ndarray:
        """Induced dot charges (units of ``e``) for ``(n, n_gates)`` voltages.

        Evaluated with ``einsum`` rather than BLAS ``@``: einsum's summation
        per output element does not depend on the batch size, which keeps
        one-point and many-point evaluations bit-identical.
        """
        return np.einsum("ng,dg->nd", points, self._model.dot_gate) / _e_af_v()

    def _lattice_scores(self, induced: np.ndarray) -> np.ndarray:
        """Occupation ranking scores, shape ``(n_points, n_lattice)``."""
        return self._self_term[None, :] - np.einsum(
            "nd,kd->nk", induced, self._lattice_proj
        )

    def _state_energies(self, best: np.ndarray, induced: np.ndarray) -> np.ndarray:
        """Absolute electrostatic energy (meV) of chosen lattice states.

        Two single-contraction einsums rather than one three-operand einsum:
        the latter dispatches to a batch-size-dependent dot path, and the
        batch kernel must match scalar evaluation bit-for-bit.
        """
        q = self._lattice[best] - induced
        projected = np.einsum("ni,ij->nj", q, self._inverse_dot_dot)
        energies = 0.5 * np.einsum("nj,nj->n", projected, q)
        return energies * _e2_over_af_mev()

    def _as_point_batch(self, points: np.ndarray | list) -> np.ndarray:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != self._model.n_gates:
            raise ChargeStateError(
                f"expected voltage points of shape (n, {self._model.n_gates}), "
                f"got {pts.shape}"
            )
        return pts

    # ------------------------------------------------------------------
    # Exact enumeration
    # ------------------------------------------------------------------
    def ground_state(self, gate_voltages: np.ndarray | list) -> ChargeState:
        """Exact ground state by enumerating the bounded occupation lattice."""
        vg = np.asarray(gate_voltages, dtype=float)
        induced = self._induced_charges(vg[None, :])
        best = np.argmin(self._lattice_scores(induced), axis=1)
        occupations = tuple(int(v) for v in self._lattice_int[best[0]])
        energy = float(self._state_energies(best, induced)[0])
        return ChargeState(occupations=occupations, energy_mev=energy)

    def occupations_at(self, points: np.ndarray | list) -> np.ndarray:
        """Ground-state occupations for an arbitrary batch of voltage points.

        The vectorised core of the batch probe path: one matmul against the
        occupation lattice scores all points at once instead of re-solving the
        ground state per pixel.

        Parameters
        ----------
        points:
            Gate-voltage points, shape ``(n_points, n_gates)``.

        Returns
        -------
        numpy.ndarray
            Integer occupations, shape ``(n_points, n_dots)``; identical to
            calling :meth:`ground_state` per point.
        """
        pts = self._as_point_batch(points)
        out = np.empty((pts.shape[0], self._model.n_dots), dtype=int)
        for start in range(0, pts.shape[0], self._CHUNK):
            chunk = pts[start : start + self._CHUNK]
            induced = self._induced_charges(chunk)
            best = np.argmin(self._lattice_scores(induced), axis=1)
            out[start : start + self._CHUNK] = self._lattice_int[best]
        return out

    def ground_states_batch(self, points: np.ndarray | list) -> list[ChargeState]:
        """Batched :meth:`ground_state`: one :class:`ChargeState` per point.

        Equivalent to ``[self.ground_state(p) for p in points]`` — same
        occupations and energies — but scores all points through the shared
        vectorised kernel.
        """
        pts = self._as_point_batch(points)
        states: list[ChargeState] = []
        for start in range(0, pts.shape[0], self._CHUNK):
            chunk = pts[start : start + self._CHUNK]
            induced = self._induced_charges(chunk)
            best = np.argmin(self._lattice_scores(induced), axis=1)
            energies = self._state_energies(best, induced)
            for index, energy in zip(best, energies):
                states.append(
                    ChargeState(
                        occupations=tuple(int(v) for v in self._lattice_int[index]),
                        energy_mev=float(energy),
                    )
                )
        return states

    # ------------------------------------------------------------------
    # Local descent (fast path for dense sweeps)
    # ------------------------------------------------------------------
    def ground_state_local(
        self,
        gate_voltages: np.ndarray | list,
        initial_guess: tuple[int, ...] | None = None,
        max_iterations: int = 64,
    ) -> ChargeState:
        """Ground state by greedy single-electron moves from an initial guess.

        The constant-interaction energy is convex in the (relaxed) occupation
        vector, so descending one electron at a time from a nearby guess finds
        the same minimum as enumeration while probing only a handful of
        configurations.  Used when rasterising large CSDs where neighbouring
        pixels have nearly identical ground states.
        """
        vg = np.asarray(gate_voltages, dtype=float)
        n_dots = self._model.n_dots
        if initial_guess is None:
            current = np.zeros(n_dots, dtype=int)
        else:
            current = np.asarray(initial_guess, dtype=int).copy()
            if current.shape != (n_dots,):
                raise ChargeStateError(
                    f"initial_guess must have shape ({n_dots},), got {current.shape}"
                )
            current = np.clip(current, 0, self._max_n)
        current_energy = self._model.electrostatic_energy(current, vg)
        for _ in range(max_iterations):
            best_move = None
            best_energy = current_energy
            for dot in range(n_dots):
                for delta in (-1, +1):
                    candidate = current.copy()
                    candidate[dot] += delta
                    if candidate[dot] < 0 or candidate[dot] > self._max_n:
                        continue
                    energy = self._model.electrostatic_energy(candidate, vg)
                    if energy < best_energy - 1e-12:
                        best_energy = energy
                        best_move = candidate
            if best_move is None:
                break
            current = best_move
            current_energy = best_energy
        return ChargeState(
            occupations=tuple(int(v) for v in current), energy_mev=float(current_energy)
        )

    # ------------------------------------------------------------------
    # Grid evaluation
    # ------------------------------------------------------------------
    def occupation_map(
        self,
        gate_x: int | str,
        gate_y: int | str,
        x_voltages: np.ndarray,
        y_voltages: np.ndarray,
        fixed_voltages: np.ndarray | list | None = None,
    ) -> np.ndarray:
        """Ground-state occupations over a 2-D voltage grid.

        Parameters
        ----------
        gate_x, gate_y:
            The two swept gates (index or name). ``gate_x`` varies along the
            column axis of the returned array, ``gate_y`` along the row axis.
        x_voltages, y_voltages:
            1-D arrays of voltages for the swept gates.
        fixed_voltages:
            Voltages of all gates that are not swept (length ``n_gates``);
            the swept entries of this vector are overwritten.  Defaults to 0 V.

        Returns
        -------
        numpy.ndarray
            Integer array of shape ``(len(y_voltages), len(x_voltages), n_dots)``.
        """
        model = self._model
        ix = model.gate_index(gate_x)
        iy = model.gate_index(gate_y)
        if ix == iy:
            raise ChargeStateError("gate_x and gate_y must be different gates")
        xs = np.asarray(x_voltages, dtype=float)
        ys = np.asarray(y_voltages, dtype=float)
        base = (
            np.zeros(model.n_gates)
            if fixed_voltages is None
            else np.asarray(fixed_voltages, dtype=float).copy()
        )
        if base.shape != (model.n_gates,):
            raise ChargeStateError(
                f"fixed_voltages must have shape ({model.n_gates},), got {base.shape}"
            )
        # Expand the grid to explicit voltage points and score them through
        # the shared batch kernel, so grid rasterisation, batched probes, and
        # scalar ground-state queries all run exactly one physics kernel.
        points = np.tile(base, (ys.size * xs.size, 1))
        points[:, ix] = np.tile(xs, ys.size)
        points[:, iy] = np.repeat(ys, xs.size)
        occupations = self.occupations_at(points)
        return occupations.reshape(ys.size, xs.size, model.n_dots)


def _e_af_v() -> float:
    from . import constants

    return constants.ELEMENTARY_CHARGE_AF_V


def _e2_over_af_mev() -> float:
    from . import constants

    return constants.E_SQUARED_OVER_AF_IN_MEV
