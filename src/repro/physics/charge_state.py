"""Ground-state charge configuration search for the capacitance model.

A quantum dot array at zero bias relaxes to the integer occupation vector that
minimises the constant-interaction electrostatic energy.  This module finds
that ground state — either by brute-force enumeration over a bounded occupation
lattice (robust, used for small arrays and for tests) or by a local descent
from an initial guess (fast, used when sweeping dense voltage grids).

The public surface is the :class:`ChargeStateSolver`, plus a couple of small
helpers for naming charge states the way the paper does, e.g. ``(0, 1)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..exceptions import ChargeStateError
from .capacitance import CapacitanceModel


def format_charge_state(occupations: np.ndarray | tuple | list) -> str:
    """Format an occupation vector the way the paper labels CSD regions.

    >>> format_charge_state((0, 1))
    '(0, 1)'
    """
    values = [int(v) for v in np.asarray(occupations).ravel()]
    return "(" + ", ".join(str(v) for v in values) + ")"


@dataclass(frozen=True)
class ChargeState:
    """An integer occupation vector together with its electrostatic energy."""

    occupations: tuple[int, ...]
    energy_mev: float

    @property
    def total_electrons(self) -> int:
        """Total number of electrons across all dots."""
        return int(sum(self.occupations))

    @property
    def label(self) -> str:
        """Human-readable label such as ``(1, 0)``."""
        return format_charge_state(self.occupations)


class ChargeStateSolver:
    """Find ground-state occupations of a :class:`CapacitanceModel`.

    Parameters
    ----------
    model:
        The electrostatic model of the device.
    max_electrons_per_dot:
        Upper bound of the occupation search lattice.  The CSD windows used in
        the paper only cover the first one or two charge transitions, so a
        small bound (default 3) is both sufficient and fast.
    """

    def __init__(self, model: CapacitanceModel, max_electrons_per_dot: int = 3) -> None:
        if max_electrons_per_dot < 1:
            raise ChargeStateError("max_electrons_per_dot must be at least 1")
        self._model = model
        self._max_n = int(max_electrons_per_dot)
        self._lattice = self._build_lattice()

    @property
    def model(self) -> CapacitanceModel:
        """The underlying capacitance model."""
        return self._model

    @property
    def max_electrons_per_dot(self) -> int:
        """Largest occupation considered per dot."""
        return self._max_n

    def _build_lattice(self) -> np.ndarray:
        per_dot = range(self._max_n + 1)
        combos = list(itertools.product(per_dot, repeat=self._model.n_dots))
        return np.array(combos, dtype=float)

    # ------------------------------------------------------------------
    # Exact enumeration
    # ------------------------------------------------------------------
    def ground_state(self, gate_voltages: np.ndarray | list) -> ChargeState:
        """Exact ground state by enumerating the bounded occupation lattice."""
        vg = np.asarray(gate_voltages, dtype=float)
        energies = self._lattice_energies(vg)
        best = int(np.argmin(energies))
        occupations = tuple(int(v) for v in self._lattice[best])
        return ChargeState(occupations=occupations, energy_mev=float(energies[best]))

    def _lattice_energies(self, gate_voltages: np.ndarray) -> np.ndarray:
        model = self._model
        induced = (model.dot_gate @ gate_voltages) / _e_af_v()
        q = self._lattice - induced[None, :]
        inv = model.inverse_dot_dot
        energies = 0.5 * np.einsum("ki,ij,kj->k", q, inv, q)
        return energies * _e2_over_af_mev()

    # ------------------------------------------------------------------
    # Local descent (fast path for dense sweeps)
    # ------------------------------------------------------------------
    def ground_state_local(
        self,
        gate_voltages: np.ndarray | list,
        initial_guess: tuple[int, ...] | None = None,
        max_iterations: int = 64,
    ) -> ChargeState:
        """Ground state by greedy single-electron moves from an initial guess.

        The constant-interaction energy is convex in the (relaxed) occupation
        vector, so descending one electron at a time from a nearby guess finds
        the same minimum as enumeration while probing only a handful of
        configurations.  Used when rasterising large CSDs where neighbouring
        pixels have nearly identical ground states.
        """
        vg = np.asarray(gate_voltages, dtype=float)
        n_dots = self._model.n_dots
        if initial_guess is None:
            current = np.zeros(n_dots, dtype=int)
        else:
            current = np.asarray(initial_guess, dtype=int).copy()
            if current.shape != (n_dots,):
                raise ChargeStateError(
                    f"initial_guess must have shape ({n_dots},), got {current.shape}"
                )
            current = np.clip(current, 0, self._max_n)
        current_energy = self._model.electrostatic_energy(current, vg)
        for _ in range(max_iterations):
            best_move = None
            best_energy = current_energy
            for dot in range(n_dots):
                for delta in (-1, +1):
                    candidate = current.copy()
                    candidate[dot] += delta
                    if candidate[dot] < 0 or candidate[dot] > self._max_n:
                        continue
                    energy = self._model.electrostatic_energy(candidate, vg)
                    if energy < best_energy - 1e-12:
                        best_energy = energy
                        best_move = candidate
            if best_move is None:
                break
            current = best_move
            current_energy = best_energy
        return ChargeState(
            occupations=tuple(int(v) for v in current), energy_mev=float(current_energy)
        )

    # ------------------------------------------------------------------
    # Grid evaluation
    # ------------------------------------------------------------------
    def occupation_map(
        self,
        gate_x: int | str,
        gate_y: int | str,
        x_voltages: np.ndarray,
        y_voltages: np.ndarray,
        fixed_voltages: np.ndarray | list | None = None,
    ) -> np.ndarray:
        """Ground-state occupations over a 2-D voltage grid.

        Parameters
        ----------
        gate_x, gate_y:
            The two swept gates (index or name). ``gate_x`` varies along the
            column axis of the returned array, ``gate_y`` along the row axis.
        x_voltages, y_voltages:
            1-D arrays of voltages for the swept gates.
        fixed_voltages:
            Voltages of all gates that are not swept (length ``n_gates``);
            the swept entries of this vector are overwritten.  Defaults to 0 V.

        Returns
        -------
        numpy.ndarray
            Integer array of shape ``(len(y_voltages), len(x_voltages), n_dots)``.
        """
        model = self._model
        ix = model.gate_index(gate_x)
        iy = model.gate_index(gate_y)
        if ix == iy:
            raise ChargeStateError("gate_x and gate_y must be different gates")
        xs = np.asarray(x_voltages, dtype=float)
        ys = np.asarray(y_voltages, dtype=float)
        base = (
            np.zeros(model.n_gates)
            if fixed_voltages is None
            else np.asarray(fixed_voltages, dtype=float).copy()
        )
        if base.shape != (model.n_gates,):
            raise ChargeStateError(
                f"fixed_voltages must have shape ({model.n_gates},), got {base.shape}"
            )
        # Vectorised exact enumeration.  For every pixel the ground state is
        # argmin_k [ 0.5 n_k^T Cdd^-1 n_k - n_k^T Cdd^-1 q_induced(pixel) ];
        # the pixel-only term 0.5 q^T Cdd^-1 q is constant per pixel and can
        # be dropped from the argmin.
        e_afv = _e_af_v()
        base_induced = (model.dot_gate @ base) / e_afv
        base_induced = base_induced - (model.dot_gate[:, ix] * base[ix]) / e_afv
        base_induced = base_induced - (model.dot_gate[:, iy] * base[iy]) / e_afv
        # induced[row, col, dot]
        induced = (
            base_induced[None, None, :]
            + (model.dot_gate[:, ix][None, None, :] * xs[None, :, None]) / e_afv
            + (model.dot_gate[:, iy][None, None, :] * ys[:, None, None]) / e_afv
        )
        inv = model.inverse_dot_dot
        lattice = self._lattice
        self_term = 0.5 * np.einsum("ki,ij,kj->k", lattice, inv, lattice)
        cross = np.einsum("ki,ij,rcj->krc", lattice, inv, induced)
        scores = self_term[:, None, None] - cross
        best = np.argmin(scores, axis=0)
        return lattice[best].astype(int)


def _e_af_v() -> float:
    from . import constants

    return constants.ELEMENTARY_CHARGE_AF_V


def _e2_over_af_mev() -> float:
    from . import constants

    return constants.E_SQUARED_OVER_AF_IN_MEV
