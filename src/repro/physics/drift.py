"""Slow time evolution of the device itself (not just the sensor signal).

Additive noise corrupts the *measured current*; real devices additionally
change underneath the measurement: the charge-sensor operating point wanders
as nearby traps charge and discharge, background charges hop and shift every
transition at once, mains and cryocooler cycles modulate the electrostatics
periodically, and effective lever arms creep as the fridge temperature moves.
The paper's "Fail" benchmarks are what such evolution does to a tuning run —
a virtualization matrix extracted at time zero is simply wrong an hour later.

:class:`DeviceDrift` is the declarative description of that evolution, and
:meth:`DeviceDrift.at_times` compiles it (with a seeded generator) into a
:class:`DeviceDriftState` that maps per-probe simulated timestamps onto two
physical effects:

* :meth:`DeviceDriftState.detuning_offset_mv` — an extra sensor detuning in
  millivolts (operating-point ramp + periodic interference + discrete charge
  jumps), applied inside the charge-sensor response;
* :meth:`DeviceDriftState.gate_scale` — a multiplicative factor on the swept
  gate voltages, equivalent to a fractional drift of every plunger lever arm
  (the capacitance-matrix entries the virtualization matrix is built from).

Both are pure functions of the timestamp once constructed, so the batched and
scalar probe paths see bit-identical devices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from .events import ExponentialEventStream, require_finite as _require_finite

#: Seconds per hour; drift rates are quoted per hour because that is the
#: natural unit of a tuning shift (a 50 ms dwell makes per-second rates
#: absurdly small numbers).
_HOUR_S = 3600.0


@dataclass(frozen=True)
class DeviceDrift:
    """Declarative time evolution of a simulated device.

    Attributes
    ----------
    operating_point_mv_per_hour:
        Linear ramp of the sensor operating point, in mV of sensor detuning
        per simulated hour.  May be negative (the sensor can wander either
        way off its flank).
    lever_arm_fraction_per_hour:
        Fractional drift of the swept-gate lever arms per simulated hour
        (``0.01`` means every swept voltage acts 1% stronger after an hour).
        May be negative.
    charge_jumps_per_hour:
        Mean rate of discrete background-charge rearrangements (a Poisson
        process in simulated time).
    charge_jump_mv:
        Magnitude scale of one charge jump, in mV of sensor detuning; each
        jump's sign is random and its size is exponentially distributed
        around this scale (most jumps are small, the occasional one is not).
    interference_mv:
        Amplitude of periodic interference (mains pickup, cryocooler cycle)
        in mV of sensor detuning.
    interference_period_s:
        Period of the interference in simulated seconds.
    """

    operating_point_mv_per_hour: float = 0.0
    lever_arm_fraction_per_hour: float = 0.0
    charge_jumps_per_hour: float = 0.0
    charge_jump_mv: float = 0.4
    interference_mv: float = 0.0
    interference_period_s: float = 60.0

    def __post_init__(self) -> None:
        _require_finite("operating_point_mv_per_hour", self.operating_point_mv_per_hour)
        _require_finite("lever_arm_fraction_per_hour", self.lever_arm_fraction_per_hour)
        _require_finite("charge_jumps_per_hour", self.charge_jumps_per_hour)
        _require_finite("charge_jump_mv", self.charge_jump_mv)
        _require_finite("interference_mv", self.interference_mv)
        _require_finite("interference_period_s", self.interference_period_s)
        if self.charge_jumps_per_hour < 0:
            raise ConfigurationError("charge_jumps_per_hour must be non-negative")
        if self.charge_jump_mv < 0:
            raise ConfigurationError("charge_jump_mv must be non-negative")
        if self.interference_mv < 0:
            raise ConfigurationError("interference_mv must be non-negative")
        if self.interference_period_s <= 0:
            raise ConfigurationError("interference_period_s must be positive")

    @property
    def is_static(self) -> bool:
        """Whether this drift model leaves the device unchanged."""
        return (
            self.operating_point_mv_per_hour == 0
            and self.lever_arm_fraction_per_hour == 0
            and (self.charge_jumps_per_hour == 0 or self.charge_jump_mv == 0)
            and self.interference_mv == 0
        )

    def at_times(self, rng: np.random.Generator) -> "DeviceDriftState":
        """Compile the drift into a seeded, time-evaluable state."""
        return DeviceDriftState(self, rng)

    def describe(self) -> str:
        """One-line human readable description used in metadata."""
        parts = []
        if self.operating_point_mv_per_hour:
            parts.append(f"op={self.operating_point_mv_per_hour:g} mV/h")
        if self.lever_arm_fraction_per_hour:
            parts.append(f"lever={self.lever_arm_fraction_per_hour:g}/h")
        if self.charge_jumps_per_hour and self.charge_jump_mv:
            parts.append(
                f"jumps={self.charge_jumps_per_hour:g}/h x {self.charge_jump_mv:g} mV"
            )
        if self.interference_mv:
            parts.append(
                f"hum={self.interference_mv:g} mV @ {self.interference_period_s:g} s"
            )
        return "drift(" + (", ".join(parts) if parts else "static") + ")"


class DeviceDriftState:
    """A :class:`DeviceDrift` bound to one seeded random realisation.

    Jump times and magnitudes ride on one fixed
    :class:`~repro.physics.events.ExponentialEventStream`, exactly like the
    temporal telegraph sampler: values depend only on the timestamp, never
    on query batching or order.
    """

    def __init__(self, drift: DeviceDrift, rng: np.random.Generator) -> None:
        self._drift = drift
        self._interference_phase = float(rng.uniform(0.0, 2.0 * np.pi))
        self._jump_offsets_mv = np.zeros(1, dtype=float)  # cumulative, leading 0
        self._jumps: ExponentialEventStream | None = None
        if drift.charge_jumps_per_hour > 0 and drift.charge_jump_mv > 0:
            self._jumps = ExponentialEventStream(
                rng,
                _HOUR_S / drift.charge_jumps_per_hour,
                draw_marks=self._draw_jump_marks,
            )

    @property
    def drift(self) -> DeviceDrift:
        """The declarative model this state realises."""
        return self._drift

    def _draw_jump_marks(self, n: int, rng: np.random.Generator) -> None:
        signs = np.where(rng.integers(0, 2, size=n) == 1, 1.0, -1.0)
        sizes = rng.exponential(self._drift.charge_jump_mv, size=n)
        self._jump_offsets_mv = np.concatenate(
            [
                self._jump_offsets_mv,
                self._jump_offsets_mv[-1] + np.cumsum(signs * sizes),
            ]
        )

    # ------------------------------------------------------------------
    def detuning_offset_mv(self, times_s: np.ndarray) -> np.ndarray:
        """Extra sensor detuning (mV) at each simulated timestamp."""
        drift = self._drift
        times = np.asarray(times_s, dtype=float)
        offsets = (drift.operating_point_mv_per_hour / _HOUR_S) * times
        if drift.interference_mv:
            offsets = offsets + drift.interference_mv * np.sin(
                2.0 * np.pi * times / drift.interference_period_s
                + self._interference_phase
            )
        if self._jumps is not None and times.size:
            # count_before extends the stream (growing _jump_offsets_mv), so
            # it must run before the offsets array is read.
            jumps_before = self._jumps.count_before(times)
            offsets = offsets + self._jump_offsets_mv[jumps_before]
        return offsets

    def gate_scale(self, times_s: np.ndarray) -> np.ndarray:
        """Multiplicative factor on swept gate voltages at each timestamp."""
        times = np.asarray(times_s, dtype=float)
        return 1.0 + (self._drift.lever_arm_fraction_per_hour / _HOUR_S) * times
