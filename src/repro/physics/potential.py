"""One-dimensional electrostatic potential profile along the dot channel.

The paper's Figure 1(b) sketches the conduction-band potential along the
device channel: barrier gates raise the potential, plunger gates lower it, and
a well under each plunger deep enough to hold a bound state forms a dot.  This
module provides a light-weight version of that picture.  It is not used by the
extraction algorithm itself, but it is a useful substrate for

* checking that a set of plunger/barrier voltages actually forms the intended
  number of dots (a precondition for virtual-gate tuning),
* the example scripts that reproduce the Figure 1(b) style potential plot.

The model superimposes a Gaussian response for every gate: barrier gates add a
positive bump, plunger gates a negative well, each scaled by the gate voltage
and a lever arm.  Dots are identified as local minima separated by barriers
higher than a confinement threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DeviceModelError


@dataclass(frozen=True)
class GateElectrode:
    """A single electrode above the channel.

    Attributes
    ----------
    name:
        Electrode label, e.g. ``"P2"`` or ``"B3"``.
    position_nm:
        Centre of the electrode along the channel, in nanometres.
    width_nm:
        Width (Gaussian sigma) of the electrode's electrostatic footprint.
    polarity:
        +1 for plunger-style gates (positive voltage deepens the well under
        the gate), -1 for barrier-style gates (positive voltage raises the
        barrier).  The sign convention matches accumulation-mode Si/SiGe
        devices where all gate voltages are positive.
    lever_arm_mev_per_v:
        How strongly the gate moves the local potential, in meV per volt.
    """

    name: str
    position_nm: float
    width_nm: float = 40.0
    polarity: int = 1
    lever_arm_mev_per_v: float = 100.0

    def __post_init__(self) -> None:
        if self.width_nm <= 0:
            raise DeviceModelError(f"gate {self.name!r}: width_nm must be positive")
        if self.polarity not in (-1, 1):
            raise DeviceModelError(f"gate {self.name!r}: polarity must be +1 or -1")
        if self.lever_arm_mev_per_v <= 0:
            raise DeviceModelError(
                f"gate {self.name!r}: lever_arm_mev_per_v must be positive"
            )


@dataclass(frozen=True)
class PotentialWell:
    """A detected dot: location of the potential minimum and its depth."""

    position_nm: float
    depth_mev: float
    left_barrier_mev: float
    right_barrier_mev: float

    @property
    def confinement_mev(self) -> float:
        """Smaller of the two barrier heights seen from the well bottom."""
        return min(self.left_barrier_mev, self.right_barrier_mev)


class ChannelPotential:
    """Potential profile of a linear gate stack along the channel."""

    def __init__(
        self,
        gates: tuple[GateElectrode, ...],
        channel_length_nm: float | None = None,
        resolution_nm: float = 1.0,
        base_potential_mev: float = 0.0,
    ) -> None:
        if not gates:
            raise DeviceModelError("ChannelPotential requires at least one gate")
        if resolution_nm <= 0:
            raise DeviceModelError("resolution_nm must be positive")
        self._gates = tuple(gates)
        positions = [g.position_nm for g in gates]
        margin = 3.0 * max(g.width_nm for g in gates)
        length = channel_length_nm or (max(positions) + margin)
        start = min(0.0, min(positions) - margin)
        self._axis_nm = np.arange(start, length + resolution_nm, resolution_nm)
        self._base = float(base_potential_mev)

    @property
    def gates(self) -> tuple[GateElectrode, ...]:
        """The gate stack."""
        return self._gates

    @property
    def axis_nm(self) -> np.ndarray:
        """Sample positions along the channel in nm."""
        return self._axis_nm

    def gate_by_name(self, name: str) -> GateElectrode:
        """Look up a gate by name."""
        for gate in self._gates:
            if gate.name == name:
                return gate
        raise DeviceModelError(f"unknown gate {name!r}")

    # ------------------------------------------------------------------
    def profile(self, voltages: dict[str, float]) -> np.ndarray:
        """Potential (meV) along the channel for the given gate voltages.

        Gates missing from ``voltages`` are held at 0 V.  Lower values mean a
        more attractive potential for electrons (wells).
        """
        potential = np.full_like(self._axis_nm, self._base, dtype=float)
        for gate in self._gates:
            voltage = float(voltages.get(gate.name, 0.0))
            if voltage == 0.0:
                continue
            response = np.exp(
                -0.5 * ((self._axis_nm - gate.position_nm) / gate.width_nm) ** 2
            )
            # Plunger (+1): positive voltage lowers the potential (deepens well).
            potential -= gate.polarity * gate.lever_arm_mev_per_v * voltage * response
        return potential

    def find_wells(
        self,
        voltages: dict[str, float],
        min_confinement_mev: float = 0.5,
        fermi_level_mev: float = 0.0,
    ) -> list[PotentialWell]:
        """Locate confined wells (dots) in the potential profile.

        A sample is a well candidate if it is a strict local minimum lying
        *below* the Fermi level (``fermi_level_mev``, default: the ungated
        channel potential) — raising barriers alone does not accumulate
        electrons.  A candidate is kept if the barriers on both sides rise at
        least ``min_confinement_mev`` above the well bottom.
        """
        profile = self.profile(voltages)
        wells: list[PotentialWell] = []
        n = profile.size
        for i in range(1, n - 1):
            if not (profile[i] < profile[i - 1] and profile[i] <= profile[i + 1]):
                continue
            if profile[i] >= fermi_level_mev - 1e-9:
                continue
            left_max = float(np.max(profile[: i + 1]))
            right_max = float(np.max(profile[i:]))
            well = PotentialWell(
                position_nm=float(self._axis_nm[i]),
                depth_mev=float(profile[i]),
                left_barrier_mev=left_max - float(profile[i]),
                right_barrier_mev=right_max - float(profile[i]),
            )
            if well.confinement_mev >= min_confinement_mev:
                wells.append(well)
        return wells

    def count_dots(self, voltages: dict[str, float], min_confinement_mev: float = 0.5) -> int:
        """Number of confined dots formed at the given voltages."""
        return len(self.find_wells(voltages, min_confinement_mev=min_confinement_mev))

    # ------------------------------------------------------------------
    @classmethod
    def standard_stack(
        cls, n_plungers: int = 4, pitch_nm: float = 80.0
    ) -> "ChannelPotential":
        """Alternating barrier/plunger stack: B1 P1 B2 P2 ... Pn B(n+1).

        Mirrors the device of the paper's Figure 1(a): ``n_plungers`` plunger
        gates interleaved with ``n_plungers + 1`` barrier gates.
        """
        if n_plungers < 1:
            raise DeviceModelError("n_plungers must be at least 1")
        gates: list[GateElectrode] = []
        position = 0.0
        for i in range(n_plungers):
            gates.append(
                GateElectrode(
                    name=f"B{i + 1}",
                    position_nm=position,
                    width_nm=0.35 * pitch_nm,
                    polarity=-1,
                    lever_arm_mev_per_v=60.0,
                )
            )
            position += pitch_nm / 2.0
            gates.append(
                GateElectrode(
                    name=f"P{i + 1}",
                    position_nm=position,
                    width_nm=0.4 * pitch_nm,
                    polarity=1,
                    lever_arm_mev_per_v=100.0,
                )
            )
            position += pitch_nm / 2.0
        gates.append(
            GateElectrode(
                name=f"B{n_plungers + 1}",
                position_nm=position,
                width_nm=0.35 * pitch_nm,
                polarity=-1,
                lever_arm_mev_per_v=60.0,
            )
        )
        return cls(gates=tuple(gates))
