"""Charge-sensor model: a single-electron transistor (SET) next to the array.

The devices in the paper detect charge transitions with proximal sensor dots
(C1/C2 in Figure 1a): the sensor's conductance sits on the flank of a Coulomb
peak, so any change in the local electrostatic environment — an electron
entering a nearby dot, or the plunger voltages themselves moving — shifts the
peak and changes the measured current.

The model implemented here is the standard one used by quantum-dot simulators:

* the sensor has a "detuning" coordinate (in millivolts of effective gate
  voltage on the sensor island) built from three contributions:
  a static operating point, direct capacitive cross-talk from the swept
  plunger gates, and a discrete shift for every electron added to each array
  dot;
* the conductance is a sum of periodically spaced Coulomb peaks with
  thermally broadened line shapes (``cosh^-2``), multiplied by a bias current
  scale.

Charge transitions therefore appear in the charge-stability diagram as sharp
steps of varying sign and magnitude on top of a smooth background — exactly
the structure the extraction algorithms must cope with.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import SensorModelError


@dataclass(frozen=True)
class ChargeSensorConfig:
    """Parameters of the SET charge sensor.

    Attributes
    ----------
    peak_spacing_mv:
        Spacing of the sensor's own Coulomb peaks in effective sensor-gate
        millivolts.
    peak_width_mv:
        Thermal broadening (FWHM-like scale) of each Coulomb peak in mV.
    peak_current_na:
        Current at the top of a Coulomb peak, in nanoamperes.
    operating_point_mv:
        Static detuning of the sensor from the nearest peak centre; the sensor
        is normally parked on the steep flank of a peak (around a quarter of
        the spacing) for maximum sensitivity.
    dot_shift_mv:
        Detuning shift caused by one electron entering each array dot, in mV.
        One entry per dot; closer dots produce larger shifts.
    gate_crosstalk_mv_per_v:
        Direct capacitive cross-talk of each swept gate onto the sensor
        island, in mV of sensor detuning per volt of gate voltage.  This is
        what produces the smooth background gradient across a CSD.
    background_current_na:
        Residual current far from any peak (leakage / amplifier offset).
    """

    peak_spacing_mv: float = 4.0
    peak_width_mv: float = 0.9
    peak_current_na: float = 1.0
    operating_point_mv: float = 1.0
    dot_shift_mv: tuple[float, ...] = (0.9, 0.55)
    gate_crosstalk_mv_per_v: tuple[float, ...] = (6.0, 4.0)
    background_current_na: float = 0.02

    def __post_init__(self) -> None:
        if self.peak_spacing_mv <= 0:
            raise SensorModelError("peak_spacing_mv must be positive")
        if self.peak_width_mv <= 0:
            raise SensorModelError("peak_width_mv must be positive")
        if self.peak_current_na <= 0:
            raise SensorModelError("peak_current_na must be positive")
        if len(self.dot_shift_mv) == 0:
            raise SensorModelError("dot_shift_mv must have at least one entry")
        if self.background_current_na < 0:
            raise SensorModelError("background_current_na must be non-negative")


class ChargeSensor:
    """Maps (dot occupations, gate voltages) to a sensor current in nA."""

    def __init__(self, config: ChargeSensorConfig | None = None) -> None:
        self._config = config or ChargeSensorConfig()

    @property
    def config(self) -> ChargeSensorConfig:
        """The sensor configuration."""
        return self._config

    # ------------------------------------------------------------------
    def detuning_mv(
        self, occupations: np.ndarray | list, gate_voltages: np.ndarray | list
    ) -> float:
        """Effective sensor detuning in mV for a charge state and gate point."""
        cfg = self._config
        n = np.asarray(occupations, dtype=float).ravel()
        vg = np.asarray(gate_voltages, dtype=float).ravel()
        shifts = np.asarray(cfg.dot_shift_mv, dtype=float)
        crosstalk = np.asarray(cfg.gate_crosstalk_mv_per_v, dtype=float)
        if n.size < shifts.size:
            raise SensorModelError(
                f"expected at least {shifts.size} dot occupations, got {n.size}"
            )
        if vg.size < crosstalk.size:
            raise SensorModelError(
                f"expected at least {crosstalk.size} gate voltages, got {vg.size}"
            )
        charge_term = float(np.dot(shifts, n[: shifts.size]))
        gate_term = float(np.dot(crosstalk, vg[: crosstalk.size]))
        return cfg.operating_point_mv + charge_term + gate_term

    def current_from_detuning(self, detuning_mv: float | np.ndarray) -> np.ndarray | float:
        """Sensor current (nA) as a function of detuning (mV).

        The conductance is a periodic train of thermally broadened Coulomb
        peaks; folding the detuning into one period and evaluating a single
        ``cosh^-2`` line shape is equivalent and cheap.
        """
        cfg = self._config
        detuning = np.asarray(detuning_mv, dtype=float)
        folded = np.mod(detuning + 0.5 * cfg.peak_spacing_mv, cfg.peak_spacing_mv) - (
            0.5 * cfg.peak_spacing_mv
        )
        peak = cfg.peak_current_na / np.cosh(folded / cfg.peak_width_mv) ** 2
        current = cfg.background_current_na + peak
        if np.isscalar(detuning_mv):
            return float(current)
        return current

    def current(
        self,
        occupations: np.ndarray | list,
        gate_voltages: np.ndarray | list,
        detuning_offset_mv: float = 0.0,
    ) -> float:
        """Sensor current (nA) for a charge state at the given gate voltages.

        ``detuning_offset_mv`` shifts the sensor operating point, which is
        how time-dependent device drift (trap charging, charge jumps, mains
        pickup) enters the sensor response.
        """
        detuning = self.detuning_mv(occupations, gate_voltages) + detuning_offset_mv
        return float(self.current_from_detuning(detuning))

    def currents(
        self,
        occupations: np.ndarray,
        gate_voltages: np.ndarray,
        detuning_offset_mv: np.ndarray | float = 0.0,
    ) -> np.ndarray:
        """Vectorised :meth:`current` over a batch of points.

        Parameters
        ----------
        occupations:
            Per-point dot occupations, shape ``(n_points, >= n_dot_shifts)``.
        gate_voltages:
            Per-point gate voltages, shape ``(n_points, >= n_crosstalk)``.
        detuning_offset_mv:
            Extra sensor detuning per point (scalar or ``(n_points,)``), used
            by drift-aware backends to move the operating point over time.

        Returns
        -------
        numpy.ndarray
            Sensor currents in nA, shape ``(n_points,)``; identical values to
            calling :meth:`current` per point.
        """
        cfg = self._config
        occ = np.asarray(occupations, dtype=float)
        vg = np.asarray(gate_voltages, dtype=float)
        if occ.ndim != 2 or vg.ndim != 2 or occ.shape[0] != vg.shape[0]:
            raise SensorModelError(
                "occupations and gate_voltages must be 2-D with one row per "
                f"point, got shapes {occ.shape} and {vg.shape}"
            )
        shifts = np.asarray(cfg.dot_shift_mv, dtype=float)
        crosstalk = np.asarray(cfg.gate_crosstalk_mv_per_v, dtype=float)
        if occ.shape[1] < shifts.size:
            raise SensorModelError(
                f"expected at least {shifts.size} dot occupations, got {occ.shape[1]}"
            )
        if vg.shape[1] < crosstalk.size:
            raise SensorModelError(
                f"expected at least {crosstalk.size} gate voltages, got {vg.shape[1]}"
            )
        # einsum, not BLAS @: its per-element summation is independent of the
        # batch size, so one-point and many-point batches agree bit-for-bit.
        charge_term = np.einsum("nd,d->n", occ[:, : shifts.size], shifts)
        gate_term = np.einsum("ng,g->n", vg[:, : crosstalk.size], crosstalk)
        detuning = cfg.operating_point_mv + charge_term + gate_term
        detuning = detuning + detuning_offset_mv
        return np.asarray(self.current_from_detuning(detuning), dtype=float)

    # ------------------------------------------------------------------
    def step_contrast(self, dot: int) -> float:
        """Approximate current change when one electron enters ``dot``.

        Evaluated at the configured operating point with zero gate voltages;
        useful for choosing noise amplitudes relative to the signal step.
        """
        cfg = self._config
        if not 0 <= dot < len(cfg.dot_shift_mv):
            raise SensorModelError(f"dot index {dot} out of range")
        zeros = np.zeros(len(cfg.gate_crosstalk_mv_per_v))
        before = self.current(np.zeros(len(cfg.dot_shift_mv)), zeros)
        after_occ = np.zeros(len(cfg.dot_shift_mv))
        after_occ[dot] = 1
        after = self.current(after_occ, zeros)
        return float(after - before)

    @classmethod
    def with_sensitivity(
        cls,
        n_dots: int,
        n_gates: int,
        dot_shifts_mv: tuple[float, ...] | None = None,
        gate_crosstalk_mv_per_v: tuple[float, ...] | None = None,
        **kwargs: float,
    ) -> "ChargeSensor":
        """Convenience constructor that sizes the coupling vectors to a device."""
        defaults = ChargeSensorConfig()
        if dot_shifts_mv is None:
            base = defaults.dot_shift_mv[0]
            dot_shifts_mv = tuple(base * (0.6 ** i) for i in range(n_dots))
        if gate_crosstalk_mv_per_v is None:
            base_ct = defaults.gate_crosstalk_mv_per_v[0]
            gate_crosstalk_mv_per_v = tuple(
                base_ct * (0.7 ** i) for i in range(n_gates)
            )
        config = ChargeSensorConfig(
            dot_shift_mv=tuple(dot_shifts_mv),
            gate_crosstalk_mv_per_v=tuple(gate_crosstalk_mv_per_v),
            **kwargs,
        )
        return cls(config)
