"""Charge-stability-diagram (CSD) container and simulator.

A CSD is the measured sensor current over a 2-D grid of two plunger-gate
voltages.  The paper's algorithms consume CSDs in two different ways:

* the Hough baseline acquires the *full* pixel grid up front,
* the fast extraction probes individual voltage points on demand.

Both paths go through the same data: :class:`ChargeStabilityDiagram` stores
the pixel grid, its voltage axes, and ground-truth metadata (true transition
slopes and virtualization coefficients computed from the capacitance model),
while :class:`CSDSimulator` rasterises a :class:`~repro.physics.dot_array.DotArrayDevice`
into such a diagram, adding a configurable noise field.

Conventions (DESIGN.md §2): ``data[row, col]`` with ``col`` indexing the
x-axis gate (``V_P1``) and ``row`` indexing the y-axis gate (``V_P2``); the
origin is the lower-left corner (row 0 = lowest ``V_P2``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import DatasetError, DeviceModelError
from . import constants
from .dot_array import DotArrayDevice
from .noise import NoiseModel, NoNoise


def uniform_axis_step(axis: np.ndarray) -> float | None:
    """The grid step of a uniformly spaced, increasing axis, else ``None``.

    Voltage axes almost always come from :func:`numpy.linspace`, so nearest-
    pixel lookups can be done with O(1) arithmetic instead of an O(n)
    ``argmin`` scan; this helper detects when that fast path is safe.
    """
    axis = np.asarray(axis, dtype=float)
    if axis.ndim != 1 or axis.size < 2:
        return None
    step = float(axis[-1] - axis[0]) / (axis.size - 1)
    if step <= 0 or not np.isfinite(step):
        return None
    deviation = float(np.max(np.abs(np.diff(axis) - step)))
    if deviation > 1e-9 * abs(step):
        return None
    return step


def nearest_axis_index(axis: np.ndarray, value: float, step: float | None) -> int:
    """Index of the axis entry nearest to ``value`` (ties to the lower index).

    With a uniform ``step`` (from :func:`uniform_axis_step`) the lookup is
    O(1): arithmetic narrows the answer to a three-index neighbourhood whose
    *actual* axis distances are then compared, so the result matches the
    ``argmin(|axis - value|)`` scan exactly — including float midpoint ties,
    which break towards the lower index on both paths.  Irregular axes fall
    back to the argmin scan.
    """
    offset = None if step is None else (float(value) - float(axis[0])) / step
    if offset is None or not np.isfinite(offset):
        # Non-finite values (NaN/inf) take the argmin path so both lookup
        # paths agree on degenerate inputs (argmin returns index 0).
        return int(np.argmin(np.abs(np.asarray(axis) - value)))
    n = len(axis)
    estimate = int(min(max(np.floor(offset), 0), n - 1))
    best = -1
    best_distance = np.inf
    for candidate in range(max(estimate - 1, 0), min(estimate + 2, n)):
        distance = abs(float(axis[candidate]) - float(value))
        if distance < best_distance:
            best = candidate
            best_distance = distance
    return best


@dataclass(frozen=True)
class TransitionLineGeometry:
    """Ground-truth geometry of the two addition lines in a CSD window.

    Attributes
    ----------
    slope_steep:
        dVy/dVx of the dot-A addition line (nearly vertical, negative).
    slope_shallow:
        dVy/dVx of the dot-B addition line (nearly horizontal, negative).
    crossing_x, crossing_y:
        Voltage coordinates where the two from-(0,0) addition lines cross
        (between the two triple points).
    alpha_12, alpha_21:
        Ground-truth virtualization coefficients for the swept pair.
    """

    slope_steep: float
    slope_shallow: float
    crossing_x: float
    crossing_y: float
    alpha_12: float
    alpha_21: float


@dataclass
class ChargeStabilityDiagram:
    """A rasterised CSD plus its axes and ground-truth metadata.

    Attributes
    ----------
    data:
        Sensor current in nA, shape ``(n_rows, n_cols)``.
    x_voltages:
        Voltages of the x-axis gate per column, shape ``(n_cols,)``.
    y_voltages:
        Voltages of the y-axis gate per row, shape ``(n_rows,)``.
    gate_x, gate_y:
        Names of the swept gates.
    geometry:
        Ground-truth transition-line geometry, if known (synthetic data).
    occupations:
        Optional ground-state occupation map, shape ``(n_rows, n_cols, n_dots)``.
    metadata:
        Free-form provenance information (noise description, seed, device name).
    """

    data: np.ndarray
    x_voltages: np.ndarray
    y_voltages: np.ndarray
    gate_x: str = "P1"
    gate_y: str = "P2"
    geometry: TransitionLineGeometry | None = None
    occupations: np.ndarray | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=float)
        self.x_voltages = np.asarray(self.x_voltages, dtype=float)
        self.y_voltages = np.asarray(self.y_voltages, dtype=float)
        if self.data.ndim != 2:
            raise DatasetError(f"CSD data must be 2-D, got shape {self.data.shape}")
        if self.data.shape != (self.y_voltages.size, self.x_voltages.size):
            raise DatasetError(
                "CSD axes do not match data: data "
                f"{self.data.shape} vs (len(y), len(x)) = "
                f"({self.y_voltages.size}, {self.x_voltages.size})"
            )
        if self.x_voltages.size < 2 or self.y_voltages.size < 2:
            raise DatasetError("CSD must have at least 2 pixels along each axis")
        if not (np.all(np.diff(self.x_voltages) > 0) and np.all(np.diff(self.y_voltages) > 0)):
            raise DatasetError("CSD voltage axes must be strictly increasing")
        self._x_lookup_step = uniform_axis_step(self.x_voltages)
        self._y_lookup_step = uniform_axis_step(self.y_voltages)

    # ------------------------------------------------------------------
    # Shape and axes
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """``(n_rows, n_cols)`` of the pixel grid."""
        return self.data.shape  # type: ignore[return-value]

    @property
    def n_pixels(self) -> int:
        """Total number of pixels."""
        return int(self.data.size)

    @property
    def x_step(self) -> float:
        """Voltage step between adjacent columns."""
        return float(self.x_voltages[1] - self.x_voltages[0])

    @property
    def y_step(self) -> float:
        """Voltage step between adjacent rows."""
        return float(self.y_voltages[1] - self.y_voltages[0])

    # ------------------------------------------------------------------
    # Pixel <-> voltage conversion
    # ------------------------------------------------------------------
    def voltage_at(self, row: int, col: int) -> tuple[float, float]:
        """Voltages ``(vx, vy)`` at a pixel ``(row, col)``."""
        return float(self.x_voltages[col]), float(self.y_voltages[row])

    def pixel_at(self, vx: float, vy: float) -> tuple[int, int]:
        """Nearest pixel ``(row, col)`` for a voltage point ``(vx, vy)``.

        O(1) arithmetic on uniformly spaced axes (the common case); falls
        back to an ``argmin`` scan on irregular axes.
        """
        col = nearest_axis_index(self.x_voltages, vx, self._x_lookup_step)
        row = nearest_axis_index(self.y_voltages, vy, self._y_lookup_step)
        return row, col

    def contains_voltage(self, vx: float, vy: float) -> bool:
        """Whether a voltage point lies within the scanned window."""
        return bool(
            self.x_voltages[0] <= vx <= self.x_voltages[-1]
            and self.y_voltages[0] <= vy <= self.y_voltages[-1]
        )

    def value(self, row: int, col: int) -> float:
        """Pixel value (nA) at ``(row, col)``."""
        return float(self.data[row, col])

    def value_at_voltage(self, vx: float, vy: float) -> float:
        """Pixel value (nA) at the pixel nearest to ``(vx, vy)``."""
        row, col = self.pixel_at(vx, vy)
        return float(self.data[row, col])

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def crop(
        self,
        row_slice: slice,
        col_slice: slice,
    ) -> "ChargeStabilityDiagram":
        """Return a cropped copy covering the given pixel slices."""
        data = self.data[row_slice, col_slice].copy()
        ys = self.y_voltages[row_slice].copy()
        xs = self.x_voltages[col_slice].copy()
        occupations = (
            self.occupations[row_slice, col_slice].copy()
            if self.occupations is not None
            else None
        )
        return ChargeStabilityDiagram(
            data=data,
            x_voltages=xs,
            y_voltages=ys,
            gate_x=self.gate_x,
            gate_y=self.gate_y,
            geometry=self.geometry,
            occupations=occupations,
            metadata=dict(self.metadata, cropped=True),
        )

    def crop_fraction(self, fraction: float = 0.5, center: str = "geometry") -> "ChargeStabilityDiagram":
        """Crop to a ``fraction`` of the width/height, as the paper does.

        The paper crops each qflow CSD to the 50% window containing the
        (0,0)/(0,1)/(1,0)/(1,1) regions.  With ``center="geometry"`` the crop
        is centred on the ground-truth crossing point when available,
        otherwise on the array centre.
        """
        if not 0 < fraction <= 1:
            raise DatasetError("fraction must lie in (0, 1]")
        rows, cols = self.shape
        new_rows = max(2, int(round(rows * fraction)))
        new_cols = max(2, int(round(cols * fraction)))
        if center == "geometry" and self.geometry is not None:
            crow, ccol = self.pixel_at(self.geometry.crossing_x, self.geometry.crossing_y)
        else:
            crow, ccol = rows // 2, cols // 2
        row0 = int(np.clip(crow - new_rows // 2, 0, rows - new_rows))
        col0 = int(np.clip(ccol - new_cols // 2, 0, cols - new_cols))
        return self.crop(slice(row0, row0 + new_rows), slice(col0, col0 + new_cols))

    def normalized(self) -> "ChargeStabilityDiagram":
        """Copy with data scaled to the [0, 1] range (for image baselines)."""
        lo = float(np.min(self.data))
        hi = float(np.max(self.data))
        span = hi - lo if hi > lo else 1.0
        return ChargeStabilityDiagram(
            data=(self.data - lo) / span,
            x_voltages=self.x_voltages.copy(),
            y_voltages=self.y_voltages.copy(),
            gate_x=self.gate_x,
            gate_y=self.gate_y,
            geometry=self.geometry,
            occupations=self.occupations,
            metadata=dict(self.metadata, normalized=True),
        )


class CSDSimulator:
    """Rasterise a :class:`DotArrayDevice` into charge-stability diagrams."""

    def __init__(
        self,
        device: DotArrayDevice,
        dot_a: int = 0,
        dot_b: int = 1,
        gate_x: int | str = "P1",
        gate_y: int | str = "P2",
        fixed_voltages: np.ndarray | list | None = None,
    ) -> None:
        if device.n_dots < 2:
            raise DeviceModelError("CSDSimulator requires a device with at least two dots")
        self._device = device
        self._dot_a = int(dot_a)
        self._dot_b = int(dot_b)
        if self._dot_a == self._dot_b:
            raise DeviceModelError("dot_a and dot_b must differ")
        self._gate_x = device.gate_index(gate_x)
        self._gate_y = device.gate_index(gate_y)
        if self._gate_x == self._gate_y:
            raise DeviceModelError("gate_x and gate_y must differ")
        if fixed_voltages is None:
            self._fixed = np.zeros(device.n_gates)
        else:
            self._fixed = np.asarray(fixed_voltages, dtype=float).copy()
            if self._fixed.shape != (device.n_gates,):
                raise DeviceModelError(
                    f"fixed_voltages must have shape ({device.n_gates},)"
                )

    @property
    def device(self) -> DotArrayDevice:
        """The simulated device."""
        return self._device

    @property
    def gate_x_name(self) -> str:
        """Name of the x-axis gate."""
        return self._device.gate_names[self._gate_x]

    @property
    def gate_y_name(self) -> str:
        """Name of the y-axis gate."""
        return self._device.gate_names[self._gate_y]

    # ------------------------------------------------------------------
    # Ground-truth geometry helpers
    # ------------------------------------------------------------------
    def geometry(self) -> TransitionLineGeometry:
        """Ground-truth line geometry for the swept pair."""
        capacitance = self._device.capacitance
        m_steep, m_shallow = capacitance.transition_slopes(
            self._dot_a, self._dot_b, self._gate_x, self._gate_y
        )
        alpha_12, alpha_21 = capacitance.virtualization_alphas(
            self._dot_a, self._dot_b, self._gate_x, self._gate_y
        )
        crossing_x, crossing_y = self.first_transition_crossing()
        return TransitionLineGeometry(
            slope_steep=m_steep,
            slope_shallow=m_shallow,
            crossing_x=crossing_x,
            crossing_y=crossing_y,
            alpha_12=alpha_12,
            alpha_21=alpha_21,
        )

    def first_transition_crossing(self) -> tuple[float, float]:
        """Voltage point where the two from-(0,0) addition lines cross.

        The (0,0)->(1,0) boundary is ``(A Vg)_a = 0.5 e (Cdd^-1)_aa`` and the
        (0,0)->(0,1) boundary is ``(A Vg)_b = 0.5 e (Cdd^-1)_bb`` (with the
        non-swept gates at their fixed values); solving the 2x2 linear system
        gives the crossing in the swept-gate plane.
        """
        capacitance = self._device.capacitance
        inv = capacitance.inverse_dot_dot
        lever = capacitance.lever_arm_matrix
        e_afv = constants.ELEMENTARY_CHARGE_AF_V
        pair = np.array(
            [
                [lever[self._dot_a, self._gate_x], lever[self._dot_a, self._gate_y]],
                [lever[self._dot_b, self._gate_x], lever[self._dot_b, self._gate_y]],
            ]
        )
        fixed_contribution = np.zeros(2)
        for gate in range(capacitance.n_gates):
            if gate in (self._gate_x, self._gate_y):
                continue
            fixed_contribution[0] += lever[self._dot_a, gate] * self._fixed[gate]
            fixed_contribution[1] += lever[self._dot_b, gate] * self._fixed[gate]
        rhs = np.array(
            [
                0.5 * inv[self._dot_a, self._dot_a] * e_afv,
                0.5 * inv[self._dot_b, self._dot_b] * e_afv,
            ]
        ) - fixed_contribution
        solution = np.linalg.solve(pair, rhs)
        return float(solution[0]), float(solution[1])

    def addition_voltage_spans(self) -> tuple[float, float]:
        """Approximate plunger-voltage spacing between charge transitions.

        Returns ``(span_x, span_y)``: how far the x-axis (resp. y-axis) gate
        must move to add one electron to its own dot, i.e. charging energy
        divided by lever arm.  Used to size simulation windows.
        """
        capacitance = self._device.capacitance
        inv = capacitance.inverse_dot_dot
        lever = capacitance.lever_arm_matrix
        e_afv = constants.ELEMENTARY_CHARGE_AF_V
        span_x = inv[self._dot_a, self._dot_a] * e_afv / lever[self._dot_a, self._gate_x]
        span_y = inv[self._dot_b, self._dot_b] * e_afv / lever[self._dot_b, self._gate_y]
        return float(span_x), float(span_y)

    def default_window(self, span_fraction: float = 0.75) -> tuple[tuple[float, float], tuple[float, float]]:
        """A voltage window centred on the first-transition crossing.

        ``span_fraction`` scales the window size relative to the addition
        voltage spacing; 0.75 comfortably contains the four lowest charge
        regions without reaching the next transitions.
        """
        crossing_x, crossing_y = self.first_transition_crossing()
        span_x, span_y = self.addition_voltage_spans()
        half_x = 0.5 * span_fraction * span_x
        half_y = 0.5 * span_fraction * span_y
        return (
            (crossing_x - half_x, crossing_x + half_x),
            (crossing_y - half_y, crossing_y + half_y),
        )

    # ------------------------------------------------------------------
    # Point-wise and grid simulation
    # ------------------------------------------------------------------
    def ideal_current(self, vx: float, vy: float) -> float:
        """Noise-free sensor current at a single voltage point."""
        vg = self._fixed.copy()
        vg[self._gate_x] = vx
        vg[self._gate_y] = vy
        return self._device.sensor_current(vg)

    def simulate(
        self,
        resolution: int | tuple[int, int],
        window: tuple[tuple[float, float], tuple[float, float]] | None = None,
        noise: NoiseModel | None = None,
        seed: int | None = None,
    ) -> ChargeStabilityDiagram:
        """Rasterise a full CSD.

        Parameters
        ----------
        resolution:
            Number of pixels per axis, either a single integer (square grid)
            or ``(n_rows, n_cols)``.
        window:
            ``((x_min, x_max), (y_min, y_max))`` voltage window; defaults to
            :meth:`default_window`.
        noise:
            Additive noise model; defaults to no noise.
        seed:
            Seed for the noise generator (ignored when ``noise`` is ``None``).
        """
        if isinstance(resolution, int):
            n_rows = n_cols = int(resolution)
        else:
            n_rows, n_cols = (int(resolution[0]), int(resolution[1]))
        if n_rows < 2 or n_cols < 2:
            raise DatasetError("resolution must be at least 2x2")
        if window is None:
            window = self.default_window()
        (x_min, x_max), (y_min, y_max) = window
        if x_max <= x_min or y_max <= y_min:
            raise DatasetError("voltage window must have positive extent")
        xs = np.linspace(x_min, x_max, n_cols)
        ys = np.linspace(y_min, y_max, n_rows)
        occupations = self._device.solver.occupation_map(
            self._gate_x, self._gate_y, xs, ys, fixed_voltages=self._fixed
        )
        data = self._sensor_currents(xs, ys, occupations)
        noise_model = noise or NoNoise()
        rng = np.random.default_rng(seed)
        data = data + noise_model.sample_grid(data.shape, rng)
        geometry = self.geometry()
        metadata = {
            "device": self._device.name,
            "dot_a": self._dot_a,
            "dot_b": self._dot_b,
            "noise": noise_model.describe(),
            "seed": seed,
        }
        return ChargeStabilityDiagram(
            data=data,
            x_voltages=xs,
            y_voltages=ys,
            gate_x=self.gate_x_name,
            gate_y=self.gate_y_name,
            geometry=geometry,
            occupations=occupations,
            metadata=metadata,
        )

    def _sensor_currents(
        self, xs: np.ndarray, ys: np.ndarray, occupations: np.ndarray
    ) -> np.ndarray:
        # Flatten the grid to explicit voltage points and evaluate through
        # the device's shared batch kernel (the same one the instrument
        # layer's batch probe path uses).
        points = np.tile(self._fixed, (ys.size * xs.size, 1))
        points[:, self._gate_x] = np.tile(xs, ys.size)
        points[:, self._gate_y] = np.repeat(ys, xs.size)
        flat_occupations = occupations.reshape(-1, occupations.shape[-1])
        currents = self._device.sensor_currents(points, occupations=flat_occupations)
        return currents.reshape(ys.size, xs.size)
