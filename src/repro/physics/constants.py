"""Physical constants and unit helpers used by the device models.

The capacitance model works internally in a reduced unit system:

* voltages in volts (V),
* capacitances in attofarads (aF), the natural scale of gate-defined quantum
  dots (total dot capacitances are tens to hundreds of aF),
* charge in units of the elementary charge ``e``,
* energies in milli-electron-volts (meV).

Keeping the numbers near unity avoids conditioning problems when inverting
Maxwell capacitance matrices and makes parameter files human readable.
"""

from __future__ import annotations

import math

#: Elementary charge in coulombs.
ELEMENTARY_CHARGE_C: float = 1.602176634e-19

#: Elementary charge in units of aF * V (1 aF * 1 V = 1e-18 C).
#: Dividing by this converts a charge expressed in aF*V into electrons.
ELEMENTARY_CHARGE_AF_V: float = ELEMENTARY_CHARGE_C * 1e18  # ~0.1602 aF*V

#: Boltzmann constant in meV / K.
BOLTZMANN_MEV_PER_K: float = 0.08617333262

#: Conversion from (e^2 / aF) to meV:  e / (1 aF) = 0.1602 V = 160.2 meV per e.
E_SQUARED_OVER_AF_IN_MEV: float = ELEMENTARY_CHARGE_AF_V * 1e3

#: Typical electron temperature of a dilution-refrigerator experiment (K).
DEFAULT_ELECTRON_TEMPERATURE_K: float = 0.1


def thermal_energy_mev(temperature_k: float) -> float:
    """Return ``k_B * T`` in meV for a temperature in kelvin.

    Parameters
    ----------
    temperature_k:
        Electron temperature in kelvin. Must be non-negative.
    """
    if temperature_k < 0:
        raise ValueError(f"temperature must be non-negative, got {temperature_k}")
    return BOLTZMANN_MEV_PER_K * temperature_k


def charging_energy_mev(total_capacitance_af: float) -> float:
    """Return the charging energy ``e^2 / C`` in meV for a capacitance in aF.

    Parameters
    ----------
    total_capacitance_af:
        Total (self) capacitance of a dot in attofarads. Must be positive.
    """
    if total_capacitance_af <= 0:
        raise ValueError(
            f"total capacitance must be positive, got {total_capacitance_af}"
        )
    return E_SQUARED_OVER_AF_IN_MEV / total_capacitance_af


def lever_arm_to_mev_per_volt(lever_arm: float) -> float:
    """Convert a dimensionless lever arm into meV of dot-potential per volt.

    A lever arm of 1 means the dot potential follows the gate voltage exactly,
    i.e. 1 V on the gate moves the dot chemical potential by 1 eV = 1000 meV.
    """
    return lever_arm * 1000.0


def gaussian(x: float, mu: float, sigma: float) -> float:
    """Normalised Gaussian density, used for peak shapes and window weights."""
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    z = (x - mu) / sigma
    return math.exp(-0.5 * z * z) / (sigma * math.sqrt(2.0 * math.pi))
